"""Legacy setuptools entry point (kept for offline editable installs)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Efficient Inter-Device Data-Forwarding in the "
        "Madeleine Communication Library' (IPPS 2001)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "networkx>=3.0"],
)
