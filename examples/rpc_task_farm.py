"""A PM2-style RPC task farm spanning two clusters.

A master on the Myrinet cluster farms matrix-block multiplications out to
workers on both clusters; calls to SCI-side workers silently cross the
gateway.  This is the PM2 programming model (lightweight RPC) that
Madeleine was built to carry.

Run:  python examples/rpc_task_farm.py
"""

import numpy as np

from repro.hw import build_world
from repro.madeleine import Session
from repro.rpc import RpcNode

BLOCK = 64          # block size of the matrix multiply
N_TASKS = 12


def main() -> None:
    world = build_world({
        "master": ["myrinet"],
        "w_myri": ["myrinet"],
        "gateway": ["myrinet", "sci"],
        "w_sci0": ["sci"],
        "w_sci1": ["sci"],
    })
    with Session(world, packet_size=32 << 10) as session:
        vch = session.virtual_channel([
            session.channel("myrinet", ["master", "w_myri", "gateway"]),
            session.channel("sci", ["gateway", "w_sci0", "w_sci1"]),
        ])

        nodes = {r: RpcNode(vch, r) for r in vch.members}
        for n in nodes.values():
            n.start()

        rng = np.random.default_rng(7)
        tasks = [(rng.standard_normal((BLOCK, BLOCK)),
                  rng.standard_normal((BLOCK, BLOCK)))
                 for _ in range(N_TASKS)]

        def matmul_handler(call):
            raw = call.payload_array(np.float64)
            a = raw[:BLOCK * BLOCK].reshape(BLOCK, BLOCK)
            b = raw[BLOCK * BLOCK:].reshape(BLOCK, BLOCK)
            return np.ascontiguousarray(a @ b)

        workers = [session.rank(n) for n in ("w_myri", "w_sci0", "w_sci1")]
        for wr in workers:
            nodes[wr].register("matmul", matmul_handler)

        results: dict[int, np.ndarray] = {}

        def master():
            rr = 0
            for i, (a, b) in enumerate(tasks):
                worker = workers[rr % len(workers)]
                rr += 1
                payload = np.concatenate([a.reshape(-1), b.reshape(-1)])
                reply = yield from nodes[session.rank("master")].call(
                    worker, "matmul", payload)
                results[i] = reply.array(np.float64).reshape(BLOCK, BLOCK)

        session.spawn(master(), "master")
        session.run()

    ok = all(np.allclose(results[i], a @ b)
             for i, (a, b) in enumerate(tasks))
    served = {world.nodes[r].name: nodes[r].calls_served for r in workers}
    print(f"task farm: {N_TASKS} block matmuls "
          f"({BLOCK}x{BLOCK} doubles) over 3 workers on 2 clusters")
    print(f"  all results correct : {ok}")
    print(f"  calls served        : {served}")
    print(f"  total simulated time: {session.now / 1000:.1f} ms")


if __name__ == "__main__":
    main()
