"""Quickstart: two nodes, one Myrinet channel, the Madeleine pack/unpack API.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.hw import build_world
from repro.madeleine import (RECV_CHEAPER, RECV_EXPRESS, SEND_CHEAPER,
                             Session)


def main() -> None:
    # One simulated world: two PII-450-class machines on a Myrinet switch.
    world = build_world({"alice": ["myrinet"], "bob": ["myrinet"]})
    with Session(world) as session:
        channel = session.channel("myrinet", ["alice", "bob"])

        # The message: a small size header (EXPRESS: the receiver needs it
        # to interpret the rest) followed by a payload (CHEAPER: zero-copy).
        payload = np.arange(1_000_000, dtype=np.uint8) % 251
        header = np.array([len(payload)], dtype=np.uint32).view(np.uint8)

        def alice():
            msg = channel.endpoint(0).begin_packing(dst=1)
            yield msg.pack(header, SEND_CHEAPER, RECV_EXPRESS)
            yield msg.pack(payload, SEND_CHEAPER, RECV_CHEAPER)
            yield msg.end_packing()
            print(f"[alice] message flushed at t={session.now:9.1f} µs")

        def bob():
            incoming = yield channel.endpoint(1).begin_unpacking()
            ev, hdr = incoming.unpack(4, SEND_CHEAPER, RECV_EXPRESS)
            yield ev                                # EXPRESS: readable now
            size = int(hdr.data.view(np.uint32)[0])
            print(f"[bob]   header says {size} bytes follow")
            _ev, body = incoming.unpack(size)
            yield incoming.end_unpacking()
            ok = bool((body.data == payload).all())
            bw = size / session.now
            print(f"[bob]   payload received at t={session.now:9.1f} µs "
                  f"(intact: {ok}, ≈{bw:.1f} MB/s)")

        session.spawn(alice(), "alice")
        session.spawn(bob(), "bob")
        session.run()
    print(f"host copies performed: {world.accounting.copies} "
          f"(zero-copy dynamic path)")


if __name__ == "__main__":
    main()
