"""The paper's testbed: an SCI node sends to a Myrinet node through a
gateway holding both cards — transparently, via a virtual channel.

Prints the end-to-end bandwidth for both directions and the gateway's
pipeline timeline (the Figures 5/8 picture).

Run:  python examples/cluster_of_clusters.py
"""

import numpy as np

from repro.analysis import extract_timeline, pipeline_stats, render_timeline
from repro.hw import build_world
from repro.madeleine import Session

MESSAGE = 2 << 20          # 2 MB
PACKET = 64 << 10          # 64 KB paquets on the gateway pipeline


def run_direction(src: str, dst: str) -> None:
    world = build_world({
        "myri0": ["myrinet"],
        "gateway": ["myrinet", "sci"],
        "sci0": ["sci"],
    })
    # telemetry=True: the metrics registry and spans record this run.
    with Session(world, packet_size=PACKET, telemetry=True) as session:
        vch = session.virtual_channel([
            session.channel("myrinet", ["myri0", "gateway"]),
            session.channel("sci", ["gateway", "sci0"]),
        ])

        data = (np.arange(MESSAGE) % 251).astype(np.uint8)
        done = {}

        def sender():
            msg = vch.endpoint(session.rank(src)).begin_packing(
                session.rank(dst))
            yield msg.pack(data)
            yield msg.end_packing()

        def receiver():
            incoming = yield vch.endpoint(session.rank(dst)).begin_unpacking()
            _ev, buf = incoming.unpack(MESSAGE)
            yield incoming.end_unpacking()
            done["t"] = session.now
            done["ok"] = bool((buf.data == data).all())

        session.spawn(sender())
        session.spawn(receiver())
        session.run()

    stats = pipeline_stats(extract_timeline(world.trace))
    gw_copies = world.accounting.by_label().get("gateway.static_copy", (0, 0))
    metrics = session.metrics
    print(f"\n--- {src} -> {dst} "
          f"({MESSAGE >> 20} MB, {PACKET >> 10} KB paquets) ---")
    print(f"payload intact        : {done['ok']}")
    print(f"one-way bandwidth     : {MESSAGE / done['t']:6.1f} MB/s")
    print(f"gateway recv step     : {stats.mean_recv_us:6.1f} µs")
    print(f"gateway send step     : {stats.mean_send_us:6.1f} µs "
          f"(send/recv ratio {stats.send_recv_ratio:.2f})")
    print(f"gateway copies        : {gw_copies[0]} ({gw_copies[1]} bytes) "
          f"— zero-copy forwarding")
    print(f"gateway items         : "
          f"{metrics.total('gateway.items_forwarded')} paquets forwarded, "
          f"pipeline occupancy hwm "
          f"{metrics.series('gateway.occupancy')[0].hwm}")
    print(f"wire fragments        : {metrics.total('wire.fragments')} "
          f"({metrics.total('wire.bytes')} bytes on the wire)")
    window = [s for s in extract_timeline(world.trace) if 2 <= s.seq <= 11]
    print(render_timeline(window))


def main() -> None:
    print("Madeleine inter-device forwarding on the IPPS'01 testbed")
    run_direction("sci0", "myri0")    # Figure 6 direction: fast
    run_direction("myri0", "sci0")    # Figure 7 direction: PCI-conflicted


if __name__ == "__main__":
    main()
