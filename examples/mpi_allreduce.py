"""MPI-style collectives across a cluster of clusters.

The Madeleine forwarding layer was the substrate for MPICH/Madeleine-III
("a cluster of clusters enabled MPI implementation"); this example shows
that layering on the reproduction: six worker ranks — three on Myrinet,
three on SCI, joined by a dedicated gateway — compute a distributed dot
product with tree and ring allreduce, oblivious to the topology.

Run:  python examples/mpi_allreduce.py
"""

import numpy as np

from repro.hw import ClusterSpec, GatewayLink, build_cluster_of_clusters
from repro.madeleine import Session
from repro.minimpi import Communicator, allreduce, barrier, ring_allreduce

N = 600_000          # global vector length
ALGOS = ("tree", "ring")


def main() -> None:
    world, members, gws = build_cluster_of_clusters(
        clusters=[ClusterSpec("m", "myrinet", 4),
                  ClusterSpec("s", "sci", 3)],
        gateways=[GatewayLink("m", "s")],
    )
    with Session(world, packet_size=64 << 10) as session:
        vch = session.virtual_channel([
            session.channel("myrinet", members["m"]),
            session.channel("sci", members["s"] + gws),
        ])

        workers = [session.rank(n) for n in members["m"][:3] + members["s"]]
        n_workers = len(workers)

        class WorkerComm(Communicator):
            @property
            def ranks(self):
                return workers

            @property
            def size(self):
                return n_workers

        rng = np.random.default_rng(42)
        x = rng.standard_normal(N)
        y = rng.standard_normal(N)
        expected = float(x @ y)
        chunks = np.array_split(np.arange(N), n_workers)
        timings: dict[str, float] = {}
        outputs: dict[tuple[str, int], float] = {}

        def worker(i: int):
            comm = WorkerComm(vch, workers[i])
            lo, hi = chunks[i][0], chunks[i][-1] + 1

            def proc():
                for algo in ALGOS:
                    partial = np.array([x[lo:hi] @ y[lo:hi]])
                    # pad to a vector so the ring variant has chunks to
                    # rotate
                    vec = np.zeros(n_workers, dtype=np.float64)
                    vec[i] = partial[0]
                    t0 = comm.sim.now
                    if algo == "tree":
                        total = yield from allreduce(comm, vec, op=np.add)
                    else:
                        total = yield from ring_allreduce(comm, vec,
                                                          op=np.add)
                    outputs[(algo, i)] = float(total.sum())
                    yield from barrier(comm)
                    if i == 0:
                        timings[algo] = comm.sim.now - t0
            return proc

        for i in range(n_workers):
            session.spawn(worker(i)(), name=f"rank{i}")
        session.run()

    print(f"distributed dot product over {n_workers} ranks "
          f"(3 Myrinet + 3 SCI, one gateway)")
    print(f"  numpy reference : {expected:,.3f}")
    for algo in ALGOS:
        vals = [outputs[(algo, i)] for i in range(n_workers)]
        ok = all(abs(v - expected) < 1e-6 * abs(expected) for v in vals)
        print(f"  {algo:4s} allreduce  : {vals[0]:,.3f}   all ranks agree: "
              f"{ok}   ({timings[algo]:,.0f} µs incl. barrier)")
    fwd = sum(w.messages_forwarded for w in vch.workers)
    print(f"  gateway forwarded {fwd} messages in total")


if __name__ == "__main__":
    main()
