"""Three clusters chained by two gateways: Myrinet -- SCI -- SBP.

Demonstrates the high-level routing the paper says "can easily and
efficiently be implemented" on top of the forwarding mechanism: messages
from the Myrinet cluster to the SBP cluster cross both gateways, with each
intermediate hop on the special (forwarding) channel and the final hop back
on a regular channel.

Run:  python examples/multi_gateway_routing.py
"""

import numpy as np

from repro.hw import build_world
from repro.madeleine import Session

MESSAGE = 256 << 10


def main() -> None:
    world = build_world({
        "m0": ["myrinet"], "m1": ["myrinet"],
        "gw_ms": ["myrinet", "sci"],       # Myrinet/SCI gateway
        "s0": ["sci"],
        "gw_sb": ["sci", "sbp"],           # SCI/SBP gateway
        "b0": ["sbp"],
    })
    with Session(world, packet_size=16 << 10, telemetry=True) as session:
        vch = session.virtual_channel([
            session.channel("myrinet", ["m0", "m1", "gw_ms"]),
            session.channel("sci", ["gw_ms", "s0", "gw_sb"]),
            session.channel("sbp", ["gw_sb", "b0"]),
        ])

        # Show the routes the virtual channel computed.
        for dst in ("m1", "s0", "b0"):
            route = vch.routes.route(session.rank("m0"), session.rank(dst))
            path = " -> ".join(
                f"{world.nodes[h.src].name}--[{h.channel.protocol.name}]"
                for h in route) + f" -> {dst}"
            print(f"route m0 -> {dst:5s}: {len(route)} hop(s): {path}")

        data = (np.arange(MESSAGE) % 247).astype(np.uint8)
        done = {}

        def sender():
            msg = vch.endpoint(session.rank("m0")).begin_packing(
                session.rank("b0"))
            yield msg.pack(data)
            yield msg.end_packing()

        def receiver():
            incoming = yield vch.endpoint(session.rank("b0")).begin_unpacking()
            _ev, buf = incoming.unpack(MESSAGE)
            yield incoming.end_unpacking()
            done["t"] = session.now
            done["ok"] = bool((buf.data == data).all())
            done["origin"] = world.nodes[incoming.origin].name

        session.spawn(sender())
        session.spawn(receiver())
        session.run()

    print(f"\nm0 -> b0 across two gateways:")
    print(f"  intact: {done['ok']}, origin seen by receiver: {done['origin']}")
    print(f"  one-way bandwidth: {MESSAGE / done['t']:.1f} MB/s")
    # Per-gateway forwarding counts come from the telemetry registry.
    for series in session.metrics.series("gateway.messages_forwarded"):
        if series.value:
            print(f"  gateway {world.nodes[series.labels['gw']].name} "
                  f"forwarded {series.value} message(s)")


if __name__ == "__main__":
    main()
