"""A parallel-computing workload on a cluster of clusters: 1-D domain
decomposition with halo exchange — the kind of application §1 motivates.

Six worker nodes hold slices of a field; neighbours exchange halo rows
every iteration.  The decomposition straddles a Myrinet cluster and an SCI
cluster, so the exchange between ranks 2 and 3 crosses the gateway — yet
the application code below is identical for every pair: the virtual channel
hides the topology (the paper's transparency claim, §2.2.1).

Run:  python examples/stencil_exchange.py
"""

import numpy as np

from repro.hw import ClusterSpec, GatewayLink, build_cluster_of_clusters
from repro.madeleine import Session

HALO = 64 << 10       # 64 KB halo per direction
ITERATIONS = 5


def main() -> None:
    # Cluster "m" has 4 nodes; its last one (m3) is the dedicated gateway
    # and runs no worker — the m2 <-> s0 halo exchange crosses it.
    world, members, gws = build_cluster_of_clusters(
        clusters=[ClusterSpec("m", "myrinet", 4),
                  ClusterSpec("s", "sci", 3)],
        gateways=[GatewayLink("m", "s")],
    )
    with Session(world, packet_size=32 << 10) as session:
        vch = session.virtual_channel([
            session.channel("myrinet", members["m"]),
            session.channel("sci", members["s"] + gws),
        ])

        workers = members["m"][:3] + members["s"]  # m0 m1 m2 | s0 s1 s2
        ranks = [session.rank(n) for n in workers]
        iter_times: list[float] = []

        def worker(i: int):
            rank = ranks[i]
            left = ranks[i - 1] if i > 0 else None
            right = ranks[i + 1] if i < len(ranks) - 1 else None
            halo = np.full(HALO, i, dtype=np.uint8)

            def proc():
                for it in range(ITERATIONS):
                    pending = []
                    # Send halos to both neighbours (don't block: a
                    # head-to-head exchange must post its receives before
                    # waiting).
                    for nb in (left, right):
                        if nb is None:
                            continue
                        msg = vch.endpoint(rank).begin_packing(nb)
                        msg.pack(halo)
                        pending.append(msg.end_packing())
                    # Receive one halo per neighbour.
                    for nb in (left, right):
                        if nb is None:
                            continue
                        incoming = yield vch.endpoint(rank).begin_unpacking()
                        _ev, buf = incoming.unpack(HALO)
                        yield incoming.end_unpacking()
                        src_idx = ranks.index(incoming.origin)
                        assert buf.data[0] == src_idx, "halo corrupted"
                    for ev in pending:
                        yield ev
                    if i == 0:
                        iter_times.append(session.now)
                return None
            return proc

        for i in range(len(workers)):
            session.spawn(worker(i)(), name=f"worker-{workers[i]}")
        session.run()

    print(f"halo exchange on m0 m1 m2 | gateway | s0 s1 s2 "
          f"({HALO >> 10} KB halos)")
    prev = 0.0
    for it, t in enumerate(iter_times):
        print(f"  iteration {it}: {t - prev:9.1f} µs")
        prev = t
    fwd = sum(w.messages_forwarded for w in vch.workers)
    print(f"messages forwarded by the gateway: {fwd} "
          f"(only the m2<->s0 pair crosses clusters)")


if __name__ == "__main__":
    main()
