.PHONY: install test bench figures examples clean

install:
	pip install -e .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# regenerate every paper figure/table into benchmarks/results/
figures: bench
	@ls benchmarks/results/

examples:
	python examples/quickstart.py
	python examples/cluster_of_clusters.py
	python examples/multi_gateway_routing.py
	python examples/stencil_exchange.py
	python examples/mpi_allreduce.py
	python examples/rpc_task_farm.py

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
