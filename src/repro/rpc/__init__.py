"""PM2-flavoured lightweight RPC over Madeleine virtual channels."""

from .core import Call, RemoteError, Reply, RpcError, RpcNode

__all__ = ["Call", "RemoteError", "Reply", "RpcError", "RpcNode"]
