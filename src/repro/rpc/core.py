"""A PM2-flavoured lightweight RPC layer over virtual channels.

Madeleine is the communication subsystem of the PM2 multithreaded runtime,
whose programming model is the LRPC (lightweight remote procedure call).
This module rebuilds that layer on the reproduction: nodes register named
services; callers invoke them with byte/array arguments and (optionally)
wait for a reply.  Requests and replies are ordinary Madeleine messages —
an EXPRESS envelope (service id, call id, argument size) followed by the
CHEAPER payload — so calls cross gateways transparently like everything
else.

Usage::

    node = RpcNode(vchannel, rank)
    node.register("scale", lambda call: call.payload_array(np.float64) * 2)
    node.start()
    ...
    reply = yield from caller.call(dest, "scale", my_array)
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Generator, Optional, Union

import numpy as np

from ..madeleine.flags import RecvMode, SendMode
from ..madeleine.vchannel import VirtualChannel
from ..memory import Buffer

__all__ = ["RpcNode", "RpcError", "RemoteError", "Call", "Reply"]

_ENVELOPE_DTYPE = np.dtype(np.uint32)
_ENVELOPE_WORDS = 5      # kind, call_id, service_len, payload_len, status
_ENVELOPE_BYTES = _ENVELOPE_WORDS * 4

_KIND_REQUEST = 1
_KIND_REPLY = 2
_KIND_ONEWAY = 3

_STATUS_OK = 0
_STATUS_NO_SERVICE = 1
_STATUS_HANDLER_RAISED = 2


class RpcError(RuntimeError):
    """Local misuse of the RPC layer."""


class RemoteError(RuntimeError):
    """The remote handler failed (or the service does not exist)."""

    def __init__(self, status: int, detail: str) -> None:
        super().__init__(detail)
        self.status = status


class Call:
    """An incoming request as seen by a handler."""

    __slots__ = ("source", "service", "payload", "call_id")

    def __init__(self, source: int, service: str, payload: Buffer,
                 call_id: int) -> None:
        self.source = source
        self.service = service
        self.payload = payload
        self.call_id = call_id

    def payload_array(self, dtype=np.uint8) -> np.ndarray:
        return self.payload.data.view(dtype)


class Reply:
    """A completed call's result."""

    __slots__ = ("payload", "source")

    def __init__(self, payload: Buffer, source: int) -> None:
        self.payload = payload
        self.source = source

    def array(self, dtype=np.uint8) -> np.ndarray:
        return self.payload.data.view(dtype)

    def __len__(self) -> int:
        return len(self.payload)


Handler = Callable[[Call], Union[None, bytes, bytearray, np.ndarray, Buffer]]


class RpcNode:
    """One rank's RPC endpoint: a dispatcher plus client-side calls."""

    _ids = itertools.count(1)

    def __init__(self, vchannel: VirtualChannel, rank: int) -> None:
        if rank not in vchannel.members:
            raise RpcError(f"rank {rank} is not a member of the channel")
        self.vchannel = vchannel
        self.rank = rank
        self.endpoint = vchannel.endpoint(rank)
        self.sim = vchannel.sim
        self._services: dict[str, Handler] = {}
        self._pending: dict[int, Any] = {}   # call_id -> completion event
        self._started = False
        self.calls_served = 0

    # -- service registry --------------------------------------------------------
    def register(self, name: str, handler: Handler) -> None:
        if not name or len(name.encode()) > 255:
            raise RpcError("service name must be 1..255 bytes")
        if name in self._services:
            raise RpcError(f"service {name!r} already registered")
        self._services[name] = handler

    def start(self) -> None:
        """Spawn the dispatcher (idempotent)."""
        if not self._started:
            self._started = True
            self.sim.process(self._dispatcher(), name=f"rpc:{self.rank}")

    # -- wire helpers ---------------------------------------------------------------
    @staticmethod
    def _as_payload(data) -> Buffer:
        if data is None:
            return Buffer.alloc(0)
        if isinstance(data, Buffer):
            return data
        if isinstance(data, (bytes, bytearray, memoryview)):
            return Buffer.wrap(data)
        return Buffer.wrap(np.ascontiguousarray(data).view(np.uint8)
                           .reshape(-1))

    def _send(self, dest: int, kind: int, call_id: int, service: bytes,
              payload: Buffer, status: int = _STATUS_OK):
        env = np.array([kind, call_id, len(service), len(payload), status],
                       dtype=_ENVELOPE_DTYPE).view(np.uint8)
        msg = self.endpoint.begin_packing(dest)
        msg.pack(env, SendMode.SAFER, RecvMode.EXPRESS)
        if service:
            msg.pack(np.frombuffer(service, dtype=np.uint8),
                     SendMode.SAFER, RecvMode.EXPRESS)
        if len(payload):
            msg.pack(payload, SendMode.CHEAPER, RecvMode.CHEAPER)
        return msg.end_packing()

    def _recv_one(self) -> Generator:
        incoming = yield self.endpoint.begin_unpacking()
        ev, env_buf = incoming.unpack(_ENVELOPE_BYTES, SendMode.SAFER,
                                      RecvMode.EXPRESS)
        yield ev
        kind, call_id, service_len, payload_len, status = (
            int(x) for x in env_buf.data.view(_ENVELOPE_DTYPE)[:5])
        service = ""
        if service_len:
            ev2, sbuf = incoming.unpack(service_len, SendMode.SAFER,
                                        RecvMode.EXPRESS)
            yield ev2
            service = sbuf.tobytes().decode()
        payload = Buffer.alloc(payload_len, label="rpc.payload")
        if payload_len:
            incoming.unpack(into=payload)
        yield incoming.end_unpacking()
        return (kind, call_id, service, payload, status, incoming.origin)

    # -- server side ------------------------------------------------------------------
    def _dispatcher(self):
        while True:
            kind, call_id, service, payload, status, origin = \
                yield from self._recv_one()
            if kind == _KIND_REPLY:
                waiter = self._pending.pop(call_id, None)
                if waiter is None:
                    continue   # the call timed out locally: drop the reply
                if status == _STATUS_OK:
                    waiter.succeed(Reply(payload, origin))
                else:
                    waiter.fail(RemoteError(
                        status, payload.tobytes().decode() or "remote error"))
                continue
            # request (two-way or one-way)
            handler = self._services.get(service)
            if handler is None:
                if kind == _KIND_REQUEST:
                    self._spawn_reply(origin, call_id,
                                      self._as_payload(
                                          f"no such service {service!r}"
                                          .encode()),
                                      _STATUS_NO_SERVICE)
                continue
            try:
                result = handler(Call(origin, service, payload, call_id))
                if hasattr(result, "send") and hasattr(result, "throw"):
                    # generator handler: may yield sim events
                    result = yield from result
                out, st = self._as_payload(result), _STATUS_OK
            except Exception as exc:   # noqa: BLE001 - forwarded to caller
                out, st = self._as_payload(repr(exc).encode()), \
                    _STATUS_HANDLER_RAISED
            self.calls_served += 1
            if kind == _KIND_REQUEST:
                # Replies leave in a detached process so the dispatcher can
                # keep receiving — otherwise two nodes replying to each
                # other would deadlock on the synchronous sends.
                self._spawn_reply(origin, call_id, out, st)

    def _spawn_reply(self, origin: int, call_id: int, payload: Buffer,
                     status: int) -> None:
        def proc():
            yield self._send(origin, _KIND_REPLY, call_id, b"", payload,
                             status=status)
        self.sim.process(proc(), name=f"rpc.reply:{self.rank}->{origin}")

    # -- client side -------------------------------------------------------------------
    def call(self, dest: int, service: str, payload=None,
             timeout: Optional[float] = None) -> Generator:
        """Invoke ``service`` on ``dest`` and wait for the reply."""
        if not self._started:
            raise RpcError("start() the node before calling out "
                           "(it must be able to receive the reply)")
        call_id = next(RpcNode._ids)
        waiter = self.sim.event(name=f"rpc.call{call_id}")
        self._pending[call_id] = waiter
        yield self._send(dest, _KIND_REQUEST, call_id, service.encode(),
                         self._as_payload(payload))
        if timeout is None:
            reply = yield waiter
            return reply
        idx, value = yield self.sim.any_of(
            [waiter, self.sim.timeout(timeout, value=None)])
        if idx == 1:
            self._pending.pop(call_id, None)
            raise RpcError(f"call {service!r} to {dest} timed out "
                           f"after {timeout} µs")
        return value

    def cast(self, dest: int, service: str, payload=None) -> Generator:
        """One-way invocation (no reply)."""
        if not self._started:
            raise RpcError("start() the node first")
        call_id = next(RpcNode._ids)
        yield self._send(dest, _KIND_ONEWAY, call_id, service.encode(),
                         self._as_payload(payload))
