"""World construction: nodes, adapters, and shared simulation services.

A :class:`World` bundles one simulator run's services (clock, fluid network,
trace, copy accounting) with the machines of the configuration.  Cluster-of-
clusters layouts are described by a simple ``{node_name: [protocols...]}``
mapping — a node with two different high-speed adapters is a candidate
gateway, exactly as in the paper's testbed (§3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence

from ..memory import CopyAccounting
from ..sim import FluidNetwork, Simulator, TraceRecorder
from ..telemetry import Telemetry
from .fabric import Fabric, NIC
from .node import Node
from .params import PROTOCOLS, NodeParams, ProtocolParams

__all__ = ["World", "build_world", "ClusterSpec", "build_cluster_of_clusters"]


class World:
    """All simulation state for one experiment run."""

    def __init__(self, node_params: Optional[NodeParams] = None,
                 scheduler: str = "heap",
                 bucket_width: Optional[float] = None) -> None:
        self.sim = Simulator(scheduler=scheduler, bucket_width=bucket_width)
        self.trace = TraceRecorder()
        self.accounting = CopyAccounting()
        # Off by default: a disabled registry records nothing and keeps
        # benchmark numbers bit-identical (Session(telemetry=True) enables it).
        self.telemetry = Telemetry(clock=lambda: self.sim.now,
                                   trace=self.trace, enabled=False)
        self.fnet = FluidNetwork(self.sim, metrics=self.telemetry.metrics)
        self.fabric = Fabric(self.sim, self.fnet, self.trace, self.accounting,
                             telemetry=self.telemetry)
        self.node_params = node_params or NodeParams()
        self.nodes: dict[int, Node] = {}
        self.names: dict[str, Node] = {}
        #: ids of every RealChannel built on this world (forwarding twins
        #: included); FaultPlan.arm validates link-event targets against it.
        self.channel_ids: set[str] = set()

    def add_node(self, name: str,
                 protocols: Iterable[ProtocolParams | str] = (),
                 params: Optional[NodeParams] = None) -> Node:
        if name in self.names:
            raise ValueError(f"duplicate node name {name!r}")
        rank = len(self.nodes)
        node = Node(self.sim, rank, name, params or self.node_params)
        self.nodes[rank] = node
        self.names[name] = node
        for proto in protocols:
            self.add_adapter(node, proto)
        return node

    def add_adapter(self, node: Node | str,
                    protocol: ProtocolParams | str) -> NIC:
        if isinstance(node, str):
            node = self.names[node]
        if isinstance(protocol, str):
            protocol = PROTOCOLS[protocol]
        index = sum(1 for (p, _i) in node.nics if p == protocol.name)
        return NIC(self.fabric, node, protocol, index)

    def node(self, key: int | str) -> Node:
        if isinstance(key, str):
            return self.names[key]
        return self.nodes[key]

    def run(self, until=None):
        return self.sim.run(until)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<World {len(self.nodes)} nodes @t={self.sim.now:.1f}µs>"


def build_world(adapters: Mapping[str, Sequence[str]],
                node_params: Optional[NodeParams] = None,
                scheduler: str = "heap",
                bucket_width: Optional[float] = None) -> World:
    """Build a world from ``{node_name: [protocol names]}`` (insertion order
    defines ranks).  ``scheduler``/``bucket_width`` select the event-queue
    implementation (see :class:`~repro.sim.Simulator`)."""
    world = World(node_params, scheduler=scheduler, bucket_width=bucket_width)
    for name, protos in adapters.items():
        world.add_node(name, protos)
    return world


@dataclass(frozen=True)
class ClusterSpec:
    """One homogeneous cluster: ``size`` nodes on ``protocol``."""

    name: str
    protocol: str
    size: int
    #: extra protocols every node of the cluster also has (e.g. the
    #: Fast-Ethernet control network of the testbed).
    extra_protocols: tuple[str, ...] = ()


@dataclass(frozen=True)
class GatewayLink:
    """A gateway machine that belongs to ``cluster_a`` and also holds an
    adapter of ``cluster_b``'s protocol (the paper's Myrinet+SCI node)."""

    cluster_a: str
    cluster_b: str


def build_cluster_of_clusters(
        clusters: Sequence[ClusterSpec],
        gateways: Sequence[GatewayLink],
        node_params: Optional[NodeParams] = None,
) -> tuple[World, dict[str, list[str]], list[str]]:
    """Build the classic cluster-of-clusters testbed.

    Returns ``(world, {cluster: [node names]}, [gateway names])``.  Gateway
    machines are drawn from the *last* node of ``cluster_a`` and get an extra
    adapter on ``cluster_b``'s protocol.
    """
    by_name = {c.name: c for c in clusters}
    for gw in gateways:
        for c in (gw.cluster_a, gw.cluster_b):
            if c not in by_name:
                raise ValueError(f"gateway references unknown cluster {c!r}")
    world = World(node_params)
    members: dict[str, list[str]] = {}
    for spec in clusters:
        members[spec.name] = []
        for i in range(spec.size):
            name = f"{spec.name}{i}"
            world.add_node(name, (spec.protocol, *spec.extra_protocols))
            members[spec.name].append(name)
    gateway_names: list[str] = []
    for gw in gateways:
        host = members[gw.cluster_a][-1]
        world.add_adapter(host, by_name[gw.cluster_b].protocol)
        gateway_names.append(host)
    return world, members, gateway_names
