"""Deterministic topology generation: hierarchies, fat-trees, tori.

The paper's testbed is one Myrinet cluster joined to one SCI cluster by a
single dual-adapter gateway.  This module generates the large shapes the
scale-out benches and the traffic engine drive instead:

* :func:`hierarchy` — a chain of homogeneous clusters with one or more
  gateway machines at every cluster boundary (the paper's shape generalized
  to N clusters and parallel gateways);
* :func:`fat_tree` — a two-level leaf/spine network; every spine is a
  parallel gateway between every pair of leaves, so multirail striping has
  spine-count disjoint rails to pick from;
* :func:`torus` — a 2D/3D torus direct network (à la APEnet+): every link is
  its own channel on its own NIC and every node forwards, so route diversity
  grows with the dimension.

Output is a :class:`GeneratedTopology` — pure data (node → adapter lists,
channel membership, per-node NIC assignment) that plugs into the same
``node_spec()`` / ``channel_specs()`` interface the scenario schema uses to
build worlds and sessions.  Generation is a pure function of its arguments:
the same call always yields the same names, ranks (insertion order), channel
ids, and NIC indices, which is what makes large-scenario runs replayable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Union

from .params import PROTOCOLS

__all__ = [
    "ChannelDef",
    "GeneratedTopology",
    "hierarchy",
    "fat_tree",
    "torus",
]

AdapterIndex = Union[int, Mapping[str, int]]


@dataclass(frozen=True)
class ChannelDef:
    """One real channel: ``members`` (node names) joined on ``protocol``.

    ``adapter_index`` maps member name → NIC index on that node, so a node
    incident to several channels of one protocol puts each channel on its own
    adapter (per-link bandwidth, as on a real direct network).
    """

    name: str
    protocol: str
    members: tuple[str, ...]
    adapter_index: Mapping[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class GeneratedTopology:
    """A generated network: nodes with adapter lists plus channel layout."""

    kind: str
    #: node name → tuple of protocol names, one entry per NIC, in NIC order.
    nodes: tuple[tuple[str, tuple[str, ...]], ...]
    channels: tuple[ChannelDef, ...]
    #: nodes intended as traffic sources/sinks.
    endpoints: tuple[str, ...]
    #: nodes that sit on ≥ 2 channels and therefore forward.
    gateways: tuple[str, ...]

    def node_spec(self) -> dict[str, list[str]]:
        """``{node_name: [protocols]}`` for :func:`repro.hw.build_world`."""
        return {name: list(protos) for name, protos in self.nodes}

    def channel_specs(self) -> list[tuple[str, str, list[str], AdapterIndex]]:
        """``(name, protocol, members, adapter_index)`` per channel, in the
        deterministic construction order — feed to ``Session.channel``."""
        return [(c.name, c.protocol, list(c.members), dict(c.adapter_index))
                for c in self.channels]

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    def describe(self) -> str:
        return (f"{self.kind}: {len(self.nodes)} nodes, "
                f"{len(self.channels)} channels, "
                f"{len(self.gateways)} gateways")


class _Builder:
    """Accumulates nodes/channels, handing out one NIC per channel seat."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._nics: dict[str, list[str]] = {}
        self._channels: list[ChannelDef] = []
        self._membership: dict[str, int] = {}

    def node(self, name: str) -> str:
        if name in self._nics:
            raise ValueError(f"duplicate node name {name!r}")
        self._nics[name] = []
        self._membership[name] = 0
        return name

    def channel(self, name: str, protocol: str,
                members: Sequence[str]) -> None:
        if protocol not in PROTOCOLS:
            raise ValueError(f"unknown protocol {protocol!r}")
        adapter_index: dict[str, int] = {}
        for member in members:
            nics = self._nics[member]
            adapter_index[member] = sum(
                1 for p in nics if p == protocol)
            nics.append(protocol)
            self._membership[member] += 1
        self._channels.append(ChannelDef(
            name=name, protocol=protocol, members=tuple(members),
            adapter_index=adapter_index))

    def build(self, endpoints: Sequence[str]) -> GeneratedTopology:
        gateways = tuple(n for n, count in self._membership.items()
                         if count >= 2)
        return GeneratedTopology(
            kind=self.kind,
            nodes=tuple((n, tuple(p)) for n, p in self._nics.items()),
            channels=tuple(self._channels),
            endpoints=tuple(endpoints),
            gateways=gateways,
        )


def hierarchy(clusters: int = 3, cluster_size: int = 4,
              gateways_per_boundary: int = 1,
              protocols: Optional[Sequence[str]] = None) -> GeneratedTopology:
    """A chain of ``clusters`` homogeneous clusters.

    Cluster *k* is one shared channel of ``cluster_size`` nodes on protocol
    ``protocols[k % len(protocols)]`` (default alternates myrinet/sci, the
    paper's pairing).  Each boundary between consecutive clusters gets
    ``gateways_per_boundary`` dedicated gateway machines, every one a member
    of both clusters' channels — parallel gateways are parallel rails for
    striping and failover.
    """
    if clusters < 1:
        raise ValueError("need at least one cluster")
    if cluster_size < 1:
        raise ValueError("cluster_size must be >= 1")
    if gateways_per_boundary < 1:
        raise ValueError("gateways_per_boundary must be >= 1")
    protos = list(protocols or ("myrinet", "sci"))
    b = _Builder("hierarchy")
    members: list[list[str]] = []
    endpoints: list[str] = []
    for c in range(clusters):
        names = [b.node(f"c{c}n{i}") for i in range(cluster_size)]
        members.append(names)
        endpoints.extend(names)
    # Gateways are created after all endpoints so endpoint ranks are stable
    # under gateways_per_boundary changes.
    for c in range(clusters - 1):
        for g in range(gateways_per_boundary):
            gw = b.node(f"gw{c}_{g}")
            members[c].append(gw)
            members[c + 1].append(gw)
    for c in range(clusters):
        b.channel(f"cluster{c}", protos[c % len(protos)], members[c])
    return b.build(endpoints)


def fat_tree(leaves: int = 4, spines: int = 2, hosts_per_leaf: int = 4,
             leaf_protocol: str = "myrinet",
             spine_protocol: str = "sci") -> GeneratedTopology:
    """A two-level leaf/spine fat-tree.

    Each leaf is one shared channel joining its hosts and its leaf switch;
    each (leaf, spine) pair gets a dedicated uplink channel.  Leaf switches
    and spines are forwarding nodes, so traffic between leaves crosses
    leaf → spine → leaf, and the ``spines`` parallel spine planes are
    channel-disjoint rails.
    """
    if leaves < 1 or spines < 1 or hosts_per_leaf < 1:
        raise ValueError("leaves, spines, and hosts_per_leaf must be >= 1")
    b = _Builder("fat_tree")
    endpoints: list[str] = []
    hosts: list[list[str]] = []
    for li in range(leaves):
        names = [b.node(f"l{li}h{h}") for h in range(hosts_per_leaf)]
        hosts.append(names)
        endpoints.extend(names)
    lsw = [b.node(f"lsw{li}") for li in range(leaves)]
    ssw = [b.node(f"ssw{s}") for s in range(spines)]
    for li in range(leaves):
        b.channel(f"leaf{li}", leaf_protocol, hosts[li] + [lsw[li]])
    for li in range(leaves):
        for s in range(spines):
            b.channel(f"up{li}_{s}", spine_protocol, [lsw[li], ssw[s]])
    return b.build(endpoints)


def torus(dims: Sequence[int], protocol: str = "myrinet") -> GeneratedTopology:
    """A 2D/3D torus direct network.

    Every link between neighbouring nodes is its own two-member channel on a
    dedicated NIC pair (per-link bandwidth, as in APEnet+-style 3D networks).
    Wraparound links are skipped along dimensions of size 2, where they would
    duplicate the direct link.  Every node is an endpoint; every node is also
    a gateway (direct networks forward through compute nodes).
    """
    dims = tuple(int(d) for d in dims)
    if len(dims) not in (2, 3):
        raise ValueError(f"torus dims must be 2D or 3D, got {dims!r}")
    if any(d < 2 for d in dims):
        raise ValueError(f"every torus dimension must be >= 2, got {dims!r}")
    b = _Builder("torus")
    coords = list(itertools.product(*(range(d) for d in dims)))
    name = {c: "t" + "_".join(str(x) for x in c) for c in coords}
    for c in coords:
        b.node(name[c])
    for axis, size in enumerate(dims):
        for c in coords:
            if c[axis] == size - 1 and size == 2:
                continue  # wraparound would duplicate the direct link
            nbr = list(c)
            nbr[axis] = (c[axis] + 1) % size
            b.channel(f"x{axis}_{name[c][1:]}", protocol,
                      [name[c], name[tuple(nbr)]])
    return b.build([name[c] for c in coords])
