"""Host node model: PCI bus, memcpy engine, attached NICs."""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from ..sim import FluidResource, Simulator
from .params import NodeParams

if TYPE_CHECKING:  # pragma: no cover
    from .fabric import NIC

__all__ = ["Node"]


class Node:
    """One machine of the configuration.

    Every NIC transfer to/from this node crosses :attr:`pci`, a shared fluid
    resource whose capacity reflects full-duplex arbitration losses and whose
    ``preempt_slowdown`` penalizes PIO while DMA is active (see
    :mod:`repro.hw.params`).
    """

    def __init__(self, sim: Simulator, rank: int, name: str,
                 params: Optional[NodeParams] = None) -> None:
        self.sim = sim
        self.rank = rank
        self.name = name
        self.params = params or NodeParams()
        self.pci = FluidResource(
            f"pci:{name}",
            capacity=self.params.pci.capacity,
            preempt_slowdown=self.params.pci.pio_preempt_slowdown,
        )
        #: adapters attached to this node, keyed by (protocol, index).
        self.nics: dict[tuple[str, int], "NIC"] = {}

    def nic(self, protocol: str, index: int = 0) -> "NIC":
        try:
            return self.nics[(protocol, index)]
        except KeyError:
            raise KeyError(
                f"node {self.name!r} has no {protocol!r} adapter #{index}"
            ) from None

    def has_protocol(self, protocol: str) -> bool:
        return any(p == protocol for (p, _i) in self.nics)

    def memcpy(self, nbytes: int) -> Generator:
        """Simulation process step: the time cost of a host memcpy."""
        yield self.sim.timeout(nbytes / self.params.memcpy_bandwidth,
                               name=f"memcpy:{self.name}")

    def memcpy_time(self, nbytes: int) -> float:
        return nbytes / self.params.memcpy_bandwidth

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Node {self.rank}:{self.name} nics={sorted(self.nics)}>"
