"""Hardware models: PCI buses, NICs, links, nodes, cluster topologies.

The paper's testbed is unavailable (2001-era Myrinet/SCI hardware), so this
package models it: per-node PCI buses with DMA-over-PIO arbitration, per-NIC
link resources, tag-matched rendezvous transfers, and calibrated protocol
presets (:data:`MYRINET`, :data:`SCI`, :data:`FAST_ETHERNET`, :data:`SBP`,
:data:`GIGABIT_TCP`).
"""

from .fabric import FRAGMENT_HEADER_BYTES, Fabric, NIC, TransferError
from .node import Node
from .params import (DEFAULT_GATEWAY, DEFAULT_NODE, DEFAULT_PCI,
                     FAST_ETHERNET, GIGABIT_TCP, MYRINET, PROTOCOLS, SBP, SCI,
                     GatewayParams, NodeParams, PCIParams, PipelineConfig,
                     ProtocolParams,
                     register_protocol, scaled)
from .topogen import (ChannelDef, GeneratedTopology, fat_tree, hierarchy,
                      torus)
from .topology import (ClusterSpec, GatewayLink, World,
                       build_cluster_of_clusters, build_world)

__all__ = [
    "FRAGMENT_HEADER_BYTES", "Fabric", "NIC", "TransferError",
    "Node",
    "DEFAULT_GATEWAY", "DEFAULT_NODE", "DEFAULT_PCI",
    "FAST_ETHERNET", "GIGABIT_TCP", "MYRINET", "PROTOCOLS", "SBP", "SCI",
    "GatewayParams", "NodeParams", "PCIParams", "PipelineConfig",
    "ProtocolParams",
    "register_protocol", "scaled",
    "ClusterSpec", "GatewayLink", "World",
    "build_cluster_of_clusters", "build_world",
    "ChannelDef", "GeneratedTopology", "fat_tree", "hierarchy", "torus",
]
