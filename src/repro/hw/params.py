"""Calibrated hardware/protocol parameters.

The paper's testbed: dual Pentium II 450 MHz nodes, 33 MHz / 32-bit PCI,
Myrinet (LANai 4.3) driven by BIP, Dolphin SCI (D310) driven by SISCI, plus
Fast-Ethernet for the ping-test ack channel.  The OCR of the paper garbles
most digits, so the constants below are reconstructed from the surviving
constraints (documented per-figure in EXPERIMENTS.md):

* 33 MHz × 4 B = 132 MB/s raw PCI; ≈ 66 MB/s practical one-way ceiling
  (burst/turnaround overheads → modelled as per-NIC ``host_peak``);
* full-duplex PCI traffic shows extra arbitration conflicts (§3.3.1) —
  modelled as ``duplex_efficiency`` < 1 on the bus capacity;
* CPU-initiated PIO writes (the SISCI send path, write-combining) run ≈ 2×
  slower while a NIC DMA transfer is on the bus (§3.4.1, Figure 8) —
  ``pio_preempt_slowdown``;
* per-buffer-switch software overhead on the gateway ≈ 40 µs (§3.3.1);
* SCI beats Myrinet for small messages, Myrinet wins for large ones, with
  the crossover in the few-KB range (§3.2.2).

All bandwidths are bytes/µs (== MB/s), all times µs, all sizes bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..sim.fluid import DMA, PIO

__all__ = [
    "PCIParams", "ProtocolParams", "NodeParams", "GatewayParams",
    "PipelineConfig",
    "MYRINET", "SCI", "FAST_ETHERNET", "GIGABIT_TCP", "SBP",
    "PROTOCOLS", "DEFAULT_PCI", "DEFAULT_NODE", "DEFAULT_GATEWAY",
]


@dataclass(frozen=True)
class PCIParams:
    """The host I/O bus (one per node; every NIC transfer crosses it)."""

    clock_mhz: float = 33.0
    width_bytes: int = 4
    #: fraction of raw bandwidth usable when several transfers share the bus
    #: (arbitration / turnaround conflicts, §3.3.1).
    duplex_efficiency: float = 0.92
    #: slowdown of PIO transactions while any DMA transaction is active
    #: (measured ≈ 2 in §3.4.1).
    pio_preempt_slowdown: float = 2.0

    @property
    def raw_bandwidth(self) -> float:
        return self.clock_mhz * self.width_bytes  # bytes/µs

    @property
    def capacity(self) -> float:
        return self.raw_bandwidth * self.duplex_efficiency


@dataclass(frozen=True)
class ProtocolParams:
    """One network protocol/technology (maps to a Madeleine PMM)."""

    name: str
    #: link/switch capacity per direction, bytes/µs.
    link_bandwidth: float
    #: peak rate of a single transfer through the host bus (NIC engine +
    #: practical one-way PCI limit), bytes/µs.
    host_peak: float
    #: constant per-fragment latency (wire, NIC firmware, driver), µs.
    latency: float
    #: host-bus transaction kind of the send path ("dma" or "pio").
    tx_kind: str = DMA
    #: host-bus transaction kind of the receive path.
    rx_kind: str = DMA
    #: send path requires protocol-provided (static) buffers.
    tx_static: bool = False
    #: receive path lands in protocol-provided (static) buffers.
    rx_static: bool = False
    #: per-fragment CPU overhead at the sender / receiver, µs.
    tx_overhead: float = 2.0
    rx_overhead: float = 2.0
    #: largest single fragment the protocol accepts.
    max_mtu: int = 1 << 20
    #: static-pool geometry (per TM and direction) when *_static is set.
    pool_blocks: int = 8
    #: aggregation-chunk size used by the static (copying) BMM.
    chunk_size: int = 8 << 10
    #: NIC supports scatter/gather lists: the dynamic BMM can group
    #: consecutive small buffers into one wire fragment without copying
    #: (§2.1.1 — "exploit optional scatter/gather protocol capabilities").
    gather: bool = False

    def static_for(self, direction: str) -> bool:
        if direction == "tx":
            return self.tx_static
        if direction == "rx":
            return self.rx_static
        raise ValueError(f"direction must be 'tx' or 'rx', got {direction!r}")


#: BIP over Myrinet (LANai 4.3): DMA both ways, dynamic buffers.  The
#: per-fragment latency is the Madeleine/BIP software + rendezvous cost the
#: paper's §3.3.1 numbers imply: together with the pre-body announce (one
#: more control fragment per message) the fixed per-message cost is
#: ≈ 150 µs, so an 8 KB message moves at ≈ 30 MB/s, a 16 KB one at
#: ≈ 41 MB/s, and large ones approach the ≈ 66 MB/s practical PCI limit.
MYRINET = ProtocolParams(
    name="myrinet", link_bandwidth=160.0, host_peak=66.0, latency=68.0,
    tx_kind=DMA, rx_kind=DMA, tx_static=False, rx_static=False,
    tx_overhead=6.0, rx_overhead=4.0, max_mtu=1 << 20, gather=True,
)

#: SISCI over Dolphin SCI (D310): sends are CPU PIO through write-combining
#: (hence vulnerable to DMA preemption), receives are remote writes into
#: mapped segments (bus-master from the host's perspective).  Static buffer
#: discipline both ways (mapped segments).  Lower fixed cost than Myrinet
#: (≈ 100 µs per message including the announce: an 8 KB message moves at
#: ≈ 35 MB/s), slightly lower peak — which makes SCI the better network for
#: small messages and Myrinet for large ones, crossing in the tens of KB as
#: §3.2.2 observes.
SCI = ProtocolParams(
    name="sci", link_bandwidth=150.0, host_peak=62.0, latency=45.0,
    tx_kind=PIO, rx_kind=DMA, tx_static=True, rx_static=True,
    tx_overhead=5.0, rx_overhead=5.0, max_mtu=128 << 10, chunk_size=32 << 10,
)

#: TCP over Fast-Ethernet: the control/ack network of the testbed.
FAST_ETHERNET = ProtocolParams(
    name="fast_ethernet", link_bandwidth=12.5, host_peak=11.0, latency=60.0,
    tx_kind=DMA, rx_kind=DMA, tx_static=False, rx_static=False,
    tx_overhead=25.0, rx_overhead=25.0, max_mtu=64 << 10,
)

#: TCP over Gigabit-class hardware (PACX-style inter-cluster glue baseline);
#: on a PII-450 the TCP stack, not the wire, is the bottleneck.
GIGABIT_TCP = ProtocolParams(
    name="gigabit_tcp", link_bandwidth=125.0, host_peak=38.0, latency=45.0,
    tx_kind=DMA, rx_kind=DMA, tx_static=False, rx_static=False,
    tx_overhead=20.0, rx_overhead=20.0, max_mtu=64 << 10,
)

#: SBP (kernel-level reliable protocol, [10] in the paper): requires data in
#: special kernel buffers on both sides — the static×static worst case.
SBP = ProtocolParams(
    name="sbp", link_bandwidth=40.0, host_peak=33.0, latency=30.0,
    tx_kind=DMA, rx_kind=DMA, tx_static=True, rx_static=True,
    tx_overhead=8.0, rx_overhead=8.0, max_mtu=32 << 10,
)

PROTOCOLS: dict[str, ProtocolParams] = {
    p.name: p for p in (MYRINET, SCI, FAST_ETHERNET, GIGABIT_TCP, SBP)
}


@dataclass(frozen=True)
class NodeParams:
    """Host parameters (dual PII-450 with PC100 SDRAM)."""

    pci: PCIParams = field(default_factory=PCIParams)
    #: host memcpy bandwidth, bytes/µs.  The paper notes a gateway copy "can
    #: take as much time as the reception of a message" — on this hardware
    #: memcpy is only ≈ 1.5× the NIC speed.
    memcpy_bandwidth: float = 100.0
    #: number of CPUs (the gateway threading note in §2.2.2); with >= 2 the
    #: polling/forwarding threads do not steal cycles from each other.
    cpus: int = 2


@dataclass(frozen=True)
class PipelineConfig:
    """Generalized gateway forwarding pipeline.

    The paper hardwires two staging buffers per direction; this config
    generalizes it to an N-deep staging-buffer ring with credit-based flow
    control: the receive thread advances only while it holds a credit, the
    send thread returns the credit when the retransmit completes.  The
    default (``depth=2``, ``lockstep`` auto) reduces exactly to the paper's
    lockstep double-buffer schedule.
    """

    #: staging buffers per direction (the paper uses 2).
    depth: int = 2
    #: outstanding-item credits; ``None`` means one credit per buffer.
    #: ``credits=1`` degenerates to store-and-forward per fragment.
    credits: int | None = None
    #: ``None`` (auto): depth-2 pipelines run the paper's lockstep
    #: buffer-exchange schedule, deeper ones the credit pipeline.  ``False``
    #: forces a depth-2 pipeline through the credit path (an ablation);
    #: ``True`` is only meaningful at depth 2.
    lockstep: bool | None = None
    #: pick the per-route fragment size from the analytic pipeline model
    #: (:func:`repro.routing.tune_fragment_size`) instead of the static
    #: ``min(packet_size, per-hop MTU)`` negotiation.  The wire-format MTU
    #: stays the upper bound, so headers and gateways need no format change.
    adaptive_mtu: bool = False
    #: knee tolerance of the tuner: the smallest fragment size whose
    #: predicted bandwidth is within ``tuner_slack`` of the best is chosen.
    tuner_slack: float = 0.02

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError(f"pipeline depth must be >= 1, got {self.depth}")
        if self.credits is not None and not 1 <= self.credits <= self.depth:
            raise ValueError(
                f"credits must be in [1, depth={self.depth}], "
                f"got {self.credits}")
        if self.lockstep and self.depth != 2:
            raise ValueError("lockstep is inherently a two-buffer scheme")
        if not 0.0 <= self.tuner_slack < 1.0:
            raise ValueError(f"tuner_slack must be in [0, 1), "
                             f"got {self.tuner_slack}")

    @property
    def effective_credits(self) -> int:
        return self.depth if self.credits is None else self.credits

    @property
    def is_lockstep(self) -> bool:
        return self.depth == 2 if self.lockstep is None else self.lockstep


@dataclass(frozen=True)
class GatewayParams:
    """Forwarding-pipeline parameters (§2.2.2, §3.3.1)."""

    #: software overhead per buffer switch in the double-buffer pipeline.
    switch_overhead: float = 40.0
    #: number of pipeline buffers per direction (the paper uses 2).
    #: Superseded by ``pipeline``; kept for existing call sites.
    pipeline_depth: int = 2
    #: True (the paper's design): the two forwarding threads exchange their
    #: buffers at a synchronization point each step, so the pipeline period
    #: is max(recv, send) + switch_overhead exactly (Figure 5).  False: a
    #: decoupled bounded-queue pipeline of ``pipeline_depth`` buffers that
    #: can hide the switch overhead behind the longer step (an ablation —
    #: not what the paper built).  Superseded by ``pipeline``.
    lockstep: bool = True
    #: generalized pipeline config; when set it overrides ``pipeline_depth``
    #: and ``lockstep`` above.
    pipeline: PipelineConfig | None = None
    #: the §4 future-work "bandwidth control mechanism ... to regulate the
    #: incoming communication flow on gateways": cap the rate (bytes/µs) at
    #: which a forwarding worker accepts fragments.  ``None`` = unregulated.
    ingress_limit: float | None = None
    #: µs a forwarding step (receive, retransmit, announce relay) may stall
    #: before the worker abandons the in-flight message and recovers.
    #: ``None`` (default) = wait forever, the pre-fault-tolerance behaviour;
    #: set it whenever a fault plan is armed so dropped fragments can never
    #: wedge a gateway.
    stall_timeout: float | None = None

    @property
    def resolved_pipeline(self) -> PipelineConfig:
        """The effective pipeline config, mapping the legacy
        ``pipeline_depth``/``lockstep`` pair when ``pipeline`` is unset.
        A legacy non-depth-2 "lockstep" request silently ran the decoupled
        queue; the mapping preserves that."""
        if self.pipeline is not None:
            return self.pipeline
        return PipelineConfig(
            depth=self.pipeline_depth,
            lockstep=self.lockstep and self.pipeline_depth == 2)


DEFAULT_PCI = PCIParams()
DEFAULT_NODE = NodeParams()
DEFAULT_GATEWAY = GatewayParams()


def scaled(params: ProtocolParams, **overrides) -> ProtocolParams:
    """Convenience for ablations: a copy of ``params`` with fields replaced."""
    return replace(params, **overrides)


def register_protocol(params: ProtocolParams, overwrite: bool = False) -> ProtocolParams:
    """Register a (possibly ablated) protocol so channels can be created on
    it by name — e.g. the paper's §4 future-work variant where SCI sends use
    the card's DMA engine instead of PIO::

        register_protocol(scaled(SCI, name="sci_dma", tx_kind=DMA))
    """
    if params.name in PROTOCOLS and not overwrite:
        raise ValueError(f"protocol {params.name!r} already registered")
    PROTOCOLS[params.name] = params
    return params
