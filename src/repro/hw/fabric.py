"""NICs and the interconnect fabric.

The fabric implements **tag-matched rendezvous transfers**: a receiver posts
a buffer under a tag, a sender enqueues a fragment for that tag, and when the
two meet the payload streams as a single fluid flow through

    sender PCI  →  sender NIC link  →  receiver NIC link  →  receiver PCI

with the per-hop transaction kinds (DMA/PIO) given by the protocol.  The
rendezvous gives the same backpressure a real NIC's posted-receive discipline
gives — this is what makes the gateway double-buffer pipeline's timing
honest: the upstream sender cannot run ahead of the gateway's receive thread.

Each NIC serializes its transmissions (one outstanding fragment per NIC),
like the single DMA/PIO engine of the real hardware.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Union

from ..memory import Buffer, CopyAccounting, StaticBufferPool
from ..sim import Event, FluidNetwork, FluidResource, Queue, Simulator, TraceRecorder
from ..telemetry import NULL_TELEMETRY, Telemetry
from .node import Node
from .params import ProtocolParams

__all__ = ["NIC", "Fabric", "FRAGMENT_HEADER_BYTES", "TransferError",
           "BufferSpec"]

#: wire overhead per fragment (routing/self-description mini-header, §2.3).
FRAGMENT_HEADER_BYTES = 16


class TransferError(RuntimeError):
    """Posted receive too small for the arriving fragment, or bad addressing."""


#: payload/landing specs: nothing, one buffer, or a gather/scatter list of
#: buffer views (the "single virtual piece of message" of §2.1.1).
BufferSpec = Union[None, Buffer, Sequence[Buffer]]


def _as_views(spec: BufferSpec) -> list[Buffer]:
    if spec is None:
        return []
    if isinstance(spec, Buffer):
        return [spec]
    return list(spec)


def _total_bytes(views: list[Buffer]) -> int:
    return sum(len(v) for v in views)


def _flip_byte(views: list[Buffer], off: int) -> None:
    """Corrupt one payload byte at logical offset ``off`` (fault injection)."""
    for v in views:
        if off < len(v):
            v.data[off] ^= 0xFF
            return
        off -= len(v)


def _wire_deliver(srcs: list[Buffer], dsts: list[Buffer], nbytes: int) -> None:
    """Move the payload across (gather from srcs, scatter into dsts).

    This is the transfer itself — the NIC's (scatter/gather) DMA or the
    CPU's PIO writes — so it is *not* a host memcpy and is not accounted.
    """
    si = di = 0
    soff = doff = 0
    remaining = nbytes
    while remaining > 0:
        s, d = srcs[si], dsts[di]
        take = min(len(s) - soff, len(d) - doff, remaining)
        d.data[doff:doff + take] = s.data[soff:soff + take]
        soff += take
        doff += take
        remaining -= take
        if soff >= len(s):
            si += 1
            soff = 0
        if doff >= len(d):
            di += 1
            doff = 0


@dataclass
class _SendRequest:
    dst: "NIC"
    tag: Any
    payload: list[Buffer]
    nbytes: int
    meta: dict[str, Any]
    done: Event


@dataclass
class _RecvSlot:
    buffer: list[Buffer]
    capacity: int
    done: Event
    #: fabric-internal void slot (abandoned send): complete instantly,
    #: deliver nowhere.
    blackhole: bool = False


@dataclass
class _MatchPoint:
    """Pending senders / posted receive slots for one (nic, tag)."""

    slots: list[_RecvSlot] = field(default_factory=list)
    senders: list[Event] = field(default_factory=list)  # waiting tx wakeups


class NIC:
    """One network adapter: a pair of link resources, optional static pools,
    and a serializing transmit engine."""

    _ids = itertools.count()

    def __init__(self, fabric: "Fabric", node: Node,
                 protocol: ProtocolParams, index: int = 0) -> None:
        self.id = next(NIC._ids)
        self.fabric = fabric
        self.node = node
        self.protocol = protocol
        self.index = index
        sim = fabric.sim
        label = f"{node.name}.{protocol.name}{index}"
        self.name = label
        self.tx_link = FluidResource(f"link:{label}.tx", protocol.link_bandwidth)
        self.rx_link = FluidResource(f"link:{label}.rx", protocol.link_bandwidth)
        telemetry = fabric.telemetry
        self.tx_pool = (StaticBufferPool(sim, protocol.pool_blocks,
                                         protocol.max_mtu, f"{label}.txpool",
                                         telemetry=telemetry)
                        if protocol.tx_static else None)
        self.rx_pool = (StaticBufferPool(sim, protocol.pool_blocks,
                                         protocol.max_mtu, f"{label}.rxpool",
                                         telemetry=telemetry)
                        if protocol.rx_static else None)
        self._m_fragments = telemetry.metrics.counter(
            "wire.fragments", proto=protocol.name, nic=label)
        self._m_bytes = telemetry.metrics.counter(
            "wire.bytes", proto=protocol.name, nic=label)
        # Conservation-law counters (docs/robustness.md): every fragment
        # offered to a NIC must end up delivered, dropped by a fault
        # verdict, blackholed (abandoned message), or failed (capacity
        # error) — anything left over is still waiting for a receive.
        self._m_offered = telemetry.metrics.counter(
            "wire.fragments_offered", proto=protocol.name, nic=label)
        self._m_blackholed = telemetry.metrics.counter(
            "wire.fragments_blackholed", proto=protocol.name, nic=label)
        self._m_failed = telemetry.metrics.counter(
            "wire.fragments_failed", proto=protocol.name, nic=label)
        self._txq: Queue = Queue(sim, name=f"{label}.txq")
        sim.process(self._tx_engine(), name=f"nic:{label}")
        node.nics[(protocol.name, index)] = self

    # -- send side ------------------------------------------------------------
    def send(self, dst: "NIC", tag: Any, payload: BufferSpec,
             meta: Optional[dict[str, Any]] = None,
             nbytes: Optional[int] = None) -> Event:
        """Enqueue one fragment; the returned event triggers when the last
        byte has left (and landed — rendezvous makes these simultaneous).

        ``payload`` may be a list of buffer views: the NIC gathers them into
        one wire fragment (scatter/gather capability, §2.1.1).
        """
        if dst.protocol.name != self.protocol.name:
            raise TransferError(
                f"cannot send from {self.name} to {dst.name}: different networks")
        if dst is self:
            raise TransferError(f"{self.name}: loopback sends are not modelled")
        views = _as_views(payload)
        size = _total_bytes(views) if (nbytes is None and views) else int(nbytes or 0)
        req = _SendRequest(dst=dst, tag=tag, payload=views, nbytes=size,
                           meta=dict(meta or {}), done=self.fabric.sim.event())
        self._m_offered.inc()
        # Initiate the rendezvous immediately; the engine transmits requests
        # in match-completion order.  Per-tag matching is FIFO, so in-order
        # delivery per connection is preserved, while an unmatched fragment
        # to one destination does not head-of-line-block traffic to other
        # destinations (real NICs keep per-connection descriptor queues).
        # put_nowait: the tx queue is unbounded and nothing waits on the
        # put, so the completion event would dispatch as a pure no-op.
        match_ev = self.fabric._match_sender(dst, tag)
        match_ev.add_callback(
            lambda ev, r=req: self._txq.put_nowait((r, ev.value)))
        return req.done

    def _tx_engine(self):
        sim = self.fabric.sim
        proto = self.protocol
        while True:
            req, slot = yield self._txq.get()
            if slot.blackhole:
                # The send was given up on (message abort / peer crash): the
                # driver reaps the queued descriptor locally instead of
                # pushing it through the wire, so an aborted message's
                # backlog cannot starve the retry that follows it.
                self._m_blackholed.inc()
                req.done.succeed(req.nbytes)
                continue
            if slot.capacity < req.nbytes:
                # Capacity and size are both fixed at creation, so the
                # check needs nothing from the overhead window — but the
                # error still surfaces after it, as on the unbatched path.
                yield sim.timeout(proto.tx_overhead, name=f"{self.name}.txov")
                exc = TransferError(
                    f"{self.name} -> {req.dst.name} tag={req.tag!r}: fragment of "
                    f"{req.nbytes}B exceeds posted receive of {slot.capacity}B")
                if not slot.done.triggered:
                    slot.done.fail(exc)
                self._m_failed.inc()
                req.done.fail(exc)
                continue
            injector = self.fabric.injector
            if injector is None:
                # Hot path: nothing observes the instant between the send
                # overhead and the wire latency, so both waits batch into a
                # single (pooled) heap event with identical end time.
                yield sim.timeout(proto.tx_overhead + proto.latency,
                                  name=f"{self.name}.txov+wire", pooled=True)
            else:
                yield sim.timeout(proto.tx_overhead, name=f"{self.name}.txov")
            # Fault injection (armed plans only; the happy path sees None).
            verdict = (injector.fragment_verdict(self, req)
                       if injector is not None else None)
            if verdict is not None and verdict.delay_us > 0:
                yield sim.timeout(verdict.delay_us,
                                  name=f"{self.name}.fault_delay")
            if verdict is not None and verdict.drop:
                # The payload dies on the wire, but the rendezvous already
                # consumed the posted slot — so complete it *without writing
                # the buffer*.  The receiver observes a full-size fragment of
                # stale bytes: exactly the whole-fragment loss an integrity
                # layer must catch (announce/descriptor decoding, the
                # reliable layer's per-fragment CRC).  Completing the slot —
                # rather than letting it dangle — is what keeps staging
                # buffers and static-pool blocks reclaimable under sustained
                # loss.  Sender-side completion fires normally (as on a real
                # NIC, loss is silent for the transmitter).
                yield sim.timeout(proto.latency, name=f"{self.name}.wire")
                self.fabric.trace.emit(
                    sim.now, "fault", "fragment_dropped",
                    src=self.name, dst=req.dst.name, proto=proto.name,
                    nbytes=req.nbytes, tag=str(req.tag),
                    kind=req.meta.get("type"))
                req.done.succeed(req.nbytes)
                self.fabric._complete_recv(req.dst, slot, req)
                continue
            if injector is not None:
                # Hot path already served the latency in the batched wait.
                yield sim.timeout(proto.latency, name=f"{self.name}.wire")
            wire_bytes = req.nbytes + FRAGMENT_HEADER_BYTES
            path = [
                (self.node.pci, proto.tx_kind),
                (self.tx_link, "dma"),
                (req.dst.rx_link, "dma"),
                (req.dst.node.pci, proto.rx_kind),
            ]
            t0 = sim.now
            flow_done = self.fabric.fnet.transfer(
                f"{self.name}->{req.dst.name}", wire_bytes, path,
                peak=min(proto.host_peak, req.dst.protocol.host_peak))
            yield flow_done
            # The wire writes the payload into the posted buffer(s).  This
            # is the transfer itself, not a host memcpy: not accounted.
            if req.payload and slot.buffer and req.nbytes:
                _wire_deliver(req.payload, slot.buffer, req.nbytes)
                if verdict is not None and verdict.corrupt:
                    _flip_byte(slot.buffer,
                               verdict.corrupt_offset % req.nbytes)
                    self.fabric.trace.emit(
                        sim.now, "fault", "fragment_corrupted",
                        src=self.name, dst=req.dst.name,
                        nbytes=req.nbytes, tag=str(req.tag))
            self.fabric.trace.emit(
                sim.now, "xfer", "fragment",
                src=self.name, dst=req.dst.name, proto=proto.name,
                nbytes=req.nbytes, start=t0, tag=str(req.tag),
                kind=req.meta.get("type"))
            self._m_fragments.inc()
            self._m_bytes.inc(req.nbytes)
            req.done.succeed(req.nbytes)
            self.fabric._complete_recv(req.dst, slot, req)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<NIC {self.name}>"


class Fabric:
    """Holds the matching tables and shared simulation services."""

    def __init__(self, sim: Simulator, fnet: FluidNetwork,
                 trace: Optional[TraceRecorder] = None,
                 accounting: Optional[CopyAccounting] = None,
                 telemetry: Optional[Telemetry] = None) -> None:
        self.sim = sim
        self.fnet = fnet
        # `is not None` matters: an empty TraceRecorder is falsy (__len__).
        self.trace = trace if trace is not None else TraceRecorder()
        self.accounting = accounting if accounting is not None else CopyAccounting()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._match: dict[tuple[int, Any], _MatchPoint] = {}
        #: optional duck-typed fault hook with a ``fragment_verdict(nic, req)``
        #: method (see :mod:`repro.faults`).  ``None`` keeps the happy path
        #: untouched.
        self.injector = None

    # -- receive side ---------------------------------------------------------
    def post_recv(self, nic: NIC, tag: Any, buffer: BufferSpec = None,
                  capacity: Optional[int] = None) -> Event:
        """Post a receive under ``tag`` at ``nic``.

        ``buffer`` is where payload lands: ``None`` for metadata-only
        fragments, one buffer, or a scatter list of buffer views;
        ``capacity`` defaults to the total buffer length.  The event
        triggers with ``(meta, nbytes)`` after the fragment has fully arrived
        (including the protocol's receive overhead).
        """
        views = _as_views(buffer)
        cap = capacity if capacity is not None else _total_bytes(views)
        slot = _RecvSlot(buffer=views, capacity=cap, done=self.sim.event())
        point = self._match.setdefault((nic.id, tag), _MatchPoint())
        # Handoff is synchronous so the slots/senders lists never hold both
        # kinds at once (no lost-wakeup or double-grab races).
        if point.senders:
            point.senders.pop(0).succeed(slot)
        else:
            point.slots.append(slot)
        return slot.done

    def cancel_recv(self, nic: NIC, tag: Any, done_ev: Event) -> bool:
        """Withdraw a posted receive that no sender has matched yet.

        Returns ``True`` if the slot was still queued — the caller may
        recycle its buffer immediately.  ``False`` means a sender already
        claimed it: the transfer (or its completion) is in flight and will
        trigger ``done_ev``, so the caller must wait for that before
        reusing the memory.
        """
        point = self._match.get((nic.id, tag))
        if point is None:
            return False
        for i, slot in enumerate(point.slots):
            if slot.done is done_ev:
                del point.slots[i]
                return True
        return False

    # -- matching internals ---------------------------------------------------
    def _match_sender(self, dst: NIC, tag: Any) -> Event:
        """Event triggering with the matched :class:`_RecvSlot`."""
        ev = self.sim.event()
        point = self._match.setdefault((dst.id, tag), _MatchPoint())
        if point.slots:
            ev.succeed(point.slots.pop(0))
        else:
            point.senders.append(ev)
        return ev

    def _complete_recv(self, dst: NIC, slot: _RecvSlot, req: _SendRequest) -> None:
        """Deliver the fragment to the receiver after its rx overhead."""
        if self.injector is None:
            # Hot path: nothing can force-fail the slot without an armed
            # fault plan, so deliver directly at now + rx_overhead (one heap
            # event) instead of timeout-then-succeed (two).
            slot.done.succeed_later(dst.protocol.rx_overhead,
                                    (req.meta, req.nbytes))
            return
        delay = self.sim.timeout(dst.protocol.rx_overhead,
                                 name=f"{dst.name}.rxov")

        def finish(_ev: Event) -> None:
            # The slot may have been force-failed (node crash) while the
            # fragment was in flight.
            if not slot.done.triggered:
                slot.done.succeed((req.meta, req.nbytes))

        delay.add_callback(finish)

    def pending_sends(self, nic: NIC, tag: Any) -> int:
        point = self._match.get((nic.id, tag))
        return len(point.senders) if point else 0

    def pending_send_count(self) -> int:
        """Fragments offered but never matched by a posted receive.

        The residual term of the fragment conservation law: after the heap
        drains, ``offered == delivered + dropped + blackholed + failed +
        pending_send_count()`` holds exactly (see
        :mod:`repro.telemetry.conservation`).
        """
        return sum(len(point.senders) for point in self._match.values())

    def pending_recv_count(self) -> int:
        """Posted receives no sender has matched (receiver-side residual)."""
        return sum(len(point.slots) for point in self._match.values())

    # -- fault recovery ---------------------------------------------------------
    def _blackhole_slot(self) -> _RecvSlot:
        """A receive slot that absorbs one fragment into the void."""
        return _RecvSlot(buffer=[], capacity=float("inf"),
                         done=self.sim.event(), blackhole=True)

    def blackhole_pending_sends(self, channel_id: Any,
                                msg_id: Optional[int] = None) -> int:
        """Complete unmatched sends on ``channel_id`` into the void.

        Used when a message is aborted (``msg_id`` given: only that
        message's body fragments) or a link/peer is given up on (``None``:
        every pending send on the channel, announces included).  The
        senders' completion events fire normally, so emission pipelines
        drain and release their locks; no data lands anywhere.  Returns the
        number of sends released.
        """
        n = 0
        for (_nic_id, tag), point in self._match.items():
            if not (isinstance(tag, tuple) and len(tag) >= 2
                    and tag[1] == channel_id):
                continue
            if msg_id is not None and not (tag[0] == "body"
                                           and tag[-1] == msg_id):
                continue
            while point.senders:
                point.senders.pop(0).succeed(self._blackhole_slot())
                n += 1
        return n

    def crash_node(self, node: Node, exc: BaseException) -> int:
        """Tear down all rendezvous state of a crashed node.

        Every receive its NICs have posted fails with ``exc`` (the node's
        blocked processes observe the crash); every sender waiting to
        transmit *to* it completes into the void.  Returns the number of
        failed receive slots.
        """
        nic_ids = {nic.id for nic in node.nics.values()}
        n = 0
        for (nic_id, _tag), point in self._match.items():
            if nic_id not in nic_ids:
                continue
            for slot in point.slots:
                if not slot.done.triggered:
                    slot.done.fail(exc)
                    n += 1
            point.slots.clear()
            while point.senders:
                point.senders.pop(0).succeed(self._blackhole_slot())
        return n
