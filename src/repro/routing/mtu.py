"""Path-wide MTU negotiation (§2.3).

The Generic Transmission Module fragments messages so that every network on
the route can transmit a fragment without further fragmentation; the MTU is
chosen statically per (virtual channel, route) from the per-protocol limits
and the configured packet size.
"""

from __future__ import annotations

from typing import Iterable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .routes import Hop

__all__ = ["negotiate_mtu", "MTU_GRANULARITY", "MIN_MTU"]

#: the wire format expresses MTUs in whole KB.
MTU_GRANULARITY = 1024
MIN_MTU = 1024


def negotiate_mtu(hops: Iterable["Hop"], packet_size: int) -> int:
    """Largest MTU <= packet_size accepted by every hop, KB-aligned."""
    if packet_size < MIN_MTU:
        raise ValueError(f"packet size must be >= {MIN_MTU}, got {packet_size}")
    limit = packet_size
    for hop in hops:
        limit = min(limit, hop.channel.protocol.max_mtu)
    mtu = (limit // MTU_GRANULARITY) * MTU_GRANULARITY
    if mtu < MIN_MTU:
        raise ValueError(
            f"route cannot carry {MIN_MTU}B fragments (limit {limit}B)")
    return mtu
