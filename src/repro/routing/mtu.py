"""Path-wide MTU negotiation (§2.3) and the adaptive fragment tuner.

The Generic Transmission Module fragments messages so that every network on
the route can transmit a fragment without further fragmentation; the MTU is
chosen statically per (virtual channel, route) from the per-protocol limits
and the configured packet size.

:func:`tune_fragment_size` replaces the static choice with a per-path
*effective* fragment size grown from the hop rates and the gateway swap
overhead (the analytic model of :mod:`repro.analysis.model`): among all
KB-aligned candidates up to the wire-format limit, it returns the smallest
one whose predicted forwarded bandwidth is within ``slack`` of the best —
the knee of the fragment-size curve.  The wire-format MTU stays the upper
bound, so headers and gateways need no format change.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..hw.params import GatewayParams, PipelineConfig
    from .routes import Hop

__all__ = ["negotiate_mtu", "tune_fragment_size", "fragment_knee",
           "MTU_GRANULARITY", "MIN_MTU"]

#: the wire format expresses MTUs in whole KB.
MTU_GRANULARITY = 1024
MIN_MTU = 1024


def negotiate_mtu(hops: Iterable["Hop"], packet_size: int) -> int:
    """Largest MTU <= packet_size accepted by every hop, KB-aligned."""
    if packet_size < MIN_MTU:
        raise ValueError(f"packet size must be >= {MIN_MTU}, got {packet_size}")
    limit = packet_size
    for hop in hops:
        limit = min(limit, hop.channel.protocol.max_mtu)
    mtu = (limit // MTU_GRANULARITY) * MTU_GRANULARITY
    if mtu < MIN_MTU:
        raise ValueError(
            f"route cannot carry {MIN_MTU}B fragments (limit {limit}B)")
    return mtu


def _wire_limit(hops: Sequence["Hop"]) -> int:
    """Largest KB-aligned fragment every hop's wire format accepts."""
    limit = min(hop.channel.protocol.max_mtu for hop in hops)
    mtu = (limit // MTU_GRANULARITY) * MTU_GRANULARITY
    if mtu < MIN_MTU:
        raise ValueError(
            f"route cannot carry {MIN_MTU}B fragments (limit {limit}B)")
    return mtu


def _path_bandwidth(hops: Sequence["Hop"], fragment: int,
                    gateway: "GatewayParams",
                    pipeline: Optional["PipelineConfig"],
                    rate_overrides: Optional[Mapping[str, float]]) -> float:
    """Predicted asymptotic bandwidth of the path at one fragment size:
    the slowest of the per-gateway forwarding pipelines and the raw
    per-hop fragment rates."""
    from dataclasses import replace

    from ..analysis.model import fragment_time, predict_forwarding

    def proto(hop):
        p = hop.channel.protocol
        if rate_overrides and p.name in rate_overrides:
            p = replace(p, host_peak=rate_overrides[p.name])
        return p

    bw = min(fragment / fragment_time(proto(hop), fragment) for hop in hops)
    for a, b in zip(hops, hops[1:]):
        node = a.channel.world.nodes[a.dst].params
        pred = predict_forwarding(proto(a), proto(b), fragment,
                                  gateway=gateway, node=node,
                                  pipeline=pipeline)
        bw = min(bw, pred.bandwidth)
    return bw


def fragment_knee(hops: Sequence["Hop"],
                  gateway: Optional["GatewayParams"] = None,
                  pipeline: Optional["PipelineConfig"] = None,
                  rate_overrides: Optional[Mapping[str, float]] = None,
                  step: int = MTU_GRANULARITY) -> list[tuple[int, float]]:
    """The tuner's decision curve: ``(fragment_size, predicted MB/s)`` for
    every KB-aligned candidate up to the route's wire-format limit."""
    from ..hw.params import GatewayParams

    hops = list(hops)
    gateway = gateway or GatewayParams()
    hi = _wire_limit(hops)
    step = max(MTU_GRANULARITY, (step // MTU_GRANULARITY) * MTU_GRANULARITY)
    sizes = list(range(MIN_MTU, hi + 1, step))
    if sizes[-1] != hi:
        sizes.append(hi)
    return [(f, _path_bandwidth(hops, f, gateway, pipeline, rate_overrides))
            for f in sizes]


def tune_fragment_size(hops: Sequence["Hop"],
                       gateway: Optional["GatewayParams"] = None,
                       pipeline: Optional["PipelineConfig"] = None,
                       slack: float = 0.02,
                       rate_overrides: Optional[Mapping[str, float]] = None,
                       step: int = MTU_GRANULARITY) -> int:
    """Effective per-path fragment size: the smallest KB-aligned size whose
    predicted forwarded bandwidth is within ``slack`` of the best candidate.

    ``rate_overrides`` maps protocol names to measured host rates (bytes/µs)
    from an online probe phase, refining the calibrated ``host_peak``.
    Single-hop routes have no gateway pipeline to tune and get the full
    wire limit (bandwidth is monotone in fragment size there).
    """
    hops = list(hops)
    if len(hops) < 2:
        return _wire_limit(hops)
    curve = fragment_knee(hops, gateway=gateway, pipeline=pipeline,
                          rate_overrides=rate_overrides, step=step)
    best = max(bw for _f, bw in curve)
    for f, bw in curve:
        if bw >= (1.0 - slack) * best:
            return f
    return curve[-1][0]  # pragma: no cover - slack < 1 guarantees a hit
