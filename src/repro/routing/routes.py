"""Route computation for virtual channels.

Routes are minimum-hop paths over the channel graph; ties are broken
deterministically (lexicographically smallest rank sequence, then channel
id) so every node of the session computes identical tables — the paper's
configurations are statically configured (§2.3), and consistency between
the origin's choice and each gateway's next-hop choice is what keeps
multi-gateway forwarding loop-free.

Fault tolerance: the table additionally tracks *health* state.  A channel
(link) or a rank (gateway node) can be marked down — routes are then
computed over the surviving subgraph, and marked up again later.  Every
health transition invalidates the route cache, so stale hops can never be
returned; when no surviving path exists the table raises
:class:`NoRouteError` with a diagnostic naming what is down.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence, Union

import networkx as nx

if TYPE_CHECKING:  # pragma: no cover
    from ..madeleine.channel import RealChannel
    from ..telemetry import Telemetry

from .graph import build_graph

__all__ = ["Hop", "RouteTable", "NoRouteError", "MAX_ROUTE_CANDIDATES"]

#: Cap on the number of shortest node-paths :meth:`RouteTable.all_routes`
#: enumerates.  On highly symmetric graphs (tori, fat-trees) the number of
#: equal-cost paths grows combinatorially with distance; rail selection only
#: ever consumes a handful of disjoint candidates, so enumeration stops after
#: this many paths (the BFS generator yields them in a deterministic order,
#: so the truncated set is still reproducible across runs).
MAX_ROUTE_CANDIDATES = 64


class NoRouteError(RuntimeError):
    """The virtual channel does not connect the two ranks."""


@dataclass(frozen=True)
class Hop:
    """One forwarding step: ``src`` transmits to ``dst`` over ``channel``."""

    channel: "RealChannel"
    src: int
    dst: int

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Hop {self.src}->{self.dst} via {self.channel.id}>"


def _route_key(hops: list[Hop]) -> tuple:
    """Deterministic ordering of parallel routes: hop count, then the
    per-hop channel-id sequence, then the rank sequence."""
    return (len(hops), tuple(h.channel.id for h in hops),
            tuple(h.src for h in hops) + (hops[-1].dst,))


def _channel_id(channel: Union["RealChannel", str]) -> str:
    cid = channel if isinstance(channel, str) else channel.id
    # The special (forwarding) twin of a channel shares its physical rail:
    # marking either marks the rail.  Twins are named "<id>!fwd" by the
    # virtual channel; normalize so callers can pass either.
    return cid[:-4] if cid.endswith("!fwd") else cid


class RouteTable:
    """All-pairs minimum-hop routes over a set of real channels."""

    def __init__(self, channels: Sequence["RealChannel"],
                 telemetry: Optional["Telemetry"] = None) -> None:
        self.channels = list(channels)
        self.graph = build_graph(self.channels)
        self._cache: dict[tuple[int, int], list[Hop]] = {}
        #: per-destination BFS distance maps over the active graph; shared by
        #: every source routing toward that destination, so a table over an
        #: N-node topology costs one BFS per destination instead of one
        #: shortest-path enumeration per (src, dst) pair.
        self._dist: dict[int, dict[int, int]] = {}
        self._down_channels: set[str] = set()
        self._down_nodes: set[int] = set()
        self._active: nx.MultiGraph | None = None
        self._generation = 0
        if telemetry is None:
            from ..telemetry import NULL_TELEMETRY
            telemetry = NULL_TELEMETRY
        m = telemetry.metrics
        self._m_recomputes = m.counter("routing.recomputes")
        self._m_invalidations = m.counter("routing.invalidations")
        self._m_down = m.counter("routing.down_transitions")
        self._m_up = m.counter("routing.up_transitions")

    def members(self) -> list[int]:
        return sorted(self.graph.nodes)

    # -- health -------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Monotonic counter bumped by every cache invalidation.

        Consumers that derive state from routes (the multirail stripe
        scheduler caches its rail set) compare generations instead of
        subscribing to health events, so a revived rail is picked up again
        without anyone calling :meth:`invalidate` by hand.
        """
        return self._generation

    def invalidate(self) -> None:
        """Drop all cached routes (and the cached surviving subgraph).

        Called on every health transition so a route computed before a
        failure can never be served after it.
        """
        self._cache.clear()
        self._dist.clear()
        self._active = None
        self._generation += 1
        self._m_invalidations.inc()

    def mark_down(self, channel: Union["RealChannel", str]) -> None:
        """Record that ``channel`` (or its forwarding twin) is unusable.

        Idempotent: re-marking a channel that is already down is a no-op —
        no spurious transition count, no cache invalidation.
        """
        cid = _channel_id(channel)
        if cid in self._down_channels:
            return
        self._down_channels.add(cid)
        self._m_down.inc()
        self.invalidate()

    def mark_up(self, channel: Union["RealChannel", str]) -> None:
        """Record that ``channel`` (or its forwarding twin) came back.

        A real down->up transition invalidates the route cache, so routes
        (and the stripe scheduler's rail set) immediately include the
        revived rail; marking an already-live channel up is a no-op.
        """
        cid = _channel_id(channel)
        if cid not in self._down_channels:
            return
        self._down_channels.discard(cid)
        self._m_up.inc()
        self.invalidate()

    def mark_node_down(self, rank: int) -> None:
        """Record that a rank (typically a crashed gateway) is unusable."""
        if rank in self._down_nodes:
            return
        self._down_nodes.add(rank)
        self._m_down.inc()
        self.invalidate()

    def mark_node_up(self, rank: int) -> None:
        """Record that a rank restarted; same transition-only semantics as
        :meth:`mark_up`."""
        if rank not in self._down_nodes:
            return
        self._down_nodes.discard(rank)
        self._m_up.inc()
        self.invalidate()

    @property
    def down_channels(self) -> frozenset[str]:
        return frozenset(self._down_channels)

    @property
    def down_nodes(self) -> frozenset[int]:
        return frozenset(self._down_nodes)

    def is_healthy(self) -> bool:
        return not self._down_channels and not self._down_nodes

    @property
    def active_graph(self) -> nx.MultiGraph:
        """The channel graph restricted to live channels and live ranks."""
        if self._active is None:
            if self.is_healthy():
                self._active = self.graph
            else:
                g = self.graph.copy()
                g.remove_edges_from([
                    (u, v, k) for u, v, k in g.edges(keys=True)
                    if _channel_id(k) in self._down_channels
                ])
                g.remove_nodes_from([n for n in self._down_nodes if n in g])
                self._active = g
        return self._active

    def _unreachable(self, rank: int) -> NoRouteError:
        if rank in self.graph:
            return NoRouteError(
                f"rank {rank} is unreachable: partitioned by failures "
                f"(channels down: {sorted(self._down_channels) or 'none'}, "
                f"nodes down: {sorted(self._down_nodes) or 'none'})")
        return NoRouteError(
            f"rank {rank} is not reachable on this virtual channel")

    # -- routes -------------------------------------------------------------
    def route(self, src: int, dst: int) -> list[Hop]:
        """Hops from ``src`` to ``dst`` (length 1 = direct, no forwarding)."""
        if src == dst:
            raise ValueError("route to self")
        key = (src, dst)
        if key not in self._cache:
            self._cache[key] = self._compute(src, dst)
        return self._cache[key]

    def all_routes(self, src: int, dst: int) -> list[list[Hop]]:
        """Every minimum-hop route, deterministically ordered — the
        parallel *rails* a multi-gateway (or multi-NIC) configuration
        offers.

        Unlike :meth:`route`, parallel edges are not collapsed: a node pair
        joined by two live channels contributes one route per channel, so
        dual-NIC rails are enumerated too.  The order is a stable
        tie-break on (hop count, per-hop channel-id sequence, rank
        sequence), independent of graph insertion order — stripe scheduling
        and benches reproduce across runs.
        """
        if src == dst:
            raise ValueError("route to self")
        g = self.active_graph
        for rank in (src, dst):
            if rank not in g:
                raise self._unreachable(rank)
        try:
            paths = list(itertools.islice(
                nx.all_shortest_paths(g, src, dst), MAX_ROUTE_CANDIDATES))
        except nx.NetworkXNoPath:
            raise self._no_path(src, dst) from None
        routes: list[list[Hop]] = []
        for path in paths:
            routes.extend(self._expand_path(path))
            if len(routes) >= MAX_ROUTE_CANDIDATES:
                del routes[MAX_ROUTE_CANDIDATES:]
                break
        routes.sort(key=_route_key)
        return routes

    def _expand_path(self, path: list[int]) -> list[list[Hop]]:
        """All hop sequences along one node path: the cartesian product of
        the live parallel channels of each consecutive pair."""
        g = self.active_graph
        choices = []
        for a, b in zip(path, path[1:]):
            data = g.get_edge_data(a, b)
            choices.append([Hop(channel=data[k]["channel"], src=a, dst=b)
                            for k in sorted(data.keys())])
        return [list(combo) for combo in itertools.product(*choices)]

    def next_hop(self, at: int, dst: int) -> Hop:
        """The hop a node (typically a gateway) takes toward ``dst``."""
        return self.route(at, dst)[0]

    def hop_count(self, src: int, dst: int) -> int:
        return len(self.route(src, dst))

    def _no_path(self, src: int, dst: int) -> NoRouteError:
        detail = ""
        if not self.is_healthy():
            detail = (f" (surviving subgraph is partitioned; channels down: "
                      f"{sorted(self._down_channels) or 'none'}, nodes down: "
                      f"{sorted(self._down_nodes) or 'none'})")
        return NoRouteError(f"no route from {src} to {dst}{detail}")

    def _distances(self, dst: int) -> dict[int, int]:
        """Hop distance of every rank that can reach ``dst`` (BFS, cached).

        One map serves every source routing toward ``dst`` — the gateways
        along a route share the origin's map instead of each enumerating
        shortest paths from scratch, which keeps per-flow routing state O(1)
        once the map is warm.
        """
        dist = self._dist.get(dst)
        if dist is None:
            g = self.active_graph
            dist = {dst: 0}
            frontier = [dst]
            d = 0
            while frontier:
                d += 1
                nxt = []
                for node in frontier:
                    for nbr in g.adj[node]:
                        if nbr not in dist:
                            dist[nbr] = d
                            nxt.append(nbr)
                frontier = nxt
            self._dist[dst] = dist
        return dist

    def _compute(self, src: int, dst: int) -> list[Hop]:
        self._m_recomputes.inc()
        g = self.active_graph
        for rank in (src, dst):
            if rank not in g:
                raise self._unreachable(rank)
        dist = self._distances(dst)
        d = dist.get(src)
        if d is None:
            raise self._no_path(src, dst)
        # Greedy descent over the BFS distance map: at each step take the
        # smallest-rank neighbour one hop closer to dst.  This is exactly the
        # lexicographically smallest shortest path (the old
        # min(all_shortest_paths) tie-break) without enumerating the
        # combinatorial path set of symmetric topologies.
        path = [src]
        cur = src
        while d:
            cur = min(n for n in g.adj[cur] if dist.get(n) == d - 1)
            path.append(cur)
            d -= 1
        return self._hops_for(path)

    def _hops_for(self, path: list[int]) -> list[Hop]:
        g = self.active_graph
        hops: list[Hop] = []
        for a, b in zip(path, path[1:]):
            # Deterministic channel choice among (live) parallel edges.
            data = g.get_edge_data(a, b)
            cid = min(data.keys())
            hops.append(Hop(channel=data[cid]["channel"], src=a, dst=b))
        return hops
