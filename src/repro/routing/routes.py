"""Route computation for virtual channels.

Routes are minimum-hop paths over the channel graph; ties are broken
deterministically (lexicographically smallest rank sequence, then channel
id) so every node of the session computes identical tables — the paper's
configurations are statically configured (§2.3), and consistency between
the origin's choice and each gateway's next-hop choice is what keeps
multi-gateway forwarding loop-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import networkx as nx

if TYPE_CHECKING:  # pragma: no cover
    from ..madeleine.channel import RealChannel

from .graph import build_graph

__all__ = ["Hop", "RouteTable", "NoRouteError"]


class NoRouteError(RuntimeError):
    """The virtual channel does not connect the two ranks."""


@dataclass(frozen=True)
class Hop:
    """One forwarding step: ``src`` transmits to ``dst`` over ``channel``."""

    channel: "RealChannel"
    src: int
    dst: int

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Hop {self.src}->{self.dst} via {self.channel.id}>"


class RouteTable:
    """All-pairs minimum-hop routes over a set of real channels."""

    def __init__(self, channels: Sequence["RealChannel"]) -> None:
        self.channels = list(channels)
        self.graph = build_graph(self.channels)
        self._cache: dict[tuple[int, int], list[Hop]] = {}

    def members(self) -> list[int]:
        return sorted(self.graph.nodes)

    def route(self, src: int, dst: int) -> list[Hop]:
        """Hops from ``src`` to ``dst`` (length 1 = direct, no forwarding)."""
        if src == dst:
            raise ValueError("route to self")
        key = (src, dst)
        if key not in self._cache:
            self._cache[key] = self._compute(src, dst)
        return self._cache[key]

    def all_routes(self, src: int, dst: int) -> list[list[Hop]]:
        """Every minimum-hop route, deterministically ordered — the
        parallel *rails* a multi-gateway configuration offers."""
        if src == dst:
            raise ValueError("route to self")
        if src not in self.graph or dst not in self.graph:
            raise NoRouteError(f"rank {src if src not in self.graph else dst} "
                               f"is not reachable on this virtual channel")
        try:
            paths = sorted(nx.all_shortest_paths(self.graph, src, dst))
        except nx.NetworkXNoPath:
            raise NoRouteError(f"no route from {src} to {dst}") from None
        return [self._hops_for(path) for path in paths]

    def next_hop(self, at: int, dst: int) -> Hop:
        """The hop a node (typically a gateway) takes toward ``dst``."""
        return self.route(at, dst)[0]

    def hop_count(self, src: int, dst: int) -> int:
        return len(self.route(src, dst))

    def _compute(self, src: int, dst: int) -> list[Hop]:
        if src not in self.graph or dst not in self.graph:
            raise NoRouteError(f"rank {src if src not in self.graph else dst} "
                               f"is not reachable on this virtual channel")
        try:
            paths = list(nx.all_shortest_paths(self.graph, src, dst))
        except nx.NetworkXNoPath:
            raise NoRouteError(f"no route from {src} to {dst}") from None
        path = min(paths)  # deterministic tie-break on rank sequence
        return self._hops_for(path)

    def _hops_for(self, path: list[int]) -> list[Hop]:
        hops: list[Hop] = []
        for a, b in zip(path, path[1:]):
            # Deterministic channel choice among parallel edges.
            data = self.graph.get_edge_data(a, b)
            cid = min(data.keys())
            hops.append(Hop(channel=data[cid]["channel"], src=a, dst=b))
        return hops
