"""Route computation over cluster-of-clusters channel graphs."""

from .graph import build_graph, gateway_ranks
from .mtu import (MIN_MTU, MTU_GRANULARITY, fragment_knee,
                  negotiate_mtu, tune_fragment_size)
from .routes import Hop, NoRouteError, RouteTable
from .striping import (StripePolicy, StripeScheduler, disjoint_routes,
                       route_rate)

__all__ = [
    "build_graph", "gateway_ranks",
    "MIN_MTU", "MTU_GRANULARITY", "fragment_knee", "negotiate_mtu",
    "tune_fragment_size",
    "Hop", "NoRouteError", "RouteTable",
    "StripePolicy", "StripeScheduler", "disjoint_routes", "route_rate",
]
