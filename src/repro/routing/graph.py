"""Connectivity graph over the real channels of a virtual channel.

Every real channel is a full crossbar among its members (a switch), so the
graph carries one edge per (channel, member pair).  Gateways are the ranks
that belong to more than one channel.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Sequence

import networkx as nx

if TYPE_CHECKING:  # pragma: no cover
    from ..madeleine.channel import RealChannel

__all__ = ["build_graph", "gateway_ranks"]


def build_graph(channels: Sequence["RealChannel"]) -> nx.MultiGraph:
    """Multigraph: nodes are ranks, one edge per channel per member pair,
    keyed by the channel id and carrying the channel object."""
    g = nx.MultiGraph()
    for ch in channels:
        for rank in ch.members:
            g.add_node(rank)
        for a, b in itertools.combinations(ch.members, 2):
            g.add_edge(a, b, key=ch.id, channel=ch)
    return g


def gateway_ranks(channels: Sequence["RealChannel"]) -> list[int]:
    """Ranks present on two or more channels (candidate forwarders)."""
    seen: dict[int, set[str]] = {}
    for ch in channels:
        for rank in ch.members:
            seen.setdefault(rank, set()).add(ch.id)
    return sorted(r for r, ids in seen.items() if len(ids) >= 2)
