"""Multirail striping policy: disjoint rails and the stripe scheduler.

When a topology offers several minimum-hop routes between two ranks (two
gateways between the clouds, or dual NICs per node), a virtual channel
configured with a :class:`StripePolicy` splits each large paquet into
*stripes* and sends them concurrently, one stripe per rail.  This module
holds the routing-side half of the feature:

* :func:`disjoint_routes` — greedy selection of pairwise-disjoint rails
  from the deterministically ordered candidate list of
  :meth:`~repro.routing.routes.RouteTable.all_routes`;
* :class:`StripeScheduler` — load-aware stripe sizing: each paquet is
  split by *water-filling* so all rails, weighted by their calibrated
  per-protocol rates and current backlog, are predicted to finish
  together.

Everything here is deterministic: candidate order is stable, ties break on
the lowest rail index, and stripe boundaries are alignment-quantized —
reruns produce bit-identical schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from .routes import Hop

__all__ = ["StripePolicy", "StripeScheduler", "disjoint_routes",
           "route_rate"]


@dataclass(frozen=True)
class StripePolicy:
    """Configuration of transparent multirail striping.

    ``max_rails`` bounds the disjoint routes used per (src, dst) pair;
    paquets shorter than ``2 * min_stripe`` are not split at all (the
    per-rail record overhead would outweigh the overlap), and stripe
    boundaries are multiples of ``align`` so fragment grids stay KB-sized.
    """

    max_rails: int = 2
    min_stripe: int = 4 << 10
    align: int = 1 << 10

    def __post_init__(self) -> None:
        if self.max_rails < 1:
            raise ValueError(f"max_rails must be >= 1, got {self.max_rails}")
        if self.align < 1:
            raise ValueError(f"align must be >= 1, got {self.align}")
        if self.min_stripe < self.align or self.min_stripe % self.align:
            raise ValueError(
                f"min_stripe ({self.min_stripe}) must be a positive "
                f"multiple of align ({self.align})")


def disjoint_routes(routes: Sequence[list["Hop"]],
                    max_rails: int) -> list[list["Hop"]]:
    """Greedily pick up to ``max_rails`` pairwise-disjoint rails.

    ``routes`` must already be deterministically ordered (the contract of
    :meth:`RouteTable.all_routes`), so the selection is stable too.  Two
    rails conflict when they share an interior (forwarding) node — stripes
    through distinct gateways may share the endpoint networks, that is the
    whole point of a switched cloud — and two *direct* rails conflict when
    they use the same channel (dual-NIC rails must differ in NIC).
    """
    picked: list[list["Hop"]] = []
    used_nodes: set[int] = set()
    used_channels: set[str] = set()
    for route in routes:
        if len(picked) >= max_rails:
            break
        interior = {h.dst for h in route[:-1]}
        if interior:
            if interior & used_nodes:
                continue
            used_nodes |= interior
        else:
            cid = route[0].channel.id
            if cid in used_channels:
                continue
            used_channels.add(cid)
        picked.append(route)
    return picked


def route_rate(route: Sequence["Hop"],
               rate_overrides: Optional[dict[str, float]] = None) -> float:
    """Calibrated bottleneck rate of one rail (bytes/µs): the slowest
    per-protocol host rate along its hops, with probe-measured overrides
    taking precedence (the same overrides the adaptive fragment tuner
    uses)."""
    overrides = rate_overrides or {}
    return min(overrides.get(h.channel.protocol.name,
                             h.channel.protocol.host_peak)
               for h in route)


class StripeScheduler:
    """Splits paquets across a fixed rail set, weighted by rate and load.

    The scheduler keeps a per-rail *backlog* of bytes handed to the rail
    but not yet emitted.  :meth:`plan` water-fills: it finds the finish
    horizon at which all (not hopelessly backlogged) rails drain together
    and sizes each stripe as ``rate * horizon - backlog``, quantized to the
    policy's alignment.  Ties and remainders go to the lowest-index rail
    among the least loaded — deterministic by construction.
    """

    def __init__(self, rails: Sequence[list["Hop"]], policy: StripePolicy,
                 rate_overrides: Optional[dict[str, float]] = None) -> None:
        if not rails:
            raise ValueError("a stripe scheduler needs at least one rail")
        self.rails = [list(r) for r in rails]
        self.policy = policy
        self.rates = [route_rate(r, rate_overrides) for r in self.rails]
        self._backlog = [0] * len(self.rails)
        #: adaptive re-striping: per-rail multiplier on the calibrated rate.
        #: All-1.0 (the default) leaves every plan bit-identical to the
        #: unweighted scheduler; 0.0 suspends a rail — it only carries
        #: zero-length lockstep stripes until readmitted.
        self.weights = [1.0] * len(self.rails)

    @property
    def backlog(self) -> tuple[int, ...]:
        return tuple(self._backlog)

    def set_weight(self, rail: int, weight: float) -> None:
        if weight < 0.0:
            raise ValueError(f"rail weight must be >= 0, got {weight}")
        self.weights[rail] = weight

    def _rate(self, i: int) -> float:
        w = self.weights[i]
        # Weight 0 only reaches here through the all-suspended fallback,
        # where the uniform zero cancels: use the raw calibrated rate.
        return self.rates[i] * w if w > 0.0 else self.rates[i]

    def _live(self) -> list[int]:
        live = [i for i in range(len(self.rails)) if self.weights[i] > 0.0]
        # All rails suspended is a policy mistake, not a schedule: fall
        # back to the full set rather than dividing by zero.
        return live or list(range(len(self.rails)))

    def note_sent(self, rail: int, nbytes: int) -> None:
        """A stripe of ``nbytes`` was handed to ``rail``."""
        self._backlog[rail] += nbytes

    def note_done(self, rail: int, nbytes: int) -> None:
        """``rail`` finished emitting ``nbytes`` of its backlog."""
        self._backlog[rail] -= nbytes

    def _drain_time(self, i: int) -> float:
        return self._backlog[i] / self._rate(i)

    def _least_loaded(self) -> int:
        return min(self._live(), key=lambda i: (self._drain_time(i), i))

    def plan(self, length: int) -> list[int]:
        """Stripe sizes per rail for one ``length``-byte paquet.

        Returns one entry per rail summing exactly to ``length``; a zero
        means the rail sits this paquet out (it still carries the paquet's
        empty descriptor so the reassembly stays in lockstep).
        """
        n = len(self.rails)
        chunks = [0] * n
        live = self._live()
        if len(live) == 1 or length < 2 * self.policy.min_stripe:
            # Too small to split: the whole paquet goes to the rail
            # predicted to drain first.
            chunks[self._least_loaded()] = length
            return chunks
        # Water-fill: rails sorted by drain time; drop (from the most
        # loaded end) any rail whose existing backlog already exceeds the
        # common finish horizon of the remaining set.
        active = sorted(live, key=lambda i: (self._drain_time(i), i))
        while len(active) > 1:
            horizon = ((length + sum(self._backlog[i] for i in active))
                       / sum(self._rate(i) for i in active))
            worst = active[-1]
            if self._backlog[worst] > self._rate(worst) * horizon:
                active.pop()
            else:
                break
        horizon = ((length + sum(self._backlog[i] for i in active))
                   / sum(self._rate(i) for i in active))
        shares = {i: self._rate(i) * horizon - self._backlog[i]
                  for i in active}
        total = sum(shares.values())
        align = self.policy.align
        assigned = 0
        for i in sorted(active):
            c = int(length * shares[i] / total) // align * align
            chunks[i] = c
            assigned += c
        primary = active[0]     # least loaded: absorbs remainder and runts
        chunks[primary] += length - assigned
        for i in sorted(active):
            if i != primary and 0 < chunks[i] < self.policy.min_stripe:
                chunks[primary] += chunks[i]
                chunks[i] = 0
        return chunks
