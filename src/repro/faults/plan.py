"""Declarative, deterministic fault schedules.

A :class:`FaultPlan` describes *what goes wrong and when*: per-channel
fragment fault probabilities (drop / corrupt / delay), scheduled link-down
and link-up transitions, and gateway crash / restart events at absolute
simulated times.  Arming a plan on a :class:`~repro.hw.topology.World`
builds a :class:`~repro.faults.injector.FaultInjector`, hooks it into the
fabric, and spawns one driver process per scheduled event.

Everything is seeded: the same plan on the same workload yields the same
fault sequence, so chaos runs are reproducible bug reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover
    from ..hw.topology import World
    from .injector import FaultInjector

__all__ = ["ChannelFaults", "LinkEvent", "NodeEvent", "FaultPlan"]


@dataclass(frozen=True)
class ChannelFaults:
    """Per-fragment fault probabilities for one channel.

    ``delay_us`` is the *maximum* extra latency; an affected fragment draws
    uniformly from ``[0, delay_us]``.
    """

    drop_p: float = 0.0
    corrupt_p: float = 0.0
    delay_p: float = 0.0
    delay_us: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop_p", "corrupt_p", "delay_p"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.delay_us < 0:
            raise ValueError("delay_us must be >= 0")

    @property
    def quiet(self) -> bool:
        return self.drop_p == self.corrupt_p == self.delay_p == 0.0


@dataclass(frozen=True)
class LinkEvent:
    """At ``time`` µs, take ``channel`` down (``up=False``) or up."""

    time: float
    channel: str
    up: bool = False


@dataclass(frozen=True)
class NodeEvent:
    """At ``time`` µs, crash (``up=False``) or restart a node.

    ``node`` is a node name or rank, resolved against the world at arm time.
    """

    time: float
    node: Union[str, int]
    up: bool = False


@dataclass
class FaultPlan:
    """A complete, seeded fault schedule."""

    seed: int = 0
    #: per-channel fragment fault probabilities, keyed by channel id
    #: (a channel's ``!fwd`` forwarding twin shares its entry).
    channels: Mapping[str, ChannelFaults] = field(default_factory=dict)
    #: fallback for channels without an explicit entry (None = fault-free).
    default: Optional[ChannelFaults] = None
    link_events: Sequence[LinkEvent] = ()
    node_events: Sequence[NodeEvent] = ()

    def arm(self, world: "World") -> "FaultInjector":
        """Attach this plan to ``world``; returns the live injector."""
        from .injector import FaultInjector
        if world.fabric.injector is not None:
            raise RuntimeError("a fault plan is already armed on this world")
        injector = FaultInjector(world, self)
        world.fabric.injector = injector
        return injector
