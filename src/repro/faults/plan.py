"""Declarative, deterministic fault schedules.

A :class:`FaultPlan` describes *what goes wrong and when*: per-channel
fragment fault probabilities (drop / corrupt / delay), scheduled link-down
and link-up transitions, and gateway crash / restart events at absolute
simulated times.  Arming a plan on a :class:`~repro.hw.topology.World`
builds a :class:`~repro.faults.injector.FaultInjector`, hooks it into the
fabric, and spawns one driver process per scheduled event.

Everything is seeded: the same plan on the same workload yields the same
fault sequence, so chaos runs are reproducible bug reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover
    from ..hw.topology import World
    from .injector import FaultInjector

__all__ = ["ChannelFaults", "LinkEvent", "NodeEvent", "FaultPlan"]


@dataclass(frozen=True)
class ChannelFaults:
    """Per-fragment fault probabilities for one channel.

    ``delay_us`` is the *maximum* extra latency; an affected fragment draws
    uniformly from ``[0, delay_us]``.
    """

    drop_p: float = 0.0
    corrupt_p: float = 0.0
    delay_p: float = 0.0
    delay_us: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop_p", "corrupt_p", "delay_p"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.delay_us < 0:
            raise ValueError("delay_us must be >= 0")

    @property
    def quiet(self) -> bool:
        return self.drop_p == self.corrupt_p == self.delay_p == 0.0


@dataclass(frozen=True)
class LinkEvent:
    """At ``time`` µs, take ``channel`` down (``up=False``) or up."""

    time: float
    channel: str
    up: bool = False


@dataclass(frozen=True)
class NodeEvent:
    """At ``time`` µs, crash (``up=False``) or restart a node.

    ``node`` is a node name or rank, resolved against the world at arm time.
    """

    time: float
    node: Union[str, int]
    up: bool = False


@dataclass
class FaultPlan:
    """A complete, seeded fault schedule."""

    seed: int = 0
    #: per-channel fragment fault probabilities, keyed by channel id
    #: (a channel's ``!fwd`` forwarding twin shares its entry).
    channels: Mapping[str, ChannelFaults] = field(default_factory=dict)
    #: fallback for channels without an explicit entry (None = fault-free).
    default: Optional[ChannelFaults] = None
    link_events: Sequence[LinkEvent] = ()
    node_events: Sequence[NodeEvent] = ()

    def validate(self, world: Optional["World"] = None) -> None:
        """Raise :class:`ValueError` on an unexecutable schedule.

        Checks event times are non-negative always; given a world, also
        resolves every node-event key and (when any channels exist) every
        link-event channel id, so a typo fails loudly here instead of as a
        ``KeyError`` deep inside a driver process mid-run.  The ``channels``
        probability map is *not* checked against the world: plans armed via
        ``Session(fault_plan=...)`` legitimately name channels created
        later, and an unmatched entry is inert, not a crash.
        """
        from .injector import base_channel_id
        problems = []
        for ev in (*self.link_events, *self.node_events):
            if ev.time < 0:
                problems.append(f"event time must be >= 0, got {ev!r}")
        if world is not None:
            for ev in self.node_events:
                try:
                    world.node(ev.node)
                except KeyError:
                    problems.append(
                        f"node event references unknown node {ev.node!r} "
                        f"(known: {sorted(world.names)})")
            # Link events only make sense once channels exist; an empty
            # registry means the plan is being armed pre-channel (the
            # Session(fault_plan=...) path) and link targets cannot be
            # checked yet — such plans should be armed after channel
            # creation anyway, as tools/chaos.py does.
            if world.channel_ids:
                known = {base_channel_id(c) for c in world.channel_ids}
                for ev in self.link_events:
                    if base_channel_id(ev.channel) not in known:
                        problems.append(
                            f"link event references unknown channel "
                            f"{ev.channel!r} (known: {sorted(known)})")
            elif self.link_events:
                problems.append(
                    "plan has link events but the world has no channels "
                    "yet; build the channels first, then arm")
        if problems:
            raise ValueError("invalid fault plan: " + "; ".join(problems))

    def arm(self, world: "World") -> "FaultInjector":
        """Attach this plan to ``world``; returns the live injector."""
        from .injector import FaultInjector
        if world.fabric.injector is not None:
            raise RuntimeError("a fault plan is already armed on this world")
        self.validate(world)
        injector = FaultInjector(world, self)
        world.fabric.injector = injector
        return injector

    # -- corpus serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe dict; exact inverse of :meth:`from_dict`."""
        return {
            "seed": self.seed,
            "channels": {cid: {"drop_p": cf.drop_p,
                               "corrupt_p": cf.corrupt_p,
                               "delay_p": cf.delay_p,
                               "delay_us": cf.delay_us}
                         for cid, cf in self.channels.items()},
            "default": (None if self.default is None else
                        {"drop_p": self.default.drop_p,
                         "corrupt_p": self.default.corrupt_p,
                         "delay_p": self.default.delay_p,
                         "delay_us": self.default.delay_us}),
            "link_events": [{"time": ev.time, "channel": ev.channel,
                             "up": ev.up} for ev in self.link_events],
            "node_events": [{"time": ev.time, "node": ev.node,
                             "up": ev.up} for ev in self.node_events],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultPlan":
        """Rebuild a plan serialized by :meth:`to_dict` (fuzz corpus files)."""
        default = data.get("default")
        return cls(
            seed=int(data.get("seed", 0)),
            channels={cid: ChannelFaults(**cf)
                      for cid, cf in data.get("channels", {}).items()},
            default=None if default is None else ChannelFaults(**default),
            link_events=tuple(LinkEvent(**ev)
                              for ev in data.get("link_events", ())),
            node_events=tuple(NodeEvent(**ev)
                              for ev in data.get("node_events", ())),
        )
