"""The live side of an armed :class:`~repro.faults.plan.FaultPlan`.

The injector sits on ``fabric.injector`` and is consulted once per fragment
by the NIC transmit engines (:meth:`FaultInjector.fragment_verdict`); it
also owns the dynamic health state — which channels and nodes are currently
down — and the driver processes that replay the plan's scheduled events.

Recovery code (the virtual channel's fault listener, tests, the chaos
harness) can :meth:`subscribe` to health transitions, and may also trigger
them directly (``link_down`` / ``crash_node`` / …) for targeted scenarios.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Union

from ..sim import GatewayCrashed

if TYPE_CHECKING:  # pragma: no cover
    from ..hw.fabric import NIC, _SendRequest
    from ..hw.topology import World
    from .plan import FaultPlan

__all__ = ["Verdict", "FaultInjector", "base_channel_id"]


def base_channel_id(cid: str) -> str:
    """Map a forwarding twin's id back to its physical channel's id."""
    return cid[:-4] if isinstance(cid, str) and cid.endswith("!fwd") else cid


@dataclass(frozen=True)
class Verdict:
    """What happens to one fragment."""

    drop: bool = False
    corrupt: bool = False
    corrupt_offset: int = 0
    delay_us: float = 0.0


#: listener signature: ``fn(kind, subject)`` with kind one of
#: "link_down"/"link_up" (subject: channel id) or "node_down"/"node_up"
#: (subject: rank).
Listener = Callable[[str, Union[str, int]], None]


class FaultInjector:
    """Holds fault state and decides the fate of each fragment."""

    def __init__(self, world: "World", plan: "FaultPlan") -> None:
        self.world = world
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.down_channels: set[str] = set()
        self.down_nodes: set[int] = set()
        self._listeners: list[Listener] = []
        self.dropped = 0
        self.corrupted = 0
        self.delayed = 0
        m = world.telemetry.metrics
        self._m_dropped = m.counter("faults.fragments_dropped")
        self._m_corrupted = m.counter("faults.fragments_corrupted")
        self._m_delayed = m.counter("faults.fragments_delayed")
        self._m_link_events = m.counter("faults.link_transitions")
        self._m_node_events = m.counter("faults.node_transitions")
        sim = world.sim
        for i, ev in enumerate(plan.link_events):
            sim.process(self._link_driver(ev), name=f"fault:link{i}")
        for i, ev in enumerate(plan.node_events):
            sim.process(self._node_driver(ev), name=f"fault:node{i}")

    # -- subscriptions -----------------------------------------------------------
    def subscribe(self, fn: Listener) -> None:
        self._listeners.append(fn)

    def _notify(self, kind: str, subject: Union[str, int]) -> None:
        for fn in list(self._listeners):
            fn(kind, subject)

    # -- scheduled drivers -------------------------------------------------------
    def _link_driver(self, ev):
        yield self.world.sim.timeout(max(0.0, ev.time - self.world.sim.now))
        if ev.up:
            self.link_up(ev.channel)
        else:
            self.link_down(ev.channel)

    def _node_driver(self, ev):
        yield self.world.sim.timeout(max(0.0, ev.time - self.world.sim.now))
        if ev.up:
            self.restart_node(ev.node)
        else:
            self.crash_node(ev.node)

    # -- health transitions (also callable directly) ------------------------------
    def link_down(self, channel: str) -> None:
        cid = base_channel_id(channel)
        if cid in self.down_channels:
            return
        self.down_channels.add(cid)
        self._m_link_events.inc()
        self.world.trace.emit(self.world.sim.now, "fault", "link_down",
                              channel=cid)
        self._notify("link_down", cid)

    def link_up(self, channel: str) -> None:
        cid = base_channel_id(channel)
        if cid not in self.down_channels:
            return
        self.down_channels.discard(cid)
        self._m_link_events.inc()
        self.world.trace.emit(self.world.sim.now, "fault", "link_up",
                              channel=cid)
        self._notify("link_up", cid)

    def crash_node(self, key: Union[str, int]) -> None:
        node = self.world.node(key)
        if node.rank in self.down_nodes:
            return
        self.down_nodes.add(node.rank)
        self._m_node_events.inc()
        exc = GatewayCrashed(node.name)
        self.world.fabric.crash_node(node, exc)
        for nic in node.nics.values():
            for pool in (nic.tx_pool, nic.rx_pool):
                if pool is not None:
                    pool.fail_waiters(GatewayCrashed(node.name))
        self.world.trace.emit(self.world.sim.now, "fault", "node_down",
                              node=node.name, rank=node.rank)
        self._notify("node_down", node.rank)

    def restart_node(self, key: Union[str, int]) -> None:
        node = self.world.node(key)
        if node.rank not in self.down_nodes:
            return
        self.down_nodes.discard(node.rank)
        self._m_node_events.inc()
        for nic in node.nics.values():
            for pool in (nic.tx_pool, nic.rx_pool):
                if pool is not None:
                    pool.reset()
        self.world.trace.emit(self.world.sim.now, "fault", "node_up",
                              node=node.name, rank=node.rank)
        self._notify("node_up", node.rank)

    def is_node_down(self, rank: int) -> bool:
        return rank in self.down_nodes

    def is_link_down(self, channel: str) -> bool:
        return base_channel_id(channel) in self.down_channels

    # -- the per-fragment hook ----------------------------------------------------
    def fragment_verdict(self, nic: "NIC",
                         req: "_SendRequest") -> Verdict | None:
        """Called by the transmit engine once per fragment; ``None`` = clean."""
        if (nic.node.rank in self.down_nodes
                or req.dst.node.rank in self.down_nodes):
            self.dropped += 1
            self._m_dropped.inc()
            return Verdict(drop=True)
        tag = req.tag
        if not (isinstance(tag, tuple) and len(tag) >= 2):
            return None
        cid = base_channel_id(tag[1])
        if cid in self.down_channels:
            self.dropped += 1
            self._m_dropped.inc()
            return Verdict(drop=True)
        cf = self.plan.channels.get(cid, self.plan.default)
        if cf is None or cf.quiet:
            return None
        rng = self.rng
        if cf.drop_p > 0 and rng.random() < cf.drop_p:
            self.dropped += 1
            self._m_dropped.inc()
            return Verdict(drop=True)
        corrupt = cf.corrupt_p > 0 and rng.random() < cf.corrupt_p
        delayed = cf.delay_p > 0 and rng.random() < cf.delay_p
        if not corrupt and not delayed:
            return None
        offset = rng.randrange(1 << 30) if corrupt else 0
        delay = rng.uniform(0.0, cf.delay_us) if delayed else 0.0
        self.corrupted += int(corrupt)
        self.delayed += int(delayed)
        if corrupt:
            self._m_corrupted.inc()
        if delayed:
            self._m_delayed.inc()
        return Verdict(corrupt=corrupt, corrupt_offset=offset,
                       delay_us=delay)
