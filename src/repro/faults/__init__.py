"""Deterministic fault injection (drop/corrupt/delay, link and node faults).

Declare a :class:`FaultPlan`, arm it on a world, and the fabric's transmit
engines consult the resulting :class:`FaultInjector` per fragment.  With no
plan armed the hook is ``None`` and the happy path is untouched.
"""

from .injector import FaultInjector, Verdict, base_channel_id
from .plan import ChannelFaults, FaultPlan, LinkEvent, NodeEvent

__all__ = [
    "ChannelFaults", "FaultPlan", "LinkEvent", "NodeEvent",
    "FaultInjector", "Verdict", "base_channel_id",
]
