"""minimpi — an MPI-flavoured layer over Madeleine virtual channels.

Demonstrates the MPICH/Madeleine-III layering on this reproduction: tagged
point-to-point with MPI matching semantics plus classic collectives, all
topology transparent across gateways.
"""

from .collectives import (allreduce, barrier, bcast, gather, reduce,
                          ring_allreduce, scatter)
from .comm import ANY_SOURCE, ANY_TAG, Communicator, Message

__all__ = [
    "allreduce", "barrier", "bcast", "gather", "reduce", "ring_allreduce",
    "scatter",
    "ANY_SOURCE", "ANY_TAG", "Communicator", "Message",
]
