"""Collective operations over :class:`~repro.minimpi.comm.Communicator`.

Classic implementations on top of tagged point-to-point: binomial-tree
broadcast and reduce, linear gather/scatter, tree barrier, ring allreduce.
Ranks are addressed by their *index* in the communicator's member list, so
the algorithms are independent of the underlying rank numbering.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from .comm import Communicator

__all__ = ["bcast", "reduce", "allreduce", "gather", "scatter", "barrier",
           "ring_allreduce"]

#: tag space reserved for collectives (user tags stay below this)
_COLL_TAG = 1 << 16


def _idx(comm: Communicator) -> int:
    return comm.ranks.index(comm.rank)


def bcast(comm: Communicator, data, root_index: int = 0,
          tag: int = _COLL_TAG) -> Generator:
    """Binomial-tree broadcast; every rank returns the payload bytes."""
    n = comm.size
    me = (_idx(comm) - root_index) % n
    if me != 0:
        msg = yield from comm.recv(tag=tag)
        data = msg.array()
    mask = 1
    while mask < n:
        if me < mask:
            peer = me + mask
            if peer < n:
                dest = comm.ranks[(peer + root_index) % n]
                yield from comm.send(np.asarray(data).view(np.uint8), dest,
                                     tag=tag)
        mask <<= 1
    return np.asarray(data).view(np.uint8)


def reduce(comm: Communicator, array: np.ndarray, op=np.add,
           root_index: int = 0, tag: int = _COLL_TAG + 1) -> Generator:
    """Binomial-tree reduction toward ``root_index``; the root returns the
    reduced array, others return None."""
    n = comm.size
    me = (_idx(comm) - root_index) % n
    acc = np.array(array, copy=True)
    mask = 1
    while mask < n:
        if me & mask:
            dest = comm.ranks[((me - mask) + root_index) % n]
            yield from comm.send(acc.view(np.uint8), dest, tag=tag)
            return None
        peer = me + mask
        if peer < n:
            msg = yield from comm.recv(tag=tag)
            acc = op(acc, msg.array(acc.dtype).reshape(acc.shape))
        mask <<= 1
    return acc


def allreduce(comm: Communicator, array: np.ndarray, op=np.add,
              tag: int = _COLL_TAG + 2) -> Generator:
    """reduce to index 0 then broadcast."""
    reduced = yield from reduce(comm, array, op=op, root_index=0, tag=tag)
    out = yield from bcast(
        comm, reduced.view(np.uint8) if reduced is not None else None,
        root_index=0, tag=tag + 1)
    return out.view(array.dtype).reshape(array.shape)


def gather(comm: Communicator, array: np.ndarray, root_index: int = 0,
           tag: int = _COLL_TAG + 4) -> Generator:
    """Linear gather; the root returns the list of arrays in index order."""
    me = _idx(comm)
    if me != root_index:
        yield from comm.send(array.view(np.uint8), comm.ranks[root_index],
                             tag=tag)
        return None
    parts: dict[int, np.ndarray] = {me: np.asarray(array)}
    for _ in range(comm.size - 1):
        msg = yield from comm.recv(tag=tag)
        parts[comm.ranks.index(msg.source)] = msg.array(array.dtype)
    return [parts[i] for i in range(comm.size)]


def scatter(comm: Communicator, arrays, root_index: int = 0,
            tag: int = _COLL_TAG + 5) -> Generator:
    """Linear scatter from the root; every rank returns its piece."""
    me = _idx(comm)
    if me == root_index:
        if len(arrays) != comm.size:
            raise ValueError("scatter needs one array per rank")
        for i, rank in enumerate(comm.ranks):
            if i == me:
                continue
            yield from comm.send(np.asarray(arrays[i]).view(np.uint8), rank,
                                 tag=tag)
        return np.asarray(arrays[me])
    msg = yield from comm.recv(source=comm.ranks[root_index], tag=tag)
    return msg.array()


def barrier(comm: Communicator, tag: int = _COLL_TAG + 6) -> Generator:
    """Tree barrier: reduce an empty token, then broadcast it."""
    token = np.zeros(1, dtype=np.uint8)
    got = yield from reduce(comm, token, root_index=0, tag=tag)
    yield from bcast(comm, got if got is not None else None,
                     root_index=0, tag=tag + 1)


def ring_allreduce(comm: Communicator, array: np.ndarray, op=np.add,
                   tag: int = _COLL_TAG + 8) -> Generator:
    """Ring allreduce (reduce-scatter + allgather), the bandwidth-optimal
    collective for large arrays; moves 2·(n-1)/n of the data per link."""
    n = comm.size
    if n == 1:
        return np.array(array, copy=True)
    me = _idx(comm)
    right = comm.ranks[(me + 1) % n]
    left = comm.ranks[(me - 1) % n]
    acc = np.array(array, copy=True)
    chunks = np.array_split(acc, n)
    bounds = np.cumsum([0] + [len(c) for c in chunks])
    # reduce-scatter
    for step in range(n - 1):
        send_idx = (me - step) % n
        recv_idx = (me - step - 1) % n
        out = acc[bounds[send_idx]:bounds[send_idx + 1]]
        msg = yield from comm.sendrecv(out.view(np.uint8), dest=right,
                                       source=left, send_tag=tag + step,
                                       recv_tag=tag + step)
        piece = msg.array(acc.dtype)
        seg = acc[bounds[recv_idx]:bounds[recv_idx + 1]]
        seg[:] = op(seg, piece)
    # allgather
    for step in range(n - 1):
        send_idx = (me - step + 1) % n
        recv_idx = (me - step) % n
        out = acc[bounds[send_idx]:bounds[send_idx + 1]]
        msg = yield from comm.sendrecv(out.view(np.uint8), dest=right,
                                       source=left,
                                       send_tag=tag + n + step,
                                       recv_tag=tag + n + step)
        acc[bounds[recv_idx]:bounds[recv_idx + 1]] = msg.array(acc.dtype)
    return acc
