"""A small MPI-flavoured interface on top of virtual channels.

The Madeleine line of work fed directly into MPICH/Madeleine-III ("a cluster
of clusters enabled MPI implementation"); this module shows the same
layering on our reproduction: tagged point-to-point operations with MPI
matching semantics (source/tag wildcards, unexpected-message queue),
implemented over the Madeleine pack/unpack interface, fully topology
transparent — ranks in different clusters communicate through the gateways
without the application noticing.

All operations are generators to be driven from simulation processes::

    yield from comm.send(array, dest=3, tag=7)
    data = yield from comm.recv(source=ANY_SOURCE, tag=7)
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator, Optional

import numpy as np

from ..madeleine.flags import RecvMode, SendMode
from ..madeleine.vchannel import VirtualChannel
from ..memory import Buffer

__all__ = ["ANY_SOURCE", "ANY_TAG", "Communicator", "Message"]

ANY_SOURCE = -1
ANY_TAG = -1

_HEADER_DTYPE = np.dtype(np.uint32)
_HEADER_BYTES = 12          # tag, nbytes, sender rank


class Message:
    """A received message: payload plus envelope."""

    __slots__ = ("source", "tag", "buffer")

    def __init__(self, source: int, tag: int, buffer: Buffer) -> None:
        self.source = source
        self.tag = tag
        self.buffer = buffer

    @property
    def nbytes(self) -> int:
        return len(self.buffer)

    def array(self, dtype=np.uint8) -> np.ndarray:
        return self.buffer.data.view(dtype)


class Communicator:
    """One rank's endpoint of an MPI-like world over a virtual channel."""

    def __init__(self, vchannel: VirtualChannel, rank: int) -> None:
        if rank not in vchannel.members:
            raise ValueError(f"rank {rank} is not a member of the channel")
        self.vchannel = vchannel
        self.rank = rank
        self.endpoint = vchannel.endpoint(rank)
        self.sim = vchannel.sim
        #: fully received but not yet matched messages (MPI's unexpected
        #: message queue).
        self._unexpected: deque[Message] = deque()

    @property
    def size(self) -> int:
        return len(self.vchannel.members)

    @property
    def ranks(self) -> list[int]:
        return list(self.vchannel.members)

    # -- point to point ----------------------------------------------------------
    def send(self, data: Any, dest: int, tag: int = 0) -> Generator:
        """Blocking tagged send (completes when the message is delivered)."""
        if tag < 0:
            raise ValueError("send tag must be >= 0")
        payload = data if isinstance(data, Buffer) else Buffer.wrap(
            np.asarray(data).view(np.uint8).reshape(-1))
        header = np.array([tag, len(payload), self.rank],
                          dtype=_HEADER_DTYPE).view(np.uint8)
        msg = self.endpoint.begin_packing(dest)
        msg.pack(header, SendMode.SAFER, RecvMode.EXPRESS)
        if len(payload):
            msg.pack(payload, SendMode.CHEAPER, RecvMode.CHEAPER)
        yield msg.end_packing()

    def isend(self, data: Any, dest: int, tag: int = 0):
        """Non-blocking send: returns the completion event immediately."""
        if tag < 0:
            raise ValueError("send tag must be >= 0")
        payload = data if isinstance(data, Buffer) else Buffer.wrap(
            np.asarray(data).view(np.uint8).reshape(-1))
        header = np.array([tag, len(payload), self.rank],
                          dtype=_HEADER_DTYPE).view(np.uint8)
        msg = self.endpoint.begin_packing(dest)
        msg.pack(header, SendMode.SAFER, RecvMode.EXPRESS)
        if len(payload):
            msg.pack(payload, SendMode.CHEAPER, RecvMode.CHEAPER)
        return msg.end_packing()

    def _match(self, source: int, tag: int) -> Optional[Message]:
        for i, m in enumerate(self._unexpected):
            if ((source == ANY_SOURCE or m.source == source)
                    and (tag == ANY_TAG or m.tag == tag)):
                del self._unexpected[i]
                return m
        return None

    def _pull_one(self) -> Generator:
        """Receive the next incoming message in arrival order."""
        incoming = yield self.endpoint.begin_unpacking()
        ev, hdr = incoming.unpack(_HEADER_BYTES, SendMode.SAFER,
                                  RecvMode.EXPRESS)
        yield ev
        tag, nbytes, src = (int(x) for x in hdr.data.view(_HEADER_DTYPE)[:3])
        buf = Buffer.alloc(nbytes, label=f"mpi.recv[{self.rank}]")
        if nbytes:
            incoming.unpack(into=buf)
        yield incoming.end_unpacking()
        return Message(source=src, tag=tag, buffer=buf)

    def recv(self, source: int = ANY_SOURCE,
             tag: int = ANY_TAG) -> Generator:
        """Blocking tagged receive; returns a :class:`Message`."""
        found = self._match(source, tag)
        while found is None:
            msg = yield from self._pull_one()
            if ((source == ANY_SOURCE or msg.source == source)
                    and (tag == ANY_TAG or msg.tag == tag)):
                return msg
            self._unexpected.append(msg)
        return found

    def sendrecv(self, data: Any, dest: int, source: int,
                 send_tag: int = 0, recv_tag: int = ANY_TAG) -> Generator:
        """Exchange without deadlock: post the send, then receive."""
        pending = self.isend(data, dest, tag=send_tag)
        msg = yield from self.recv(source=source, tag=recv_tag)
        yield pending
        return msg
