"""Copy accounting.

The paper's headline technique is *avoiding* copies, so this reproduction
makes every memcpy explicit and countable: all data movement between
:class:`~repro.memory.buffer.Buffer` objects goes through an accounting
object, and the test suite asserts exact copy counts on each forwarding path
(0 for dynamic↔dynamic and borrowed-static, 1 for static×static, per §2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CopyAccounting", "CopySample"]


@dataclass(frozen=True)
class CopySample:
    """One recorded memcpy."""

    t: float          # simulated time at which the copy started (µs)
    nbytes: int
    label: str        # where in the stack the copy happened


@dataclass
class CopyAccounting:
    """Counts copies and copied bytes, with optional per-label breakdown."""

    copies: int = 0
    bytes_copied: int = 0
    samples: list[CopySample] = field(default_factory=list)
    keep_samples: bool = True

    def record(self, t: float, nbytes: int, label: str) -> None:
        self.copies += 1
        self.bytes_copied += int(nbytes)
        if self.keep_samples:
            self.samples.append(CopySample(t, int(nbytes), label))

    def by_label(self) -> dict[str, tuple[int, int]]:
        """Return ``{label: (copy_count, bytes)}`` (needs keep_samples)."""
        out: dict[str, tuple[int, int]] = {}
        for s in self.samples:
            n, b = out.get(s.label, (0, 0))
            out[s.label] = (n + 1, b + s.nbytes)
        return out

    def reset(self) -> None:
        self.copies = 0
        self.bytes_copied = 0
        self.samples.clear()
