"""Buffers, static buffer pools, and copy accounting.

Zero-copy is load-bearing in this reproduction: buffers are numpy views and
the only byte-duplicating primitive is ``Buffer.copy_from``, which reports to
:class:`CopyAccounting` so tests and benchmarks can assert exact copy counts
on every forwarding path.
"""

from .accounting import CopyAccounting, CopySample
from .buffer import Buffer, DYNAMIC, STATIC, as_payload
from .pool import PoolExhausted, StaticBufferPool

__all__ = [
    "CopyAccounting", "CopySample",
    "Buffer", "DYNAMIC", "STATIC", "as_payload",
    "PoolExhausted", "StaticBufferPool",
]
