"""Static buffer pools.

Static-buffer protocols (the SISCI mapped segments, SBP's kernel buffers)
hand out *protocol-owned* memory.  A :class:`StaticBufferPool` models a
finite set of fixed-size blocks; acquisition blocks (in simulated time) when
the pool is exhausted, which is exactly the backpressure a real NIC's
descriptor ring applies.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

import numpy as np

from ..sim import Event, Simulator
from .buffer import Buffer, STATIC

__all__ = ["StaticBufferPool", "PoolExhausted"]


class PoolExhausted(RuntimeError):
    """try_acquire() on an empty pool."""


class StaticBufferPool:
    """Fixed number of fixed-size STATIC buffers with FIFO blocking acquire."""

    def __init__(self, sim: Simulator, count: int, block_size: int,
                 name: str = "pool") -> None:
        if count < 1:
            raise ValueError("pool needs at least one block")
        if block_size < 1:
            raise ValueError("block size must be >= 1")
        self.sim = sim
        self.name = name
        self.block_size = block_size
        self.count = count
        self._free: Deque[Buffer] = deque(
            Buffer(np.zeros(block_size, dtype=np.uint8), kind=STATIC,
                   owner=self, label=f"{name}[{i}]")
            for i in range(count)
        )
        self._waiters: Deque[Event] = deque()

    @property
    def available(self) -> int:
        return len(self._free)

    def acquire(self) -> Event:
        """Event that triggers with a free STATIC buffer."""
        ev = self.sim.event(name=f"{self.name}.acquire")
        if self._free and not self._waiters:
            buf = self._free.popleft()
            buf._released = False
            ev.succeed(buf)
        else:
            self._waiters.append(ev)
        return ev

    def try_acquire(self) -> Buffer:
        """Immediate acquire; raises :class:`PoolExhausted` if empty."""
        if not self._free or self._waiters:
            raise PoolExhausted(f"pool {self.name!r} has no free block")
        buf = self._free.popleft()
        buf._released = False
        return buf

    def release(self, buf: Buffer) -> None:
        if buf.owner is not self:
            raise ValueError(f"buffer {buf!r} does not belong to pool {self.name!r}")
        if buf._released:
            raise ValueError(f"double release of {buf!r}")
        buf._released = True
        if self._waiters:
            buf._released = False
            self._waiters.popleft().succeed(buf)
        else:
            self._free.append(buf)
