"""Static buffer pools.

Static-buffer protocols (the SISCI mapped segments, SBP's kernel buffers)
hand out *protocol-owned* memory.  A :class:`StaticBufferPool` models a
finite set of fixed-size blocks; acquisition blocks (in simulated time) when
the pool is exhausted, which is exactly the backpressure a real NIC's
descriptor ring applies.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Optional

import numpy as np

from ..sim import Event, Simulator
from .buffer import Buffer, STATIC

if TYPE_CHECKING:  # pragma: no cover
    from ..telemetry import Telemetry

__all__ = ["StaticBufferPool", "PoolExhausted"]


class PoolExhausted(RuntimeError):
    """try_acquire() on an empty pool."""


class StaticBufferPool:
    """Fixed number of fixed-size STATIC buffers with FIFO blocking acquire."""

    def __init__(self, sim: Simulator, count: int, block_size: int,
                 name: str = "pool",
                 telemetry: Optional["Telemetry"] = None) -> None:
        if count < 1:
            raise ValueError("pool needs at least one block")
        if block_size < 1:
            raise ValueError("block size must be >= 1")
        self.sim = sim
        self.name = name
        self.block_size = block_size
        self.count = count
        if telemetry is None:
            from ..telemetry import NULL_TELEMETRY
            telemetry = NULL_TELEMETRY
        #: blocks checked out right now; its high-water mark is the
        #: staging-memory footprint question pool sizing asks.
        self._g_in_use = telemetry.metrics.gauge("pool.in_use", pool=name)
        #: acquires that had to block on an exhausted pool (backpressure).
        self._m_waits = telemetry.metrics.counter("pool.acquire_waits",
                                                  pool=name)
        self._free: Deque[Buffer] = deque(
            Buffer(np.zeros(block_size, dtype=np.uint8), kind=STATIC,
                   owner=self, label=f"{name}[{i}]")
            for i in range(count)
        )
        self._waiters: Deque[Event] = deque()
        self._outstanding: set[Buffer] = set()
        self._retired: set[Buffer] = set()

    @property
    def available(self) -> int:
        return len(self._free)

    @property
    def outstanding(self) -> int:
        """Blocks checked out right now (leak probe: 0 after a clean drain)."""
        return len(self._outstanding)

    @property
    def waiting(self) -> int:
        """Acquires currently blocked on an exhausted pool."""
        return len(self._waiters)

    def acquire(self) -> Event:
        """Event that triggers with a free STATIC buffer."""
        ev = self.sim.event(name=f"{self.name}.acquire")
        if self._free and not self._waiters:
            buf = self._free.popleft()
            buf._released = False
            self._outstanding.add(buf)
            self._g_in_use.set(len(self._outstanding))
            ev.succeed(buf)
        else:
            self._m_waits.inc()
            self._waiters.append(ev)
        return ev

    def try_acquire(self) -> Buffer:
        """Immediate acquire; raises :class:`PoolExhausted` if empty."""
        if not self._free or self._waiters:
            raise PoolExhausted(f"pool {self.name!r} has no free block")
        buf = self._free.popleft()
        buf._released = False
        self._outstanding.add(buf)
        self._g_in_use.set(len(self._outstanding))
        return buf

    def release(self, buf: Buffer) -> None:
        if buf.owner is not self:
            raise ValueError(f"buffer {buf!r} does not belong to pool {self.name!r}")
        if buf in self._retired:
            # The pool was reset (node restart) while this block was still
            # checked out by a dying pipeline: swallow the stale release.
            self._retired.discard(buf)
            return
        if buf._released:
            raise ValueError(f"double release of {buf!r}")
        buf._released = True
        self._outstanding.discard(buf)
        if self._waiters:
            buf._released = False
            self._outstanding.add(buf)
            self._waiters.popleft().succeed(buf)
        else:
            self._free.append(buf)
        self._g_in_use.set(len(self._outstanding))

    def cancel_acquire(self, ev: Event) -> bool:
        """Withdraw a still-pending acquire.

        Returns ``True`` if the event was waiting (it will never trigger);
        ``False`` if it is no longer queued — typically granted (or failed)
        in the same instant, in which case the caller owns whatever the
        event delivers.
        """
        try:
            self._waiters.remove(ev)
        except ValueError:
            return False
        return True

    # -- fault recovery ---------------------------------------------------------
    def fail_waiters(self, exc: BaseException) -> int:
        """Fail every blocked acquire with ``exc`` (node crash)."""
        n = 0
        while self._waiters:
            ev = self._waiters.popleft()
            if not ev.triggered:
                ev.fail(exc)
                n += 1
        return n

    def reset(self) -> int:
        """Restore full capacity after a node restart.

        Blocks still checked out by abandoned pipelines are *retired*: their
        eventual release becomes a no-op instead of an error, and fresh
        replacement blocks take their place.  Acquires still blocked at
        reset time (queued between the crash's ``fail_waiters`` and the
        restart) are granted from the replenished pool in FIFO order rather
        than silently dropped — a stranded waiter would otherwise never
        trigger.  Returns the number of blocks replaced.
        """
        retired = len(self._outstanding)
        self._retired |= self._outstanding
        self._outstanding.clear()
        for i in range(retired):
            self._free.append(
                Buffer(np.zeros(self.block_size, dtype=np.uint8),
                       kind=STATIC, owner=self,
                       label=f"{self.name}[r{i}]"))
        while self._waiters and self._free:
            ev = self._waiters.popleft()
            if ev.triggered:
                continue
            buf = self._free.popleft()
            buf._released = False
            self._outstanding.add(buf)
            ev.succeed(buf)
        self._g_in_use.set(len(self._outstanding))
        return retired
