"""Numpy-backed message buffers.

``Buffer`` wraps a ``uint8`` ndarray.  Slicing produces *views* (no copy —
this is what makes zero-copy forwarding real rather than notional), and the
only way to duplicate payload bytes is :meth:`Buffer.copy_from`, which
reports to a :class:`~repro.memory.accounting.CopyAccounting`.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from .accounting import CopyAccounting

__all__ = ["Buffer", "BufferKind", "DYNAMIC", "STATIC", "as_payload"]

#: buffer disciplines (mirrors the Madeleine BMM split, §2.1.1)
DYNAMIC = "dynamic"   # user-allocated memory referenced directly
STATIC = "static"     # protocol-provided memory (mapped segment, kernel pool)

BufferKind = str


def as_payload(data: Union[bytes, bytearray, memoryview, np.ndarray]) -> np.ndarray:
    """View arbitrary byte-like data as a uint8 ndarray without copying."""
    if isinstance(data, np.ndarray):
        if data.dtype != np.uint8:
            return data.view(np.uint8).reshape(-1)
        return data.reshape(-1)
    return np.frombuffer(data, dtype=np.uint8)


class Buffer:
    """A contiguous byte region with a discipline tag and an optional owner.

    ``owner`` is the :class:`~repro.memory.pool.StaticBufferPool` the buffer
    must be released to (static buffers only).
    """

    __slots__ = ("data", "kind", "owner", "label", "_released")

    def __init__(self, data: np.ndarray, kind: BufferKind = DYNAMIC,
                 owner: Optional[object] = None, label: str = "") -> None:
        if kind not in (DYNAMIC, STATIC):
            raise ValueError(f"unknown buffer kind {kind!r}")
        self.data = as_payload(data)
        self.kind = kind
        self.owner = owner
        self.label = label
        self._released = False

    # -- constructors -------------------------------------------------------
    @classmethod
    def alloc(cls, nbytes: int, kind: BufferKind = DYNAMIC,
              label: str = "") -> "Buffer":
        if nbytes < 0:
            raise ValueError("buffer size must be >= 0")
        return cls(np.zeros(nbytes, dtype=np.uint8), kind=kind, label=label)

    @classmethod
    def wrap(cls, data, label: str = "") -> "Buffer":
        """Wrap user data (bytes / ndarray) as a DYNAMIC buffer, no copy."""
        return cls(as_payload(data), kind=DYNAMIC, label=label)

    # -- basics ---------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.data.shape[0])

    @property
    def nbytes(self) -> int:
        return len(self)

    def view(self, start: int = 0, stop: Optional[int] = None) -> "Buffer":
        """A zero-copy sub-buffer sharing this buffer's memory."""
        stop = len(self) if stop is None else stop
        if not (0 <= start <= stop <= len(self)):
            raise IndexError(f"view [{start}:{stop}] out of range for {len(self)}B")
        sub = Buffer(self.data[start:stop], kind=self.kind, owner=None,
                     label=self.label)
        return sub

    def tobytes(self) -> bytes:
        return self.data.tobytes()

    def shares_memory_with(self, other: "Buffer") -> bool:
        return bool(np.shares_memory(self.data, other.data))

    # -- the one and only copy primitive -------------------------------------
    def copy_from(self, src: "Buffer", accounting: CopyAccounting,
                  t: float, label: str) -> None:
        """memcpy ``src`` into this buffer (sizes must match) and account it."""
        if len(src) != len(self):
            raise ValueError(f"copy size mismatch: {len(src)} -> {len(self)}")
        self.data[:] = src.data
        accounting.record(t, len(src), label)

    def fill_from_bytes(self, raw: bytes, accounting: CopyAccounting,
                        t: float, label: str) -> None:
        """Copy raw header bytes into the buffer (also accounted)."""
        if len(raw) > len(self):
            raise ValueError("data larger than buffer")
        self.data[:len(raw)] = np.frombuffer(raw, dtype=np.uint8)
        accounting.record(t, len(raw), label)

    def __repr__(self) -> str:  # pragma: no cover
        tag = f" {self.label}" if self.label else ""
        return f"<Buffer{tag} {self.kind} {len(self)}B>"
