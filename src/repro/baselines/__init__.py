"""Comparison baselines: application-level forwarding (Nexus-style) and
PACX-style TCP inter-cluster coupling."""

from .app_forward import AppLevelForwarder, app_recv, app_send
from .pacx import PacxCoupling, build_pacx_coupling

__all__ = ["AppLevelForwarder", "app_recv", "app_send",
           "PacxCoupling", "build_pacx_coupling"]
