"""Application-level store-and-forward baseline (the design §2.2.2 rejects).

Nexus-style multi-device systems leave routing to the application: a relay
program on the gateway *receives the whole message* with regular operations,
then *re-sends* it on the other network.  Compared to the integrated GTM
mechanism this

* buffers every message entirely on the gateway (no pipelining: the second
  hop starts only after the last byte of the first hop has arrived),
* moves all data through Madeleine twice with extra copies into temporary
  buffers, and
* is not transparent: messages must carry an application-level envelope
  (destination + size header) and gateway code is part of the application.

This module implements exactly that, as a baseline for the benchmarks.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..madeleine.channel import RealChannel
from ..madeleine.flags import RecvMode, SendMode
from ..memory import Buffer
from ..routing import RouteTable
from ..sim import Event

__all__ = ["AppLevelForwarder", "app_send", "app_recv"]

_HEADER = np.dtype(np.uint32)


class AppLevelForwarder:
    """A relay *application* running on one gateway rank.

    Spawns one relay process per channel the gateway belongs to; each loops:
    receive envelope + full payload into a temporary buffer, look up the next
    hop, re-send.  ``stop()`` terminates the relays after in-flight messages.
    """

    def __init__(self, channels: Sequence[RealChannel], gw_rank: int) -> None:
        self.channels = [ch for ch in channels if gw_rank in ch.members]
        if len(self.channels) < 2:
            raise ValueError("a forwarder needs a rank on >= 2 channels")
        self.gw_rank = gw_rank
        self.routes = RouteTable(list(channels))
        self.sim = self.channels[0].sim
        self.accounting = self.channels[0].fabric.accounting
        self.node = self.channels[0].world.nodes[gw_rank]
        self.messages_forwarded = 0
        self._stopping = False
        self.processes = [
            self.sim.process(self._relay(ch), name=f"appfwd:{ch.id}@{gw_rank}")
            for ch in self.channels
        ]

    def stop(self) -> None:
        self._stopping = True

    def _relay(self, channel: RealChannel):
        ep = channel.endpoint(self.gw_rank)
        while not self._stopping:
            inc = yield ep.begin_unpacking()
            ev, hdr = inc.unpack(8, SendMode.CHEAPER, RecvMode.EXPRESS)
            yield ev
            final_dst, size = (int(x) for x in hdr.data.view(_HEADER)[:2])
            temp = Buffer.alloc(size, label="appfwd.temp")
            _ev2, _ = inc.unpack(into=temp)
            yield inc.end_unpacking()
            # The relay is ordinary application code: it works on its own
            # temporary buffer.  Model the user-space handling cost (the
            # extra copy the paper's §2.2.2 calls "unavoidable" at this
            # level) as one charged memcpy.
            staged = Buffer.alloc(size, label="appfwd.stage")
            yield from self.node.memcpy(size)
            staged.copy_from(temp, self.accounting, self.sim.now,
                             "baseline.app_copy")
            hop = self.routes.next_hop(self.gw_rank, final_dst)
            out = hop.channel.endpoint(self.gw_rank).begin_packing(hop.dst)
            out.pack(hdr, SendMode.SAFER, RecvMode.EXPRESS)
            out.pack(staged, SendMode.CHEAPER, RecvMode.CHEAPER)
            yield out.end_packing()
            self.messages_forwarded += 1


def app_send(channel_table: RouteTable, src: int, dst: int,
             data) -> "Event":
    """Send ``data`` from ``src`` toward ``dst`` with the application-level
    envelope; returns the end_packing event.  The caller must be a process.
    """
    hop = channel_table.next_hop(src, dst)
    msg = hop.channel.endpoint(src).begin_packing(hop.dst)
    data = data if isinstance(data, Buffer) else Buffer.wrap(data)
    hdr = np.array([dst, len(data)], dtype=np.uint32).view(np.uint8)
    msg.pack(hdr, SendMode.SAFER, RecvMode.EXPRESS)
    msg.pack(data, SendMode.CHEAPER, RecvMode.CHEAPER)
    return msg.end_packing()


def app_recv(channel: RealChannel, rank: int):
    """Generator: receive one enveloped message at ``rank`` on ``channel``;
    returns (origin_envelope_dst, Buffer).  Yields sim events."""
    ep = channel.endpoint(rank)
    inc = yield ep.begin_unpacking()
    ev, hdr = inc.unpack(8, SendMode.CHEAPER, RecvMode.EXPRESS)
    yield ev
    final_dst, size = (int(x) for x in hdr.data.view(_HEADER)[:2])
    if final_dst != rank:
        raise RuntimeError(
            f"envelope addressed to {final_dst} arrived at {rank}")
    _ev, buf = inc.unpack(size)
    yield inc.end_unpacking()
    return buf
