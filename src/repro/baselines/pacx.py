"""PACX-style inter-cluster glue baseline (§1).

PACX-MPI couples clusters by running relay daemons that ship *all*
inter-cluster traffic over TCP, regardless of the fast links that may exist
between the clusters.  The paper's opening argument is that this wastes the
gigabit-class inter-cluster hardware of a cluster of clusters.

This module builds that architecture on our substrate: native high-speed
channels inside each cluster, a TCP channel between the two gateway daemons,
and application-level store-and-forward relays on both daemons (PACX relays
are ordinary MPI processes — they cannot pipeline through the NICs either).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..madeleine.channel import RealChannel
from ..madeleine.session import Session
from ..routing import RouteTable
from .app_forward import AppLevelForwarder

__all__ = ["PacxCoupling", "build_pacx_coupling"]


@dataclass
class PacxCoupling:
    """The assembled baseline: channels, relays, and a route table for the
    application-level envelope protocol."""

    intra_a: RealChannel
    intra_b: RealChannel
    inter: RealChannel
    relays: tuple[AppLevelForwarder, AppLevelForwarder]
    routes: RouteTable

    @property
    def channels(self) -> list[RealChannel]:
        return [self.intra_a, self.intra_b, self.inter]


def build_pacx_coupling(session: Session,
                        cluster_a: Sequence[str | int], protocol_a: str,
                        cluster_b: Sequence[str | int], protocol_b: str,
                        tcp_protocol: str = "gigabit_tcp") -> PacxCoupling:
    """Couple two clusters PACX-style.

    The *last* node of each cluster acts as that cluster's relay daemon and
    must own an adapter of ``tcp_protocol`` (plus its cluster protocol).
    """
    ranks_a = session.ranks(cluster_a)
    ranks_b = session.ranks(cluster_b)
    daemon_a, daemon_b = ranks_a[-1], ranks_b[-1]
    intra_a = session.channel(protocol_a, ranks_a)
    intra_b = session.channel(protocol_b, ranks_b)
    inter = session.channel(tcp_protocol, [daemon_a, daemon_b])
    channels = [intra_a, intra_b, inter]
    relay_a = AppLevelForwarder(channels, daemon_a)
    relay_b = AppLevelForwarder(channels, daemon_b)
    return PacxCoupling(intra_a=intra_a, intra_b=intra_b, inter=inter,
                        relays=(relay_a, relay_b),
                        routes=RouteTable(channels))
