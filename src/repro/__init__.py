"""repro — reproduction of *Efficient Inter-Device Data-Forwarding in the
Madeleine Communication Library* (Aumage, Eyraud, Namyst — IPPS 2001).

The package rebuilds the paper's whole system on a deterministic
discrete-event simulator (the 2001 Myrinet/SCI testbed being long gone):

* :mod:`repro.sim` — the simulation kernel (events, processes, fluid flows);
* :mod:`repro.hw` — PCI buses, NICs, links, nodes, cluster topologies;
* :mod:`repro.memory` — numpy-backed buffers, pools, copy accounting;
* :mod:`repro.madeleine` — the Madeleine library: channels, BMMs, TMs, the
  Generic Transmission Module, virtual channels, gateway pipelines;
* :mod:`repro.routing` — cluster-of-clusters routing and MTU negotiation;
* :mod:`repro.faults` — deterministic fault injection (drops, corruption,
  delays, link and gateway failures) and the knobs that drive failover;
* :mod:`repro.baselines` — Nexus-style app-level forwarding, PACX-style TCP;
* :mod:`repro.minimpi` — an MPI-flavoured layer (the Madeleine-III direction);
* :mod:`repro.rpc` — PM2-style lightweight RPC over virtual channels;
* :mod:`repro.bench` — the §3.1 ping method and figure sweeps;
* :mod:`repro.analysis` — bandwidth curves and pipeline timelines.

Quickstart::

    from repro.hw import build_world
    from repro.madeleine import Session

    world = build_world({"m0": ["myrinet"], "gw": ["myrinet", "sci"],
                         "s0": ["sci"]})
    session = Session(world)
    vch = session.virtual_channel([
        session.channel("myrinet", ["m0", "gw"]),
        session.channel("sci", ["gw", "s0"]),
    ], packet_size=64 << 10)
    # see examples/quickstart.py for the full send/receive loop
"""

__version__ = "1.0.0"

from . import (analysis, baselines, bench, faults, hw, madeleine, memory,
               minimpi, routing, rpc, sim)

__all__ = ["analysis", "baselines", "bench", "faults", "hw", "madeleine",
           "memory", "minimpi", "routing", "rpc", "sim", "__version__"]
