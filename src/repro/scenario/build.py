"""Turn a declarative :class:`Scenario` into live simulation objects."""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..hw import build_world as _build_world
from .schema import Scenario

if TYPE_CHECKING:  # pragma: no cover
    from ..hw.topology import World

__all__ = ["build_world"]


def build_world(scenario: Scenario) -> "World":
    """Build the scenario's world: its nodes/adapters on its scheduler.

    Channels, fault arming, and the virtual channel are the session's job —
    use :meth:`Session.from_scenario` for the whole stack, or build on the
    returned world by hand for custom harnesses.
    """
    return _build_world(scenario.topology.node_spec(),
                        scheduler=scenario.scheduler,
                        bucket_width=scenario.bucket_width)
