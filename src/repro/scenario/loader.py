"""Scenario file I/O: YAML and JSON.

A scenario file is a plain mapping of the :meth:`Scenario.to_dict` shape.
JSON support is always available; YAML needs PyYAML and raises a clear
error when it is missing (the library keeps zero hard dependencies beyond
numpy/networkx).  The format is picked by extension (``.yaml``/``.yml`` vs
``.json``) and by sniffing for pathless text.

Fuzz repro files (``{"version": ..., "scenario": {...}}`` wrappers written
by ``repro fuzz``) are accepted transparently — the embedded scenario is
returned — so one loader serves ``repro bench --scenario``,
``repro fuzz --replay``, and :meth:`Session.from_scenario`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from .schema import Scenario

__all__ = ["load_scenario", "loads_scenario", "dump_scenario"]


def _yaml():
    try:
        import yaml
    except ImportError as exc:  # pragma: no cover - depends on environment
        raise RuntimeError(
            "YAML scenario files need PyYAML (pip install pyyaml); "
            "JSON scenarios work without it") from exc
    return yaml


def _from_doc(doc: object) -> Scenario:
    if not isinstance(doc, dict):
        raise ValueError(f"scenario document must be a mapping, "
                         f"got {type(doc).__name__}")
    if "scenario" in doc and "topology" not in doc:
        # A fuzz repro wrapper: {"version": ..., "scenario": {...}, ...}.
        inner = doc["scenario"]
        if not isinstance(inner, dict):
            raise ValueError("repro file 'scenario' entry must be a mapping")
        return Scenario.from_dict(inner)
    return Scenario.from_dict(doc)


def loads_scenario(text: str, fmt: str = "auto") -> Scenario:
    """Parse a scenario from ``text``; ``fmt`` is ``json``, ``yaml``, or
    ``auto`` (try JSON first — every JSON document is also valid YAML)."""
    if fmt == "json":
        return _from_doc(json.loads(text))
    if fmt == "yaml":
        return _from_doc(_yaml().safe_load(text))
    if fmt != "auto":
        raise ValueError(f"unknown scenario format {fmt!r}")
    try:
        return _from_doc(json.loads(text))
    except json.JSONDecodeError:
        return _from_doc(_yaml().safe_load(text))


def load_scenario(path: Union[str, Path]) -> Scenario:
    """Load a scenario (or a fuzz repro file) from a YAML/JSON file."""
    path = Path(path)
    text = path.read_text()
    suffix = path.suffix.lower()
    if suffix in (".yaml", ".yml"):
        return loads_scenario(text, "yaml")
    if suffix == ".json":
        return loads_scenario(text, "json")
    return loads_scenario(text, "auto")


def dump_scenario(scenario: Scenario, path: Union[str, Path]) -> None:
    """Write ``scenario`` to ``path`` (format by extension, default JSON)."""
    path = Path(path)
    doc = scenario.to_dict()
    if path.suffix.lower() in (".yaml", ".yml"):
        path.write_text(_yaml().safe_dump(doc, sort_keys=False))
    else:
        path.write_text(json.dumps(doc, indent=2) + "\n")
