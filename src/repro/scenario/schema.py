"""The declarative scenario schema: one experiment, fully pinned.

A :class:`Scenario` pins *everything* a run depends on — topology shape,
virtual-channel configuration, traffic (an explicit message list and/or a
generated :class:`TrafficSpec`), the seeded fault schedule, and the event
scheduler — so the same scenario dict always replays the same simulated
microseconds.  Channel and node names are deterministic functions of the
topology, which is what lets a fault plan in a corpus file name its targets
portably.

Benches, the fuzzer, the chaos harness, and the traffic engine all consume
this one format (``repro bench --scenario`` / ``repro fuzz --replay`` /
``Session.from_scenario``).

Five topology families:

* ``chain`` — 2..3 homogeneous clusters bridged by 1..2 parallel gateways
  per boundary (the cluster-of-clusters testbed, §3);
* ``multirail`` — two endpoints joined by N disjoint rails through N
  gateways (the striping/multirail layouts);
* ``hierarchy`` — an N-cluster chain with any number of parallel gateways
  per boundary (generated; scales to hundreds of nodes);
* ``fat_tree`` — a leaf/spine network, one rail per spine plane (generated);
* ``torus`` — a 2D/3D torus direct network à la APEnet+ (generated; set
  ``dims``).

The generated families delegate their node/channel layout to
:mod:`repro.hw.topogen`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Mapping, Optional, Tuple, Union

from ..faults import FaultPlan
from ..hw.params import PROTOCOLS

__all__ = ["MessageSpec", "TrafficSpec", "Topology", "Scenario",
           "SCENARIO_VERSION", "TRAFFIC_PATTERNS"]

SCENARIO_VERSION = 1

#: cluster name prefixes for the chain family ("a0", "b1", ...).
_CLUSTER_TAGS = "abc"

#: topology kinds whose layout is produced by :mod:`repro.hw.topogen`.
_GENERATED_KINDS = ("hierarchy", "fat_tree", "torus")

#: traffic-engine arrival patterns (see :mod:`repro.traffic`).
TRAFFIC_PATTERNS = ("uniform", "permutation", "hotspot", "incast")


@lru_cache(maxsize=128)
def _generated(topo: "Topology"):
    """Materialize a generated topology (cached per frozen Topology)."""
    from ..hw import topogen
    if topo.kind == "torus":
        return topogen.torus(topo.dims, topo.protocols[0])
    if topo.kind == "fat_tree":
        leaves, hosts = topo.sizes
        return topogen.fat_tree(
            leaves=leaves, spines=topo.gateways[0], hosts_per_leaf=hosts,
            leaf_protocol=topo.protocols[0],
            spine_protocol=topo.protocols[1])
    if topo.kind == "hierarchy":
        clusters, size = topo.sizes
        return topogen.hierarchy(
            clusters=clusters, cluster_size=size,
            gateways_per_boundary=topo.gateways[0],
            protocols=topo.protocols)
    raise ValueError(f"not a generated kind: {topo.kind!r}")


@dataclass(frozen=True)
class MessageSpec:
    """One application transfer. ``kind`` is ``reliable`` (go-back-N over
    the fault layer) or ``plain`` (raw pack/unpack; only valid on a
    fault-free scenario, where Madeleine's reliable-network assumption
    holds)."""

    src: str
    dst: str
    nbytes: int
    kind: str = "reliable"

    def __post_init__(self) -> None:
        if self.nbytes < 1:
            raise ValueError(f"message nbytes must be >= 1, got {self.nbytes}")
        if self.kind not in ("reliable", "plain"):
            raise ValueError(f"unknown message kind {self.kind!r}")


@dataclass(frozen=True)
class TrafficSpec:
    """Generated traffic: open-loop Poisson flow arrivals over a pattern.

    The traffic engine (:mod:`repro.traffic`) expands this into concrete
    flows at run time, deterministically from the scenario seed:

    * ``uniform`` — source and destination drawn uniformly per flow;
    * ``permutation`` — a fixed random endpoint permutation, flow *i* goes
      src[i mod n] → perm(src);
    * ``hotspot`` — a ``hotspot_fraction`` of flows all target one hot
      endpoint, the rest are uniform;
    * ``incast`` — every flow targets the single sink endpoint (the
      many-to-one burst that stresses gateway queues).
    """

    pattern: str = "uniform"
    #: total flows launched over the run.
    flows: int = 32
    #: mean of the exponential inter-arrival gap, µs (open-loop Poisson).
    mean_interarrival: float = 200.0
    #: flow size in bytes; with ``size_jitter`` j > 0, sizes are drawn
    #: uniformly from [size·(1−j), size·(1+j)].
    size: int = 64 << 10
    size_jitter: float = 0.0
    #: fraction of flows aimed at the hot endpoint (hotspot pattern only).
    hotspot_fraction: float = 0.5
    #: transfer kind for generated flows ("plain" | "reliable").
    kind: str = "plain"

    def __post_init__(self) -> None:
        if self.pattern not in TRAFFIC_PATTERNS:
            raise ValueError(f"unknown traffic pattern {self.pattern!r}; "
                             f"expected one of {TRAFFIC_PATTERNS}")
        if self.flows < 1:
            raise ValueError(f"flows must be >= 1, got {self.flows}")
        if self.mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be > 0")
        if self.size < 1:
            raise ValueError(f"flow size must be >= 1, got {self.size}")
        if not 0.0 <= self.size_jitter < 1.0:
            raise ValueError("size_jitter must be in [0, 1)")
        if not 0.0 < self.hotspot_fraction <= 1.0:
            raise ValueError("hotspot_fraction must be in (0, 1]")
        if self.kind not in ("reliable", "plain"):
            raise ValueError(f"unknown traffic kind {self.kind!r}")

    def to_dict(self) -> dict:
        return {"pattern": self.pattern, "flows": self.flows,
                "mean_interarrival": self.mean_interarrival,
                "size": self.size, "size_jitter": self.size_jitter,
                "hotspot_fraction": self.hotspot_fraction, "kind": self.kind}

    @classmethod
    def from_dict(cls, d: Mapping) -> "TrafficSpec":
        return cls(pattern=d.get("pattern", "uniform"),
                   flows=int(d.get("flows", 32)),
                   mean_interarrival=float(d.get("mean_interarrival", 200.0)),
                   size=int(d.get("size", 64 << 10)),
                   size_jitter=float(d.get("size_jitter", 0.0)),
                   hotspot_fraction=float(d.get("hotspot_fraction", 0.5)),
                   kind=d.get("kind", "plain"))


@dataclass(frozen=True)
class Topology:
    """Deterministic topology shape; all names derive from these fields."""

    kind: str                        # chain|multirail|hierarchy|fat_tree|torus
    protocols: Tuple[str, ...]       # meaning is per-kind, see below
    sizes: Tuple[int, ...] = ()      # endpoints per cluster (chain),
    #                                # (clusters, cluster_size) for hierarchy,
    #                                # (leaves, hosts_per_leaf) for fat_tree
    gateways: Tuple[int, ...] = ()   # per boundary (chain) / (rails,) count /
    #                                # (gateways_per_boundary,) / (spines,)
    dims: Tuple[int, ...] = ()       # torus only: 2 or 3 dimension sizes

    def __post_init__(self) -> None:
        unknown = [p for p in self.protocols if p not in PROTOCOLS]
        if unknown:
            raise ValueError(f"unknown protocols {unknown}")
        if self.kind != "torus" and self.dims:
            raise ValueError("dims is only valid for the torus kind")
        if self.kind == "chain":
            if not 2 <= len(self.protocols) <= len(_CLUSTER_TAGS):
                raise ValueError("chain needs 2..3 clusters")
            if len(self.sizes) != len(self.protocols):
                raise ValueError("one size per cluster")
            if len(self.gateways) != len(self.protocols) - 1:
                raise ValueError("one gateway count per boundary")
            if any(s < 1 for s in self.sizes):
                raise ValueError("cluster sizes must be >= 1")
            if any(not 1 <= g <= 2 for g in self.gateways):
                raise ValueError("1..2 gateways per boundary")
            for a, b in zip(self.protocols, self.protocols[1:]):
                if a == b:
                    raise ValueError(
                        f"adjacent clusters must differ in protocol ({a!r})")
        elif self.kind == "multirail":
            if len(self.protocols) != 2 or len(set(self.protocols)) != 2:
                raise ValueError("multirail needs two distinct protocols")
            if len(self.gateways) != 1 or not 2 <= self.gateways[0] <= 3:
                raise ValueError("multirail needs 2..3 rails")
        elif self.kind == "hierarchy":
            if len(self.protocols) < 1:
                raise ValueError("hierarchy needs at least one protocol")
            if len(self.sizes) != 2 or any(s < 1 for s in self.sizes):
                raise ValueError(
                    "hierarchy sizes must be (clusters, cluster_size)")
            if len(self.gateways) != 1 or self.gateways[0] < 1:
                raise ValueError(
                    "hierarchy gateways must be (gateways_per_boundary,)")
        elif self.kind == "fat_tree":
            if len(self.protocols) != 2:
                raise ValueError(
                    "fat_tree needs (leaf_protocol, spine_protocol)")
            if len(self.sizes) != 2 or any(s < 1 for s in self.sizes):
                raise ValueError(
                    "fat_tree sizes must be (leaves, hosts_per_leaf)")
            if len(self.gateways) != 1 or self.gateways[0] < 1:
                raise ValueError("fat_tree gateways must be (spines,)")
        elif self.kind == "torus":
            if len(self.protocols) != 1:
                raise ValueError("torus uses exactly one protocol")
            if self.sizes or self.gateways:
                raise ValueError("torus is shaped by dims, not sizes/gateways")
            if len(self.dims) not in (2, 3) or any(d < 2 for d in self.dims):
                raise ValueError(
                    f"torus dims must be 2-3 sizes >= 2, got {self.dims!r}")
        else:
            raise ValueError(f"unknown topology kind {self.kind!r}")

    # -- derived names -----------------------------------------------------------
    @property
    def rails(self) -> int:
        return self.gateways[0]

    @property
    def generated(self):
        """The :class:`~repro.hw.topogen.GeneratedTopology` backing a
        generated kind (hierarchy/fat_tree/torus)."""
        return _generated(self)

    @property
    def has_parallel_routes(self) -> bool:
        """True when at least one endpoint pair has ≥ 2 disjoint routes
        (what multirail dispatch and striping need)."""
        if self.kind == "multirail" or self.kind == "torus":
            return True
        if self.kind == "chain":
            return any(g >= 2 for g in self.gateways)
        return self.gateways[0] >= 2    # hierarchy / fat_tree

    def endpoint_names(self) -> list[str]:
        if self.kind in _GENERATED_KINDS:
            return list(self.generated.endpoints)
        if self.kind == "multirail":
            return ["a0", "b0"]
        return [f"{_CLUSTER_TAGS[c]}{i}"
                for c, size in enumerate(self.sizes) for i in range(size)]

    def gateway_names(self) -> list[str]:
        if self.kind in _GENERATED_KINDS:
            return list(self.generated.gateways)
        if self.kind == "multirail":
            return [f"gw{r}" for r in range(self.rails)]
        return [f"gw{b}{k}" for b, count in enumerate(self.gateways)
                for k in range(count)]

    def channel_names(self) -> list[str]:
        if self.kind in _GENERATED_KINDS:
            return [c.name for c in self.generated.channels]
        if self.kind == "multirail":
            return [f"c{side}{r}" for r in range(self.rails)
                    for side in "ab"]
        return [f"c{c}" for c in range(len(self.protocols))]

    def node_spec(self) -> dict[str, list[str]]:
        """The ``build_world`` adapter mapping."""
        if self.kind in _GENERATED_KINDS:
            return self.generated.node_spec()
        if self.kind == "multirail":
            pa, pb = self.protocols
            rails = self.rails
            spec: dict[str, list[str]] = {"a0": [pa] * rails}
            for r in range(rails):
                spec[f"gw{r}"] = [pa, pb]
            spec["b0"] = [pb] * rails
            return spec
        spec = {}
        for c, (proto, size) in enumerate(zip(self.protocols, self.sizes)):
            for i in range(size):
                spec[f"{_CLUSTER_TAGS[c]}{i}"] = [proto]
        for b, count in enumerate(self.gateways):
            for k in range(count):
                spec[f"gw{b}{k}"] = [self.protocols[b], self.protocols[b + 1]]
        return spec

    def channel_specs(self) -> list[tuple[str, str, list[str],
                                          Union[int, dict]]]:
        """``(name, protocol, members, adapter_index)`` per real channel."""
        if self.kind in _GENERATED_KINDS:
            return self.generated.channel_specs()
        if self.kind == "multirail":
            pa, pb = self.protocols
            out = []
            for r in range(self.rails):
                out.append((f"ca{r}", pa, ["a0", f"gw{r}"], {"a0": r}))
                out.append((f"cb{r}", pb, [f"gw{r}", "b0"], {"b0": r}))
            return out
        out = []
        for c, proto in enumerate(self.protocols):
            members = [f"{_CLUSTER_TAGS[c]}{i}" for i in range(self.sizes[c])]
            if c > 0:
                members += [f"gw{c - 1}{k}"
                            for k in range(self.gateways[c - 1])]
            if c < len(self.gateways):
                members += [f"gw{c}{k}" for k in range(self.gateways[c])]
            out.append((f"c{c}", proto, members, 0))
        return out

    @property
    def n_nodes(self) -> int:
        if self.kind in _GENERATED_KINDS:
            return self.generated.node_count
        return len(self.endpoint_names()) + len(self.gateway_names())

    def to_dict(self) -> dict:
        d = {"kind": self.kind, "protocols": list(self.protocols),
             "sizes": list(self.sizes), "gateways": list(self.gateways)}
        if self.dims:
            d["dims"] = list(self.dims)
        return d

    @classmethod
    def from_dict(cls, d: Mapping) -> "Topology":
        return cls(kind=d["kind"], protocols=tuple(d["protocols"]),
                   sizes=tuple(d.get("sizes", ())),
                   gateways=tuple(d.get("gateways", ())),
                   dims=tuple(d.get("dims", ())))


@dataclass(frozen=True)
class Scenario:
    """Everything one run depends on, JSON/YAML round-trippable."""

    seed: int
    topology: Topology
    packet_size: int = 16 << 10
    header_batching: bool = False
    multirail: bool = False
    #: (depth, credits, lockstep) for the gateway pipeline; None = default.
    pipeline: Optional[Tuple[int, int, bool]] = None
    #: (max_rails, min_stripe) striping policy; None = no striping.
    stripe: Optional[Tuple[int, int]] = None
    #: (eager_threshold, restripe_high, restripe_low, gateway_balance)
    #: adaptive transport policy (docs/adaptive.md); None = static wire
    #: decisions, bit-identical to pre-adaptive runs.
    adaptive: Optional[Tuple[int, float, float, bool]] = None
    messages: Tuple[MessageSpec, ...] = ()
    #: generated traffic on top of (or instead of) the explicit messages.
    traffic: Optional[TrafficSpec] = None
    faults: FaultPlan = field(default_factory=FaultPlan)
    max_attempts: int = 8
    gw_stall_timeout: Optional[float] = 5_000.0
    #: event-queue implementation: "heap" (default, bit-identical to the
    #: historical kernel) or "calendar" (sub-linear at high flow counts).
    scheduler: str = "heap"
    bucket_width: Optional[float] = None

    # -- sanity -------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`ValueError` on an internally inconsistent scenario
        (names that don't exist, plain traffic under faults, ...)."""
        topo = self.topology
        endpoints = set(topo.endpoint_names())
        gateways = set(topo.gateway_names())
        channels = set(topo.channel_names())
        problems = []
        if self.packet_size < 1 << 10:
            problems.append(f"packet_size too small: {self.packet_size}")
        if not self.messages and self.traffic is None:
            problems.append("scenario has no traffic")
        if self.scheduler not in ("heap", "calendar"):
            problems.append(f"unknown scheduler {self.scheduler!r}")
        if self.bucket_width is not None and self.bucket_width <= 0:
            problems.append(f"bucket_width must be > 0: {self.bucket_width}")
        for m in self.messages:
            for end in (m.src, m.dst):
                if end not in endpoints:
                    problems.append(f"message endpoint {end!r} is not an "
                                    f"endpoint node (have {sorted(endpoints)})")
            if m.src == m.dst:
                problems.append(f"message {m.src!r}->{m.dst!r} is a loopback")
            if m.kind == "plain" and not self.quiet:
                problems.append("plain traffic requires a fault-free plan")
        if self.traffic is not None:
            if self.traffic.kind == "plain" and not self.quiet:
                problems.append("plain traffic requires a fault-free plan")
            if len(endpoints) < 2:
                problems.append("generated traffic needs >= 2 endpoints")
        for cid in self.faults.channels:
            if cid not in channels:
                problems.append(f"fault plan names unknown channel {cid!r}")
        for ev in self.faults.link_events:
            if ev.channel not in channels:
                problems.append(f"link event names unknown channel "
                                f"{ev.channel!r}")
        for ev in self.faults.node_events:
            if ev.node not in gateways:
                # Endpoint crashes make delivery legitimately impossible in
                # ways the invariant catalog cannot distinguish from bugs;
                # the fuzzer only crashes forwarding nodes.
                problems.append(f"node event target {ev.node!r} is not a "
                                f"gateway (have {sorted(gateways)})")
        if self.pipeline is not None:
            depth, credits, lockstep = self.pipeline
            if lockstep and depth != 2:
                problems.append("lockstep pipeline must have depth 2")
            if not 1 <= credits <= depth:
                problems.append(f"credits {credits} outside [1, {depth}]")
        if self.stripe is not None and not topo.has_parallel_routes:
            problems.append("striping requires a topology with parallel "
                            "routes")
        if self.adaptive is not None:
            eager, high, low, _balance = self.adaptive
            if eager < 0:
                problems.append(f"adaptive eager threshold must be >= 0, "
                                f"got {eager}")
            if low < 1.0 or high <= low:
                problems.append(f"adaptive re-stripe hysteresis needs "
                                f"high > low >= 1, got ({high}, {low})")
        if self.multirail and not topo.has_parallel_routes:
            problems.append("multirail dispatch requires parallel routes")
        if problems:
            raise ValueError("invalid scenario: " + "; ".join(problems))

    @property
    def quiet(self) -> bool:
        """True when the fault plan injects nothing at all."""
        f = self.faults
        return (not f.link_events and not f.node_events
                and (f.default is None or f.default.quiet)
                and all(cf.quiet for cf in f.channels.values()))

    @property
    def n_fault_events(self) -> int:
        return len(self.faults.link_events) + len(self.faults.node_events)

    def with_(self, **kw) -> "Scenario":
        """`dataclasses.replace` spelled as a method (minimizer passes)."""
        return replace(self, **kw)

    # -- serialization ------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "version": SCENARIO_VERSION,
            "seed": self.seed,
            "topology": self.topology.to_dict(),
            "packet_size": self.packet_size,
            "header_batching": self.header_batching,
            "multirail": self.multirail,
            "pipeline": list(self.pipeline) if self.pipeline else None,
            "stripe": list(self.stripe) if self.stripe else None,
            "adaptive": list(self.adaptive) if self.adaptive else None,
            "messages": [{"src": m.src, "dst": m.dst, "nbytes": m.nbytes,
                          "kind": m.kind} for m in self.messages],
            "traffic": self.traffic.to_dict() if self.traffic else None,
            "faults": self.faults.to_dict(),
            "max_attempts": self.max_attempts,
            "gw_stall_timeout": self.gw_stall_timeout,
            "scheduler": self.scheduler,
            "bucket_width": self.bucket_width,
        }

    @classmethod
    def from_dict(cls, d: Mapping) -> "Scenario":
        version = d.get("version", SCENARIO_VERSION)
        if version != SCENARIO_VERSION:
            raise ValueError(f"unsupported scenario version {version}")
        pipeline = d.get("pipeline")
        stripe = d.get("stripe")
        adaptive = d.get("adaptive")
        traffic = d.get("traffic")
        bucket_width = d.get("bucket_width")
        return cls(
            seed=int(d["seed"]),
            topology=Topology.from_dict(d["topology"]),
            packet_size=int(d.get("packet_size", 16 << 10)),
            header_batching=bool(d.get("header_batching", False)),
            multirail=bool(d.get("multirail", False)),
            pipeline=None if pipeline is None else (int(pipeline[0]),
                                                    int(pipeline[1]),
                                                    bool(pipeline[2])),
            stripe=None if stripe is None else (int(stripe[0]),
                                                int(stripe[1])),
            adaptive=None if adaptive is None else (int(adaptive[0]),
                                                    float(adaptive[1]),
                                                    float(adaptive[2]),
                                                    bool(adaptive[3])),
            messages=tuple(MessageSpec(**m) for m in d.get("messages", ())),
            traffic=None if traffic is None else TrafficSpec.from_dict(
                traffic),
            faults=FaultPlan.from_dict(d.get("faults", {})),
            max_attempts=int(d.get("max_attempts", 8)),
            gw_stall_timeout=d.get("gw_stall_timeout"),
            scheduler=d.get("scheduler", "heap"),
            bucket_width=None if bucket_width is None else float(
                bucket_width),
        )

    def describe(self) -> str:
        """One line for progress output."""
        topo = self.topology
        shape = (f"{topo.kind}[{'+'.join(topo.protocols)}"
                 + (f" dims={list(topo.dims)}" if topo.dims
                    else f" gw={list(topo.gateways)}") + "]")
        knobs = []
        if self.pipeline:
            knobs.append(f"pipe={self.pipeline[0]}/{self.pipeline[1]}"
                         + ("L" if self.pipeline[2] else ""))
        if self.stripe:
            knobs.append(f"stripe<={self.stripe[0]}")
        if self.adaptive:
            knobs.append(f"adapt(e={self.adaptive[0]}"
                         + (",gb" if self.adaptive[3] else "") + ")")
        if self.multirail:
            knobs.append("multirail")
        if self.header_batching:
            knobs.append("batch")
        if self.scheduler != "heap":
            knobs.append(self.scheduler)
        traffic = (f" traffic={self.traffic.pattern}x{self.traffic.flows}"
                   if self.traffic else "")
        return (f"seed={self.seed} {shape} msgs={len(self.messages)}"
                f"{traffic} faults={self.n_fault_events}ev"
                f"{' ' + ' '.join(knobs) if knobs else ''}")
