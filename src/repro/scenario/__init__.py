"""The declarative scenario layer: one schema for every harness.

A :class:`Scenario` describes a complete experiment — topology, traffic
(explicit messages and/or a generated :class:`TrafficSpec`), policies
(pipeline, striping, batching), the seeded fault plan, and the event
scheduler — as one JSON/YAML-serializable value.  Benches
(``repro bench --scenario``), the fuzzer (``repro fuzz --replay``), the
chaos harness, and the traffic engine (:mod:`repro.traffic`) all consume
this one format.

Entry points:

* :func:`load_scenario` / :func:`dump_scenario` — file I/O (YAML needs
  PyYAML; JSON always works);
* :func:`build_world` — the scenario's world (nodes + scheduler);
* :meth:`repro.madeleine.Session.from_scenario` — the whole stack: world,
  channels, armed faults, virtual channel.

The schema previously lived at ``repro.fuzz.scenario``; that module remains
as a deprecated import shim.
"""

from .build import build_world
from .loader import dump_scenario, load_scenario, loads_scenario
from .schema import (SCENARIO_VERSION, TRAFFIC_PATTERNS, MessageSpec,
                     Scenario, Topology, TrafficSpec)

__all__ = [
    "MessageSpec", "Scenario", "Topology", "TrafficSpec",
    "SCENARIO_VERSION", "TRAFFIC_PATTERNS",
    "build_world", "dump_scenario", "load_scenario", "loads_scenario",
]
