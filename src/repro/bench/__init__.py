"""Benchmark harness: the §3.1 ping method, parameter sweeps, and table
formatting used by every figure/table reproduction in ``benchmarks/``."""

from .ping import (MultirailHarness, PingHarness, PingResult,
                   measure_ack_latency, one_way_ping,
                   probe_protocol_rates)
from .regress import (compare_to_baseline, format_report, run_regress,
                      write_baseline, write_results)
from .scale import format_sweep, run_traffic_scenario, sweep_nodes
from .sweep import (PAPER_MESSAGE_SIZES, PAPER_PACKET_SIZES, Series,
                    bandwidth_sweep, figure_sweep, pipeline_sweep,
                    rails_sweep)
from .tables import (PaperPoint, format_comparison, format_series_table,
                     human_size)

__all__ = [
    "MultirailHarness", "PingHarness", "PingResult",
    "measure_ack_latency", "one_way_ping",
    "probe_protocol_rates",
    "PAPER_MESSAGE_SIZES", "PAPER_PACKET_SIZES", "Series",
    "bandwidth_sweep", "figure_sweep", "pipeline_sweep", "rails_sweep",
    "compare_to_baseline", "format_report", "run_regress",
    "write_baseline", "write_results",
    "format_sweep", "run_traffic_scenario", "sweep_nodes",
    "PaperPoint", "format_comparison", "format_series_table", "human_size",
]
