"""Scale-out benches: ``repro bench --sweep-nodes`` and scenario runs.

Drives generated topologies (tori, fat-trees, hierarchies) with the
open-loop traffic engine and reports flow-level statistics per cell:
p50/p99 flow completion time, goodput, peak concurrency, gateway queue
high-water mark, and the kernel-cost figure of merit (dispatched events per
transferred MB).  The default grid ends at a 256-node 3D torus under 128
concurrent flows — the scale the calendar-queue scheduler exists for.

``event_growth`` (events/MB at high flow count over events/MB at low flow
count, same topology) is the committed scaling floor: growth must stay
sub-linear (≤ ``sweep_nodes_event_growth`` in the regress baseline) as
flows multiply 8×.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..madeleine import reset_global_ids
from ..scenario import Scenario, Topology, TrafficSpec

__all__ = ["DEFAULT_GRID", "sweep_nodes", "run_traffic_scenario",
           "solve_traffic_scenario", "format_sweep", "scaling_scenario",
           "incremental_rates_scenario"]

#: (kind, shape, flows) cells; shape is ``dims`` for torus.
DEFAULT_GRID: tuple = (
    ("torus", (4, 4), 16),
    ("torus", (8, 8), 64),
    ("torus", (8, 8, 4), 128),
)

_SWEEP_SEED = 7


def _topology(kind: str, shape: Sequence[int]) -> Topology:
    if kind == "torus":
        return Topology(kind="torus", protocols=("myrinet",),
                        dims=tuple(shape))
    if kind == "fat_tree":
        leaves, spines, hosts = shape
        return Topology(kind="fat_tree", protocols=("myrinet", "sci"),
                        sizes=(leaves, hosts), gateways=(spines,))
    if kind == "hierarchy":
        clusters, size, gws = shape
        return Topology(kind="hierarchy", protocols=("myrinet", "sci"),
                        sizes=(clusters, size), gateways=(gws,))
    raise ValueError(f"unknown sweep topology kind {kind!r}")


def _cell_scenario(topo: Topology, flows: int, *, pattern: str,
                   size: int, mean_interarrival: float,
                   scheduler: str, seed: int) -> Scenario:
    return Scenario(
        seed=seed, topology=topo,
        traffic=TrafficSpec(pattern=pattern, flows=flows,
                            mean_interarrival=mean_interarrival, size=size),
        scheduler=scheduler,
        # Congestion is the point of these scenarios; the gateway stall
        # timeout is a crash heuristic and would abandon slow messages.
        gw_stall_timeout=None)


def run_traffic_scenario(scenario: Scenario) -> dict:
    """Run one traffic scenario and return its flow-level summary row."""
    from ..traffic import run_traffic
    reset_global_ids()
    session, engine = run_traffic(scenario)
    row = engine.summary()
    m = session.metrics
    gw_hwm = 0
    for inst in m.series("gateway.occupancy"):
        gw_hwm = max(gw_hwm, int(inst.hwm))
    row["gw_queue_hwm"] = gw_hwm
    row["forwarded"] = int(m.total("gateway.messages_forwarded"))
    return row


def solve_traffic_scenario(scenario: Scenario) -> dict:
    """The solver fast path of :func:`run_traffic_scenario`: the same
    summary row, estimated by the fluid fixed-point solver instead of the
    DES (no gateway-queue telemetry — the fluid model has no queues)."""
    from ..solver import solve
    return solve(scenario).summary()


def sweep_nodes(grid: Sequence = DEFAULT_GRID, *,
                pattern: str = "uniform", size: int = 32 << 10,
                mean_interarrival: float = 50.0,
                scheduler: str = "calendar", seed: int = _SWEEP_SEED,
                progress=None, mode: str = "des") -> list[dict]:
    """Run the node-scaling grid; one summary row per ``(kind, shape,
    flows)`` cell.  ``mode="solver"`` estimates every cell with the
    analytic solver instead of running the DES — the fast path for
    exploring grids far beyond what simulation wall-clock allows (flow-level
    accuracy bounds in docs/solver.md)."""
    if mode not in ("des", "solver"):
        raise ValueError(f"unknown sweep mode {mode!r}")
    rows = []
    for kind, shape, flows in grid:
        topo = _topology(kind, shape)
        if progress is not None:
            progress(f"{kind}{tuple(shape)} x {flows} flows "
                     f"({topo.n_nodes} nodes)")
        sc = _cell_scenario(topo, flows, pattern=pattern, size=size,
                            mean_interarrival=mean_interarrival,
                            scheduler=scheduler, seed=seed)
        row = (solve_traffic_scenario(sc) if mode == "solver"
               else run_traffic_scenario(sc))
        row.update({"kind": kind, "shape": list(shape), "flows": flows,
                    "nodes": topo.n_nodes})
        rows.append(row)
    return rows


def format_sweep(rows: list[dict]) -> str:
    head = (f"{'topology':16s} {'nodes':>5s} {'flows':>5s} {'done':>5s} "
            f"{'p50 FCT':>9s} {'p99 FCT':>9s} {'goodput':>9s} "
            f"{'gwq':>4s} {'ev/MB':>8s}")
    lines = [head, "-" * len(head)]
    for r in rows:
        shape = "x".join(str(d) for d in r["shape"])
        gwq = r.get("gw_queue_hwm")
        lines.append(
            f"{r['kind'] + '(' + shape + ')':16s} {r['nodes']:5d} "
            f"{r['flows']:5d} {r['completed']:5d} "
            f"{r['p50_fct_us']:7.0f}us {r['p99_fct_us']:7.0f}us "
            f"{r['goodput_mbs']:6.1f}MBs "
            + (f"{gwq:4d} " if gwq is not None else f"{'-':>4s} ")
            + f"{r['events_per_mb']:8.0f}")
    return "\n".join(lines)


def scaling_scenario() -> dict:
    """The regress cell: events/MB growth 8 → 64 flows on a 4×4 torus.

    Sub-linear kernel cost is the commitment: with 8× the concurrent
    flows, dispatched events per MB must grow by at most the committed
    ``sweep_nodes_event_growth`` factor (< 1 in practice — fixed per-run
    costs amortize).  Runs on the calendar scheduler, whose dispatch order
    is asserted bit-identical to the heap elsewhere.
    """
    topo = _topology("torus", (4, 4))
    out = {}
    for flows in (8, 64):
        sc = _cell_scenario(topo, flows, pattern="uniform", size=32 << 10,
                            mean_interarrival=200.0, scheduler="calendar",
                            seed=11)
        row = run_traffic_scenario(sc)
        if row["completed"] < flows:
            # A partial run's FCT/event statistics describe only the flows
            # that happened to finish — comparing them against the baseline
            # would be meaningless, so refuse loudly instead.
            raise RuntimeError(
                f"scaling cell torus(4,4) x {flows} flows: only "
                f"{row['completed']}/{flows} flows completed; refusing to "
                f"report partial FCT statistics")
        out[f"events_per_mb_{flows}f"] = row["events_per_mb"]
        out[f"p99_fct_us_{flows}f"] = row["p99_fct_us"]
        out[f"completed_{flows}f"] = float(row["completed"])
    out["event_growth"] = (out["events_per_mb_64f"]
                           / out["events_per_mb_8f"])
    return out


def _pr8_solve_finish_times(scenario: Scenario) -> dict:
    """The PR 8 solver epoch loop, preserved verbatim as the speed
    reference for the incremental engine: full :func:`max_min_rates` over
    every live rail at every epoch, ``pending.pop(0)`` admission, and
    per-epoch rebuilds of every load dict.  Returns app index → finish µs.
    """
    from ..solver.core import _application_flows, max_min_rates
    from ..solver.network import SolverNetwork

    net = SolverNetwork(scenario)
    caps = {key: r.capacity for key, r in net.resources.items()}
    rails = []
    meta = {}
    for index, src, dst, nbytes, arrival in _application_flows(scenario):
        expanded = net.routed_flows(index, src, dst, nbytes, arrival=arrival)
        rails.extend(expanded)
        meta[index] = len(expanded)
    pending = sorted(rails, key=lambda r: (r.arrival + r.setup_us, r.id))
    active, finish = {}, {}
    now = 0.0
    while pending or active:
        if not active:
            now = max(now, pending[0].arrival + pending[0].setup_us)
        else:
            rates = max_min_rates([f for f, _rem in active.values()], caps)
            dt_done = math.inf
            for rid, (_f, rem) in active.items():
                dt_done = min(dt_done, rem / rates[rid])
            horizon = now + dt_done
            if pending:
                horizon = min(horizon,
                              pending[0].arrival + pending[0].setup_us)
            dt = horizon - now
            for rid, entry in active.items():
                entry[1] = entry[1] - rates[rid] * dt
            now = horizon
            for rid in [rid for rid, (_f, rem) in active.items()
                        if rem <= 1e-6]:
                finish[rid] = now
                del active[rid]
        while pending and pending[0].arrival + pending[0].setup_us \
                <= now + 1e-9:
            f = pending.pop(0)
            if f.nbytes <= 0:
                finish[f.id] = now
            else:
                active[f.id] = [f, float(f.nbytes)]
    return {index: max(finish[(index, r)] for r in range(k))
            for index, k in meta.items()}


def incremental_rates_scenario() -> dict:
    """The regress cell for the incremental fluid-rate engine (PR 9).

    Two committed guarantees (see ``DEFAULT_FLOORS``):

    * **DES locality** — on the 256-node torus uniform-traffic cell, the
      mean fraction of live flows whose rates each epoch re-solves stays
      under ``incremental_recompute_fraction`` (arrival/completion events
      only dirty their own contention component);
    * **solver speed** — the ``--sweep-nodes --mode solver`` grid runs at
      least ``incremental_solver_speedup`` × faster than the PR 8 epoch
      loop (re-run here verbatim, so the ratio is machine-independent),
      while agreeing with it on every flow completion time to 1e-6
      relative (``fct_agreement_ok``) and staying bit-identical to the
      full-recompute mode.

    ``wall_*`` and ``solver_speedup`` are wall-clock measurements and are
    excluded from the tolerance-band baseline comparison; everything else
    is deterministic.
    """
    import time
    from ..solver import solve

    out = {}
    # -- DES locality on the big torus cell ---------------------------------
    kind, shape, flows = DEFAULT_GRID[-1]
    sc = _cell_scenario(_topology(kind, shape), flows, pattern="uniform",
                        size=32 << 10, mean_interarrival=50.0,
                        scheduler="calendar", seed=_SWEEP_SEED)
    row = run_traffic_scenario(sc)
    if row["completed"] < flows:
        raise RuntimeError(
            f"incremental_rates cell {kind}{tuple(shape)} x {flows}: only "
            f"{row['completed']}/{flows} flows completed")
    out["des_recompute_fraction"] = row["fluid_recompute_fraction"]
    out["des_epochs"] = float(row["fluid_epochs"])
    out["des_recompute_flows"] = float(row["fluid_recompute_flows"])

    # -- solver speed + agreement over the sweep grid ------------------------
    def grid_cells():
        for kind, shape, flows in DEFAULT_GRID:
            yield _cell_scenario(_topology(kind, shape), flows,
                                 pattern="uniform", size=32 << 10,
                                 mean_interarrival=50.0,
                                 scheduler="calendar", seed=_SWEEP_SEED)

    # Interleave the two loops per cell and keep each cell's best of three
    # repetitions: a `--jobs` pool runs other scenarios on sibling cores,
    # and timing the loops back-to-back would let that contention land on
    # one side only and skew the ratio.
    cells = list(grid_cells())
    legacy: list = [None] * len(cells)
    results: list = [None] * len(cells)
    best_legacy = [float("inf")] * len(cells)
    best_inc = [float("inf")] * len(cells)
    for _rep in range(3):
        for i, sc in enumerate(cells):
            t0 = time.perf_counter()
            legacy[i] = _pr8_solve_finish_times(sc)
            best_legacy[i] = min(best_legacy[i], time.perf_counter() - t0)
            t0 = time.perf_counter()
            results[i] = solve(sc)
            best_inc[i] = min(best_inc[i], time.perf_counter() - t0)
    wall_legacy = sum(best_legacy)
    wall_inc = sum(best_inc)
    full = [solve(sc, incremental=False) for sc in cells]

    agree = 1.0
    for ref, res, res_full in zip(legacy, results, full):
        for est, est_full in zip(res.flows, res_full.flows):
            if est.finish_us != est_full.finish_us:
                agree = 0.0     # incremental must equal full *bit for bit*
            if not math.isclose(est.finish_us, ref[est.index],
                                rel_tol=1e-6, abs_tol=1e-3):
                agree = 0.0
    big = results[-1]
    out["solver_recompute_fraction"] = (big.epoch_flows
                                        / big.live_flow_epochs)
    out["mean_component_flows"] = (
        sum(size * n for size, n in big.component_sizes.items())
        / max(1, sum(big.component_sizes.values())))
    out["solver_epochs"] = float(big.recomputes)
    out["fct_agreement_ok"] = agree
    out["wall_legacy_s"] = wall_legacy
    out["wall_incremental_s"] = wall_inc
    out["solver_speedup"] = wall_legacy / wall_inc
    return out
