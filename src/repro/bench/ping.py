"""The paper's measurement method (§3.1).

One-way transmission time is obtained with a *single ping* test: the payload
travels src → dst over the high-speed path (possibly through the gateway),
and a small ack returns over a Fast-Ethernet connection.  Since the latency
of the ack is known exactly, the one-way time is the observed round-trip
time minus the ack latency.

We reproduce the method literally (including the ack calibration step) and
— because this is a simulator — can also measure the one-way time directly;
a test asserts the two agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..madeleine.channel import RealChannel
from ..madeleine.session import Session
from ..madeleine.vchannel import VirtualChannel

__all__ = ["PingResult", "measure_ack_latency", "one_way_ping", "PingHarness",
           "MultirailHarness", "probe_protocol_rates"]

_ACK_BYTES = 4


@dataclass(frozen=True)
class PingResult:
    """One measured point."""

    size: int                 # payload bytes
    one_way_us: float         # estimated from RTT - ack (the paper's method)
    direct_us: float          # directly observed in the simulator
    rtt_us: float
    ack_us: float

    @property
    def bandwidth(self) -> float:
        """MB/s (== bytes/µs)."""
        return self.size / self.one_way_us


def measure_ack_latency(session: Session, ack_channel: RealChannel,
                        src: int, dst: int) -> float:
    """Calibrate the ack: one 4-byte message dst -> src on the ack channel."""
    t = {}

    def acker():
        msg = ack_channel.endpoint(dst).begin_packing(src)
        yield msg.pack(np.zeros(_ACK_BYTES, dtype=np.uint8))
        yield msg.end_packing()

    def receiver():
        t0 = session.now
        inc = yield ack_channel.endpoint(src).begin_unpacking()
        _ev, _b = inc.unpack(_ACK_BYTES)
        yield inc.end_unpacking()
        t["ack"] = session.now - t0

    session.spawn(acker(), "ack-cal-snd")
    p = session.spawn(receiver(), "ack-cal-rcv")
    session.run(until=p)
    return t["ack"]


def one_way_ping(session: Session, vch: VirtualChannel,
                 ack_channel: RealChannel, src: int, dst: int,
                 size: int, ack_latency: Optional[float] = None) -> PingResult:
    """Run the §3.1 single-ping measurement for one payload size."""
    if ack_latency is None:
        ack_latency = measure_ack_latency(session, ack_channel, src, dst)
    data = np.zeros(size, dtype=np.uint8)
    t: dict[str, float] = {}

    def pinger():
        t["t0"] = session.now
        msg = vch.endpoint(src).begin_packing(dst)
        yield msg.pack(data)
        yield msg.end_packing()
        inc = yield ack_channel.endpoint(src).begin_unpacking()
        _ev, _b = inc.unpack(_ACK_BYTES)
        yield inc.end_unpacking()
        t["rtt"] = session.now - t["t0"]

    def ponger():
        inc = yield vch.endpoint(dst).begin_unpacking()
        _ev, _b = inc.unpack(size)
        yield inc.end_unpacking()
        t["direct"] = session.now - t["t0"]
        ack = ack_channel.endpoint(dst).begin_packing(src)
        yield ack.pack(np.zeros(_ACK_BYTES, dtype=np.uint8))
        yield ack.end_packing()

    session.spawn(ponger(), "ponger")
    p = session.spawn(pinger(), "pinger")
    session.run(until=p)
    return PingResult(size=size, one_way_us=t["rtt"] - ack_latency,
                      direct_us=t["direct"], rtt_us=t["rtt"],
                      ack_us=ack_latency)


def probe_protocol_rates(protocols, size: int = 1 << 20) -> dict[str, float]:
    """Short online probe phase for the adaptive fragment tuner: measure
    each protocol's achieved raw one-way rate (bytes/µs) with one direct
    transfer in a pristine world.  The result folds end-to-end software
    overheads into the rate, refining the calibrated ``host_peak``; feed it
    to :meth:`VirtualChannel.calibrate_rates` or
    ``PingHarness(rate_overrides=...)``.
    """
    from ..hw import build_world
    rates: dict[str, float] = {}
    for proto in protocols:
        world = build_world({"a": [proto], "b": [proto]})
        session = Session(world)
        ch = session.channel(proto, ["a", "b"])
        data = np.zeros(size, dtype=np.uint8)
        out: dict[str, float] = {}

        def snd(ch=ch):
            m = ch.endpoint(0).begin_packing(1)
            yield m.pack(data)
            yield m.end_packing()

        def rcv(ch=ch, out=out):
            inc = yield ch.endpoint(1).begin_unpacking()
            _ev, _b = inc.unpack(size)
            yield inc.end_unpacking()
            out["t"] = session.now

        session.spawn(snd())
        session.spawn(rcv())
        session.run()
        rates[proto] = size / out["t"]
    return rates


class PingHarness:
    """Builds a fresh paper-style testbed per measurement point.

    Simulated state is cheap, so each point runs in a pristine world — the
    equivalent of the paper's repeated, isolated test runs.
    """

    def __init__(self, packet_size: int = 16 << 10,
                 gateway_params=None, protocols=("myrinet", "sci"),
                 node_params=None, header_batching: bool = False,
                 pipeline=None, rate_overrides=None) -> None:
        self.packet_size = packet_size
        self.gateway_params = gateway_params
        self.protocols = protocols
        self.node_params = node_params
        self.header_batching = header_batching
        self.pipeline = pipeline
        self.rate_overrides = rate_overrides

    def build(self):
        from ..hw import build_world
        pa, pb = self.protocols
        world = build_world({
            "a0": [pa, "fast_ethernet"],
            "gw": [pa, pb, "fast_ethernet"],
            "b0": [pb, "fast_ethernet"],
        }, node_params=self.node_params)
        session = Session(world)
        ch_a = session.channel(pa, ["a0", "gw"])
        ch_b = session.channel(pb, ["gw", "b0"])
        vch = session.virtual_channel([ch_a, ch_b],
                                      packet_size=self.packet_size,
                                      gateway_params=self.gateway_params,
                                      header_batching=self.header_batching,
                                      pipeline=self.pipeline)
        if self.rate_overrides:
            vch.calibrate_rates(self.rate_overrides)
        ack = session.channel("fast_ethernet", ["a0", "b0"])
        return world, session, vch, ack

    def measure(self, size: int, direction: str = "b0->a0") -> PingResult:
        """``direction``: "a0->b0" (first protocol first) or "b0->a0"."""
        world, session, vch, ack = self.build()
        if direction == "a0->b0":
            src, dst = session.rank("a0"), session.rank("b0")
        elif direction == "b0->a0":
            src, dst = session.rank("b0"), session.rank("a0")
        else:
            raise ValueError(f"bad direction {direction!r}")
        return one_way_ping(session, vch, ack, src, dst, size)


class MultirailHarness:
    """Paper-style testbed with N parallel rails between the two clouds.

    The topology generalizes :class:`PingHarness` to the multirail setup of
    the motivation: ``rails`` gateway machines bridge the clouds, and the
    end nodes hold one adapter of their cloud's protocol *per rail* (the
    dual-NIC configuration), so ``rails`` fully disjoint minimum-hop routes
    — distinct sender NIC, gateway, and receiver NIC — connect ``a0`` and
    ``b0``.  With ``stripe_policy=None`` the virtual channel uses one route
    (the single-rail reference); with a policy each large paquet is striped
    across up to ``max_rails`` of them.
    """

    def __init__(self, packet_size: int = 8 << 10, rails: int = 2,
                 protocols=("myrinet", "sci"), stripe_policy=None,
                 gateway_params=None, node_params=None, pipeline=None,
                 rate_overrides=None) -> None:
        if rails < 1:
            raise ValueError(f"need at least one rail, got {rails}")
        self.packet_size = packet_size
        self.rails = rails
        self.protocols = protocols
        self.stripe_policy = stripe_policy
        self.gateway_params = gateway_params
        self.node_params = node_params
        self.pipeline = pipeline
        self.rate_overrides = rate_overrides

    def build(self):
        from ..hw import build_world
        pa, pb = self.protocols
        gws = [f"gw{i}" for i in range(self.rails)]
        nodes = {"a0": [pa] * self.rails + ["fast_ethernet"],
                 **{gw: [pa, pb] for gw in gws},
                 "b0": [pb] * self.rails + ["fast_ethernet"]}
        world = build_world(nodes, node_params=self.node_params)
        session = Session(world)
        members = []
        for i, gw in enumerate(gws):
            # One channel pair per rail: a0's i-th NIC to gateway i, and
            # gateway i to b0's i-th NIC.
            members.append(session.channel(pa, ["a0", gw],
                                           adapter_index={"a0": i}))
            members.append(session.channel(pb, [gw, "b0"],
                                           adapter_index={"b0": i}))
        vch = session.virtual_channel(members,
                                      packet_size=self.packet_size,
                                      gateway_params=self.gateway_params,
                                      pipeline=self.pipeline,
                                      stripe_policy=self.stripe_policy)
        if self.rate_overrides:
            vch.calibrate_rates(self.rate_overrides)
        ack = session.channel("fast_ethernet", ["a0", "b0"])
        return world, session, vch, ack

    def measure(self, size: int, direction: str = "a0->b0") -> PingResult:
        world, session, vch, ack = self.build()
        if direction == "a0->b0":
            src, dst = session.rank("a0"), session.rank("b0")
        elif direction == "b0->a0":
            src, dst = session.rank("b0"), session.rank("a0")
        else:
            raise ValueError(f"bad direction {direction!r}")
        return one_way_ping(session, vch, ack, src, dst, size)
