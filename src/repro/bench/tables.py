"""Result formatting: paper-style rows and paper-vs-measured comparisons."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from .sweep import Series

__all__ = ["format_series_table", "format_comparison", "PaperPoint",
           "human_size"]


def human_size(nbytes: int) -> str:
    if nbytes >= 1 << 20 and nbytes % (1 << 20) == 0:
        return f"{nbytes >> 20} MB"
    if nbytes >= 1 << 10 and nbytes % (1 << 10) == 0:
        return f"{nbytes >> 10} KB"
    return f"{nbytes} B"


def format_series_table(curves: Sequence[Series], title: str = "") -> str:
    """Rows = message sizes, columns = one bandwidth column per curve —
    the same presentation as the paper's Figures 6/7."""
    sizes = sorted({s for c in curves for s in c.sizes})
    header = ["msg size".rjust(10)] + [c.label.rjust(16) for c in curves]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header))
    lines.append("-" * len(lines[-1]))
    for size in sizes:
        row = [human_size(size).rjust(10)]
        for c in curves:
            try:
                idx = c.sizes.index(size)
                row.append(f"{c.bandwidths[idx]:13.1f} MB/s".rjust(16))
            except ValueError:
                row.append(" " * 16)
        lines.append("  ".join(row))
    return "\n".join(lines)


@dataclass(frozen=True)
class PaperPoint:
    """A reference value reconstructed from the paper's text/figures."""

    quantity: str
    paper_value: float
    measured: float
    unit: str = "MB/s"
    note: str = ""

    @property
    def ratio(self) -> float:
        return self.measured / self.paper_value if self.paper_value else float("nan")


def format_comparison(points: Iterable[PaperPoint],
                      title: Optional[str] = None) -> str:
    lines = []
    if title:
        lines.append(title)
    header = (f"{'quantity':42s} {'paper':>9s} {'measured':>9s} "
              f"{'ratio':>6s}  note")
    lines.append(header)
    lines.append("-" * len(header))
    for p in points:
        lines.append(
            f"{p.quantity:42s} {p.paper_value:7.1f} {p.unit:>2s}"
            f" {p.measured:7.1f} {p.unit:>2s} {p.ratio:5.2f}x  {p.note}")
    return "\n".join(lines)
