"""The adaptive-transport regression cell: ``repro bench --regress``
scenario ``adaptive`` (docs/adaptive.md).

Two deterministic measurements back the committed floors:

* **mixed workload** — four symmetric flows of many small messages plus
  one large buffer cross a dual-gateway bridge; the
  :class:`~repro.madeleine.adaptive.TransportPolicy` run (eager small
  messages + occupancy-balanced gateway choice) must beat the static
  round-robin run by ``adaptive_mixed_gain`` in aggregate bandwidth while
  keeping the Jain fairness index of the per-flow bandwidths above
  ``adaptive_jain_fairness``;
* **rail loss** — a sequence of reliable striped transfers on the
  dual-rail testbed loses one rail for good mid-sequence; the policy's
  fail-fast re-striping must keep the post-loss bandwidth at
  ``adaptive_recovery_fraction`` of the surviving-rail optimum (the same
  transfer sequence run on a single-rail world).

Every run builds a pristine world and resets the process-wide id
counters: the rail-loss cell's recovery path branches on wire content
that embeds them, and the regress suite promises bit-identical numbers
between serial and ``--jobs`` runs.
"""

from __future__ import annotations

import numpy as np

from ..faults import FaultPlan, LinkEvent
from ..hw import build_world
from ..hw.params import GatewayParams
from ..madeleine import (ReliableEndpoint, RetryPolicy, Session,
                         TransportPolicy, reset_global_ids)
from ..routing import StripePolicy

__all__ = ["adaptive_scenario", "run_mixed_workload", "run_rail_loss"]

#: the documented policy defaults (4 KB eager threshold, 4x/2x re-stripe
#: hysteresis, occupancy-balanced gateways).
_POLICY = TransportPolicy()

# -- mixed workload: eager + gateway balancing --------------------------------
#: each flow: many handshake-bound small messages, then one bulk buffer.
_SMALL = 2 << 10
_N_SMALL = 24
_LARGE = 128 << 10
#: equal bytes per flow, but half the flows lead with the bulk buffer and
#: half trail with it — the skew keeps gateway occupancy lumpy, which is
#: what the balanced rail pick feeds on (a symmetric mix never makes
#: round-robin suboptimal).
_MIXED_FLOWS = (
    (("a0", "b0"), (_LARGE,) + (_SMALL,) * _N_SMALL),
    (("a1", "b1"), (_SMALL,) * _N_SMALL + (_LARGE,)),
    (("b0", "a0"), (_LARGE,) + (_SMALL,) * _N_SMALL),
    (("b1", "a1"), (_SMALL,) * _N_SMALL + (_LARGE,)),
)


def _mixed_session(policy) -> tuple[Session, object]:
    """Dual-gateway bridge between two 2-endpoint clusters; multirail on,
    so every pair sees two parallel routes (one per gateway)."""
    world = build_world({
        "a0": ["myrinet"], "a1": ["myrinet"],
        "gw0": ["myrinet", "sci"], "gw1": ["myrinet", "sci"],
        "b0": ["sci"], "b1": ["sci"],
    })
    session = Session(world, packet_size=32 << 10, telemetry=True)
    ch_a = session.channel("myrinet", ["a0", "a1", "gw0", "gw1"], name="ca")
    ch_b = session.channel("sci", ["gw0", "gw1", "b0", "b1"], name="cb")
    vch = session.virtual_channel([ch_a, ch_b], multirail=True,
                                  transport_policy=policy)
    return session, vch


def run_mixed_workload(policy) -> tuple[float, list[float], Session]:
    """Drive the four flows to completion; returns (aggregate MB/s,
    per-flow MB/s in pair order, the finished session)."""
    reset_global_ids()
    session, vch = _mixed_session(policy)
    done: dict[tuple[str, str], float] = {}

    def sender(src: str, dst: str, sizes):
        ep = vch.endpoint(session.rank(src))
        dst_rank = session.rank(dst)
        for n in sizes:
            msg = ep.begin_packing(dst_rank)
            yield msg.pack(np.zeros(n, dtype=np.uint8))
            yield msg.end_packing()

    def receiver(src: str, dst: str, sizes):
        ep = vch.endpoint(session.rank(dst))
        for n in sizes:
            inc = yield ep.begin_unpacking()
            _ev, _b = inc.unpack(n)
            yield inc.end_unpacking()
        done[(src, dst)] = session.now

    for (src, dst), sizes in _MIXED_FLOWS:
        session.spawn(sender(src, dst, sizes), name=f"mix-snd:{src}")
        session.spawn(receiver(src, dst, sizes), name=f"mix-rcv:{dst}")
    session.run()
    flow_bytes = float(sum(_MIXED_FLOWS[0][1]))
    per_flow = [flow_bytes / done[pair] for pair, _sizes in _MIXED_FLOWS]
    aggregate = len(_MIXED_FLOWS) * flow_bytes / max(done.values())
    return aggregate, per_flow, session


def _jain(xs: list[float]) -> float:
    return sum(xs) ** 2 / (len(xs) * sum(x * x for x in xs))


# -- rail loss: fail-fast re-striping -----------------------------------------
_XFER = 256 << 10
_N_XFER = 8
#: bandwidth window: transfers 5..8, fully after the loss and its recovery.
_MEASURE_FROM = 4
#: kills rail 1's SCI hop during transfer 2 (clean dual-rail transfers
#: take ~4.4 ms each), and it never comes back.
_FAULT_AT = 6_000.0
#: snappy recovery clocks sized to the ~2.6 ms single-rail attempt, so the
#: one interrupted transfer retries quickly instead of idling out a
#: 50 ms default RTO.
_RETRY = RetryPolicy(rto=8_000.0, rto_max=32_000.0, stall_timeout=3_000.0,
                     reack_interval=8_000.0, reack_ttl=80_000.0)


def _rail_session(rails: int, policy, fault_plan=None) -> tuple[Session, object]:
    """The MultirailHarness topology (disjoint a0 -> gw{i} -> b0 rails),
    with striping when more than one rail exists.  The fault plan is armed
    after the channels exist so its link targets validate."""
    gws = [f"gw{i}" for i in range(rails)]
    world = build_world({
        "a0": ["myrinet"] * rails,
        **{gw: ["myrinet", "sci"] for gw in gws},
        "b0": ["sci"] * rails,
    })
    session = Session(world, packet_size=16 << 10, telemetry=True)
    channels = []
    for i, gw in enumerate(gws):
        channels.append(session.channel("myrinet", ["a0", gw], name=f"ca{i}",
                                        adapter_index={"a0": i}))
        channels.append(session.channel("sci", [gw, "b0"], name=f"cb{i}",
                                        adapter_index={"b0": i}))
    if fault_plan is not None:
        fault_plan.arm(world)
    stripe = StripePolicy(max_rails=rails) if rails > 1 else None
    # The bounded gateway stall is what lets a forwarding worker walk away
    # from the aborted stripe of a dead rail (it never sees a terminating
    # descriptor) instead of wedging the whole connection behind it.
    vch = session.virtual_channel(
        channels, gateway_params=GatewayParams(stall_timeout=5_000.0),
        stripe_policy=stripe, transport_policy=policy)
    return session, vch


def run_rail_loss(rails: int, policy,
                  fault_at=None) -> tuple[float, Session]:
    """Run the reliable transfer sequence; returns the bandwidth of the
    measurement window (MB/s) and the finished session."""
    reset_global_ids()
    plan = None
    if fault_at is not None:
        plan = FaultPlan(seed=0,
                         link_events=(LinkEvent(time=fault_at,
                                                channel="cb1"),))
    session, vch = _rail_session(rails, policy, plan)
    src, dst = session.rank("a0"), session.rank("b0")
    rel_src = ReliableEndpoint(vch.endpoint(src), _RETRY)
    rel_dst = ReliableEndpoint(vch.endpoint(dst), _RETRY)
    payload = bytes(_XFER)
    times: list[float] = []

    def snd():
        for _ in range(_N_XFER):
            yield from rel_src.send(dst, payload)

    def rcv():
        for _ in range(_N_XFER):
            yield from rel_dst.recv()
            times.append(session.now)

    session.spawn(snd(), name="rail-snd")
    session.spawn(rcv(), name="rail-rcv")
    session.run()
    window = times[-1] - times[_MEASURE_FROM - 1]
    bandwidth = (_N_XFER - _MEASURE_FROM) * _XFER / window
    return bandwidth, session


# -- the regress cell ---------------------------------------------------------
def adaptive_scenario() -> dict:
    """All committed numbers of the ``adaptive`` cell."""
    static_agg, _static_flows, _s = run_mixed_workload(None)
    adaptive_agg, adaptive_flows, mixed = run_mixed_workload(_POLICY)
    post_loss, lossy = run_rail_loss(2, _POLICY, fault_at=_FAULT_AT)
    survivor, _s2 = run_rail_loss(1, _POLICY)
    m = mixed.metrics
    return {
        "static_aggregate_mbs": static_agg,
        "adaptive_aggregate_mbs": adaptive_agg,
        "adaptive_mixed_gain": adaptive_agg / static_agg,
        "adaptive_jain_fairness": _jain(adaptive_flows),
        "post_loss_mbs": post_loss,
        "survivor_optimum_mbs": survivor,
        "adaptive_recovery_fraction": post_loss / survivor,
        "eager_sends": float(m.total("vchannel.eager_sends")),
        "balance_moves": float(m.total("gateway.balance_moves")),
        "restripe_events": float(
            lossy.metrics.total("vchannel.restripe_events")),
    }
