"""Parameter sweeps: the loops behind every figure of the evaluation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from ..hw.params import GatewayParams
from .ping import PingHarness, PingResult

__all__ = ["Series", "bandwidth_sweep", "figure_sweep",
           "PAPER_PACKET_SIZES", "PAPER_MESSAGE_SIZES"]

#: the paper sweeps paquet sizes 8 KB .. 128 KB (Figures 6 and 7)
PAPER_PACKET_SIZES = tuple((1 << k) << 10 for k in range(3, 8))

#: message sizes up to 16 MB (the figures' x axis, log-spaced)
PAPER_MESSAGE_SIZES = tuple((1 << k) << 10 for k in range(3, 15))


@dataclass
class Series:
    """One curve: bandwidth (MB/s) against message size (bytes)."""

    label: str
    sizes: list[int] = field(default_factory=list)
    bandwidths: list[float] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def add(self, size: int, bandwidth: float) -> None:
        self.sizes.append(size)
        self.bandwidths.append(bandwidth)

    @property
    def asymptote(self) -> float:
        """Mean of the top quartile of points (a robust plateau estimate)."""
        if not self.bandwidths:
            raise ValueError(f"series {self.label!r} is empty")
        top = sorted(self.bandwidths)[-max(1, len(self.bandwidths) // 4):]
        return sum(top) / len(top)

    def as_rows(self) -> list[tuple[int, float]]:
        return list(zip(self.sizes, self.bandwidths))


def bandwidth_sweep(measure: Callable[[int], PingResult],
                    sizes: Iterable[int], label: str) -> Series:
    """Run ``measure`` over message sizes, collecting a bandwidth curve."""
    series = Series(label=label)
    for size in sizes:
        result = measure(size)
        series.add(size, result.bandwidth)
    return series


def figure_sweep(direction: str,
                 packet_sizes: Sequence[int] = PAPER_PACKET_SIZES,
                 message_sizes: Sequence[int] = PAPER_MESSAGE_SIZES,
                 protocols: tuple[str, str] = ("myrinet", "sci"),
                 gateway_params: Optional[GatewayParams] = None,
                 node_params=None) -> list[Series]:
    """The exact sweep behind Figure 6 (direction="b0->a0", i.e. SCI to
    Myrinet) and Figure 7 (direction="a0->b0"): one bandwidth-vs-message-size
    curve per paquet size."""
    curves = []
    for packet in packet_sizes:
        harness = PingHarness(packet_size=packet,
                              gateway_params=gateway_params,
                              protocols=protocols, node_params=node_params)
        series = bandwidth_sweep(
            lambda size: harness.measure(size, direction=direction),
            [m for m in message_sizes if m >= packet],
            label=f"paquet {packet >> 10} KB")
        series.meta["packet_size"] = packet
        series.meta["direction"] = direction
        curves.append(series)
    return curves
