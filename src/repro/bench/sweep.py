"""Parameter sweeps: the loops behind every figure of the evaluation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from ..hw.params import GatewayParams, PipelineConfig
from .ping import (MultirailHarness, PingHarness, PingResult,
                   probe_protocol_rates)

__all__ = ["Series", "bandwidth_sweep", "figure_sweep", "pipeline_sweep",
           "rails_sweep",
           "PAPER_PACKET_SIZES", "PAPER_MESSAGE_SIZES",
           "PIPELINE_SWEEP_DEPTHS", "PIPELINE_SWEEP_FRAGMENTS",
           "RAILS_SWEEP_RAILS", "RAILS_SWEEP_PACKETS"]

#: the paper sweeps paquet sizes 8 KB .. 128 KB (Figures 6 and 7)
PAPER_PACKET_SIZES = tuple((1 << k) << 10 for k in range(3, 8))

#: message sizes up to 16 MB (the figures' x axis, log-spaced)
PAPER_MESSAGE_SIZES = tuple((1 << k) << 10 for k in range(3, 15))


@dataclass
class Series:
    """One curve: bandwidth (MB/s) against message size (bytes)."""

    label: str
    sizes: list[int] = field(default_factory=list)
    bandwidths: list[float] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def add(self, size: int, bandwidth: float) -> None:
        self.sizes.append(size)
        self.bandwidths.append(bandwidth)

    @property
    def asymptote(self) -> float:
        """Mean of the top quartile of points (a robust plateau estimate)."""
        if not self.bandwidths:
            raise ValueError(f"series {self.label!r} is empty")
        top = sorted(self.bandwidths)[-max(1, len(self.bandwidths) // 4):]
        return sum(top) / len(top)

    def as_rows(self) -> list[tuple[int, float]]:
        return list(zip(self.sizes, self.bandwidths))


def bandwidth_sweep(measure: Callable[[int], PingResult],
                    sizes: Iterable[int], label: str) -> Series:
    """Run ``measure`` over message sizes, collecting a bandwidth curve."""
    series = Series(label=label)
    for size in sizes:
        result = measure(size)
        series.add(size, result.bandwidth)
    return series


#: depth × fragment grid of ``repro bench --sweep-pipeline``.
PIPELINE_SWEEP_DEPTHS = (1, 2, 4, 8)
PIPELINE_SWEEP_FRAGMENTS = tuple((1 << k) << 10 for k in (3, 4, 5, 6, 7))


def _pipeline_cell(cell):
    """One (depth, fragment) measurement on the fig5 topology.

    Module-level (and tuple-argumented) so a ``multiprocessing`` pool can
    pickle it; ``fragment=None`` runs the adaptive tuner instead of a
    static fragment size and also reports the size it chose.
    """
    depth, fragment, message, direction, rates = cell
    adaptive = fragment is None
    pipeline = PipelineConfig(depth=depth, adaptive_mtu=adaptive)
    harness = PingHarness(packet_size=fragment or 8 << 10,
                          pipeline=pipeline, rate_overrides=rates)
    result = harness.measure(message, direction=direction)
    if adaptive:
        world, session, vch, _ack = harness.build()
        src, dst = ((session.rank("b0"), session.rank("a0"))
                    if direction == "b0->a0"
                    else (session.rank("a0"), session.rank("b0")))
        fragment = vch.effective_mtu(vch.routes.route(src, dst))
    return depth, fragment, adaptive, result.bandwidth


def pipeline_sweep(depths: Sequence[int] = PIPELINE_SWEEP_DEPTHS,
                   fragments: Sequence[int] = PIPELINE_SWEEP_FRAGMENTS,
                   message: int = 2 << 20, direction: str = "b0->a0",
                   probe: bool = False,
                   map_fn: Optional[Callable] = None) -> dict:
    """Sweep pipeline depth × fragment size on the fig5 topology, plus one
    adaptively tuned point per depth.  ``probe=True`` runs the online
    rate-probe phase and feeds the measured rates into the tuner;
    ``map_fn`` substitutes for the builtin ``map`` (a multiprocessing
    pool's ``imap``) to spread the cells over worker processes."""
    rates = probe_protocol_rates(("myrinet", "sci")) if probe else None
    cells = [(d, f, message, direction, rates)
             for d in depths for f in [*fragments, None]]
    grid: dict[str, dict[str, float]] = {}
    tuned: dict[str, dict[str, float]] = {}
    for depth, fragment, adaptive, bw in (map_fn or map)(_pipeline_cell,
                                                         cells):
        if adaptive:
            tuned[f"depth{depth}"] = {"fragment_kb": fragment >> 10,
                                      "mbs": bw}
        else:
            grid.setdefault(f"depth{depth}", {})[f"{fragment >> 10}k"] = bw
    return {"direction": direction, "message": message,
            "probe": bool(probe), "grid": grid, "tuned": tuned}


#: rails × paquet grid of ``repro bench --sweep-rails``.
RAILS_SWEEP_RAILS = (1, 2, 3)
RAILS_SWEEP_PACKETS = tuple((1 << k) << 10 for k in (2, 3, 4))


def _rails_cell(cell):
    """One (rails, paquet) measurement on the multirail topology, plus the
    analytic aggregate-bandwidth prediction for the same point.

    Module-level (and tuple-argumented) so a ``multiprocessing`` pool can
    pickle it.
    """
    from ..analysis.model import predict_multirail
    from ..hw.params import PROTOCOLS
    from ..routing import StripePolicy
    rails, packet, message, rates = cell
    policy = StripePolicy(max_rails=rails) if rails > 1 else None
    harness = MultirailHarness(packet_size=packet, rails=rails,
                               stripe_policy=policy, rate_overrides=rates)
    result = harness.measure(message)
    model = predict_multirail(PROTOCOLS[harness.protocols[0]],
                              PROTOCOLS[harness.protocols[1]],
                              packet, rails=rails, message=message)
    return rails, packet, result.bandwidth, model.bandwidth


def _rails_cell_solver(cell):
    """The same (rails, paquet) cell estimated by the analytic solver
    (``--mode solver``): no simulator runs; the 'measured' column is the
    fluid fixed-point figure on the same topology."""
    from ..analysis.model import predict_multirail
    from ..hw.params import PROTOCOLS
    from ..solver import solve_bandwidth
    from ..solver.validate import multirail_scenario
    rails, packet, message, _rates = cell
    bw = solve_bandwidth(multirail_scenario(packet, message, rails))
    model = predict_multirail(PROTOCOLS["myrinet"], PROTOCOLS["sci"],
                              packet, rails=rails, message=message)
    return rails, packet, bw, model.bandwidth


def rails_sweep(rails: Sequence[int] = RAILS_SWEEP_RAILS,
                packets: Sequence[int] = RAILS_SWEEP_PACKETS,
                message: int = 2 << 20,
                map_fn: Optional[Callable] = None,
                mode: str = "des") -> dict:
    """Sweep rail count × paquet size on the multirail dual-NIC topology,
    reporting measured striped bandwidth next to the closed-form
    :func:`~repro.analysis.model.predict_multirail` figure for every cell.
    ``map_fn`` substitutes for the builtin ``map`` (a multiprocessing
    pool's ``imap``) to spread the cells over worker processes;
    ``mode="solver"`` replaces the DES measurement with the analytic
    solver's estimate (~100x faster, validated within 5% — see
    docs/solver.md)."""
    if mode not in ("des", "solver"):
        raise ValueError(f"unknown sweep mode {mode!r}")
    cell_fn = _rails_cell_solver if mode == "solver" else _rails_cell
    cells = [(r, p, message, None) for r in rails for p in packets]
    grid: dict[str, dict[str, float]] = {}
    model: dict[str, dict[str, float]] = {}
    for r, packet, bw, predicted in (map_fn or map)(cell_fn, cells):
        grid.setdefault(f"rails{r}", {})[f"{packet >> 10}k"] = bw
        model.setdefault(f"rails{r}", {})[f"{packet >> 10}k"] = predicted
    gains: dict[str, float] = {}
    base = grid.get("rails1", {})
    for key, row in grid.items():
        if key == "rails1":
            continue
        shared = [p for p in row if p in base]
        if shared:
            gains[key] = sum(row[p] / base[p] for p in shared) / len(shared)
    return {"message": message, "mode": mode, "grid": grid, "model": model,
            "mean_gain": gains}


def figure_sweep(direction: str,
                 packet_sizes: Sequence[int] = PAPER_PACKET_SIZES,
                 message_sizes: Sequence[int] = PAPER_MESSAGE_SIZES,
                 protocols: tuple[str, str] = ("myrinet", "sci"),
                 gateway_params: Optional[GatewayParams] = None,
                 node_params=None) -> list[Series]:
    """The exact sweep behind Figure 6 (direction="b0->a0", i.e. SCI to
    Myrinet) and Figure 7 (direction="a0->b0"): one bandwidth-vs-message-size
    curve per paquet size."""
    curves = []
    for packet in packet_sizes:
        harness = PingHarness(packet_size=packet,
                              gateway_params=gateway_params,
                              protocols=protocols, node_params=node_params)
        series = bandwidth_sweep(
            lambda size: harness.measure(size, direction=direction),
            [m for m in message_sizes if m >= packet],
            label=f"paquet {packet >> 10} KB")
        series.meta["packet_size"] = packet
        series.meta["direction"] = direction
        curves.append(series)
    return curves
