"""Continuous benchmark regression: ``repro bench --regress``.

Runs compact, deterministic versions of the paper's evaluation scenarios
(the figure 5 gateway pipeline, the figure 6/7 bandwidth sweeps, the
figure 8 PCI-conflict ratios and the §3.1 latency points), writes every
measured number to ``BENCH_PR3.json`` at the repository root, and compares
each metric against the committed baseline
(``benchmarks/baselines/bench_regress.json``) within a tolerance band.

The simulator is deterministic, so on unchanged code every metric matches
the baseline exactly; the tolerance band exists so that *intentional*
re-calibrations fail loudly (outside the band) while numerically benign
refactors (e.g. a different but equivalent float summation order) do not.
Two classes of check:

* **figure metrics** — latency, bandwidth, pipeline shape: drifting outside
  the band means the modelled hardware behaviour changed;
* **kernel-cost metrics** — dispatched simulator events per transferred MB:
  the hot-path optimisations must keep this at least ``min_event_reduction``
  below the pre-optimisation kernel (the committed ``pre_pr3`` reference),
  so an accidental de-optimisation fails CI even though it would not move
  any simulated timestamp.

Refresh the baseline after an intentional change with
``repro bench --regress --update-baseline`` and commit the result.
"""

from __future__ import annotations

import json
import pathlib
from typing import Optional

import numpy as np

from .ping import PingHarness
from .sweep import figure_sweep

__all__ = ["run_regress", "compare_to_baseline", "format_report",
           "DEFAULT_BASELINE", "DEFAULT_OUT", "DEFAULT_TOLERANCE"]

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]
DEFAULT_BASELINE = _REPO_ROOT / "benchmarks" / "baselines" / "bench_regress.json"
DEFAULT_OUT = _REPO_ROOT / "BENCH_PR3.json"
DEFAULT_TOLERANCE = 0.10

#: fig5/fig8 use the paper's balanced configuration: 2 MB over 64 KB paquets.
_PACKET = 64 << 10
_MESSAGE = 2 << 20

#: reduced fig6/fig7 grid — enough points to pin the curve and the plateau
#: without the full 5×12 sweep of the figure reproductions.
_SWEEP_PACKETS = (8 << 10, 64 << 10, 128 << 10)
_SWEEP_SIZES = ((1 << k) << 10 for k in (5, 7, 9, 11, 13))
_SWEEP_SIZES = tuple(_SWEEP_SIZES)

_LATENCY_SIZES = (8 << 10, 4 << 20)


def _one_transfer(header_batching: bool = False):
    """The figure 5 scenario: 2 MB from b0 (SCI) to a0 (Myrinet)."""
    from ..analysis import extract_timeline, pipeline_stats

    harness = PingHarness(packet_size=_PACKET,
                          header_batching=header_batching)
    world, session, vch, _ack = harness.build()
    data = np.zeros(_MESSAGE, dtype=np.uint8)
    done = {}

    def snd():
        m = vch.endpoint(session.rank("b0")).begin_packing(session.rank("a0"))
        yield m.pack(data)
        yield m.end_packing()

    def rcv():
        inc = yield vch.endpoint(session.rank("a0")).begin_unpacking()
        _ev, _b = inc.unpack(_MESSAGE)
        yield inc.end_unpacking()
        done["t"] = session.now

    session.spawn(snd())
    session.spawn(rcv())
    session.run()
    stats = pipeline_stats(extract_timeline(world.trace))
    sim = session.sim
    mb = _MESSAGE / (1 << 20)
    return {
        "elapsed_us": done["t"],
        "bandwidth_mbs": _MESSAGE / done["t"],
        "events_processed": float(sim.events_processed),
        "events_cancelled": float(sim.events_cancelled),
        "events_per_mb": sim.events_processed / mb,
        "fragments": float(stats.fragments),
        "mean_period_us": stats.mean_period_us,
        "overlap_fraction": stats.overlap_fraction,
    }


def _scenario_fig5() -> dict:
    return _one_transfer(header_batching=False)


def _scenario_fig5_batched() -> dict:
    # Informational twin of fig5 with §2.3 header batching on: fewer wire
    # records, so both the event cost and the elapsed time shift.  Tracked
    # so a regression in the batched path is caught too.
    return _one_transfer(header_batching=True)


def _scenario_latency() -> dict:
    out = {}
    for direction in ("b0->a0", "a0->b0"):
        for size in _LATENCY_SIZES:
            harness = PingHarness(packet_size=_PACKET)
            r = harness.measure(size, direction=direction)
            key = f"{direction.replace('->', '_to_')}_{size >> 10}k"
            out[f"{key}_us"] = r.one_way_us
            out[f"{key}_mbs"] = r.bandwidth
    return out


def _scenario_sweep(direction: str) -> dict:
    curves = figure_sweep(direction, packet_sizes=_SWEEP_PACKETS,
                          message_sizes=_SWEEP_SIZES)
    out = {}
    for c in curves:
        out[f"asymptote_{c.meta['packet_size'] >> 10}k_mbs"] = c.asymptote
    return out


def _scenario_fig6() -> dict:
    return _scenario_sweep("b0->a0")


def _scenario_fig7() -> dict:
    return _scenario_sweep("a0->b0")


def _scenario_fig8() -> dict:
    from ..analysis import extract_timeline, pipeline_stats
    from ..hw import SCI

    def ratios(direction: str):
        harness = PingHarness(packet_size=_PACKET)
        world, session, vch, _ack = harness.build()
        data = np.zeros(_MESSAGE, dtype=np.uint8)
        src, dst = (("a0", "b0") if direction == "myri->sci"
                    else ("b0", "a0"))

        def snd():
            m = vch.endpoint(session.rank(src)).begin_packing(
                session.rank(dst))
            yield m.pack(data)
            yield m.end_packing()

        def rcv():
            inc = yield vch.endpoint(session.rank(dst)).begin_unpacking()
            _ev, _b = inc.unpack(_MESSAGE)
            yield inc.end_unpacking()

        session.spawn(snd())
        session.spawn(rcv())
        session.run()
        return pipeline_stats(extract_timeline(world.trace))

    stats_ms = ratios("myri->sci")
    stats_sm = ratios("sci->myri")
    nominal_send = (SCI.tx_overhead + SCI.latency
                    + (_PACKET + 16) / SCI.host_peak)
    return {
        "myri_to_sci_send_recv_ratio": stats_ms.send_recv_ratio,
        "sci_to_myri_send_recv_ratio": stats_sm.send_recv_ratio,
        "sci_send_slowdown": stats_ms.mean_send_us / nominal_send,
    }


_SCENARIOS = {
    "fig5": _scenario_fig5,
    "fig5_batched": _scenario_fig5_batched,
    "fig8": _scenario_fig8,
    "latency": _scenario_latency,
    "fig6": _scenario_fig6,
    "fig7": _scenario_fig7,
}

#: --quick keeps the cheap single-transfer scenarios (the sweeps dominate
#: the runtime); comparison then covers only the scenarios that ran.
_QUICK_SCENARIOS = ("fig5", "fig5_batched", "fig8", "latency")


def run_regress(quick: bool = False, progress=None) -> dict:
    """Run the suite; returns ``{scenario: {metric: value}}``."""
    names = _QUICK_SCENARIOS if quick else tuple(_SCENARIOS)
    results = {}
    for name in names:
        if progress is not None:
            progress(name)
        results[name] = _SCENARIOS[name]()
    return results


def compare_to_baseline(current: dict, baseline: dict,
                        tolerance: Optional[float] = None) -> list[str]:
    """Return a list of failure messages (empty means the run passes).

    Every metric of every scenario present in *both* the baseline and the
    current run must sit within the tolerance band; the fig5 event cost
    must additionally honour the committed ``min_event_reduction`` against
    the ``pre_pr3`` kernel reference.
    """
    tol = baseline.get("tolerance", DEFAULT_TOLERANCE) \
        if tolerance is None else tolerance
    failures = []
    base_scen = baseline.get("scenarios", {})
    for name, metrics in base_scen.items():
        if name not in current:
            continue   # e.g. a --quick run skipped the sweeps
        for metric, base in metrics.items():
            cur = current[name].get(metric)
            if cur is None:
                failures.append(f"{name}.{metric}: missing from this run")
                continue
            band = tol * max(abs(base), 1e-9)
            if abs(cur - base) > band:
                failures.append(
                    f"{name}.{metric}: {cur:.6g} drifted from baseline "
                    f"{base:.6g} (>{tol:.0%})")
    pre = baseline.get("pre_pr3", {})
    ref = pre.get("fig5_events_per_mb")
    floor = pre.get("min_event_reduction", 0.0)
    if ref and "fig5" in current:
        cur = current["fig5"]["events_per_mb"]
        reduction = 1.0 - cur / ref
        if reduction < floor - 1e-9:
            failures.append(
                f"fig5.events_per_mb: {cur:.1f} is only {reduction:.1%} "
                f"below the pre-optimisation kernel ({ref:.1f}); the "
                f"hot-path pass guarantees >= {floor:.0%}")
    return failures


def kernel_summary(current: dict, baseline: dict) -> dict:
    """The headline kernel-cost numbers for the report/JSON."""
    out = {}
    ref = baseline.get("pre_pr3", {}).get("fig5_events_per_mb")
    if ref and "fig5" in current:
        cur = current["fig5"]["events_per_mb"]
        out = {"fig5_events_per_mb": cur,
               "pre_pr3_events_per_mb": ref,
               "event_reduction": 1.0 - cur / ref}
    return out


def format_report(current: dict, baseline: dict,
                  failures: list[str]) -> str:
    lines = []
    base_scen = baseline.get("scenarios", {})
    for name in current:
        lines.append(f"{name}:")
        for metric, cur in sorted(current[name].items()):
            base = base_scen.get(name, {}).get(metric)
            if base is None:
                lines.append(f"  {metric:32s}{cur:14.3f}  (no baseline)")
            else:
                delta = (cur - base) / max(abs(base), 1e-9)
                lines.append(f"  {metric:32s}{cur:14.3f}  "
                             f"baseline {base:12.3f}  {delta:+8.2%}")
    ks = kernel_summary(current, baseline)
    if ks:
        lines.append(
            f"\nkernel cost: {ks['fig5_events_per_mb']:.1f} dispatched "
            f"events/MB vs {ks['pre_pr3_events_per_mb']:.1f} pre-PR3 "
            f"({ks['event_reduction']:.1%} reduction)")
    if failures:
        lines.append("\nREGRESSIONS:")
        lines.extend(f"  - {f}" for f in failures)
    else:
        lines.append("\nall metrics within tolerance")
    return "\n".join(lines)


def write_results(current: dict, baseline: dict, failures: list[str],
                  path: pathlib.Path) -> None:
    payload = {
        "suite": "bench-regress",
        "kernel": kernel_summary(current, baseline),
        "scenarios": current,
        "comparison": {
            "status": "fail" if failures else "pass",
            "tolerance": baseline.get("tolerance", DEFAULT_TOLERANCE),
            "failures": failures,
        },
    }
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n",
                    encoding="utf-8")


def write_baseline(current: dict, path: pathlib.Path,
                   tolerance: float = DEFAULT_TOLERANCE,
                   pre_pr3: Optional[dict] = None) -> None:
    existing = {}
    if path.exists():
        existing = json.loads(path.read_text(encoding="utf-8"))
    payload = {
        "tolerance": tolerance,
        # The pre-optimisation kernel reference survives baseline refreshes:
        # it is a historical measurement, not something a rerun can produce.
        "pre_pr3": pre_pr3 if pre_pr3 is not None
        else existing.get("pre_pr3", {}),
        "scenarios": {**existing.get("scenarios", {}), **current},
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n",
                    encoding="utf-8")
