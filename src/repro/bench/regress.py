"""Continuous benchmark regression: ``repro bench --regress``.

Runs compact, deterministic versions of the paper's evaluation scenarios
(the figure 5 gateway pipeline, the figure 6/7 bandwidth sweeps, the
figure 8 PCI-conflict ratios and the §3.1 latency points), writes every
measured number to ``BENCH_PR3.json`` at the repository root, and compares
each metric against the committed baseline
(``benchmarks/baselines/bench_regress.json``) within a tolerance band.

The simulator is deterministic, so on unchanged code every metric matches
the baseline exactly; the tolerance band exists so that *intentional*
re-calibrations fail loudly (outside the band) while numerically benign
refactors (e.g. a different but equivalent float summation order) do not.
Two classes of check:

* **figure metrics** — latency, bandwidth, pipeline shape: drifting outside
  the band means the modelled hardware behaviour changed;
* **kernel-cost metrics** — dispatched simulator events per transferred MB:
  the hot-path optimisations must keep this at least ``min_event_reduction``
  below the pre-optimisation kernel (the committed ``pre_pr3`` reference),
  so an accidental de-optimisation fails CI even though it would not move
  any simulated timestamp;
* **feature floors** (the baseline's ``floors``) — minimum improvements a
  feature must keep delivering: the depth-4 tuned pipeline's bandwidth gain
  over the depth-2/static-MTU paper configuration, and header batching's
  wire-record reduction on a many-small-buffers message.

Refresh the baseline after an intentional change with
``repro bench --regress --update-baseline`` and commit the result.
"""

from __future__ import annotations

import json
import math
import pathlib
import zlib
from typing import Optional

import numpy as np

from .jsonio import dump_json
from .ping import PingHarness
from .sweep import figure_sweep

__all__ = ["run_regress", "compare_to_baseline", "format_report",
           "DEFAULT_BASELINE", "DEFAULT_OUT", "DEFAULT_TOLERANCE",
           "DEFAULT_FLOORS"]

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]
DEFAULT_BASELINE = _REPO_ROOT / "benchmarks" / "baselines" / "bench_regress.json"
DEFAULT_OUT = _REPO_ROOT / "BENCH_PR3.json"
DEFAULT_TOLERANCE = 0.10

#: feature floors enforced by :func:`compare_to_baseline` (overridable by
#: the committed baseline's ``floors`` mapping).
DEFAULT_FLOORS = {
    # depth-4 + tuned fragments must beat depth-2/static by >= 10% where
    # the swap overhead dominates (the tentpole acceptance criterion).
    "pipeline_depth4_gain": 0.10,
    # header batching must keep cutting wire records on a message of many
    # sub-MTU buffers (its real benefit; invisible on fig5, see docs).
    "batching_record_reduction": 0.25,
    # dual-rail striping must keep aggregating bandwidth: >= 1.5x the
    # single-rail figure at 8 KB paquets on the dual-gateway topology.
    "multirail_dual_gain": 1.5,
    # scale-out kernel cost must stay sub-linear in flow count: events/MB
    # may grow by at most this factor from 8 to 64 concurrent flows on the
    # 4x4 torus (a *maximum*, unlike the gain floors above).
    "sweep_nodes_event_growth": 1.3,
    # the incremental fluid-rate engine must keep epochs local: on the
    # 256-node torus uniform-traffic cell, each DES rate epoch may re-solve
    # at most this mean fraction of the live flows (a *maximum*).
    "incremental_recompute_fraction": 0.25,
    # and the solver sweep grid must stay at least this much faster than
    # the PR 8 epoch loop (re-run in the same process, so the ratio is
    # machine-independent).
    "incremental_solver_speedup": 2.0,
    # the adaptive transport policy (docs/adaptive.md) must keep beating
    # the static round-robin configuration on the mixed small-heavy
    # workload by >= 15% aggregate bandwidth ...
    "adaptive_mixed_gain": 1.15,
    # ... while sharing it fairly: Jain index of the per-flow bandwidths.
    "adaptive_jain_fairness": 0.9,
    # and after a permanent rail loss, fail-fast re-striping must hold the
    # striped-transfer bandwidth at >= 70% of the surviving-rail optimum.
    "adaptive_recovery_fraction": 0.7,
}

#: fig5/fig8 use the paper's balanced configuration: 2 MB over 64 KB paquets.
_PACKET = 64 << 10
_MESSAGE = 2 << 20

#: reduced fig6/fig7 grid — enough points to pin the curve and the plateau
#: without the full 5×12 sweep of the figure reproductions.
_SWEEP_PACKETS = (8 << 10, 64 << 10, 128 << 10)
_SWEEP_SIZES = ((1 << k) << 10 for k in (5, 7, 9, 11, 13))
_SWEEP_SIZES = tuple(_SWEEP_SIZES)

_LATENCY_SIZES = (8 << 10, 4 << 20)


def _one_transfer(header_batching: bool = False):
    """The figure 5 scenario: 2 MB from b0 (SCI) to a0 (Myrinet)."""
    from ..analysis import extract_timeline, pipeline_stats
    from ..hw.fabric import FRAGMENT_HEADER_BYTES

    harness = PingHarness(packet_size=_PACKET,
                          header_batching=header_batching)
    world, session, vch, _ack = harness.build()
    # Metrics create no simulator events, so enabling them is
    # schedule-preserving; they expose the wire-record count header
    # batching is actually about.
    world.telemetry.metrics.enable()
    data = np.zeros(_MESSAGE, dtype=np.uint8)
    done = {}

    def snd():
        m = vch.endpoint(session.rank("b0")).begin_packing(session.rank("a0"))
        yield m.pack(data)
        yield m.end_packing()

    def rcv():
        inc = yield vch.endpoint(session.rank("a0")).begin_unpacking()
        _ev, _b = inc.unpack(_MESSAGE)
        yield inc.end_unpacking()
        done["t"] = session.now

    session.spawn(snd())
    session.spawn(rcv())
    session.run()
    stats = pipeline_stats(extract_timeline(world.trace))
    sim = session.sim
    mb = _MESSAGE / (1 << 20)
    records = world.telemetry.metrics.total("wire.fragments")
    return {
        "elapsed_us": done["t"],
        "bandwidth_mbs": _MESSAGE / done["t"],
        "events_processed": float(sim.events_processed),
        "events_cancelled": float(sim.events_cancelled),
        "events_per_mb": sim.events_processed / mb,
        "fragments": float(stats.fragments),
        "mean_period_us": stats.mean_period_us,
        "overlap_fraction": stats.overlap_fraction,
        # Wire records over both hops (announces, descriptors/gtmh,
        # fragments, terminators) and the 16-byte header cost they carry.
        "wire_records": float(records),
        "wire_header_bytes": float(records * FRAGMENT_HEADER_BYTES),
    }


def _scenario_fig5() -> dict:
    return _one_transfer(header_batching=False)


def _scenario_fig5_batched() -> dict:
    # Informational twin of fig5 with §2.3 header batching on: fewer wire
    # records, so both the event cost and the elapsed time shift.  Tracked
    # so a regression in the batched path is caught too.
    return _one_transfer(header_batching=True)


def _scenario_latency() -> dict:
    out = {}
    for direction in ("b0->a0", "a0->b0"):
        for size in _LATENCY_SIZES:
            harness = PingHarness(packet_size=_PACKET)
            r = harness.measure(size, direction=direction)
            key = f"{direction.replace('->', '_to_')}_{size >> 10}k"
            out[f"{key}_us"] = r.one_way_us
            out[f"{key}_mbs"] = r.bandwidth
    return out


def _scenario_sweep(direction: str) -> dict:
    curves = figure_sweep(direction, packet_sizes=_SWEEP_PACKETS,
                          message_sizes=_SWEEP_SIZES)
    out = {}
    for c in curves:
        out[f"asymptote_{c.meta['packet_size'] >> 10}k_mbs"] = c.asymptote
    return out


def _scenario_fig6() -> dict:
    return _scenario_sweep("b0->a0")


def _scenario_fig7() -> dict:
    return _scenario_sweep("a0->b0")


def _scenario_fig8() -> dict:
    from ..analysis import extract_timeline, pipeline_stats
    from ..hw import SCI

    def ratios(direction: str):
        harness = PingHarness(packet_size=_PACKET)
        world, session, vch, _ack = harness.build()
        data = np.zeros(_MESSAGE, dtype=np.uint8)
        src, dst = (("a0", "b0") if direction == "myri->sci"
                    else ("b0", "a0"))

        def snd():
            m = vch.endpoint(session.rank(src)).begin_packing(
                session.rank(dst))
            yield m.pack(data)
            yield m.end_packing()

        def rcv():
            inc = yield vch.endpoint(session.rank(dst)).begin_unpacking()
            _ev, _b = inc.unpack(_MESSAGE)
            yield inc.end_unpacking()

        session.spawn(snd())
        session.spawn(rcv())
        session.run()
        return pipeline_stats(extract_timeline(world.trace))

    stats_ms = ratios("myri->sci")
    stats_sm = ratios("sci->myri")
    nominal_send = (SCI.tx_overhead + SCI.latency
                    + (_PACKET + 16) / SCI.host_peak)
    return {
        "myri_to_sci_send_recv_ratio": stats_ms.send_recv_ratio,
        "sci_to_myri_send_recv_ratio": stats_sm.send_recv_ratio,
        "sci_send_slowdown": stats_ms.mean_send_us / nominal_send,
    }


#: the pipeline scenario runs where the swap overhead dominates: 8 KB
#: paquets make the 40 µs buffer switch ≈ 20% of the lockstep period.
_PIPELINE_PACKET = 8 << 10


def _pipeline_point(pipeline) -> float:
    harness = PingHarness(packet_size=_PIPELINE_PACKET, pipeline=pipeline)
    return harness.measure(_MESSAGE, direction="b0->a0").bandwidth


def _scenario_pipeline() -> dict:
    """Depth-4 credit pipeline + adaptive fragment tuner vs the paper's
    depth-2 lockstep with static MTU, on the fig5 topology."""
    from ..hw.params import PipelineConfig

    depth2 = _pipeline_point(None)   # paper default: depth-2 lockstep
    depth4 = _pipeline_point(PipelineConfig(depth=4))
    tuned_cfg = PipelineConfig(depth=4, adaptive_mtu=True)
    depth4_tuned = _pipeline_point(tuned_cfg)
    harness = PingHarness(packet_size=_PIPELINE_PACKET, pipeline=tuned_cfg)
    world, session, vch, _ack = harness.build()
    route = vch.routes.route(session.rank("b0"), session.rank("a0"))
    return {
        "depth2_static_mbs": depth2,
        "depth4_static_mbs": depth4,
        "depth4_tuned_mbs": depth4_tuned,
        "tuned_fragment_kb": float(vch.effective_mtu(route) >> 10),
        "depth4_gain": depth4_tuned / depth2 - 1.0,
    }


def _many_buffer_transfer(header_batching: bool):
    """One message of many sub-MTU buffers b0 -> a0 (the traffic shape
    where header batching actually removes wire records; on fig5's single
    2 MB buffer the shortened head fragment pushes a tail fragment and the
    record count is unchanged)."""
    harness = PingHarness(packet_size=_PACKET,
                          header_batching=header_batching)
    world, session, vch, _ack = harness.build()
    world.telemetry.metrics.enable()
    bufs = [np.zeros(8 << 10, dtype=np.uint8) for _ in range(32)]
    done = {}

    def snd():
        m = vch.endpoint(session.rank("b0")).begin_packing(session.rank("a0"))
        for b in bufs:
            yield m.pack(b)
        yield m.end_packing()

    def rcv():
        inc = yield vch.endpoint(session.rank("a0")).begin_unpacking()
        for b in bufs:
            _ev, _b = inc.unpack(len(b))
        yield inc.end_unpacking()
        done["t"] = session.now

    session.spawn(snd())
    session.spawn(rcv())
    session.run()
    records = world.telemetry.metrics.total("wire.fragments")
    return done["t"], float(records)


def _scenario_batching() -> dict:
    """Header batching's measurable benefit: wire records saved on a
    32 × 8 KB-buffer message, asserted via the ``floors`` guard."""
    from ..hw.fabric import FRAGMENT_HEADER_BYTES

    plain_us, plain_records = _many_buffer_transfer(False)
    batched_us, batched_records = _many_buffer_transfer(True)
    return {
        "plain_elapsed_us": plain_us,
        "batched_elapsed_us": batched_us,
        "plain_wire_records": plain_records,
        "batched_wire_records": batched_records,
        "plain_header_bytes": plain_records * FRAGMENT_HEADER_BYTES,
        "batched_header_bytes": batched_records * FRAGMENT_HEADER_BYTES,
        "record_reduction": 1.0 - batched_records / plain_records,
    }


#: multirail runs at the gain-demonstration point: 8 KB paquets, where the
#: per-fragment latency keeps single-rail far from the wire peak.
_MULTIRAIL_PACKET = 8 << 10


def _scenario_multirail() -> dict:
    """Dual-rail striping vs single rail on the dual-gateway/dual-NIC
    topology, with the closed-form model's figure for the same point."""
    from ..analysis.model import predict_multirail
    from ..hw.params import PROTOCOLS
    from ..routing import StripePolicy
    from .ping import MultirailHarness

    single = MultirailHarness(packet_size=_MULTIRAIL_PACKET,
                              rails=1).measure(_MESSAGE)
    dual = MultirailHarness(packet_size=_MULTIRAIL_PACKET, rails=2,
                            stripe_policy=StripePolicy(max_rails=2),
                            ).measure(_MESSAGE)
    model = predict_multirail(PROTOCOLS["myrinet"], PROTOCOLS["sci"],
                              _MULTIRAIL_PACKET, rails=2, message=_MESSAGE)
    return {
        "single_rail_mbs": single.bandwidth,
        "dual_rail_mbs": dual.bandwidth,
        "model_dual_mbs": model.bandwidth,
        "multirail_dual_gain": dual.bandwidth / single.bandwidth,
    }


def _scenario_sweep_nodes() -> dict:
    """Traffic-engine scaling cell: events/MB growth from 8 to 64 open-loop
    flows on a 4x4 torus (calendar scheduler); ``event_growth`` is held
    under the ``sweep_nodes_event_growth`` ceiling."""
    from .scale import scaling_scenario
    return scaling_scenario()


def _scenario_incremental_rates() -> dict:
    """Incremental fluid-rate engine cell: DES recompute locality on the
    256-node torus and solver speedup over the PR 8 epoch loop, both held
    by the ``incremental_*`` floors (docs/performance.md)."""
    from .scale import incremental_rates_scenario
    return incremental_rates_scenario()


def _scenario_adaptive() -> dict:
    """Congestion-aware adaptive transport cell: eager/rendezvous gain +
    fairness on the mixed workload, and fail-fast re-striping recovery
    after a permanent rail loss, all held by the ``adaptive_*`` floors
    (docs/adaptive.md)."""
    from .adaptive import adaptive_scenario
    return adaptive_scenario()


_SCENARIOS = {
    "fig5": _scenario_fig5,
    "fig5_batched": _scenario_fig5_batched,
    "fig8": _scenario_fig8,
    "latency": _scenario_latency,
    "pipeline": _scenario_pipeline,
    "batching": _scenario_batching,
    "multirail": _scenario_multirail,
    "sweep_nodes": _scenario_sweep_nodes,
    "incremental_rates": _scenario_incremental_rates,
    "adaptive": _scenario_adaptive,
    "fig6": _scenario_fig6,
    "fig7": _scenario_fig7,
}

#: --quick keeps the cheap single-transfer scenarios (the sweeps dominate
#: the runtime); comparison then covers only the scenarios that ran.
_QUICK_SCENARIOS = ("fig5", "fig5_batched", "fig8", "latency", "pipeline",
                    "batching", "multirail", "sweep_nodes",
                    "incremental_rates", "adaptive")


def _run_scenario(name: str):
    """Module-level (and picklable) scenario runner with a deterministic
    per-scenario seed, so ``--jobs`` pools reproduce serial runs exactly."""
    import random
    seed = zlib.crc32(name.encode())
    random.seed(seed)
    np.random.seed(seed & 0xFFFFFFFF)
    return name, _SCENARIOS[name]()


def run_regress(quick: bool = False, progress=None,
                jobs: Optional[int] = None) -> dict:
    """Run the suite; returns ``{scenario: {metric: value}}``.

    ``jobs > 1`` spreads the scenarios over a ``multiprocessing`` pool;
    every scenario builds its own pristine world and seeds its RNGs from
    its name, so the results are identical to a serial run.
    """
    names = _QUICK_SCENARIOS if quick else tuple(_SCENARIOS)
    results = {}
    if jobs and jobs > 1:
        import multiprocessing as mp
        with mp.Pool(min(jobs, len(names))) as pool:
            for name, result in pool.imap_unordered(_run_scenario, names):
                if progress is not None:
                    progress(name)
                results[name] = result
        return {name: results[name] for name in names}
    for name in names:
        if progress is not None:
            progress(name)
        results[name] = _run_scenario(name)[1]
    return results


def compare_to_baseline(current: dict, baseline: dict,
                        tolerance: Optional[float] = None) -> list[str]:
    """Return a list of failure messages (empty means the run passes).

    Every metric of every scenario present in *both* the baseline and the
    current run must sit within the tolerance band; the fig5 event cost
    must additionally honour the committed ``min_event_reduction`` against
    the ``pre_pr3`` kernel reference.
    """
    tol = baseline.get("tolerance", DEFAULT_TOLERANCE) \
        if tolerance is None else tolerance
    failures = []
    base_scen = baseline.get("scenarios", {})
    for name, metrics in base_scen.items():
        if name not in current:
            continue   # e.g. a --quick run skipped the sweeps
        for metric, base in metrics.items():
            if metric.startswith("wall_") or metric == "solver_speedup":
                # Wall-clock measurements vary with the machine; the
                # speedup commitment is enforced one-sidedly by the
                # ``incremental_solver_speedup`` floor below instead.
                continue
            cur = current[name].get(metric)
            # Non-finite metrics serialize as null (see bench.jsonio);
            # neither side of a comparison may be null/NaN — that means a
            # scenario produced no measurable value, which is itself a
            # failure, never a silent pass.
            if base is None or (isinstance(base, float)
                                and not math.isfinite(base)):
                failures.append(
                    f"{name}.{metric}: committed baseline value is "
                    f"{base!r}; re-measure and update the baseline")
                continue
            if cur is None:
                failures.append(f"{name}.{metric}: missing from this run")
                continue
            if isinstance(cur, float) and not math.isfinite(cur):
                failures.append(
                    f"{name}.{metric}: non-finite ({cur!r}) — the scenario "
                    f"produced no measurable value")
                continue
            band = tol * max(abs(base), 1e-9)
            if abs(cur - base) > band:
                failures.append(
                    f"{name}.{metric}: {cur:.6g} drifted from baseline "
                    f"{base:.6g} (>{tol:.0%})")
    pre = baseline.get("pre_pr3", {})
    ref = pre.get("fig5_events_per_mb")
    floor = pre.get("min_event_reduction", 0.0)
    if ref and "fig5" in current:
        cur = current["fig5"]["events_per_mb"]
        reduction = 1.0 - cur / ref
        if reduction < floor - 1e-9:
            failures.append(
                f"fig5.events_per_mb: {cur:.1f} is only {reduction:.1%} "
                f"below the pre-optimisation kernel ({ref:.1f}); the "
                f"hot-path pass guarantees >= {floor:.0%}")
    floors = baseline.get("floors", {})
    gain_floor = floors.get("pipeline_depth4_gain")
    if gain_floor is not None and "pipeline" in current:
        gain = current["pipeline"].get("depth4_gain", 0.0)
        if gain < gain_floor - 1e-9:
            failures.append(
                f"pipeline.depth4_gain: {gain:.1%} is below the committed "
                f"floor ({gain_floor:.0%}) — the depth-4 tuned pipeline "
                f"stopped beating depth-2/static-MTU")
    red_floor = floors.get("batching_record_reduction")
    if red_floor is not None and "batching" in current:
        red = current["batching"].get("record_reduction", 0.0)
        if red < red_floor - 1e-9:
            failures.append(
                f"batching.record_reduction: {red:.1%} is below the "
                f"committed floor ({red_floor:.0%}) — header batching "
                f"stopped removing wire records")
    rail_floor = floors.get("multirail_dual_gain")
    if rail_floor is not None and "multirail" in current:
        gain = current["multirail"].get("multirail_dual_gain", 0.0)
        if gain < rail_floor - 1e-9:
            failures.append(
                f"multirail.multirail_dual_gain: {gain:.2f}x is below the "
                f"committed floor ({rail_floor:.1f}x) — dual-rail striping "
                f"stopped aggregating bandwidth")
    growth_cap = floors.get("sweep_nodes_event_growth")
    if growth_cap is not None and "sweep_nodes" in current:
        growth = current["sweep_nodes"].get("event_growth", float("inf"))
        if growth > growth_cap + 1e-9:
            failures.append(
                f"sweep_nodes.event_growth: {growth:.2f}x exceeds the "
                f"committed ceiling ({growth_cap:.1f}x) — kernel cost per "
                f"MB is no longer sub-linear in concurrent flow count")
    frac_cap = floors.get("incremental_recompute_fraction")
    if frac_cap is not None and "incremental_rates" in current:
        frac = current["incremental_rates"].get("des_recompute_fraction",
                                                float("inf"))
        if frac > frac_cap + 1e-9:
            failures.append(
                f"incremental_rates.des_recompute_fraction: {frac:.1%} "
                f"exceeds the committed ceiling ({frac_cap:.0%}) — rate "
                f"epochs are no longer local to their contention component")
    speed_floor = floors.get("incremental_solver_speedup")
    if speed_floor is not None and "incremental_rates" in current:
        speed = current["incremental_rates"].get("solver_speedup", 0.0)
        if speed < speed_floor - 1e-9:
            failures.append(
                f"incremental_rates.solver_speedup: {speed:.2f}x is below "
                f"the committed floor ({speed_floor:.1f}x) over the PR 8 "
                f"epoch loop on the solver sweep grid")
        agree = current["incremental_rates"].get("fct_agreement_ok", 0.0)
        if agree < 1.0:
            failures.append(
                "incremental_rates.fct_agreement_ok: the incremental "
                "solver's completion times diverged from the full "
                "recomputation (or from the PR 8 reference loop)")
    mixed_floor = floors.get("adaptive_mixed_gain")
    if mixed_floor is not None and "adaptive" in current:
        gain = current["adaptive"].get("adaptive_mixed_gain", 0.0)
        if gain < mixed_floor - 1e-9:
            failures.append(
                f"adaptive.adaptive_mixed_gain: {gain:.2f}x is below the "
                f"committed floor ({mixed_floor:.2f}x) — the adaptive "
                f"transport stopped beating the static configuration on "
                f"the mixed workload")
    jain_floor = floors.get("adaptive_jain_fairness")
    if jain_floor is not None and "adaptive" in current:
        jain = current["adaptive"].get("adaptive_jain_fairness", 0.0)
        if jain < jain_floor - 1e-9:
            failures.append(
                f"adaptive.adaptive_jain_fairness: {jain:.3f} is below the "
                f"committed floor ({jain_floor:.2f}) — the adaptive policy "
                f"is starving some flows to win its aggregate gain")
    rec_floor = floors.get("adaptive_recovery_fraction")
    if rec_floor is not None and "adaptive" in current:
        frac = current["adaptive"].get("adaptive_recovery_fraction", 0.0)
        if frac < rec_floor - 1e-9:
            failures.append(
                f"adaptive.adaptive_recovery_fraction: {frac:.2f} is below "
                f"the committed floor ({rec_floor:.2f}) — post-rail-loss "
                f"bandwidth fell away from the surviving-rail optimum")
    return failures


def kernel_summary(current: dict, baseline: dict) -> dict:
    """The headline kernel-cost numbers for the report/JSON."""
    out = {}
    ref = baseline.get("pre_pr3", {}).get("fig5_events_per_mb")
    if ref and "fig5" in current:
        cur = current["fig5"]["events_per_mb"]
        out = {"fig5_events_per_mb": cur,
               "pre_pr3_events_per_mb": ref,
               "event_reduction": 1.0 - cur / ref}
    return out


def format_report(current: dict, baseline: dict,
                  failures: list[str]) -> str:
    lines = []
    base_scen = baseline.get("scenarios", {})
    for name in current:
        lines.append(f"{name}:")
        for metric, cur in sorted(current[name].items()):
            base = base_scen.get(name, {}).get(metric)
            if base is None:
                lines.append(f"  {metric:32s}{cur:14.3f}  (no baseline)")
            else:
                delta = (cur - base) / max(abs(base), 1e-9)
                lines.append(f"  {metric:32s}{cur:14.3f}  "
                             f"baseline {base:12.3f}  {delta:+8.2%}")
    ks = kernel_summary(current, baseline)
    if ks:
        lines.append(
            f"\nkernel cost: {ks['fig5_events_per_mb']:.1f} dispatched "
            f"events/MB vs {ks['pre_pr3_events_per_mb']:.1f} pre-PR3 "
            f"({ks['event_reduction']:.1%} reduction)")
    if failures:
        lines.append("\nREGRESSIONS:")
        lines.extend(f"  - {f}" for f in failures)
    else:
        lines.append("\nall metrics within tolerance")
    return "\n".join(lines)


def write_results(current: dict, baseline: dict, failures: list[str],
                  path: pathlib.Path) -> None:
    payload = {
        "suite": "bench-regress",
        "kernel": kernel_summary(current, baseline),
        "scenarios": current,
        "comparison": {
            "status": "fail" if failures else "pass",
            "tolerance": baseline.get("tolerance", DEFAULT_TOLERANCE),
            "failures": failures,
        },
    }
    dump_json(payload, path)


def write_baseline(current: dict, path: pathlib.Path,
                   tolerance: float = DEFAULT_TOLERANCE,
                   pre_pr3: Optional[dict] = None) -> None:
    existing = {}
    if path.exists():
        existing = json.loads(path.read_text(encoding="utf-8"))
    payload = {
        "tolerance": tolerance,
        # The pre-optimisation kernel reference survives baseline refreshes:
        # it is a historical measurement, not something a rerun can produce.
        "pre_pr3": pre_pr3 if pre_pr3 is not None
        else existing.get("pre_pr3", {}),
        # Feature floors survive refreshes too; they encode commitments, not
        # measurements.
        "floors": {**DEFAULT_FLOORS, **existing.get("floors", {})},
        "scenarios": {**existing.get("scenarios", {}), **current},
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    dump_json(payload, path)
