"""Strict-JSON serialization helpers for benchmark outputs.

``json.dumps`` happily emits bare ``NaN``/``Infinity``/``-Infinity`` — a
Python extension that is **not** JSON and breaks every strict parser (jq,
browsers, the CI step-summary scripts).  Benchmark summaries legitimately
contain non-finite floats (a zero-completion traffic run has no FCT
statistics, so they are NaN), so every bench artifact is written through
:func:`json_safe`, which maps non-finite floats to ``null``, and read back
through :func:`load_json`, which leaves the ``None`` for the comparator to
reject explicitly rather than silently coerce.
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import Any

__all__ = ["json_safe", "dump_json", "load_json"]


def json_safe(value: Any) -> Any:
    """Recursively replace non-finite floats with ``None`` so the result
    round-trips through *strict* JSON; containers are rebuilt (tuples as
    lists, mapping keys stringified the way ``json.dumps`` would)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: json_safe(v) for key, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(v) for v in value]
    return value


def dump_json(payload: Any, path: "pathlib.Path | str") -> None:
    """Write ``payload`` as strict JSON (non-finite floats become null).

    ``allow_nan=False`` is the guard: if a non-finite value ever slips
    past :func:`json_safe` (e.g. a numpy scalar), this raises instead of
    writing an unparseable artifact.
    """
    text = json.dumps(json_safe(payload), indent=1, sort_keys=True,
                      allow_nan=False)
    pathlib.Path(path).write_text(text + "\n", encoding="utf-8")


def load_json(path: "pathlib.Path | str") -> Any:
    """Read a bench artifact, rejecting the bare ``NaN``/``Infinity``
    tokens legacy files may contain — they must be regenerated, not
    silently reinterpreted."""
    def _reject(token: str) -> float:
        raise ValueError(
            f"{path}: contains bare {token!r}, which is not valid JSON; "
            f"regenerate this artifact (non-finite metrics serialize as "
            f"null now)")
    return json.loads(pathlib.Path(path).read_text(encoding="utf-8"),
                      parse_constant=_reject)
