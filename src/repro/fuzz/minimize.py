"""Greedy scenario shrinking.

Given a scenario that violates some invariant, repeatedly try structurally
smaller variants and keep any that still violates the *same* invariant
(detail text may differ — fewer nodes move timestamps around).  The passes
run to a fixed point under a total execution budget, so minimization always
terminates even when the failure is flaky under shrinking.

Pass order matters for output quality: coarse structure first (messages,
fault events, topology width), then magnitudes (sizes).
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from ..faults import FaultPlan
from .executor import run_scenario
from ..scenario import MessageSpec, Scenario, Topology

__all__ = ["minimize_scenario"]


def _with_faults(s: Scenario, **kw) -> Scenario:
    f = s.faults
    merged = dict(seed=f.seed, channels=dict(f.channels), default=f.default,
                  link_events=f.link_events, node_events=f.node_events)
    merged.update(kw)
    return s.with_(faults=FaultPlan(**merged))


def _drop_messages(s: Scenario) -> Iterator[Scenario]:
    for i in range(len(s.messages)):
        if len(s.messages) > 1:
            yield s.with_(messages=s.messages[:i] + s.messages[i + 1:])


def _drop_fault_events(s: Scenario) -> Iterator[Scenario]:
    links, nodes = s.faults.link_events, s.faults.node_events
    for i in range(len(links)):
        yield _with_faults(s, link_events=links[:i] + links[i + 1:])
    for i in range(len(nodes)):
        yield _with_faults(s, node_events=nodes[:i] + nodes[i + 1:])


def _quiet_channels(s: Scenario) -> Iterator[Scenario]:
    for cid in list(s.faults.channels):
        channels = dict(s.faults.channels)
        del channels[cid]
        yield _with_faults(s, channels=channels)
    if s.faults.default is not None:
        yield _with_faults(s, default=None)


def _shrink_topology(s: Scenario) -> Iterator[Scenario]:
    topo = s.topology
    if topo.kind == "multirail":
        if topo.rails > 2:
            yield s.with_(topology=Topology(
                kind="multirail", protocols=topo.protocols,
                gateways=(topo.rails - 1,)))
        return
    # Fewer parallel gateways per boundary.
    for b, count in enumerate(topo.gateways):
        if count > 1:
            gws = list(topo.gateways)
            gws[b] = count - 1
            yield s.with_(topology=Topology(
                kind="chain", protocols=topo.protocols, sizes=topo.sizes,
                gateways=tuple(gws)))
    # Fewer endpoints per cluster; remap traffic onto survivor 0.
    for c, size in enumerate(topo.sizes):
        if size > 1:
            sizes = list(topo.sizes)
            sizes[c] = size - 1
            new_topo = Topology(kind="chain", protocols=topo.protocols,
                                sizes=tuple(sizes), gateways=topo.gateways)
            alive = set(new_topo.endpoint_names())
            tag = "abc"[c]
            msgs = tuple(
                MessageSpec(src=m.src if m.src in alive else f"{tag}0",
                            dst=m.dst if m.dst in alive else f"{tag}0",
                            nbytes=m.nbytes, kind=m.kind)
                for m in s.messages)
            if any(m.src == m.dst for m in msgs):
                continue
            yield s.with_(topology=new_topo, messages=msgs)


def _shrink_sizes(s: Scenario) -> Iterator[Scenario]:
    for i, m in enumerate(s.messages):
        for nbytes in (m.nbytes // 2, m.nbytes // 10, 1024, 1):
            if 1 <= nbytes < m.nbytes:
                msgs = list(s.messages)
                msgs[i] = MessageSpec(m.src, m.dst, nbytes, m.kind)
                yield s.with_(messages=tuple(msgs))


def _simplify_knobs(s: Scenario) -> Iterator[Scenario]:
    if s.stripe is not None:
        yield s.with_(stripe=None, multirail=False)
    if s.multirail:
        yield s.with_(multirail=False)
    if s.header_batching:
        yield s.with_(header_batching=False)


_PASSES: tuple[Callable[[Scenario], Iterator[Scenario]], ...] = (
    _drop_messages,
    _drop_fault_events,
    _quiet_channels,
    _shrink_topology,
    _simplify_knobs,
    _shrink_sizes,
)


def minimize_scenario(scenario: Scenario, invariant: str,
                      max_runs: int = 150,
                      progress: Optional[Callable[[str], None]] = None,
                      ) -> Scenario:
    """Smallest variant of ``scenario`` still violating ``invariant``.

    ``max_runs`` bounds the number of executor invocations; the result is
    whatever the greedy fixed point (or the budget) left standing.
    """
    def still_fails(candidate: Scenario) -> bool:
        try:
            candidate.validate()
        except ValueError:
            return False
        result = run_scenario(candidate)
        return any(f.invariant == invariant for f in result.failures)

    current = scenario
    runs = 0
    improved = True
    while improved and runs < max_runs:
        improved = False
        for shrink_pass in _PASSES:
            # Run each pass to its own fixed point before moving on: the
            # first surviving candidate restarts the pass on the smaller
            # scenario, so one pass can shrink a dimension all the way.
            reduced = True
            while reduced and runs < max_runs:
                reduced = False
                for candidate in shrink_pass(current):
                    if runs >= max_runs:
                        break
                    runs += 1
                    if still_fails(candidate):
                        current = candidate
                        reduced = improved = True
                        if progress is not None:
                            progress(f"  shrunk to {current.describe()} "
                                     f"({runs} runs)")
                        break
    return current
