"""Coverage-guided scenario fuzzing for the forwarding stack.

The chaos harness (``tools/chaos.py``) replays hand-picked fault schedules
on one fixed topology; this package explores the configuration space
systematically:

* :mod:`repro.scenario` — a :class:`Scenario` is one complete,
  JSON-serializable experiment: topology shape, virtual-channel knobs,
  traffic mix, and a seeded :class:`~repro.faults.FaultPlan` (previously
  ``repro.fuzz.scenario``, which remains as a deprecated shim);
* :mod:`~repro.fuzz.generate` — draws scenarios from a seed and mutates
  corpus entries (coverage-guided exploration);
* :mod:`~repro.fuzz.executor` — runs one scenario under an event-budget
  watchdog and checks the invariant catalog of ``docs/robustness.md``;
* :mod:`~repro.fuzz.minimize` — greedily shrinks a failing scenario while
  the same invariant keeps failing;
* :mod:`~repro.fuzz.corpus` — replayable repro files for failing seeds;
* :mod:`~repro.fuzz.autopilot` — the campaign loop behind ``repro fuzz``.
"""

from ..scenario import MessageSpec, Scenario, Topology
from .autopilot import CampaignReport, run_campaign
from .corpus import load_repro, repro_name, save_repro
from .executor import FuzzFailure, FuzzResult, run_scenario
from .generate import mutate_scenario, random_scenario
from .minimize import minimize_scenario

__all__ = [
    "MessageSpec", "Scenario", "Topology",
    "random_scenario", "mutate_scenario",
    "FuzzFailure", "FuzzResult", "run_scenario",
    "minimize_scenario",
    "save_repro", "load_repro", "repro_name",
    "CampaignReport", "run_campaign",
]
