"""Deprecated shim: the scenario schema moved to :mod:`repro.scenario`.

The schema outgrew the fuzzer — benches, the chaos harness, and the traffic
engine consume it too — so it now lives at the top level.  This module
re-exports the public names for old imports and corpus tooling; new code
should import from :mod:`repro.scenario`.
"""

import warnings

from ..scenario.schema import (SCENARIO_VERSION, MessageSpec, Scenario,
                               Topology, TrafficSpec)

__all__ = ["MessageSpec", "Topology", "TrafficSpec", "Scenario",
           "SCENARIO_VERSION"]

warnings.warn(
    "repro.fuzz.scenario is deprecated; import from repro.scenario instead",
    DeprecationWarning, stacklevel=2)
