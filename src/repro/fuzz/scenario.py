"""The fuzzer's unit of work: one complete, serializable experiment.

A :class:`Scenario` pins *everything* a run depends on — topology shape,
virtual-channel configuration, traffic mix, and the seeded fault schedule —
so the same scenario dict always replays the same simulated microseconds.
Channel and node names are deterministic functions of the topology
(``c0``/``ca0`` channels, ``a0``/``gw00`` nodes), which is what lets a
fault plan in a corpus file name its targets portably.

Two topology families cover the paper's configurations:

* ``chain`` — 2..3 homogeneous clusters bridged by 1..2 parallel gateways
  per boundary (the cluster-of-clusters testbed, §3);
* ``multirail`` — two endpoints joined by N disjoint rails through N
  gateways (the striping/multirail layouts).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Optional, Tuple, Union

from ..faults import FaultPlan
from ..hw.params import PROTOCOLS

__all__ = ["MessageSpec", "Topology", "Scenario", "SCENARIO_VERSION"]

SCENARIO_VERSION = 1

#: cluster name prefixes for the chain family ("a0", "b1", ...).
_CLUSTER_TAGS = "abc"


@dataclass(frozen=True)
class MessageSpec:
    """One application transfer. ``kind`` is ``reliable`` (go-back-N over
    the fault layer) or ``plain`` (raw pack/unpack; only valid on a
    fault-free scenario, where Madeleine's reliable-network assumption
    holds)."""

    src: str
    dst: str
    nbytes: int
    kind: str = "reliable"

    def __post_init__(self) -> None:
        if self.nbytes < 1:
            raise ValueError(f"message nbytes must be >= 1, got {self.nbytes}")
        if self.kind not in ("reliable", "plain"):
            raise ValueError(f"unknown message kind {self.kind!r}")


@dataclass(frozen=True)
class Topology:
    """Deterministic topology shape; all names derive from these fields."""

    kind: str                        # "chain" | "multirail"
    protocols: Tuple[str, ...]       # per cluster (chain) / (rail, far) pair
    sizes: Tuple[int, ...] = ()      # endpoints per cluster (chain only)
    gateways: Tuple[int, ...] = ()   # per boundary (chain) / (rails,) count

    def __post_init__(self) -> None:
        unknown = [p for p in self.protocols if p not in PROTOCOLS]
        if unknown:
            raise ValueError(f"unknown protocols {unknown}")
        if self.kind == "chain":
            if not 2 <= len(self.protocols) <= len(_CLUSTER_TAGS):
                raise ValueError("chain needs 2..3 clusters")
            if len(self.sizes) != len(self.protocols):
                raise ValueError("one size per cluster")
            if len(self.gateways) != len(self.protocols) - 1:
                raise ValueError("one gateway count per boundary")
            if any(s < 1 for s in self.sizes):
                raise ValueError("cluster sizes must be >= 1")
            if any(not 1 <= g <= 2 for g in self.gateways):
                raise ValueError("1..2 gateways per boundary")
            for a, b in zip(self.protocols, self.protocols[1:]):
                if a == b:
                    raise ValueError(
                        f"adjacent clusters must differ in protocol ({a!r})")
        elif self.kind == "multirail":
            if len(self.protocols) != 2 or len(set(self.protocols)) != 2:
                raise ValueError("multirail needs two distinct protocols")
            if len(self.gateways) != 1 or not 2 <= self.gateways[0] <= 3:
                raise ValueError("multirail needs 2..3 rails")
        else:
            raise ValueError(f"unknown topology kind {self.kind!r}")

    # -- derived names -----------------------------------------------------------
    @property
    def rails(self) -> int:
        return self.gateways[0]

    def endpoint_names(self) -> list[str]:
        if self.kind == "multirail":
            return ["a0", "b0"]
        return [f"{_CLUSTER_TAGS[c]}{i}"
                for c, size in enumerate(self.sizes) for i in range(size)]

    def gateway_names(self) -> list[str]:
        if self.kind == "multirail":
            return [f"gw{r}" for r in range(self.rails)]
        return [f"gw{b}{k}" for b, count in enumerate(self.gateways)
                for k in range(count)]

    def channel_names(self) -> list[str]:
        if self.kind == "multirail":
            return [f"c{side}{r}" for r in range(self.rails)
                    for side in "ab"]
        return [f"c{c}" for c in range(len(self.protocols))]

    def node_spec(self) -> dict[str, list[str]]:
        """The ``build_world`` adapter mapping."""
        if self.kind == "multirail":
            pa, pb = self.protocols
            rails = self.rails
            spec: dict[str, list[str]] = {"a0": [pa] * rails}
            for r in range(rails):
                spec[f"gw{r}"] = [pa, pb]
            spec["b0"] = [pb] * rails
            return spec
        spec = {}
        for c, (proto, size) in enumerate(zip(self.protocols, self.sizes)):
            for i in range(size):
                spec[f"{_CLUSTER_TAGS[c]}{i}"] = [proto]
        for b, count in enumerate(self.gateways):
            for k in range(count):
                spec[f"gw{b}{k}"] = [self.protocols[b], self.protocols[b + 1]]
        return spec

    def channel_specs(self) -> list[tuple[str, str, list[str],
                                          Union[int, dict]]]:
        """``(name, protocol, members, adapter_index)`` per real channel."""
        if self.kind == "multirail":
            pa, pb = self.protocols
            out = []
            for r in range(self.rails):
                out.append((f"ca{r}", pa, ["a0", f"gw{r}"], {"a0": r}))
                out.append((f"cb{r}", pb, [f"gw{r}", "b0"], {"b0": r}))
            return out
        out = []
        for c, proto in enumerate(self.protocols):
            members = [f"{_CLUSTER_TAGS[c]}{i}" for i in range(self.sizes[c])]
            if c > 0:
                members += [f"gw{c - 1}{k}"
                            for k in range(self.gateways[c - 1])]
            if c < len(self.gateways):
                members += [f"gw{c}{k}" for k in range(self.gateways[c])]
            out.append((f"c{c}", proto, members, 0))
        return out

    @property
    def n_nodes(self) -> int:
        return len(self.endpoint_names()) + len(self.gateway_names())

    def to_dict(self) -> dict:
        return {"kind": self.kind, "protocols": list(self.protocols),
                "sizes": list(self.sizes), "gateways": list(self.gateways)}

    @classmethod
    def from_dict(cls, d: Mapping) -> "Topology":
        return cls(kind=d["kind"], protocols=tuple(d["protocols"]),
                   sizes=tuple(d.get("sizes", ())),
                   gateways=tuple(d.get("gateways", ())))


@dataclass(frozen=True)
class Scenario:
    """Everything one fuzz run depends on, JSON round-trippable."""

    seed: int
    topology: Topology
    packet_size: int = 16 << 10
    header_batching: bool = False
    multirail: bool = False
    #: (depth, credits, lockstep) for the gateway pipeline; None = default.
    pipeline: Optional[Tuple[int, int, bool]] = None
    #: (max_rails, min_stripe) striping policy; None = no striping.
    stripe: Optional[Tuple[int, int]] = None
    messages: Tuple[MessageSpec, ...] = ()
    faults: FaultPlan = field(default_factory=FaultPlan)
    max_attempts: int = 8
    gw_stall_timeout: Optional[float] = 5_000.0

    # -- sanity -------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`ValueError` on an internally inconsistent scenario
        (names that don't exist, plain traffic under faults, ...)."""
        topo = self.topology
        endpoints = set(topo.endpoint_names())
        gateways = set(topo.gateway_names())
        channels = set(topo.channel_names())
        problems = []
        if self.packet_size < 1 << 10:
            problems.append(f"packet_size too small: {self.packet_size}")
        if not self.messages:
            problems.append("scenario has no traffic")
        for m in self.messages:
            for end in (m.src, m.dst):
                if end not in endpoints:
                    problems.append(f"message endpoint {end!r} is not an "
                                    f"endpoint node (have {sorted(endpoints)})")
            if m.src == m.dst:
                problems.append(f"message {m.src!r}->{m.dst!r} is a loopback")
            if m.kind == "plain" and not self.quiet:
                problems.append("plain traffic requires a fault-free plan")
        for cid in self.faults.channels:
            if cid not in channels:
                problems.append(f"fault plan names unknown channel {cid!r}")
        for ev in self.faults.link_events:
            if ev.channel not in channels:
                problems.append(f"link event names unknown channel "
                                f"{ev.channel!r}")
        for ev in self.faults.node_events:
            if ev.node not in gateways:
                # Endpoint crashes make delivery legitimately impossible in
                # ways the invariant catalog cannot distinguish from bugs;
                # the fuzzer only crashes forwarding nodes.
                problems.append(f"node event target {ev.node!r} is not a "
                                f"gateway (have {sorted(gateways)})")
        if self.pipeline is not None:
            depth, credits, lockstep = self.pipeline
            if lockstep and depth != 2:
                problems.append("lockstep pipeline must have depth 2")
            if not 1 <= credits <= depth:
                problems.append(f"credits {credits} outside [1, {depth}]")
        if self.stripe is not None and topo.kind != "multirail":
            problems.append("striping requires the multirail topology")
        parallel_routes = (topo.kind == "multirail"
                           or any(g >= 2 for g in topo.gateways))
        if self.multirail and not parallel_routes:
            problems.append("multirail dispatch requires parallel routes")
        if problems:
            raise ValueError("invalid scenario: " + "; ".join(problems))

    @property
    def quiet(self) -> bool:
        """True when the fault plan injects nothing at all."""
        f = self.faults
        return (not f.link_events and not f.node_events
                and (f.default is None or f.default.quiet)
                and all(cf.quiet for cf in f.channels.values()))

    @property
    def n_fault_events(self) -> int:
        return len(self.faults.link_events) + len(self.faults.node_events)

    def with_(self, **kw) -> "Scenario":
        """`dataclasses.replace` spelled as a method (minimizer passes)."""
        return replace(self, **kw)

    # -- serialization ------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "version": SCENARIO_VERSION,
            "seed": self.seed,
            "topology": self.topology.to_dict(),
            "packet_size": self.packet_size,
            "header_batching": self.header_batching,
            "multirail": self.multirail,
            "pipeline": list(self.pipeline) if self.pipeline else None,
            "stripe": list(self.stripe) if self.stripe else None,
            "messages": [{"src": m.src, "dst": m.dst, "nbytes": m.nbytes,
                          "kind": m.kind} for m in self.messages],
            "faults": self.faults.to_dict(),
            "max_attempts": self.max_attempts,
            "gw_stall_timeout": self.gw_stall_timeout,
        }

    @classmethod
    def from_dict(cls, d: Mapping) -> "Scenario":
        version = d.get("version", SCENARIO_VERSION)
        if version != SCENARIO_VERSION:
            raise ValueError(f"unsupported scenario version {version}")
        pipeline = d.get("pipeline")
        stripe = d.get("stripe")
        return cls(
            seed=int(d["seed"]),
            topology=Topology.from_dict(d["topology"]),
            packet_size=int(d.get("packet_size", 16 << 10)),
            header_batching=bool(d.get("header_batching", False)),
            multirail=bool(d.get("multirail", False)),
            pipeline=None if pipeline is None else (int(pipeline[0]),
                                                    int(pipeline[1]),
                                                    bool(pipeline[2])),
            stripe=None if stripe is None else (int(stripe[0]),
                                                int(stripe[1])),
            messages=tuple(MessageSpec(**m) for m in d.get("messages", ())),
            faults=FaultPlan.from_dict(d.get("faults", {})),
            max_attempts=int(d.get("max_attempts", 8)),
            gw_stall_timeout=d.get("gw_stall_timeout"),
        )

    def describe(self) -> str:
        """One line for progress output."""
        topo = self.topology
        shape = (f"{topo.kind}[{'+'.join(topo.protocols)}"
                 f" gw={list(topo.gateways)}]")
        knobs = []
        if self.pipeline:
            knobs.append(f"pipe={self.pipeline[0]}/{self.pipeline[1]}"
                         + ("L" if self.pipeline[2] else ""))
        if self.stripe:
            knobs.append(f"stripe<={self.stripe[0]}")
        if self.multirail:
            knobs.append("multirail")
        if self.header_batching:
            knobs.append("batch")
        return (f"seed={self.seed} {shape} msgs={len(self.messages)} "
                f"faults={self.n_fault_events}ev"
                f"{' ' + ' '.join(knobs) if knobs else ''}")
