"""The campaign loop behind ``repro fuzz``.

Coverage-guided exploration: each iteration either draws a fresh random
scenario or mutates one that previously exhibited a *new* behaviour
signature (see :meth:`~repro.fuzz.executor._Run.signature`).  Failing
scenarios are minimized and written as repro files; the campaign keeps
going so one bug does not hide the next, and the report carries every
failure for the caller to exit nonzero on.
"""

from __future__ import annotations

import pathlib
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from .corpus import repro_name, save_repro
from .executor import run_scenario
from .generate import mutate_scenario, random_scenario
from .minimize import minimize_scenario
from ..scenario import Scenario

__all__ = ["CampaignReport", "run_campaign"]


@dataclass
class CampaignReport:
    runs: int = 0
    #: scenarios whose signature added at least one unseen feature.
    interesting: int = 0
    features: set = field(default_factory=set)
    #: (seed, invariant, repro path or None) per failing scenario.
    failures: list = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [f"fuzz campaign: {self.runs} run(s), "
                 f"{self.interesting} coverage-novel, "
                 f"{len(self.features)} feature(s), "
                 f"{len(self.failures)} failure(s) "
                 f"in {self.elapsed:.1f}s"]
        for seed, invariant, path in self.failures:
            where = f" -> {path}" if path else ""
            lines.append(f"  FAILED seed={seed} invariant={invariant}{where}")
        return "\n".join(lines)


def _random_run(seed: int):
    """Module-level (picklable) pool worker: execute one fresh random
    scenario.  A pure function of the seed, so a failing seed replays
    identically whatever the worker count was."""
    return run_scenario(random_scenario(seed))


def run_campaign(runs: int = 100, seed_base: int = 0,
                 time_budget: Optional[float] = None,
                 minimize: bool = True,
                 out_dir: Optional[pathlib.Path] = None,
                 progress: Optional[Callable[[str], None]] = None,
                 jobs: Optional[int] = None,
                 ) -> CampaignReport:
    """Run up to ``runs`` scenarios (stopping early on ``time_budget``
    seconds), minimizing and saving each failure under ``out_dir``.

    ``jobs > 1`` spreads the runs over a ``multiprocessing`` pool.  Each
    worker executes an independent ``random_scenario(seed_base + i)`` —
    the corpus-guided mutation loop feeds on previous results and is a
    serial-mode feature — while minimization and repro writing still
    happen serially in the parent.  Coverage bookkeeping is identical;
    only the scenario mix differs (all fresh draws, no mutants).
    """
    say = progress or (lambda _msg: None)
    report = CampaignReport()
    t0 = time.monotonic()

    def out_of_time() -> bool:
        if time_budget is not None and time.monotonic() - t0 > time_budget:
            say(f"time budget ({time_budget:.0f}s) exhausted after "
                f"{report.runs} runs")
            return True
        return False

    def bookkeep(i: int, scenario: Scenario, result) -> bool:
        """Common per-result accounting; True when coverage-novel."""
        report.runs += 1
        novel = result.features - report.features
        if novel:
            report.features |= result.features
            report.interesting += 1
            say(f"[{i}] {scenario.describe()} -> +{len(novel)} feature(s)")
        if not result.ok:
            say(f"[{i}] FAILURE {result.failures[0]} "
                f"({scenario.describe()})")
            final = result
            if minimize:
                invariant = result.failures[0].invariant
                small = minimize_scenario(scenario, invariant,
                                          progress=progress)
                final = run_scenario(small)
                if final.ok:    # flaky under shrinking: keep the original
                    final = result
            path = None
            if out_dir is not None:
                path = pathlib.Path(out_dir) / repro_name(final)
                save_repro(path, final)
                say(f"  repro written to {path}")
            report.failures.append(
                (final.scenario.seed,
                 final.failures[0].invariant if final.failures
                 else result.failures[0].invariant,
                 str(path) if path else None))
        return bool(novel)

    if jobs and jobs > 1:
        import multiprocessing as mp
        with mp.Pool(min(jobs, runs)) as pool:
            seeds = range(seed_base, seed_base + runs)
            for i, result in enumerate(pool.imap(_random_run, seeds)):
                if out_of_time():
                    break
                bookkeep(i, result.scenario, result)
        report.elapsed = time.monotonic() - t0
        return report

    corpus: list[Scenario] = []     # coverage-novel scenarios to mutate
    rng = random.Random(seed_base)
    for i in range(runs):
        if out_of_time():
            break
        seed = seed_base + i
        if corpus and rng.random() < 0.5:
            scenario = mutate_scenario(rng.choice(corpus), seed)
        else:
            scenario = random_scenario(seed)
        result = run_scenario(scenario)
        if bookkeep(i, scenario, result):
            corpus.append(scenario)
    report.elapsed = time.monotonic() - t0
    return report
