"""Replayable repro files for failing scenarios.

A repro file is a small JSON document: the full scenario dict plus what
failed when it was recorded.  ``repro fuzz --replay FILE`` re-executes it;
the files committed under ``tests/fuzz/corpus/`` are replayed by the
regression suite so every bug the fuzzer ever found stays fixed.
"""

from __future__ import annotations

import json
import pathlib
from typing import Union

from .executor import FuzzResult
from ..scenario import Scenario

__all__ = ["save_repro", "load_repro", "repro_name"]

REPRO_VERSION = 1


def repro_name(result: FuzzResult) -> str:
    """Canonical file name: seed plus the first violated invariant."""
    invariant = (result.failures[0].invariant if result.failures
                 else "passing")
    return f"seed{result.scenario.seed}-{invariant}.json"


def save_repro(path: Union[str, pathlib.Path], result: FuzzResult) -> None:
    """Write one failing (or fixed-and-passing) scenario as a repro file."""
    doc = {
        "version": REPRO_VERSION,
        "scenario": result.scenario.to_dict(),
        "failures": [{"invariant": f.invariant, "detail": f.detail}
                     for f in result.failures],
        "stats": result.stats,
    }
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def load_repro(path: Union[str, pathlib.Path]) -> Scenario:
    """The scenario of a repro file (its recorded failures are advisory).

    Accepts classic JSON repro documents (with the ``scenario`` wrapper)
    and, via :mod:`repro.scenario.loader`, bare scenario files in JSON or
    YAML — so ``repro fuzz --replay`` runs anything ``repro bench
    --scenario`` runs.
    """
    path = pathlib.Path(path)
    if path.suffix.lower() not in (".json",):
        from ..scenario import load_scenario
        return load_scenario(path)
    doc = json.loads(path.read_text())
    if "scenario" in doc:
        version = doc.get("version", REPRO_VERSION)
        if version != REPRO_VERSION:
            raise ValueError(f"unsupported repro version {version} in {path}")
        return Scenario.from_dict(doc["scenario"])
    return Scenario.from_dict(doc)
