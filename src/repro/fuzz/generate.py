"""Seeded scenario generation and corpus mutation.

Everything is a pure function of its seed: ``random_scenario(seed)`` (and
``mutate_scenario(base, seed)``) build the same :class:`Scenario` on every
call, so a failing seed in a corpus file *is* the bug report.  Mutations
keep the structural invariants of the scenario schema; any mutation that
would produce an invalid configuration falls back to a fresh random
scenario rather than dying in ``validate``.
"""

from __future__ import annotations

import random
from typing import Optional

from ..faults import ChannelFaults, FaultPlan, LinkEvent, NodeEvent
from ..scenario import MessageSpec, Scenario, Topology

__all__ = ["random_scenario", "mutate_scenario"]

#: fixed draw order → stable scenarios across python/dict-order changes.
_PROTOS = ("myrinet", "sci", "sbp", "gigabit_tcp", "fast_ethernet")
_PACKET_SIZES = (4 << 10, 8 << 10, 16 << 10, 32 << 10)
_MAX_MSG_BYTES = 120_000
#: eager thresholds for the adaptive transport policy: 0 keeps eager off
#: while still exercising re-striping/balancing, the rest bracket the
#: generated message sizes so both eager and rendezvous paths get traffic.
_EAGER_THRESHOLDS = (0, 256, 1 << 10, 4 << 10, 16 << 10)


def _draw_adaptive(rng: random.Random) -> tuple:
    """(eager_threshold, restripe_high, restripe_low, gateway_balance) with
    the schema's high > low >= 1 hysteresis invariant held by construction."""
    low = round(rng.uniform(1.0, 3.0), 2)
    high = round(low + rng.uniform(0.5, 4.0), 2)
    return (rng.choice(_EAGER_THRESHOLDS), high, low, rng.random() < 0.7)


def _chain_topology(rng: random.Random) -> Topology:
    n_clusters = rng.choice((2, 2, 2, 3))
    protos = [rng.choice(_PROTOS)]
    while len(protos) < n_clusters:
        protos.append(rng.choice([p for p in _PROTOS if p != protos[-1]]))
    sizes = tuple(rng.choice((1, 1, 2)) for _ in range(n_clusters))
    gateways = tuple(rng.choice((1, 1, 2)) for _ in range(n_clusters - 1))
    return Topology(kind="chain", protocols=tuple(protos), sizes=sizes,
                    gateways=gateways)


def _multirail_topology(rng: random.Random) -> Topology:
    pa = rng.choice(_PROTOS)
    pb = rng.choice([p for p in _PROTOS if p != pa])
    return Topology(kind="multirail", protocols=(pa, pb),
                    gateways=(rng.choice((2, 2, 3)),))


def _draw_messages(rng: random.Random, topo: Topology,
                   quiet: bool) -> tuple[MessageSpec, ...]:
    endpoints = topo.endpoint_names()
    if topo.kind == "multirail":
        sources, sinks = ["a0"], ["b0"]
    else:
        # Cross-cluster traffic exercises the forwarding path; first and
        # last clusters are always on different protocols.
        first = topo.sizes[0]
        sources, sinks = endpoints[:first], endpoints[-topo.sizes[-1]:]
    # One kind per scenario: a ReliableEndpoint owns its rank's whole
    # incoming stream, so plain and reliable traffic cannot share ranks.
    kind = "plain" if quiet and rng.random() < 0.4 else "reliable"
    out = []
    for _ in range(rng.randint(1, 5)):
        src = rng.choice(sources)
        dst = rng.choice(sinks)
        # Log-uniform sizes: single-fragment paquets are as interesting as
        # multi-attempt monsters.
        nbytes = int(2 ** rng.uniform(0, _MAX_MSG_BYTES.bit_length() - 1))
        out.append(MessageSpec(src=src, dst=dst, nbytes=max(1, nbytes),
                               kind=kind))
    return tuple(out)


def _draw_faults(rng: random.Random, topo: Topology, seed: int) -> FaultPlan:
    if rng.random() < 0.25:
        return FaultPlan(seed=seed)          # fault-free control group
    channels = {}
    for cid in topo.channel_names():
        if rng.random() < 0.6:
            channels[cid] = ChannelFaults(
                drop_p=round(rng.uniform(0.0, 0.05), 4),
                corrupt_p=round(rng.uniform(0.0, 0.02), 4),
                delay_p=round(rng.uniform(0.0, 0.1), 4),
                delay_us=round(rng.uniform(0.0, 200.0), 1))
    link_events: list[LinkEvent] = []
    node_events: list[NodeEvent] = []
    if rng.random() < 0.3 and topo.channel_names():
        cid = rng.choice(topo.channel_names())
        down = round(rng.uniform(1_000.0, 30_000.0), 1)
        link_events.append(LinkEvent(time=down, channel=cid))
        link_events.append(LinkEvent(
            time=down + round(rng.uniform(2_000.0, 20_000.0), 1),
            channel=cid, up=True))
    if rng.random() < 0.35:
        gw = rng.choice(topo.gateway_names())
        crash = round(rng.uniform(1_000.0, 20_000.0), 1)
        node_events.append(NodeEvent(time=crash, node=gw))
        if rng.random() < 0.6:
            node_events.append(NodeEvent(
                time=crash + round(rng.uniform(5_000.0, 60_000.0), 1),
                node=gw, up=True))
    return FaultPlan(seed=seed, channels=channels,
                     link_events=tuple(link_events),
                     node_events=tuple(node_events))


def random_scenario(seed: int) -> Scenario:
    """A valid scenario, a pure function of ``seed``."""
    rng = random.Random(seed)
    if rng.random() < 0.3:
        topo = _multirail_topology(rng)
    else:
        topo = _chain_topology(rng)
    faults = _draw_faults(rng, topo, seed)
    quiet = (not faults.link_events and not faults.node_events
             and all(cf.quiet for cf in faults.channels.values()))
    pipeline = None
    if rng.random() < 0.6:
        depth = rng.randint(2, 4)
        lockstep = depth == 2 and rng.random() < 0.3
        credits = depth if lockstep else rng.randint(1, depth)
        pipeline = (depth, credits, lockstep)
    parallel = (topo.kind == "multirail"
                or all(g >= 2 for g in topo.gateways))
    stripe = None
    if topo.kind == "multirail" and rng.random() < 0.4:
        stripe = (rng.randint(2, topo.rails), 4 << 10)
    adaptive = _draw_adaptive(rng) if rng.random() < 0.35 else None
    scenario = Scenario(
        seed=seed,
        topology=topo,
        packet_size=rng.choice(_PACKET_SIZES),
        header_batching=rng.random() < 0.3,
        multirail=(stripe is None and parallel and rng.random() < 0.4),
        pipeline=pipeline,
        stripe=stripe,
        adaptive=adaptive,
        messages=_draw_messages(rng, topo, quiet),
        faults=faults,
        max_attempts=rng.randint(6, 10),
        gw_stall_timeout=5_000.0,
    )
    scenario.validate()
    return scenario


# -- mutation -------------------------------------------------------------------
def _mutate_once(rng: random.Random, s: Scenario) -> Optional[Scenario]:
    """One structural tweak; None when the chosen op is inapplicable."""
    op = rng.randrange(11)
    if op == 0 and s.messages:                       # resize a message
        i = rng.randrange(len(s.messages))
        m = s.messages[i]
        nbytes = max(1, m.nbytes * 2 if rng.random() < 0.5 else m.nbytes // 2)
        msgs = list(s.messages)
        msgs[i] = MessageSpec(m.src, m.dst, nbytes, m.kind)
        return s.with_(messages=tuple(msgs))
    if op == 1 and s.messages:                       # duplicate a message
        m = rng.choice(s.messages)
        return s.with_(messages=s.messages + (m,))
    if op == 2 and len(s.messages) > 1:              # drop a message
        i = rng.randrange(len(s.messages))
        return s.with_(messages=s.messages[:i] + s.messages[i + 1:])
    if op == 3:                                      # packet size step
        return s.with_(packet_size=rng.choice(_PACKET_SIZES))
    if op == 4:                                      # toggle batching
        return s.with_(header_batching=not s.header_batching)
    if op == 5:                                      # redraw the pipeline
        depth = rng.randint(2, 4)
        lockstep = depth == 2 and rng.random() < 0.3
        credits = depth if lockstep else rng.randint(1, depth)
        return s.with_(pipeline=None if rng.random() < 0.25
                       else (depth, credits, lockstep))
    if op == 6:                                      # redraw the fault plan
        plan = _draw_faults(rng, s.topology, rng.randrange(1 << 30))
        quiet = (not plan.link_events and not plan.node_events
                 and all(cf.quiet for cf in plan.channels.values()))
        msgs = s.messages
        if not quiet:
            msgs = tuple(MessageSpec(m.src, m.dst, m.nbytes, "reliable")
                         for m in msgs)
        return s.with_(faults=plan, messages=msgs)
    if op == 7 and s.faults.node_events:             # drop one fault event
        evs = list(s.faults.node_events)
        evs.pop(rng.randrange(len(evs)))
        return s.with_(faults=FaultPlan(
            seed=s.faults.seed, channels=dict(s.faults.channels),
            default=s.faults.default, link_events=s.faults.link_events,
            node_events=tuple(evs)))
    if op == 8:                                      # payload reseed
        return s.with_(seed=rng.randrange(1 << 30))
    if op == 9:                                      # fresh topology, same knobs
        return None
    if op == 10:                                     # redraw adaptive policy
        if s.adaptive is not None and rng.random() < 0.3:
            return s.with_(adaptive=None)
        return s.with_(adaptive=_draw_adaptive(rng))
    return None


def mutate_scenario(base: Scenario, seed: int) -> Scenario:
    """1..3 structural tweaks of ``base``; a pure function of the pair.

    Falls back to :func:`random_scenario` when every tweak comes out
    inapplicable or invalid — the campaign loop never sees an exception
    from here.
    """
    rng = random.Random(f"mutate:{base.seed}:{seed}")
    s = base
    changed = False
    for _ in range(rng.randint(1, 3)):
        candidate = _mutate_once(rng, s)
        if candidate is None:
            continue
        try:
            candidate.validate()
        except ValueError:
            continue
        s, changed = candidate, True
    if not changed:
        return random_scenario(seed)
    return s
