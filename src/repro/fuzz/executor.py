"""Run one scenario and check the invariant catalog.

The executor is the fuzzer's oracle.  It builds the scenario's world,
drives the traffic mix to completion under an **event-budget watchdog**
(the deadlock/livelock detector: a simulation that keeps scheduling events
without finishing its transfers is as broken as one that hangs), then
checks every invariant of ``docs/robustness.md``:

I1  delivery-or-typed-error — every reliable send returns, either
    delivered or with :class:`~repro.sim.RetryExhausted` /
    :class:`~repro.routing.NoRouteError`; plain sends always deliver.
I2  exactly-once, bit-identical — delivered payload multisets match what
    was sent; a typed-error transfer may or may not have landed (the
    sender gave up, the receiver may have finished), but nothing is ever
    delivered twice or corrupted.
I3  no deadlock — every traffic process finishes before the event heap
    drains, and the heap drains within the budget.
I4  no credit leak — every live worker with no abandoned messages holds
    zero credits after the drain.
I5  no buffer-pool leak — protocol pools and staging rings are empty
    after a drain with no node crashes.
I6  conservation laws — the exact identities of
    :mod:`repro.telemetry.conservation`.
I7  pipeline drained — gateway occupancy gauges back at zero.
I8  no stripe-reassembly leak — an aborted stripe group's executor
    process has exited (rails that never attach must not strand it).

Structural invariants (I4/I5/I7) are skipped when the scenario crashes
nodes or a worker abandoned messages: those paths legitimately strand
state that only a node restart reclaims.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from math import inf
from typing import Optional

import numpy as np

from ..madeleine import (RecvMode, ReliableEndpoint, RetryPolicy, SendMode,
                         Session, reset_global_ids)
from ..routing import NoRouteError
from ..sim import ProcessCrashed, RetryExhausted
from ..scenario import Scenario
from ..telemetry.conservation import FRAGMENT_LAW, STRIPE_LAW

__all__ = ["FuzzFailure", "FuzzResult", "run_scenario"]

#: watchdog floor plus a per-byte allowance (each payload KB costs a
#: bounded number of fragment events even across go-back-N retries).
_BUDGET_FLOOR = 300_000
_BUDGET_PER_KB = 60

#: counters whose magnitude buckets form the coverage signature.
_FEATURE_COUNTERS = (
    "wire.fragments", "wire.fragments_blackholed", "wire.fragments_failed",
    "faults.fragments_dropped", "faults.fragments_corrupted",
    "faults.fragments_delayed", "faults.link_transitions",
    "faults.node_transitions",
    "gateway.messages_forwarded", "gateway.messages_abandoned",
    "gateway.credit_stalls", "gateway.items_forwarded",
    "reliable.retransmits", "reliable.deliveries", "reliable.acks_received",
    "vchannel.failovers", "vchannel.stripes_sent",
    "vchannel.stripes_reassembled", "vchannel.eager_sends",
    "vchannel.restripe_events", "gateway.balance_moves",
    "pool.acquire_waits",
)


@dataclass(frozen=True)
class FuzzFailure:
    """One violated invariant."""

    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.detail}"


@dataclass
class FuzzResult:
    scenario: Scenario
    failures: list[FuzzFailure] = field(default_factory=list)
    #: coverage signature — behaviours this run exhibited.
    features: frozenset = frozenset()
    stats: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures


def _payload(scenario_seed: int, index: int, nbytes: int) -> bytes:
    rng = np.random.default_rng((scenario_seed, index))
    return rng.integers(0, 256, nbytes, dtype=np.uint8).tobytes()


class _Run:
    """All mutable state of one scenario execution."""

    def __init__(self, scenario: Scenario) -> None:
        # Bit-identical replays: fault-recovery branches on wire content
        # that embeds the process-wide id counters, so every run starts
        # from the same id space.
        reset_global_ids()
        self.scenario = scenario
        self.session = Session.from_scenario(scenario)
        self.world = self.session.world
        self.vch = self.session.virtual_channels[0]
        #: message index -> "delivered" | "typed:<Error>" | None (stuck)
        self.outcomes: dict[int, Optional[str]] = {
            i: None for i in range(len(scenario.messages))}
        self.payloads = {i: _payload(scenario.seed, i, m.nbytes)
                         for i, m in enumerate(scenario.messages)}
        self.delivered: list[tuple[int, bytes]] = []   # (src_rank, payload)
        self.failures: list[FuzzFailure] = []
        self.crashed: Optional[str] = None
        self._receivers_done: list[bool] = []
        self.traffic_engine = None

    # -- traffic processes -------------------------------------------------------
    def _reliable_sender(self, src: str, indices: list[int],
                         rel: ReliableEndpoint):
        s = self.session
        for i in indices:
            m = self.scenario.messages[i]
            try:
                yield from rel.send(s.rank(m.dst), self.payloads[i])
            except (RetryExhausted, NoRouteError) as exc:
                self.outcomes[i] = f"typed:{type(exc).__name__}"
            else:
                self.outcomes[i] = "delivered"

    def _plain_sender(self, src: str, indices: list[int]):
        s = self.session
        ep = self.vch.endpoint(s.rank(src))
        for i in indices:
            m = self.scenario.messages[i]
            msg = ep.begin_packing(s.rank(m.dst))
            # Self-describing framing: the receiver cannot know which
            # message arrives first once multirail relaxes ordering.
            yield msg.pack(struct.pack("<Q", m.nbytes),
                           SendMode.CHEAPER, RecvMode.EXPRESS)
            yield msg.pack(self.payloads[i], SendMode.CHEAPER,
                           RecvMode.CHEAPER)
            yield msg.end_packing()
            self.outcomes[i] = "delivered"

    def _plain_receiver(self, dst: str, count: int, done_slot: int):
        s = self.session
        ep = self.vch.endpoint(s.rank(dst))
        for _ in range(count):
            inc = yield ep.begin_unpacking()
            ev, lenbuf = inc.unpack(8, SendMode.CHEAPER, RecvMode.EXPRESS)
            yield ev
            (nbytes,) = struct.unpack("<Q", lenbuf.tobytes())
            _ev, buf = inc.unpack(int(nbytes), SendMode.CHEAPER,
                                  RecvMode.CHEAPER)
            yield inc.end_unpacking()
            self.delivered.append((inc.origin, buf.tobytes()))
        self._receivers_done[done_slot] = True

    def spawn_traffic(self) -> dict[int, ReliableEndpoint]:
        scenario = self.scenario
        s = self.session
        by_src: dict[str, list[int]] = {}
        for i, m in enumerate(scenario.messages):
            by_src.setdefault(m.src, []).append(i)
        kinds = {m.kind for m in scenario.messages}
        rel: dict[int, ReliableEndpoint] = {}
        if "reliable" in kinds:
            policy = RetryPolicy(max_attempts=scenario.max_attempts)
            parties = ({m.src for m in scenario.messages}
                       | {m.dst for m in scenario.messages})
            for name in sorted(parties):
                rank = s.rank(name)
                rel[rank] = ReliableEndpoint(self.vch.endpoint(rank), policy)
            for src, indices in sorted(by_src.items()):
                s.spawn(self._reliable_sender(src, indices,
                                              rel[s.rank(src)]),
                        name=f"fuzz-send:{src}")
        else:
            by_dst: dict[str, int] = {}
            for m in scenario.messages:
                by_dst[m.dst] = by_dst.get(m.dst, 0) + 1
            for src, indices in sorted(by_src.items()):
                s.spawn(self._plain_sender(src, indices),
                        name=f"fuzz-send:{src}")
            for dst, count in sorted(by_dst.items()):
                slot = len(self._receivers_done)
                self._receivers_done.append(False)
                s.spawn(self._plain_receiver(dst, count, slot),
                        name=f"fuzz-recv:{dst}")
        if scenario.traffic is not None:
            from ..traffic import TrafficEngine
            self.traffic_engine = TrafficEngine(s, scenario)
            self.traffic_engine.start()
        return rel

    # -- the watchdog loop -------------------------------------------------------
    def drive(self) -> None:
        sim = self.session.sim
        traffic_bytes = (sum(f.nbytes for f in self.traffic_engine.flows)
                         if self.traffic_engine is not None else 0)
        budget = (_BUDGET_FLOOR + _BUDGET_PER_KB
                  * ((sum(m.nbytes for m in self.scenario.messages)
                      + traffic_bytes) // 1024)
                  * self.scenario.max_attempts)
        start = sim.events_processed
        try:
            while sim.peek() != inf:
                sim.step()
                if sim.events_processed - start > budget:
                    self.failures.append(FuzzFailure(
                        "deadlock",
                        f"no completion within {budget} events "
                        f"(livelock watchdog) at t={sim.now:.0f}us"))
                    return
        except Exception as exc:
            # ProcessCrashed for a dead process; anything else is an
            # undefused event failure escaping through step().  Both are
            # bugs in the stack under test, not in the fuzzer.
            cause = (exc.__cause__ or exc) if isinstance(
                exc, ProcessCrashed) else exc
            self.crashed = f"{type(cause).__name__}: {cause}"
            self.failures.append(FuzzFailure(
                "crash", f"simulation died at t={sim.now:.0f}us — "
                         f"{self.crashed}"))

    # -- invariants --------------------------------------------------------------
    def check(self, rel: dict[int, ReliableEndpoint]) -> None:
        scenario = self.scenario
        s = self.session
        for ep in rel.values():
            while True:
                got, item = ep.deliveries.try_get()
                if not got:
                    break
                src_rank, data, _transfer = item
                self.delivered.append((src_rank, data))
        if self.crashed is not None:
            return      # everything below would be noise on a dead world

        # I1/I3: every sender finished; plain receivers consumed everything.
        for i, outcome in self.outcomes.items():
            if outcome is None:
                m = scenario.messages[i]
                self.failures.append(FuzzFailure(
                    "deadlock",
                    f"message {i} ({m.src}->{m.dst}, {m.nbytes}B) never "
                    f"completed: sender stuck at heap drain"))
        for slot, done in enumerate(self._receivers_done):
            if not done:
                self.failures.append(FuzzFailure(
                    "deadlock", f"plain receiver {slot} still waiting at "
                                f"heap drain"))
        if self.traffic_engine is not None:
            eng = self.traffic_engine
            if len(eng.records) != len(eng.flows):
                self.failures.append(FuzzFailure(
                    "deadlock",
                    f"traffic: {len(eng.records)}/{len(eng.flows)} flows "
                    f"completed at heap drain"))
        if scenario.quiet:
            for i, outcome in self.outcomes.items():
                if outcome is not None and outcome != "delivered":
                    self.failures.append(FuzzFailure(
                        "delivery", f"message {i} failed with {outcome} on "
                                    f"a fault-free scenario"))

        # I2: exactly-once, bit-identical, against the sent multiset.
        delivered = {}
        for src_rank, data in self.delivered:
            key = (src_rank, data)
            delivered[key] = delivered.get(key, 0) + 1
        confirmed: dict[tuple[int, bytes], int] = {}
        possible: dict[tuple[int, bytes], int] = {}
        for i, m in enumerate(scenario.messages):
            key = (s.rank(m.src), self.payloads[i])
            possible[key] = possible.get(key, 0) + 1
            if self.outcomes[i] == "delivered":
                confirmed[key] = confirmed.get(key, 0) + 1
        for key, n in delivered.items():
            if n > possible.get(key, 0):
                self.failures.append(FuzzFailure(
                    "exactly-once",
                    f"payload from rank {key[0]} ({len(key[1])}B) delivered "
                    f"{n}x but sent {possible.get(key, 0)}x (duplicate or "
                    f"corrupted delivery)"))
        for key, n in confirmed.items():
            if delivered.get(key, 0) < n:
                self.failures.append(FuzzFailure(
                    "delivery",
                    f"rank {key[0]} confirmed {n} transfer(s) of a "
                    f"{len(key[1])}B payload but only "
                    f"{delivered.get(key, 0)} arrived bit-identical"))

        crashes = bool(scenario.faults.node_events)
        # I4: credits all returned (live workers, nothing abandoned).
        for w in self.vch.workers:
            if w.retired or w.messages_abandoned or crashes:
                continue
            if w.credits_outstanding != 0:
                self.failures.append(FuzzFailure(
                    "credit-leak",
                    f"worker gw{w.gw_rank}:{w.in_channel.id} still holds "
                    f"{w.credits_outstanding} credit(s) after drain "
                    f"({w.messages_forwarded} messages forwarded)"))

        # I5: pools empty after a crash-free drain.
        abandoned = any(w.messages_abandoned for w in self.vch.workers)
        if not crashes and not abandoned:
            pools = []
            for node in self.world.nodes.values():
                for nic in node.nics.values():
                    pools += [p for p in (nic.tx_pool, nic.rx_pool)
                              if p is not None]
            pools += [w._ring for w in self.vch.workers
                      if w._ring is not None]
            for pool in pools:
                if pool.outstanding or pool.waiting:
                    self.failures.append(FuzzFailure(
                        "pool-leak",
                        f"pool {pool.name!r}: {pool.outstanding} block(s) "
                        f"out, {pool.waiting} waiter(s) after drain"))

        # I6: conservation laws (always exact, faults or not).
        m = s.metrics
        v = FRAGMENT_LAW.evaluate(
            m, {"pending_sends": self.world.fabric.pending_send_count()})
        if v is not None:
            self.failures.append(FuzzFailure("conservation", str(v)))
        if scenario.quiet:
            v = STRIPE_LAW.evaluate(m, {"stripes_abandoned": 0})
            if v is not None:
                self.failures.append(FuzzFailure("conservation", str(v)))

        # I7: pipeline occupancy gauges back at zero.
        if not crashes and not abandoned:
            for inst in m.series("gateway.occupancy"):
                if inst.value != 0:
                    self.failures.append(FuzzFailure(
                        "occupancy",
                        f"gateway.occupancy{inst.labels} = {inst.value} "
                        f"after drain"))

        # I8: no stripe-reassembly executor leak — an aborted group must
        # have drained its executor process (abort() force-triggers the
        # pending rail-attach events precisely so it can exit).
        for ep in self.vch._endpoints.values():
            for (origin, stripe_id), group in ep._stripe_groups.items():
                if group.aborted and not getattr(group, "_exec_done", False):
                    self.failures.append(FuzzFailure(
                        "stripe-leak",
                        f"stripe group (origin={origin}, id={stripe_id}) "
                        f"was aborted but its reassembly executor is still "
                        f"blocked after drain"))

    # -- coverage ----------------------------------------------------------------
    def signature(self) -> frozenset:
        scenario = self.scenario
        m = self.session.metrics
        feats = {f"topo:{scenario.topology.kind}",
                 f"batch:{scenario.header_batching}",
                 f"stripe:{scenario.stripe is not None}",
                 f"multirail:{scenario.multirail}",
                 f"adaptive:{scenario.adaptive is not None}"}
        if scenario.traffic is not None:
            feats.add(f"traffic:{scenario.traffic.pattern}")
        if scenario.pipeline is not None:
            depth, _credits, lockstep = scenario.pipeline
            feats.add("pipe:lockstep" if lockstep else f"pipe:depth{depth}")
        for name in _FEATURE_COUNTERS:
            total = int(m.total(name))
            if total > 0:
                feats.add(f"{name}:{total.bit_length()}")
        for outcome in self.outcomes.values():
            if outcome and outcome != "delivered":
                feats.add(outcome)
        for f in self.failures:
            feats.add(f"fail:{f.invariant}")
        return frozenset(feats)


def run_scenario(scenario: Scenario) -> FuzzResult:
    """Execute ``scenario`` and evaluate the invariant catalog."""
    run = _Run(scenario)
    rel = run.spawn_traffic()
    run.drive()
    run.check(rel)
    m = run.session.metrics
    stats = {
        "sim_us": run.session.now,
        "events": run.session.sim.events_processed,
        "delivered": len(run.delivered),
        "fragments": int(m.total("wire.fragments")),
        "dropped": int(m.total("faults.fragments_dropped")),
        "forwarded": int(m.total("gateway.messages_forwarded")),
        "abandoned": int(m.total("gateway.messages_abandoned")),
    }
    if run.traffic_engine is not None:
        stats["flows"] = len(run.traffic_engine.flows)
        stats["flows_done"] = len(run.traffic_engine.records)
    return FuzzResult(scenario=scenario, failures=run.failures,
                      features=run.signature(), stats=stats)
