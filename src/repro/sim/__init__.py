"""Deterministic discrete-event simulation kernel (clock in microseconds).

Public surface:

* :class:`Simulator`, :class:`Event`, :class:`Process` — the event loop and
  generator-based processes (:mod:`repro.sim.engine`);
* :class:`Semaphore`, :class:`Mutex`, :class:`Queue`, :class:`Barrier`,
  :class:`Signal` — FIFO synchronization (:mod:`repro.sim.sync`);
* :class:`FluidNetwork`, :class:`FluidResource`, :class:`Flow` — fluid-flow
  bandwidth sharing with priority arbitration (:mod:`repro.sim.fluid`);
* :class:`TraceRecorder` — simulated-time instrumentation
  (:mod:`repro.sim.trace`).
"""

from .engine import (AllOf, AnyOf, Event, Process, Simulator, Timeout,
                     PRIORITY_LATE, PRIORITY_NORMAL, PRIORITY_URGENT)
from .errors import (DeadlockError, FaultError, GatewayCrashed, ProcessCrashed,
                     RetryExhausted, SchedulingError, SimError, TransferTimeout)
from .fluid import DMA, PIO, Flow, FluidNetwork, FluidResource
from .sync import Barrier, Mutex, Queue, Semaphore, Signal
from .trace import TraceRecord, TraceRecorder

__all__ = [
    "AllOf", "AnyOf", "Event", "Process", "Simulator", "Timeout",
    "PRIORITY_LATE", "PRIORITY_NORMAL", "PRIORITY_URGENT",
    "DeadlockError", "FaultError", "GatewayCrashed", "ProcessCrashed",
    "RetryExhausted", "SchedulingError", "SimError", "TransferTimeout",
    "DMA", "PIO", "Flow", "FluidNetwork", "FluidResource",
    "Barrier", "Mutex", "Queue", "Semaphore", "Signal",
    "TraceRecord", "TraceRecorder",
]
