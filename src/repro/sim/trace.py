"""Simulated-time tracing.

Replaces the paper's ``rdtsc`` instrumentation: components emit timestamped
records into a :class:`TraceRecorder`, and the analysis layer reconstructs
pipeline timelines (Figures 5 and 8) from them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

__all__ = ["TraceRecord", "TraceRecorder"]


@dataclass(frozen=True)
class TraceRecord:
    """One instrumentation sample."""

    t: float                      # simulated time, µs
    category: str                 # e.g. "gateway", "nic", "pci"
    event: str                    # e.g. "recv_start", "send_end", "swap"
    attrs: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.attrs[key]


class TraceRecorder:
    """Append-only store of trace records with simple filtered queries."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.records: list[TraceRecord] = []

    def emit(self, t: float, category: str, event: str, **attrs: Any) -> None:
        if self.enabled:
            self.records.append(TraceRecord(t, category, event, attrs))

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def query(self, category: Optional[str] = None, event: Optional[str] = None,
              **attr_filters: Any) -> list[TraceRecord]:
        """Records matching the category/event names and attribute equality."""
        out = []
        for rec in self.records:
            if category is not None and rec.category != category:
                continue
            if event is not None and rec.event != event:
                continue
            if any(rec.attrs.get(k) != v for k, v in attr_filters.items()):
                continue
            out.append(rec)
        return out

    def intervals(self, category: str, start_event: str, end_event: str,
                  key: str) -> list[tuple[Any, float, float]]:
        """Pair start/end records sharing the same ``key`` attribute value.

        Returns (key_value, t_start, t_end) tuples in start order; unmatched
        starts are dropped (still-open intervals at end of trace).
        """
        open_at: dict[Any, float] = {}
        out: list[tuple[Any, float, float]] = []
        for rec in self.records:
            if rec.category != category:
                continue
            if rec.event == start_event:
                open_at[rec.attrs.get(key)] = rec.t
            elif rec.event == end_event:
                k = rec.attrs.get(key)
                if k in open_at:
                    out.append((k, open_at.pop(k), rec.t))
        out.sort(key=lambda x: x[1])
        return out
