"""Deterministic discrete-event simulation kernel.

The kernel is a small, simpy-flavoured engine: simulation *processes* are
Python generators that ``yield`` :class:`Event` objects and are resumed when
those events trigger.  Simulated time is a float in **microseconds**; all
bandwidth figures elsewhere in the library are therefore bytes/µs, which is
numerically identical to MB/s.

Determinism: the event heap is ordered by ``(time, priority, sequence)``
where ``sequence`` is a global monotonic counter, so two runs of the same
program always produce the same schedule.  Nothing in the kernel consults
wall-clock time or random state.

Hot-path machinery (all schedule-preserving — the dispatch sequence stays
bit-identical to the unoptimized kernel, see ``tests/sim/reference_engine.py``):

* **lazy cancellation** — :meth:`Event.cancel` marks a scheduled event dead;
  the heap discards it on pop without dispatching (used by the fluid network
  for superseded wake-ups, which would otherwise dispatch as no-ops);
* **pooled timeouts** — ``Simulator.timeout(..., pooled=True)`` recycles
  :class:`Timeout` objects through a free list once dispatched, for internal
  fire-and-forget waits whose reference is provably dropped by dispatch time;
* **batched dispatch** — :meth:`Event.succeed_later` triggers an event now
  but delivers it ``delay`` µs later, collapsing the classic
  timeout-then-succeed pattern (two heap events) into one.

``events_processed`` counts dispatched events; ``events_cancelled`` counts
lazily discarded ones.  The benchmark-regression harness tracks
events-processed-per-MB as the kernel-efficiency figure of merit.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from .errors import DeadlockError, ProcessCrashed, SchedulingError

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Simulator",
    "PRIORITY_URGENT",
    "PRIORITY_NORMAL",
    "PRIORITY_LATE",
]

_UNSET = object()

#: Heap priorities: lower runs first among events scheduled for the same time.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1
PRIORITY_LATE = 2


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    triggers it, which enqueues it on the simulator heap.  When the heap pops
    it, all registered callbacks run (in registration order).
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused", "name",
                 "_cancelled")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        #: callbacks invoked with the event once it is processed; set to
        #: ``None`` after processing (late registrations run immediately).
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _UNSET
        self._ok: Optional[bool] = None
        self._defused = False
        self._cancelled = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once succeed()/fail() has been called."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SchedulingError(f"event {self!r} not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _UNSET:
            raise SchedulingError(f"event {self!r} has no value yet")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = PRIORITY_NORMAL) -> "Event":
        if self._ok is not None:
            raise SchedulingError(f"event {self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue(self.sim.now, priority, self)
        return self

    def fail(self, exc: BaseException, priority: int = PRIORITY_NORMAL) -> "Event":
        if self._ok is not None:
            raise SchedulingError(f"event {self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exc
        self.sim._enqueue(self.sim.now, priority, self)
        return self

    def succeed_later(self, delay: float, value: Any = None,
                      priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger now, deliver ``delay`` µs from now (batched dispatch).

        Equivalent in delivery time to arming a :class:`Timeout` whose
        callback calls :meth:`succeed`, but costs one heap event instead of
        two.  The event reads as *triggered* immediately — callers that need
        the triggered flag to stay false during the delay (e.g. so a
        force-fail can still win the race) must use the two-event pattern.
        """
        if delay < 0:
            raise ValueError(f"negative delivery delay {delay!r}")
        if self._ok is not None:
            raise SchedulingError(f"event {self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue(self.sim.now + delay, priority, self)
        return self

    def cancel(self) -> None:
        """Lazily cancel a triggered-but-unprocessed event.

        The heap entry stays in place and is discarded (not dispatched) when
        it reaches the top — no callbacks run, and it does not count as a
        processed event.  Cancelling an already processed event is an error;
        cancelling an untriggered event is allowed (it guards against the
        event being triggered later).
        """
        if self.callbacks is None:
            raise SchedulingError(f"cannot cancel processed event {self!r}")
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel does not re-raise."""
        self._defused = True

    # -- waiting ----------------------------------------------------------
    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run immediately so late waiters still wake.
            fn(self)
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if self._ok is None else ("ok" if self._ok else "failed")
        label = f" {self.name}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that triggers ``delay`` µs after creation.

    ``_poolable`` timeouts (built via ``Simulator.timeout(pooled=True)``)
    return to the simulator's free list once dispatched or discarded, so the
    per-fragment waits of the transport hot path stop allocating.
    """

    __slots__ = ("_poolable",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None,
                 name: str = "") -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        super().__init__(sim, name=name)
        self._poolable = False
        self._ok = True
        self._value = value
        sim._enqueue(sim.now + delay, PRIORITY_NORMAL, self)

    def _rearm(self, delay: float, value: Any, name: str) -> None:
        """Reset a recycled instance and put it back on the heap."""
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        self.name = name
        self.callbacks = []
        self._defused = False
        self._cancelled = False
        self._ok = True
        self._value = value
        self.sim._enqueue(self.sim.now + delay, PRIORITY_NORMAL, self)


class Initialize(Event):
    """Internal: kicks a freshly created process at the current instant."""

    __slots__ = ()

    def __init__(self, sim: "Simulator") -> None:
        super().__init__(sim)
        self._ok = True
        self._value = None
        sim._enqueue(sim.now, PRIORITY_URGENT, self)


class Process(Event):
    """A running simulation process wrapping a generator.

    The process is itself an event that triggers when the generator returns
    (value = the generator's return value) or raises (event fails), so
    processes can wait for each other simply by yielding them.
    """

    __slots__ = ("gen", "_target")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "") -> None:
        if not hasattr(gen, "send"):
            raise TypeError(f"process body must be a generator, got {type(gen).__name__}")
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self.gen = gen
        self._target: Optional[Event] = None
        init = Initialize(sim)
        init.add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        return self._ok is None

    def _resume(self, event: Event) -> None:
        self.sim._active_process = self
        try:
            if event._ok:
                next_ev = self.gen.send(event._value)
            else:
                event._defused = True
                next_ev = self.gen.throw(event._value)
        except StopIteration as stop:
            self.sim._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.sim._active_process = None
            self._ok = False
            self._value = exc
            self.sim._enqueue(self.sim.now, PRIORITY_NORMAL, self)
            self.sim._crashes.append(self)
            return
        self.sim._active_process = None
        if not isinstance(next_ev, Event):
            exc = TypeError(
                f"process {self.name!r} yielded {next_ev!r}; processes must yield Event objects"
            )
            self.gen.close()
            self._ok = False
            self._value = exc
            self.sim._enqueue(self.sim.now, PRIORITY_NORMAL, self)
            self.sim._crashes.append(self)
            return
        self._target = next_ev
        next_ev.add_callback(self._resume)


class AllOf(Event):
    """Triggers when every child event has triggered.

    Value is the list of child values (in the given order).  Fails as soon
    as any child fails.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, name="all_of")
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for ev in self._children:
            ev.add_callback(self._check)

    def _check(self, ev: Event) -> None:
        if self.triggered:
            if not ev._ok:
                ev._defused = True
            return
        if not ev._ok:
            ev._defused = True
            self.fail(ev._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([child._value for child in self._children])


class AnyOf(Event):
    """Triggers when the first child event triggers; value = (index, value)."""

    __slots__ = ("_children",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, name="any_of")
        self._children = list(events)
        if not self._children:
            raise ValueError("AnyOf requires at least one event")
        for idx, ev in enumerate(self._children):
            ev.add_callback(lambda e, i=idx: self._check(i, e))

    def _check(self, idx: int, ev: Event) -> None:
        if self.triggered:
            if not ev._ok:
                ev._defused = True
            return
        if not ev._ok:
            ev._defused = True
            self.fail(ev._value)
            return
        self.succeed((idx, ev._value))


class Simulator:
    """The event loop: owns the clock, the heap, and process bookkeeping.

    Two interchangeable schedulers back the event queue:

    * ``scheduler="heap"`` (default) — a single binary heap over all pending
      events, bit-identical to the historical kernel.
    * ``scheduler="calendar"`` — a calendar queue: pending events are binned
      into fixed-width time buckets (sparse dict keyed by
      ``int(time // bucket_width)``), with only the *active* bucket kept as a
      heap.  Far-future events cost O(1) to insert and are heapified lazily
      when their bucket activates, so per-event cost tracks the active-bucket
      population instead of the total pending count — the property that keeps
      events/MB flat when thousands of flows each park retransmit timers and
      credit waits far in the future.

    The calendar queue preserves the exact ``(time, priority, sequence)``
    dispatch order of the heap: entries carry the full ordering tuple, a
    bucket is merged into the active heap whenever its time range could
    precede the current active top (including buckets *behind* the active one,
    which can receive entries when a process schedules between ``peek()`` and
    the clock catching up), and buckets activate in ascending key order.
    Schedule-identity is enforced by ``tests/sim/test_calendar.py``.
    """

    def __init__(self, scheduler: str = "heap",
                 bucket_width: Optional[float] = None) -> None:
        if scheduler not in ("heap", "calendar"):
            raise ValueError(f"unknown scheduler {scheduler!r}; "
                             f"expected 'heap' or 'calendar'")
        self.now: float = 0.0
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        self._crashes: list[Process] = []
        #: events dispatched (callbacks run) since construction.
        self.events_processed = 0
        #: lazily cancelled events discarded off the heap without dispatch.
        self.events_cancelled = 0
        self._timeout_pool: list[Timeout] = []
        self.scheduler = scheduler
        if scheduler == "calendar":
            if bucket_width is not None and bucket_width <= 0:
                raise ValueError(f"bucket_width must be > 0, got {bucket_width!r}")
            self._bucket_width: float = bucket_width or 64.0
            self._buckets: dict[int, list[tuple[float, int, int, Event]]] = {}
            self._bucket_keys: list[int] = []
            self._active_key = -1
            # Shadow the hot-path methods on the instance so the default heap
            # path stays untouched (and un-branched) for existing users.
            self._enqueue = self._cal_enqueue  # type: ignore[method-assign]
            self.peek = self._cal_peek  # type: ignore[method-assign]
            self.step = self._cal_step  # type: ignore[method-assign]

    # -- event construction -------------------------------------------------
    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None, name: str = "",
                pooled: bool = False) -> Timeout:
        """A timeout event; ``pooled=True`` recycles the object after
        dispatch.

        Pooling is for kernel-internal fire-and-forget waits only: the
        caller must not keep a reference past the timeout's dispatch
        (a ``yield`` of it from a process is fine — the process has moved
        on by then), and must not ``add_callback`` after it has fired.
        """
        if pooled and self._timeout_pool:
            ev = self._timeout_pool.pop()
            ev._rearm(delay, value, name)
            return ev
        ev = Timeout(self, delay, value=value, name=name)
        ev._poolable = pooled
        return ev

    def process(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- scheduling ----------------------------------------------------------
    def _enqueue(self, at: float, priority: int, event: Event) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (at, priority, self._seq, event))

    def _discard_cancelled(self) -> None:
        """Drop lazily cancelled events off the heap top (no dispatch)."""
        heap = self._heap
        while heap and heap[0][3]._cancelled:
            event = heapq.heappop(heap)[3]
            self.events_cancelled += 1
            event.callbacks = None
            if isinstance(event, Timeout) and event._poolable:
                self._timeout_pool.append(event)

    def peek(self) -> float:
        """Time of the next live scheduled event, or +inf if none."""
        self._discard_cancelled()
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one (live) event off the heap."""
        self._discard_cancelled()
        if not self._heap:
            raise SchedulingError(
                f"step() on an empty event heap at t={self.now:.3f}µs — "
                f"nothing is scheduled")
        at, _prio, _seq, event = heapq.heappop(self._heap)
        if at < self.now - 1e-9:
            raise SchedulingError(f"time went backwards: {at} < {self.now}")
        self.now = max(self.now, at)
        self.events_processed += 1
        callbacks, event.callbacks = event.callbacks, None
        if callbacks:
            if len(callbacks) == 1:
                # The overwhelmingly common case: one waiter (a process
                # resume or a completion hook) — skip the loop machinery.
                callbacks[0](event)
            else:
                for fn in callbacks:
                    fn(event)
        if event._ok is False and not event._defused:
            exc = event._value
            if isinstance(event, Process):
                raise ProcessCrashed(event.name, str(exc)) from exc
            raise exc
        if isinstance(event, Timeout) and event._poolable:
            self._timeout_pool.append(event)

    # -- calendar-queue scheduler -------------------------------------------
    #: a bucket activating with more entries than this triggers a re-bin with
    #: a narrower width (targeting ~_CAL_TARGET entries per bucket).
    _CAL_OVERFULL = 256
    _CAL_TARGET = 16

    def _cal_enqueue(self, at: float, priority: int, event: Event) -> None:
        self._seq += 1
        entry = (at, priority, self._seq, event)
        key = int(at // self._bucket_width)
        if key <= self._active_key:
            # The bucket range is already (or was never) ahead of the drain
            # point — goes straight into the active heap, whose entries carry
            # the full ordering tuple, so earlier-than-active-top times are
            # still dispatched first.
            heapq.heappush(self._heap, entry)
            return
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = [entry]
            heapq.heappush(self._bucket_keys, key)
        else:
            bucket.append(entry)

    def _cal_refill(self) -> None:
        """Merge every bucket whose time range could precede the active top.

        Buckets activate in ascending key order; a bucket starting at or
        before the active heap's top time may contain an earlier entry and is
        merged before anything is popped, which is what makes the dispatch
        order identical to a single global heap.
        """
        keys = self._bucket_keys
        width = self._bucket_width
        active = self._heap
        while keys and (not active or keys[0] * width <= active[0][0]):
            key = heapq.heappop(keys)
            bucket = self._buckets.pop(key)
            self._active_key = key
            if (len(bucket) > self._CAL_OVERFULL and not active
                    and self._cal_rebin(bucket)):
                keys = self._bucket_keys
                width = self._bucket_width
                continue
            if active:
                for entry in bucket:
                    heapq.heappush(active, entry)
            else:
                self._heap = active = bucket
                heapq.heapify(active)

    def _cal_rebin(self, bucket: list[tuple[float, int, int, Event]]) -> bool:
        """Narrow the bucket width so an overfull bucket splits back into
        ~:data:`_CAL_TARGET`-entry buckets, then re-bin all pending entries.

        Returns False (leaving all state untouched) when narrowing would not
        help — entries clustered at one instant, or the width would stop
        shrinking — so the caller activates the oversized bucket as-is
        instead of re-binning forever.
        """
        entries = list(bucket)
        for other in self._buckets.values():
            entries.extend(other)
        lo = min(e[0] for e in entries)
        hi = max(e[0] for e in entries)
        want = max(len(entries) // self._CAL_TARGET, 2)
        width = (hi - lo) / want
        if width < 1e-9 or width >= self._bucket_width:
            return False
        self._bucket_width = width
        self._buckets = {}
        self._bucket_keys = []
        self._active_key = -1
        self._heap = []
        for entry in entries:
            key = int(entry[0] // width)
            b = self._buckets.get(key)
            if b is None:
                self._buckets[key] = [entry]
                heapq.heappush(self._bucket_keys, key)
            else:
                b.append(entry)
        return True

    def _cal_peek(self) -> float:
        while True:
            self._cal_refill()
            active = self._heap
            if not active:
                if not self._bucket_keys:
                    return float("inf")
                continue
            if active[0][3]._cancelled:
                event = heapq.heappop(active)[3]
                self.events_cancelled += 1
                event.callbacks = None
                if isinstance(event, Timeout) and event._poolable:
                    self._timeout_pool.append(event)
                continue
            return active[0][0]

    def _cal_step(self) -> None:
        if self._cal_peek() == float("inf"):
            raise SchedulingError(
                f"step() on an empty event heap at t={self.now:.3f}µs — "
                f"nothing is scheduled")
        at, _prio, _seq, event = heapq.heappop(self._heap)
        if at < self.now - 1e-9:
            raise SchedulingError(f"time went backwards: {at} < {self.now}")
        self.now = max(self.now, at)
        self.events_processed += 1
        callbacks, event.callbacks = event.callbacks, None
        if callbacks:
            if len(callbacks) == 1:
                callbacks[0](event)
            else:
                for fn in callbacks:
                    fn(event)
        if event._ok is False and not event._defused:
            exc = event._value
            if isinstance(event, Process):
                raise ProcessCrashed(event.name, str(exc)) from exc
            raise exc
        if isinstance(event, Timeout) and event._poolable:
            self._timeout_pool.append(event)

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (drain the heap), a time (run up to and
        including that instant), or an :class:`Event` (run until it has been
        processed; its value is returned, and a :class:`DeadlockError` is
        raised if the heap drains first).
        """
        if isinstance(until, Event):
            target = until
            if target.processed:
                if target.ok:
                    return target._value
                target._defused = True
                raise target._value
            done = []
            target.add_callback(done.append)
            while not done:
                if self.peek() == float("inf"):
                    raise DeadlockError(
                        f"event {target!r} never triggered; simulation starved "
                        f"at t={self.now:.3f}µs"
                    )
                self.step()
            if target.ok:
                return target._value
            target._defused = True
            raise target._value
        if until is None:
            while self.peek() != float("inf"):
                self.step()
            return None
        horizon = float(until)
        if horizon < self.now:
            raise ValueError(f"cannot run until {horizon} < now {self.now}")
        while self.peek() <= horizon:
            self.step()
        self.now = max(self.now, horizon)
        return None
