"""Fluid-flow modelling of shared transmission resources.

A data transfer (a *flow*) pushes ``size`` bytes along a *path* of shared
resources (PCI buses, network links).  At any instant every active flow has a
rate; rates are recomputed whenever the set of active flows changes, using
**max-min fair sharing with contention caps**:

* every hop of a flow's path carries a transaction *kind* — ``"dma"`` for
  bus-master transfers initiated by a NIC, ``"pio"`` for CPU-initiated
  programmed I/O;
* a flow whose hop on some resource is PIO, while any concurrent flow on
  that resource is DMA, has its standalone peak divided by the resource's
  ``preempt_slowdown`` — the paper measures ≈ 2× for SCI PIO writes while a
  Myrinet DMA receive is in flight (its Figure 8), because the PCI arbiter
  favours the NIC's DMA transactions;
* subject to those caps and to each resource's capacity, rates are assigned
  by classical progressive filling (max-min fairness).

Rates are piecewise constant between recomputations, so the completion time
of each flow is exact — no time-stepping error.  Bandwidths are bytes/µs,
numerically equal to MB/s.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Optional, Sequence

from .engine import Event, Simulator

__all__ = ["FluidResource", "Flow", "FluidNetwork", "DMA", "PIO"]

_EPS = 1e-9

#: transaction kinds
DMA = "dma"
PIO = "pio"


class _OrderedSet:
    """Insertion-ordered set (dict-backed).

    Flow bookkeeping must iterate in *arrival* order, not address order: a
    plain ``set`` of identity-hashed flows completes same-instant flows in
    whatever order the allocator handed out addresses, which makes two runs
    of the same seeded scenario in one process schedule differently.
    """

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items: dict = {}

    def add(self, item) -> None:
        self._items[item] = None

    def discard(self, item) -> None:
        self._items.pop(item, None)

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item) -> bool:
        return item in self._items


class FluidResource:
    """A shared capacity (bytes/µs) that concurrent flows divide."""

    __slots__ = ("name", "capacity", "preempt_slowdown", "flows")

    def __init__(self, name: str, capacity: float,
                 preempt_slowdown: float = 1.0) -> None:
        if capacity <= 0:
            raise ValueError(f"resource {name!r}: capacity must be > 0")
        if preempt_slowdown < 1.0:
            raise ValueError(f"resource {name!r}: preempt_slowdown must be >= 1")
        self.name = name
        self.capacity = capacity
        #: factor applied to a PIO flow's peak rate while any DMA flow
        #: shares this resource.
        self.preempt_slowdown = preempt_slowdown
        self.flows: _OrderedSet = _OrderedSet()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<FluidResource {self.name} cap={self.capacity}B/µs>"


class Flow:
    """One transfer of ``size`` bytes along ``path``.

    ``path`` is a sequence of ``(resource, kind)`` hops; ``peak`` caps the
    flow's standalone rate (e.g. the slowest NIC engine on the path).
    """

    _ids = itertools.count()

    __slots__ = ("id", "name", "size", "remaining", "path", "peak",
                 "rate", "done", "started_at", "finished_at", "_last_update")

    def __init__(self, name: str, size: float,
                 path: Sequence[tuple[FluidResource, str]], peak: float) -> None:
        if size < 0:
            raise ValueError("flow size must be >= 0")
        if peak <= 0:
            raise ValueError("flow peak rate must be > 0")
        for _res, kind in path:
            if kind not in (DMA, PIO):
                raise ValueError(f"unknown transaction kind {kind!r}")
        self.id = next(Flow._ids)
        self.name = name
        self.size = float(size)
        self.remaining = float(size)
        self.path = tuple(path)
        self.peak = float(peak)
        self.rate = 0.0
        self.done: Optional[Event] = None
        self.started_at: float = 0.0
        self.finished_at: Optional[float] = None
        self._last_update: float = 0.0

    def kind_on(self, resource: FluidResource) -> Optional[str]:
        for res, kind in self.path:
            if res is resource:
                return kind
        return None

    def resources(self) -> list[FluidResource]:
        return [res for res, _kind in self.path]

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Flow {self.name} {self.size - self.remaining:.0f}/"
                f"{self.size:.0f}B rate={self.rate:.2f}>")


class FluidNetwork:
    """Manages active flows, rate recomputation, and completion events."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.flows: _OrderedSet = _OrderedSet()
        self._wake_version = 0
        self._wake_ev: Optional[Event] = None
        self._wake_at: float = float("inf")
        #: optional observers called as fn(t, flow, new_rate) on rate changes
        #: (used by the pipeline analyses behind Figures 5 and 8).
        self.rate_observers: list[Callable[[float, Flow, float], None]] = []

    # -- public API ---------------------------------------------------------
    def transfer(self, name: str, size: float,
                 path: Sequence[tuple[FluidResource, str]],
                 peak: float) -> Event:
        """Start a flow; returns an event that triggers (with the flow) when
        the last byte has moved."""
        flow = Flow(name, size, path, peak)
        flow.done = self.sim.event(name=f"flow:{name}")
        flow.started_at = self.sim.now
        flow._last_update = self.sim.now
        if flow.size <= _EPS:
            flow.finished_at = self.sim.now
            flow.done.succeed(flow)
            return flow.done
        self._advance()
        self.flows.add(flow)
        for res in flow.resources():
            res.flows.add(flow)
        self._recompute()
        return flow.done

    def utilization(self, resource: FluidResource) -> float:
        """Instantaneous total rate through ``resource``."""
        return sum(f.rate for f in resource.flows)

    # -- bookkeeping ----------------------------------------------------------
    def _advance(self) -> None:
        """Account progress made at current rates since the last update."""
        now = self.sim.now
        for flow in self.flows:
            dt = now - flow._last_update
            if dt > 0:
                flow.remaining = max(0.0, flow.remaining - flow.rate * dt)
            flow._last_update = now

    def _finish(self, flow: Flow) -> None:
        self.flows.discard(flow)
        for res in flow.resources():
            res.flows.discard(flow)
        flow.rate = 0.0
        flow.remaining = 0.0
        flow.finished_at = self.sim.now
        for obs in self.rate_observers:
            obs(self.sim.now, flow, 0.0)
        flow.done.succeed(flow)

    def _recompute(self) -> None:
        rates = self.solve_rates(self.flows)
        for flow, rate in rates.items():
            if abs(rate - flow.rate) > _EPS:
                flow.rate = rate
                for obs in self.rate_observers:
                    obs(self.sim.now, flow, rate)
            else:
                flow.rate = rate
        self._schedule_wakeup()

    def _schedule_wakeup(self) -> None:
        """Arm a timeout for the earliest flow completion (if any).

        Recomputations happen far more often than wake-ups fire, so a naive
        new-timeout-per-recompute leaves a trail of dead events on the heap
        (every one popped and dispatched as a no-op).  Instead: if the
        pending wake-up already fires at exactly the recomputed instant it
        is kept; otherwise it is lazily cancelled (discarded off the heap
        without dispatch) and a pooled replacement is armed.  Firing times
        are identical to the naive scheme in both cases, so the event
        schedule observed by flows does not change.
        """
        horizon = float("inf")
        for flow in self.flows:
            if flow.rate > _EPS:
                horizon = min(horizon, flow.remaining / flow.rate)
        pending = self._wake_ev is not None and not self._wake_ev.processed
        if horizon == float("inf"):
            self._wake_version += 1
            if pending:
                self._wake_ev.cancel()
            self._wake_ev = None
            return
        wake_at = self.sim.now + max(0.0, horizon)
        if pending and wake_at == self._wake_at:
            return  # the armed wake-up is already exact — reuse it
        self._wake_version += 1
        version = self._wake_version
        if pending:
            self._wake_ev.cancel()
        ev = self.sim.timeout(max(0.0, horizon), name="fluid.wake",
                              pooled=True)
        ev.add_callback(lambda _ev: self._on_wake(version))
        self._wake_ev = ev
        self._wake_at = wake_at

    def _on_wake(self, version: int) -> None:
        if version != self._wake_version:
            return  # superseded by a more recent recomputation
        self._wake_ev = None
        self._advance()
        finished = [f for f in self.flows if f.remaining <= 1e-6 * max(1.0, f.size)]
        for flow in finished:
            self._finish(flow)
        if self.flows or finished:
            self._recompute()

    # -- the rate solver ------------------------------------------------------
    @staticmethod
    def solve_rates(flows: Iterable[Flow]) -> dict[Flow, float]:
        """Max-min progressive filling with PIO-under-DMA contention caps.

        Pure function of the flow set; exercised directly by the
        property-based tests.
        """
        flows = list(flows)
        alloc: dict[Flow, float] = {f: 0.0 for f in flows}
        if not flows:
            return alloc
        residual: dict[FluidResource, float] = {}
        members: dict[FluidResource, list[Flow]] = {}
        for f in flows:
            for res in f.resources():
                residual.setdefault(res, res.capacity)
                members.setdefault(res, []).append(f)
        # Effective per-flow cap: standalone peak, divided by the resource
        # slowdown when this flow is PIO on a resource that also carries DMA.
        caps: dict[Flow, float] = {}
        for f in flows:
            cap = f.peak
            for res, kind in f.path:
                if kind == PIO and any(
                        o is not f and o.kind_on(res) == DMA
                        for o in members[res]):
                    cap = min(cap, f.peak / res.preempt_slowdown)
            caps[f] = cap
        # Progressive filling.
        active = list(flows)
        while active:
            delta = min(caps[f] - alloc[f] for f in active)
            counts: dict[FluidResource, int] = {}
            for f in active:
                for res in f.resources():
                    counts[res] = counts.get(res, 0) + 1
            for res, n in counts.items():
                delta = min(delta, residual[res] / n)
            if delta > _EPS:
                for f in active:
                    alloc[f] += delta
                    for res in f.resources():
                        residual[res] -= delta
                for res in residual:
                    if residual[res] < 0:  # numerical guard
                        residual[res] = 0.0
            still = []
            for f in active:
                capped = alloc[f] >= caps[f] - _EPS
                saturated = any(residual[res] <= _EPS for res in f.resources())
                if not capped and not saturated:
                    still.append(f)
            if len(still) == len(active):
                break  # no progress possible without a freeze: stop
            active = still
        return alloc
