"""Fluid-flow modelling of shared transmission resources.

A data transfer (a *flow*) pushes ``size`` bytes along a *path* of shared
resources (PCI buses, network links).  At any instant every active flow has a
rate; rates are recomputed whenever the set of active flows changes, using
**max-min fair sharing with contention caps**:

* every hop of a flow's path carries a transaction *kind* — ``"dma"`` for
  bus-master transfers initiated by a NIC, ``"pio"`` for CPU-initiated
  programmed I/O;
* a flow whose hop on some resource is PIO, while any concurrent flow on
  that resource is DMA, has its standalone peak divided by the resource's
  ``preempt_slowdown`` — the paper measures ≈ 2× for SCI PIO writes while a
  Myrinet DMA receive is in flight (its Figure 8), because the PCI arbiter
  favours the NIC's DMA transactions;
* subject to those caps and to each resource's capacity, rates are assigned
  by classical progressive filling (max-min fairness).

Rates are piecewise constant between recomputations, so the completion time
of each flow is exact — no time-stepping error.  Bandwidths are bytes/µs,
numerically equal to MB/s.

**Incremental recomputation.**  Flows only contend through shared
resources, so the flow↔resource contention graph decomposes into connected
*components* whose max-min allocations are independent: the fixed point of
a component is a pure function of its member flows (ordered by arrival),
their effective caps, and its resource capacities.  The network exploits
this two ways:

* progressive filling always runs **per component** — the fill of an
  N-flow component costs O(N² · path) instead of the whole population's
  O(total²·path);
* on each arrival/completion only the component(s) reachable from the
  changed flow are re-solved (``incremental=True``, the default): flows in
  untouched components keep their rates — and, because the shared wake-up
  is reused when its firing time is unchanged, their scheduled wakeups —
  verbatim.  A full recompute (``incremental=False``) re-fills *every*
  component each epoch; both modes are bit-identical because re-filling an
  untouched component reproduces its previous rates exactly.

Work done is observable on the network (``recompute_epochs``,
``recomputed_flows``, ``live_flow_epochs``) and, when a metrics registry is
attached, as ``fluid.recomputes``/``fluid.recompute_flows``/
``fluid.epoch_live_flows`` counters plus the ``fluid.component_size``
histogram (docs/telemetry.md).
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Optional, Sequence

from .engine import Event, Simulator

__all__ = ["FluidResource", "Flow", "FluidNetwork", "DMA", "PIO"]

_EPS = 1e-9

#: transaction kinds
DMA = "dma"
PIO = "pio"

#: bucket bounds for the component-size histogram (flows per re-solve).
_COMPONENT_BOUNDS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


class _OrderedSet:
    """Insertion-ordered set (dict-backed).

    Flow bookkeeping must iterate in *arrival* order, not address order: a
    plain ``set`` of identity-hashed flows completes same-instant flows in
    whatever order the allocator handed out addresses, which makes two runs
    of the same seeded scenario in one process schedule differently.
    """

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items: dict = {}

    def add(self, item) -> None:
        self._items[item] = None

    def discard(self, item) -> None:
        self._items.pop(item, None)

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item) -> bool:
        return item in self._items


class FluidResource:
    """A shared capacity (bytes/µs) that concurrent flows divide."""

    __slots__ = ("name", "capacity", "preempt_slowdown", "flows",
                 "dma_flows")

    def __init__(self, name: str, capacity: float,
                 preempt_slowdown: float = 1.0) -> None:
        if capacity <= 0:
            raise ValueError(f"resource {name!r}: capacity must be > 0")
        if preempt_slowdown < 1.0:
            raise ValueError(f"resource {name!r}: preempt_slowdown must be >= 1")
        self.name = name
        self.capacity = capacity
        #: factor applied to a PIO flow's peak rate while any DMA flow
        #: shares this resource.
        self.preempt_slowdown = preempt_slowdown
        self.flows: _OrderedSet = _OrderedSet()
        #: attached flows whose (first) hop on this resource is DMA —
        #: maintained by the network so the PIO-under-DMA cap check is
        #: O(path) per flow instead of a scan of every co-member.
        self.dma_flows: int = 0

    def __repr__(self) -> str:  # pragma: no cover
        return f"<FluidResource {self.name} cap={self.capacity}B/µs>"


class Flow:
    """One transfer of ``size`` bytes along ``path``.

    ``path`` is a sequence of ``(resource, kind)`` hops; ``peak`` caps the
    flow's standalone rate (e.g. the slowest NIC engine on the path).
    """

    _ids = itertools.count()

    __slots__ = ("id", "name", "size", "remaining", "path", "peak",
                 "rate", "done", "started_at", "finished_at", "_last_update",
                 "_seq")

    def __init__(self, name: str, size: float,
                 path: Sequence[tuple[FluidResource, str]], peak: float) -> None:
        if size < 0:
            raise ValueError("flow size must be >= 0")
        if peak <= 0:
            raise ValueError("flow peak rate must be > 0")
        for _res, kind in path:
            if kind not in (DMA, PIO):
                raise ValueError(f"unknown transaction kind {kind!r}")
        self.id = next(Flow._ids)
        self.name = name
        self.size = float(size)
        self.remaining = float(size)
        self.path = tuple(path)
        self.peak = float(peak)
        self.rate = 0.0
        self.done: Optional[Event] = None
        self.started_at: float = 0.0
        self.finished_at: Optional[float] = None
        self._last_update: float = 0.0
        #: network-local arrival sequence (assigned on attach); orders
        #: component members independently of the process-wide id counter.
        self._seq: int = -1

    def kind_on(self, resource: FluidResource) -> Optional[str]:
        for res, kind in self.path:
            if res is resource:
                return kind
        return None

    def resources(self) -> list[FluidResource]:
        return [res for res, _kind in self.path]

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Flow {self.name} {self.size - self.remaining:.0f}/"
                f"{self.size:.0f}B rate={self.rate:.2f}>")


def _fill_component(flows: list[Flow], caps: dict[Flow, float]) -> dict[Flow, float]:
    """Progressive filling of one contention component.

    ``flows`` must be in arrival order and ``caps`` must hold each flow's
    effective cap (peak, PIO-under-DMA already applied).  This is the exact
    arithmetic of the historical whole-population fill restricted to one
    component, so single-component workloads (the golden fig5 pipeline)
    reproduce the pre-incremental engine bit for bit.
    """
    alloc: dict[Flow, float] = {f: 0.0 for f in flows}
    residual: dict[FluidResource, float] = {}
    for f in flows:
        for res in f.resources():
            residual.setdefault(res, res.capacity)
    active = list(flows)
    while active:
        delta = min(caps[f] - alloc[f] for f in active)
        counts: dict[FluidResource, int] = {}
        for f in active:
            for res in f.resources():
                counts[res] = counts.get(res, 0) + 1
        for res, n in counts.items():
            delta = min(delta, residual[res] / n)
        if delta > _EPS:
            for f in active:
                alloc[f] += delta
                for res in f.resources():
                    residual[res] -= delta
            for res in residual:
                if residual[res] < 0:  # numerical guard
                    residual[res] = 0.0
        still = []
        for f in active:
            capped = alloc[f] >= caps[f] - _EPS
            saturated = any(residual[res] <= _EPS for res in f.resources())
            if not capped and not saturated:
                still.append(f)
        if len(still) == len(active):
            break  # no progress possible without a freeze: stop
        active = still
    return alloc


class FluidNetwork:
    """Manages active flows, rate recomputation, and completion events."""

    def __init__(self, sim: Simulator, metrics=None,
                 incremental: bool = True) -> None:
        self.sim = sim
        self.flows: _OrderedSet = _OrderedSet()
        #: re-solve only dirty contention components (False: re-fill every
        #: component each epoch — same schedules, more work; kept for the
        #: full≡incremental identity matrix and as a debugging fallback).
        self.incremental = incremental
        self._wake_version = 0
        self._wake_ev: Optional[Event] = None
        self._wake_at: float = float("inf")
        self._seq = itertools.count()
        #: optional observers called as fn(t, flow, new_rate) on rate changes
        #: (used by the pipeline analyses behind Figures 5 and 8).
        self.rate_observers: list[Callable[[float, Flow, float], None]] = []
        # -- work accounting (always on; plain ints are ~free) --------------
        #: rate-recomputation epochs (arrivals + wake-ups with live flows).
        self.recompute_epochs = 0
        #: flows whose rates were actually re-solved, summed over epochs.
        self.recomputed_flows = 0
        #: live flows at each epoch, summed — ``recomputed_flows /
        #: live_flow_epochs`` is the mean fraction of the population each
        #: epoch had to touch.
        self.live_flow_epochs = 0
        if metrics is not None:
            self._m_recomputes = metrics.counter("fluid.recomputes")
            self._m_recompute_flows = metrics.counter("fluid.recompute_flows")
            self._m_epoch_live = metrics.counter("fluid.epoch_live_flows")
            self._m_component = metrics.histogram("fluid.component_size",
                                                  bounds=_COMPONENT_BOUNDS)
        else:
            self._m_recomputes = None
            self._m_recompute_flows = None
            self._m_epoch_live = None
            self._m_component = None

    # -- public API ---------------------------------------------------------
    def transfer(self, name: str, size: float,
                 path: Sequence[tuple[FluidResource, str]],
                 peak: float) -> Event:
        """Start a flow; returns an event that triggers (with the flow) when
        the last byte has moved."""
        flow = Flow(name, size, path, peak)
        flow.done = self.sim.event(name=f"flow:{name}")
        flow.started_at = self.sim.now
        flow._last_update = self.sim.now
        if flow.size <= _EPS:
            flow.finished_at = self.sim.now
            flow.done.succeed(flow)
            return flow.done
        self._advance()
        self._attach(flow)
        self._recompute([flow])
        return flow.done

    def utilization(self, resource: FluidResource) -> float:
        """Instantaneous total rate through ``resource``."""
        return sum(f.rate for f in resource.flows)

    # -- contention-graph bookkeeping -----------------------------------------
    def _attach(self, flow: Flow) -> None:
        flow._seq = next(self._seq)
        self.flows.add(flow)
        for res in dict.fromkeys(flow.resources()):
            res.flows.add(flow)
            if flow.kind_on(res) == DMA:
                res.dma_flows += 1

    def _detach(self, flow: Flow) -> None:
        self.flows.discard(flow)
        for res in dict.fromkeys(flow.resources()):
            res.flows.discard(flow)
            if flow.kind_on(res) == DMA:
                res.dma_flows -= 1

    def _component(self, seed: Flow, visited: set) -> list[Flow]:
        """The live contention component containing ``seed`` (arrival
        order), grown breadth-first over shared resources."""
        visited.add(seed)
        comp = [seed]
        frontier = [seed]
        while frontier:
            nxt = []
            for f in frontier:
                for res in f.resources():
                    for o in res.flows:
                        if o not in visited:
                            visited.add(o)
                            comp.append(o)
                            nxt.append(o)
            frontier = nxt
        comp.sort(key=lambda f: f._seq)
        return comp

    def _effective_cap(self, flow: Flow) -> float:
        """Flow's standalone cap with PIO-under-DMA applied, from the
        maintained per-resource DMA membership counts (O(path))."""
        cap = flow.peak
        for res, kind in flow.path:
            if kind == PIO:
                others = res.dma_flows
                if flow.kind_on(res) == DMA:
                    others -= 1
                if others > 0:
                    cap = min(cap, flow.peak / res.preempt_slowdown)
        return cap

    # -- bookkeeping ----------------------------------------------------------
    def _advance(self) -> None:
        """Account progress made at current rates since the last update."""
        now = self.sim.now
        for flow in self.flows:
            dt = now - flow._last_update
            if dt > 0:
                flow.remaining = max(0.0, flow.remaining - flow.rate * dt)
            flow._last_update = now

    def _finish(self, flow: Flow) -> None:
        self._detach(flow)
        flow.rate = 0.0
        flow.remaining = 0.0
        flow.finished_at = self.sim.now
        for obs in self.rate_observers:
            obs(self.sim.now, flow, 0.0)
        flow.done.succeed(flow)

    def _recompute(self, seeds: Iterable[Flow]) -> None:
        """Re-solve the contention component(s) reachable from ``seeds``
        (every component when ``incremental`` is off) and re-arm the
        wake-up.  Components not reached keep their rates untouched."""
        if not self.incremental:
            seeds = self.flows
        visited: set = set()
        touched = 0
        for seed in seeds:
            if seed in visited or seed not in self.flows:
                continue
            comp = self._component(seed, visited)
            touched += len(comp)
            if self._m_component is not None:
                self._m_component.observe(float(len(comp)))
            caps = {f: self._effective_cap(f) for f in comp}
            rates = _fill_component(comp, caps)
            for flow, rate in rates.items():
                if abs(rate - flow.rate) > _EPS:
                    flow.rate = rate
                    for obs in self.rate_observers:
                        obs(self.sim.now, flow, rate)
                else:
                    flow.rate = rate
        self.recompute_epochs += 1
        self.recomputed_flows += touched
        self.live_flow_epochs += len(self.flows)
        if self._m_recomputes is not None:
            self._m_recomputes.inc()
            self._m_recompute_flows.inc(touched)
            self._m_epoch_live.inc(len(self.flows))
        self._schedule_wakeup()

    def _schedule_wakeup(self) -> None:
        """Arm a timeout for the earliest flow completion (if any).

        Recomputations happen far more often than wake-ups fire, so a naive
        new-timeout-per-recompute leaves a trail of dead events on the heap
        (every one popped and dispatched as a no-op).  Instead: if the
        pending wake-up already fires at exactly the recomputed instant it
        is kept; otherwise it is lazily cancelled (discarded off the heap
        without dispatch) and a pooled replacement is armed.  Firing times
        are identical to the naive scheme in both cases, so the event
        schedule observed by flows does not change.
        """
        horizon = float("inf")
        for flow in self.flows:
            if flow.rate > _EPS:
                horizon = min(horizon, flow.remaining / flow.rate)
        pending = self._wake_ev is not None and not self._wake_ev.processed
        if horizon == float("inf"):
            self._wake_version += 1
            if pending:
                self._wake_ev.cancel()
            self._wake_ev = None
            return
        wake_at = self.sim.now + max(0.0, horizon)
        if pending and wake_at == self._wake_at:
            return  # the armed wake-up is already exact — reuse it
        self._wake_version += 1
        version = self._wake_version
        if pending:
            self._wake_ev.cancel()
        ev = self.sim.timeout(max(0.0, horizon), name="fluid.wake",
                              pooled=True)
        ev.add_callback(lambda _ev: self._on_wake(version))
        self._wake_ev = ev
        self._wake_at = wake_at

    def _on_wake(self, version: int) -> None:
        if version != self._wake_version:
            return  # superseded by a more recent recomputation
        self._wake_ev = None
        self._advance()
        finished = [f for f in self.flows if f.remaining <= 1e-6 * max(1.0, f.size)]
        if not (self.flows or finished):
            return
        # Seeds for the post-removal recompute: every live flow sharing a
        # resource with a finisher.  BFS closure from these covers the
        # finishers' whole former component(s) — any flow whose allocation
        # can change — and nothing else.
        gone = set(finished)
        seeds = []
        seen = set()
        for flow in finished:
            for res in flow.resources():
                for o in res.flows:
                    if o not in gone and o not in seen:
                        seen.add(o)
                        seeds.append(o)
        for flow in finished:
            self._finish(flow)
        self._recompute(seeds)

    # -- the rate solver ------------------------------------------------------
    @staticmethod
    def solve_rates(flows: Iterable[Flow]) -> dict[Flow, float]:
        """Max-min progressive filling with PIO-under-DMA contention caps.

        Pure function of the flow set (membership is derived from the given
        flows alone, not from live network state); exercised directly by
        the property-based tests.  Filling runs per contention component —
        components are independent, so this changes no allocation, only
        the work done.
        """
        flows = list(flows)
        if not flows:
            return {}
        members: dict[FluidResource, list[Flow]] = {}
        for f in flows:
            for res in f.resources():
                members.setdefault(res, []).append(f)
        # Effective per-flow cap: standalone peak, divided by the resource
        # slowdown when this flow is PIO on a resource that also carries DMA.
        caps: dict[Flow, float] = {}
        for f in flows:
            cap = f.peak
            for res, kind in f.path:
                if kind == PIO and any(
                        o is not f and o.kind_on(res) == DMA
                        for o in members[res]):
                    cap = min(cap, f.peak / res.preempt_slowdown)
            caps[f] = cap
        # Partition into contention components (flows sharing no resource,
        # directly or transitively, never interact).
        comp_of: dict[Flow, int] = {}
        n_comps = 0
        for f in flows:
            if f in comp_of:
                continue
            comp_of[f] = n_comps
            frontier = [f]
            while frontier:
                nxt = []
                for g in frontier:
                    for res in g.resources():
                        for o in members[res]:
                            if o not in comp_of:
                                comp_of[o] = n_comps
                                nxt.append(o)
                frontier = nxt
            n_comps += 1
        groups: list[list[Flow]] = [[] for _ in range(n_comps)]
        for f in flows:
            if not groups[comp_of[f]] or groups[comp_of[f]][-1] is not f:
                groups[comp_of[f]].append(f)
        alloc: dict[Flow, float] = {}
        for group in groups:
            alloc.update(_fill_component(group, caps))
        return alloc
