"""Synchronization primitives for simulation processes.

All primitives hand out :class:`~repro.sim.engine.Event` objects that a
process yields on; wake-ups are strictly FIFO, which keeps runs deterministic
and mirrors the fairness of the pthread primitives used by the original
Madeleine gateway code.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .engine import Event, Simulator

__all__ = ["Semaphore", "Mutex", "Queue", "Barrier", "Signal"]


class Semaphore:
    """Counting semaphore with FIFO wake-up order."""

    def __init__(self, sim: Simulator, value: int = 1, name: str = "") -> None:
        if value < 0:
            raise ValueError("semaphore initial value must be >= 0")
        self.sim = sim
        self.name = name
        self._value = value
        self._waiters: Deque[Event] = deque()

    @property
    def value(self) -> int:
        return self._value

    def acquire(self) -> Event:
        """Return an event that triggers once a unit has been granted."""
        ev = self.sim.event(name=f"{self.name}.acquire")
        if self._value > 0 and not self._waiters:
            self._value -= 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def try_acquire(self) -> bool:
        """Non-blocking acquire; True on success."""
        if self._value > 0 and not self._waiters:
            self._value -= 1
            return True
        return False

    def release(self) -> None:
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._value += 1


class Mutex(Semaphore):
    """Binary semaphore; release() when not held is an error."""

    def __init__(self, sim: Simulator, name: str = "") -> None:
        super().__init__(sim, value=1, name=name)

    def release(self) -> None:
        if self._value >= 1:
            raise RuntimeError(f"mutex {self.name!r} released while not held")
        super().release()

    @property
    def locked(self) -> bool:
        return self._value == 0


class Queue:
    """FIFO message queue with optional capacity (a bounded channel).

    ``put`` returns an event that triggers once the item is enqueued (at once
    if there is room); ``get`` returns an event whose value is the item.
    Rendezvous between a waiting getter and a putter happens at the current
    simulation instant.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None,
                 name: str = "") -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("queue capacity must be >= 1 (or None)")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Event:
        ev = self.sim.event(name=f"{self.name}.put")
        if self._getters:
            # Direct handoff: queue must be empty in this case.
            self._getters.popleft().succeed(item)
            ev.succeed()
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def put_nowait(self, item: Any) -> bool:
        """Enqueue without creating a completion event; True on success.

        For producers that discard ``put``'s event anyway (the transport
        hot path): a discarded event still costs a heap push and a no-op
        dispatch.  Returns False — item **not** enqueued — when a bounded
        queue is full; such callers need the waiting ``put``.
        """
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            return True
        return False

    def get(self) -> Event:
        ev = self.sim.event(name=f"{self.name}.get")
        if self._items:
            item = self._items.popleft()
            if self._putters:
                pev, pitem = self._putters.popleft()
                self._items.append(pitem)
                pev.succeed()
            ev.succeed(item)
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get; returns (True, item) or (False, None)."""
        if self._items:
            item = self._items.popleft()
            if self._putters:
                pev, pitem = self._putters.popleft()
                self._items.append(pitem)
                pev.succeed()
            return True, item
        return False, None

    def cancel_get(self, ev: Event) -> bool:
        """Withdraw a pending ``get`` so it can never steal an item.

        Needed when a getter gives up (e.g. raced against a shutdown event
        in an ``any_of``): an abandoned getter left in place would consume
        the next item and drop it on the floor.  Returns True if the get was
        still pending and has been removed.
        """
        try:
            self._getters.remove(ev)
            return True
        except ValueError:
            return False


class Barrier:
    """N-party reusable barrier."""

    def __init__(self, sim: Simulator, parties: int, name: str = "") -> None:
        if parties < 1:
            raise ValueError("barrier needs >= 1 party")
        self.sim = sim
        self.name = name
        self.parties = parties
        self._waiting: list[Event] = []
        self._generation = 0

    def wait(self) -> Event:
        """Returns an event triggering (with the generation number) once all
        parties have arrived."""
        ev = self.sim.event(name=f"{self.name}.barrier")
        self._waiting.append(ev)
        if len(self._waiting) == self.parties:
            gen = self._generation
            self._generation += 1
            waiting, self._waiting = self._waiting, []
            for w in waiting:
                w.succeed(gen)
        return ev


class Signal:
    """A level-triggered broadcast flag.

    ``wait()`` triggers immediately if the signal is set, else when next
    fired.  ``fire()`` wakes all current waiters; ``set()`` latches.
    """

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._set = False
        self._waiters: list[Event] = []

    @property
    def is_set(self) -> bool:
        return self._set

    def wait(self) -> Event:
        ev = self.sim.event(name=f"{self.name}.signal")
        if self._set:
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def fire(self, value: Any = None) -> None:
        """Wake all current waiters without latching."""
        waiters, self._waiters = self._waiters, []
        for w in waiters:
            w.succeed(value)

    def set(self) -> None:
        """Latch the signal and wake everyone."""
        self._set = True
        self.fire()

    def clear(self) -> None:
        self._set = False
