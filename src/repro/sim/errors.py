"""Exception hierarchy for the discrete-event simulation kernel."""

from __future__ import annotations


class SimError(Exception):
    """Base class for all simulation-kernel errors."""


class SchedulingError(SimError):
    """An event was triggered or scheduled in an invalid state."""


class DeadlockError(SimError):
    """run() was asked to reach a condition but the event heap drained first."""


class ProcessCrashed(SimError):
    """A simulation process terminated with an unhandled exception.

    The original exception is available as ``__cause__``.
    """

    def __init__(self, process_name: str, message: str = "") -> None:
        super().__init__(f"process {process_name!r} crashed{': ' + message if message else ''}")
        self.process_name = process_name


class FaultError(SimError):
    """Base class for injected-fault and fault-recovery failures."""


class GatewayCrashed(FaultError):
    """Thrown into processes of a node that an armed fault plan crashed.

    Crash-aware processes (channel listeners, forwarding workers) catch it
    and park/exit cleanly; everything else surfaces it as a process crash.
    """

    def __init__(self, node_name: str = "", message: str = "") -> None:
        detail = f": {message}" if message else ""
        super().__init__(f"node {node_name!r} crashed{detail}")
        self.node_name = node_name


class TransferTimeout(FaultError, TimeoutError):
    """A reliable-transfer step stalled past its timeout (one attempt)."""


class RetryExhausted(FaultError, TimeoutError):
    """A reliable transfer ran out of its retry budget.

    Carries enough context to diagnose which transfer died and how far it
    got; raised instead of hanging when the fabric keeps eating fragments.
    """

    def __init__(self, message: str, attempts: int = 0,
                 acked_fragments: int = 0, total_fragments: int = 0) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.acked_fragments = acked_fragments
        self.total_fragments = total_fragments
