"""Exception hierarchy for the discrete-event simulation kernel."""

from __future__ import annotations


class SimError(Exception):
    """Base class for all simulation-kernel errors."""


class SchedulingError(SimError):
    """An event was triggered or scheduled in an invalid state."""


class DeadlockError(SimError):
    """run() was asked to reach a condition but the event heap drained first."""


class ProcessCrashed(SimError):
    """A simulation process terminated with an unhandled exception.

    The original exception is available as ``__cause__``.
    """

    def __init__(self, process_name: str, message: str = "") -> None:
        super().__init__(f"process {process_name!r} crashed{': ' + message if message else ''}")
        self.process_name = process_name
