"""Command-line interface: quick experiments without writing a script.

Examples::

    python -m repro info
    python -m repro ping --direction sci-to-myri --size 4M --packet 64K
    python -m repro raw --protocol myrinet
    python -m repro fig6
    python -m repro fig7 --packets 8K,128K
"""

from __future__ import annotations

import argparse
import sys

from .analysis import plot_series
from .bench import (PAPER_MESSAGE_SIZES, PAPER_PACKET_SIZES, PingHarness,
                    Series, figure_sweep, format_series_table)
from .hw import PROTOCOLS

__all__ = ["main"]


def _parse_size(text: str) -> int:
    text = text.strip().upper()
    mult = 1
    if text.endswith("K"):
        mult, text = 1 << 10, text[:-1]
    elif text.endswith("M"):
        mult, text = 1 << 20, text[:-1]
    try:
        return int(float(text) * mult)
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad size {text!r}") from None


def _parse_sizes(text: str) -> list[int]:
    return [_parse_size(part) for part in text.split(",") if part]


def cmd_info(_args) -> int:
    print("Calibrated protocols (bandwidths in MB/s, times in µs):\n")
    header = (f"{'protocol':14s}{'peak':>6s}{'link':>6s}{'latency':>8s}"
              f"{'tx':>5s}{'rx':>5s}{'static':>8s}{'mtu':>9s}")
    print(header)
    print("-" * len(header))
    for p in PROTOCOLS.values():
        static = ("tx+rx" if p.tx_static and p.rx_static
                  else "tx" if p.tx_static else "rx" if p.rx_static else "-")
        print(f"{p.name:14s}{p.host_peak:6.0f}{p.link_bandwidth:6.0f}"
              f"{p.latency:8.1f}{p.tx_kind:>5s}{p.rx_kind:>5s}"
              f"{static:>8s}{p.max_mtu >> 10:8d}K")
    return 0


def cmd_ping(args) -> int:
    direction = {"sci-to-myri": "b0->a0", "myri-to-sci": "a0->b0"}[args.direction]
    harness = PingHarness(packet_size=args.packet)
    res = harness.measure(args.size, direction=direction)
    print(f"{args.direction}, {args.size} B message, "
          f"{args.packet >> 10} KB paquets:")
    print(f"  one-way time : {res.one_way_us:10.1f} µs "
          f"(RTT {res.rtt_us:.1f} − ack {res.ack_us:.1f})")
    print(f"  bandwidth    : {res.bandwidth:10.1f} MB/s")
    return 0


def cmd_raw(args) -> int:
    import numpy as np

    from .hw import build_world
    from .madeleine import Session

    proto = args.protocol
    if proto not in PROTOCOLS:
        print(f"unknown protocol {proto!r}; try: {', '.join(PROTOCOLS)}",
              file=sys.stderr)
        return 2
    series = Series(label=proto)
    for size in args.sizes:
        w = build_world({"a": [proto], "b": [proto]})
        s = Session(w)
        ch = s.channel(proto, ["a", "b"])
        out = {}
        data = np.zeros(size, dtype=np.uint8)

        def snd():
            m = ch.endpoint(0).begin_packing(1)
            yield m.pack(data)
            yield m.end_packing()

        def rcv():
            inc = yield ch.endpoint(1).begin_unpacking()
            _ev, _b = inc.unpack(len(data))
            yield inc.end_unpacking()
            out["t"] = s.now

        s.spawn(snd()); s.spawn(rcv()); s.run()
        series.add(size, size / out["t"])
    print(format_series_table([series],
                              title=f"raw one-way bandwidth, {proto}"))
    return 0


def _figure(args, direction: str, title: str) -> int:
    curves = figure_sweep(direction, packet_sizes=args.packets,
                          message_sizes=args.sizes)
    print(format_series_table(curves, title=title))
    print()
    print(plot_series(curves, title=title))
    return 0


def cmd_fig6(args) -> int:
    return _figure(args, "b0->a0",
                   "Figure 6: forwarding bandwidth, SCI -> Myrinet")


def cmd_fig7(args) -> int:
    return _figure(args, "a0->b0",
                   "Figure 7: forwarding bandwidth, Myrinet -> SCI")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Madeleine inter-device forwarding reproduction (IPPS'01)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="print the calibrated protocol table") \
        .set_defaults(fn=cmd_info)

    p = sub.add_parser("ping", help="one forwarding measurement (§3.1 method)")
    p.add_argument("--direction", choices=["sci-to-myri", "myri-to-sci"],
                   default="sci-to-myri")
    p.add_argument("--size", type=_parse_size, default=4 << 20)
    p.add_argument("--packet", type=_parse_size, default=64 << 10)
    p.set_defaults(fn=cmd_ping)

    p = sub.add_parser("raw", help="raw single-network bandwidth curve")
    p.add_argument("--protocol", default="myrinet")
    p.add_argument("--sizes", type=_parse_sizes,
                   default=[(1 << k) << 10 for k in range(0, 13, 2)])
    p.set_defaults(fn=cmd_raw)

    for name, fn in (("fig6", cmd_fig6), ("fig7", cmd_fig7)):
        p = sub.add_parser(name, help=f"regenerate {name} of the paper")
        p.add_argument("--packets", type=_parse_sizes,
                       default=list(PAPER_PACKET_SIZES))
        p.add_argument("--sizes", type=_parse_sizes,
                       default=list(PAPER_MESSAGE_SIZES))
        p.set_defaults(fn=fn)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
