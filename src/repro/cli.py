"""Command-line interface: quick experiments without writing a script.

Examples::

    python -m repro info
    python -m repro ping --direction sci-to-myri --size 4M --packet 64K
    python -m repro raw --protocol myrinet
    python -m repro fig6
    python -m repro fig7 --packets 8K,128K
    python -m repro stats --direction sci-to-myri --size 4M
    python -m repro trace --size 1M --out trace.json
    python -m repro bench --regress
    python -m repro solve --scenario scenario.yaml
    python -m repro solve --validate
"""

from __future__ import annotations

import argparse
import re
import sys

from .analysis import plot_series
from .bench import (PAPER_MESSAGE_SIZES, PAPER_PACKET_SIZES, PingHarness,
                    Series, figure_sweep, format_series_table)
from .hw import PROTOCOLS

__all__ = ["main"]

_SIZE_RE = re.compile(r"(\d+(?:\.\d+)?)([KMG]?)B?", re.IGNORECASE)
_SIZE_MULT = {"": 1, "K": 1 << 10, "M": 1 << 20, "G": 1 << 30}


def _parse_size(text: str) -> int:
    m = _SIZE_RE.fullmatch(text.strip())
    if m is None:
        raise argparse.ArgumentTypeError(
            f"bad size {text!r} (expected e.g. 512, 64K, 4M, 1G)")
    return int(float(m.group(1)) * _SIZE_MULT[m.group(2).upper()])


def _parse_sizes(text: str) -> list[int]:
    return [_parse_size(part) for part in text.split(",") if part]


def cmd_info(_args) -> int:
    print("Calibrated protocols (bandwidths in MB/s, times in µs):\n")
    header = (f"{'protocol':14s}{'peak':>6s}{'link':>6s}{'latency':>8s}"
              f"{'tx':>5s}{'rx':>5s}{'static':>8s}{'mtu':>9s}")
    print(header)
    print("-" * len(header))
    for p in PROTOCOLS.values():
        static = ("tx+rx" if p.tx_static and p.rx_static
                  else "tx" if p.tx_static else "rx" if p.rx_static else "-")
        print(f"{p.name:14s}{p.host_peak:6.0f}{p.link_bandwidth:6.0f}"
              f"{p.latency:8.1f}{p.tx_kind:>5s}{p.rx_kind:>5s}"
              f"{static:>8s}{p.max_mtu >> 10:8d}K")
    return 0


def cmd_ping(args) -> int:
    direction = {"sci-to-myri": "b0->a0", "myri-to-sci": "a0->b0"}[args.direction]
    harness = PingHarness(packet_size=args.packet)
    res = harness.measure(args.size, direction=direction)
    print(f"{args.direction}, {args.size} B message, "
          f"{args.packet >> 10} KB paquets:")
    print(f"  one-way time : {res.one_way_us:10.1f} µs "
          f"(RTT {res.rtt_us:.1f} − ack {res.ack_us:.1f})")
    print(f"  bandwidth    : {res.bandwidth:10.1f} MB/s")
    return 0


def cmd_raw(args) -> int:
    import numpy as np

    from .hw import build_world
    from .madeleine import Session

    proto = args.protocol
    if proto not in PROTOCOLS:
        print(f"unknown protocol {proto!r}; try: {', '.join(PROTOCOLS)}",
              file=sys.stderr)
        return 2
    series = Series(label=proto)
    for size in args.sizes:
        w = build_world({"a": [proto], "b": [proto]})
        s = Session(w)
        ch = s.channel(proto, ["a", "b"])
        out = {}
        data = np.zeros(size, dtype=np.uint8)

        def snd():
            m = ch.endpoint(0).begin_packing(1)
            yield m.pack(data)
            yield m.end_packing()

        def rcv():
            inc = yield ch.endpoint(1).begin_unpacking()
            _ev, _b = inc.unpack(len(data))
            yield inc.end_unpacking()
            out["t"] = s.now

        s.spawn(snd()); s.spawn(rcv()); s.run()
        series.add(size, size / out["t"])
    print(format_series_table([series],
                              title=f"raw one-way bandwidth, {proto}"))
    return 0


def _figure(args, direction: str, title: str) -> int:
    curves = figure_sweep(direction, packet_sizes=args.packets,
                          message_sizes=args.sizes)
    print(format_series_table(curves, title=title))
    print()
    print(plot_series(curves, title=title))
    return 0


def cmd_fig6(args) -> int:
    return _figure(args, "b0->a0",
                   "Figure 6: forwarding bandwidth, SCI -> Myrinet")


def cmd_fig7(args) -> int:
    return _figure(args, "a0->b0",
                   "Figure 7: forwarding bandwidth, Myrinet -> SCI")


_DIRECTIONS = {"sci-to-myri": ("s0", "m0"), "myri-to-sci": ("m0", "s0")}


def _forwarded_run(args):
    """One telemetry-enabled reliable transfer across the canonical
    two-gateway testbed (m0 —myrinet— {gwA,gwB} —sci— s0).

    Returns ``(session, elapsed_us, attempts)``.
    """
    import numpy as np

    from .faults import ChannelFaults, FaultPlan
    from .hw import build_world
    from .hw.params import GatewayParams
    from .madeleine import ReliableEndpoint, RetryPolicy, Session

    src_name, dst_name = _DIRECTIONS[args.direction]
    plan = None
    if args.drop > 0:
        plan = FaultPlan(seed=args.seed,
                         default=ChannelFaults(drop_p=args.drop))
    world = build_world({"m0": ["myrinet"], "gwA": ["myrinet", "sci"],
                         "gwB": ["myrinet", "sci"], "s0": ["sci"]})
    session = Session(world, packet_size=args.packet, telemetry=True,
                      fault_plan=plan)
    myri = session.channel("myrinet", ["m0", "gwA", "gwB"])
    sci = session.channel("sci", ["gwA", "gwB", "s0"])
    # The bounded gateway stall keeps an abandoned attempt (chaos mode)
    # from wedging a forwarding worker while it holds the outgoing
    # connection lock.
    vch = session.virtual_channel(
        [myri, sci], gateway_params=GatewayParams(stall_timeout=5_000.0))
    src, dst = session.rank(src_name), session.rank(dst_name)
    # The recovery clocks must cover one whole attempt (~size / bandwidth):
    # an RTO shorter than the transfer would retransmit mid-flight on a
    # healthy fabric, and a re-ACK period shorter than the attempt makes
    # the sender mistake a progress report for an abandoned attempt.
    rto = 50_000.0 + args.size * 0.2
    policy = RetryPolicy(rto=rto, rto_max=2 * rto,
                         reack_interval=rto, reack_ttl=4 * rto)
    rel_src = ReliableEndpoint(vch.endpoint(src), policy)
    rel_dst = ReliableEndpoint(vch.endpoint(dst), policy)
    payload = np.zeros(args.size, dtype=np.uint8)
    result = {}

    def sender():
        result["attempts"] = yield from rel_src.send(dst, payload)

    def receiver():
        _src, data, _tid = yield from rel_dst.recv()
        result["t"] = session.now
        result["nbytes"] = len(data)

    session.spawn(sender(), name="stats:send")
    session.spawn(receiver(), name="stats:recv")
    session.run()
    session.close()
    return session, result["t"], result.get("attempts", 0)


def cmd_stats(args) -> int:
    from .telemetry import format_metrics

    session, elapsed, attempts = _forwarded_run(args)
    print(f"{args.direction}, {args.size} B message, "
          f"{args.packet >> 10} KB packets, drop_p={args.drop}:")
    print(f"  delivered in {elapsed:.1f} µs "
          f"({args.size / elapsed:.1f} MB/s), {attempts} attempt(s)\n")
    snapshot = session.metrics.snapshot()
    print(format_metrics(snapshot))
    if args.json:
        from .analysis import write_metrics_json
        write_metrics_json(snapshot, args.json)
        print(f"\nwrote {args.json}")
    if args.csv:
        from .analysis import write_metrics_csv
        write_metrics_csv(snapshot, args.csv)
        print(f"wrote {args.csv}")
    return 0


def _sweep_pipeline(args) -> int:
    import pathlib

    from .bench import pipeline_sweep
    from .bench.jsonio import dump_json

    map_fn = None
    pool = None
    if args.jobs and args.jobs > 1:
        import multiprocessing as mp
        pool = mp.Pool(args.jobs)
        map_fn = pool.imap
    try:
        result = pipeline_sweep(probe=args.probe, map_fn=map_fn)
    finally:
        if pool is not None:
            pool.close()
            pool.join()
    frag_keys = sorted({k for row in result["grid"].values() for k in row},
                       key=lambda k: int(k[:-1]))
    print(f"forwarded bandwidth (MB/s), {result['direction']}, "
          f"{result['message'] >> 20} MB message"
          + (", probed rates" if result["probe"] else "") + ":\n")
    header = f"{'depth':>8s}" + "".join(f"{k:>9s}" for k in frag_keys) \
        + f"{'tuned':>14s}"
    print(header)
    print("-" * len(header))
    for dkey in sorted(result["grid"], key=lambda k: int(k[5:])):
        row = result["grid"][dkey]
        cells = "".join(f"{row[k]:9.1f}" for k in frag_keys)
        t = result["tuned"].get(dkey)
        tuned = (f"{t['mbs']:8.1f}@{t['fragment_kb']:.0f}k" if t else "")
        print(f"{dkey:>8s}{cells}{tuned:>14s}")
    print("\nthe knee: where a column stops growing down a row, extra depth "
          "stops paying; 'tuned' is the fragment size the adaptive tuner "
          "picked for that depth (see docs/performance.md)")
    if args.sweep_out:
        path = pathlib.Path(args.sweep_out)
        dump_json({"suite": "sweep-pipeline", **result}, path)
        print(f"\nwrote {path}")
    return 0


def _sweep_rails(args) -> int:
    import pathlib

    from .bench import rails_sweep
    from .bench.jsonio import dump_json

    map_fn = None
    pool = None
    if args.jobs and args.jobs > 1:
        import multiprocessing as mp
        pool = mp.Pool(args.jobs)
        map_fn = pool.imap
    try:
        result = rails_sweep(map_fn=map_fn, mode=args.mode)
    finally:
        if pool is not None:
            pool.close()
            pool.join()
    pkt_keys = sorted({k for row in result["grid"].values() for k in row},
                      key=lambda k: int(k[:-1]))
    measured = ("solved" if result["mode"] == "solver" else "measured")
    print(f"striped bandwidth (MB/s), a0->b0, "
          f"{result['message'] >> 20} MB message, "
          f"{measured} | model per cell:\n")
    header = f"{'rails':>8s}" + "".join(f"{k:>16s}" for k in pkt_keys) \
        + f"{'mean gain':>12s}"
    print(header)
    print("-" * len(header))
    for rkey in sorted(result["grid"], key=lambda k: int(k[5:])):
        row, mrow = result["grid"][rkey], result["model"][rkey]
        cells = "".join(f"{row[k]:8.1f}|{mrow[k]:<7.1f}" for k in pkt_keys)
        gain = result["mean_gain"].get(rkey)
        print(f"{rkey:>8s}{cells}"
              + (f"{gain:11.2f}x" if gain is not None else ""))
    print("\neach rail adds its own sender NIC, gateway, and receiver NIC; "
          "the aggregate bends below linear once the end hosts' PCI buses "
          "saturate (see docs/performance.md)")
    if args.sweep_out:
        path = pathlib.Path(args.sweep_out)
        dump_json({"suite": "sweep-rails", **result}, path)
        print(f"\nwrote {path}")
    return 0


def _sweep_nodes(args) -> int:
    import pathlib

    from .bench.jsonio import dump_json
    from .bench.scale import format_sweep, sweep_nodes

    rows = sweep_nodes(mode=args.mode,
                       progress=lambda msg: print(f"  running {msg} ...",
                                                  flush=True))
    print()
    print(format_sweep(rows))
    if args.mode == "solver":
        print("\nanalytic solver estimates (no simulation; 'ev/MB' counts "
              "fixed-point recomputations) — accuracy bounds in "
              "docs/solver.md")
    else:
        print("\nopen-loop Poisson traffic on generated tori (calendar "
              "scheduler); 'gwq' is the gateway queue high-water mark and "
              "'ev/MB' the kernel cost per transferred MB "
              "(see docs/scaling.md)")
    if args.sweep_out:
        path = pathlib.Path(args.sweep_out)
        dump_json({"suite": "sweep-nodes", "mode": args.mode, "rows": rows},
                  path)
        print(f"\nwrote {path}")
    return 0


def _bench_scenario(args) -> int:
    from .bench.scale import run_traffic_scenario, solve_traffic_scenario
    from .scenario import load_scenario

    scenario = load_scenario(args.scenario)
    if scenario.traffic is None:
        print(f"{args.scenario}: scenario has no traffic spec; "
              f"replay message-level scenarios with "
              f"'repro fuzz --replay {args.scenario}'", file=sys.stderr)
        return 2
    print(f"scenario {args.scenario}: {scenario.describe()}")
    row = (solve_traffic_scenario(scenario) if args.mode == "solver"
           else run_traffic_scenario(scenario))
    for key in ("flows", "completed", "peak_active", "p50_fct_us",
                "p99_fct_us", "mean_fct_us", "duration_us", "goodput_mbs",
                "gw_queue_hwm", "events", "events_per_mb"):
        if key not in row:
            continue
        value = row[key]
        text = f"{value:.1f}" if isinstance(value, float) else str(value)
        print(f"  {key:16s} {text}")
    return 0


def cmd_bench(args) -> int:
    import pathlib

    from .bench import regress as rg

    if getattr(args, "profile", None):
        # cProfile wrapper around whichever bench action was requested:
        # prints the top-20 cumulative functions and writes a .pstats
        # artifact for `snakeviz`/`pstats` spelunking.  Forces a serial
        # run — a multiprocessing pool would escape the profiler.
        import cProfile
        import pstats

        if args.jobs and args.jobs > 1:
            print("--profile forces a serial run (--jobs 1)", file=sys.stderr)
        args.jobs = 1
        prof_path = pathlib.Path(args.profile)
        args.profile = None
        prof = cProfile.Profile()
        rc = prof.runcall(cmd_bench, args)
        prof.dump_stats(prof_path)
        print()
        pstats.Stats(prof).sort_stats("cumulative").print_stats(20)
        print(f"wrote profile {prof_path}")
        return rc

    if args.sweep_pipeline:
        return _sweep_pipeline(args)
    if args.sweep_rails:
        return _sweep_rails(args)
    if args.sweep_nodes:
        return _sweep_nodes(args)
    if args.scenario:
        return _bench_scenario(args)
    if not args.regress and not args.update_baseline:
        print("nothing to do: pass --regress, --update-baseline, "
              "--scenario, or one of --sweep-pipeline/--sweep-rails/"
              "--sweep-nodes", file=sys.stderr)
        return 2
    baseline_path = pathlib.Path(args.baseline)
    out_path = pathlib.Path(args.out)
    current = rg.run_regress(
        quick=args.quick, jobs=args.jobs,
        progress=lambda name: print(f"  running {name} ...", flush=True))
    if args.update_baseline:
        rg.write_baseline(current, baseline_path,
                          tolerance=args.tolerance
                          if args.tolerance is not None
                          else rg.DEFAULT_TOLERANCE)
        print(f"wrote baseline {baseline_path}")
        if not args.regress:
            return 0
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; create one with "
              f"--update-baseline", file=sys.stderr)
        return 2
    from .bench.jsonio import load_json
    baseline = load_json(baseline_path)
    failures = rg.compare_to_baseline(current, baseline,
                                      tolerance=args.tolerance)
    print()
    print(rg.format_report(current, baseline, failures))
    rg.write_results(current, baseline, failures, out_path)
    print(f"\nwrote {out_path}")
    return 1 if failures else 0


def cmd_solve(args) -> int:
    import pathlib

    from .bench.jsonio import dump_json, load_json

    if args.validate:
        from .solver import validate as sv
        result = sv.run_validate(
            progress=lambda n: print(f"  running {n} ...", flush=True),
            jobs=args.jobs)
        baseline_path = pathlib.Path(args.baseline)
        if args.update_baseline:
            sv.write_validate_baseline(result, baseline_path)
            print(f"wrote baseline {baseline_path}")
        if not baseline_path.exists():
            print(f"no baseline at {baseline_path}; create one with "
                  f"--update-baseline", file=sys.stderr)
            return 2
        failures = sv.compare_validate(result, load_json(baseline_path))
        print()
        print(sv.format_validate(result, failures))
        if args.out:
            dump_json({**result,
                       "comparison": {
                           "status": "fail" if failures else "pass",
                           "failures": failures,
                       }}, args.out)
            print(f"\nwrote {args.out}")
        return 1 if failures else 0

    if not args.scenario:
        print("nothing to do: pass --scenario FILE or --validate",
              file=sys.stderr)
        return 2

    from .scenario import load_scenario
    from .solver import solve

    scenario = load_scenario(args.scenario)
    print(f"scenario {args.scenario}: {scenario.describe()}")
    result = solve(scenario)
    print(f"\n{'flow':>6s} {'route':24s} {'bytes':>10s} {'arrival':>10s} "
          f"{'FCT':>10s} {'MB/s':>8s}")
    for f in result.flows:
        print(f"{f.index:6d} {f.src + ' -> ' + f.dst:24s} {f.nbytes:10d} "
              f"{f.arrival:9.1f}u {f.fct_us:9.1f}u {f.bandwidth:8.2f}")
    summary = result.summary()
    print()
    for key in ("flows", "peak_active", "p50_fct_us", "p99_fct_us",
                "mean_fct_us", "duration_us", "goodput_mbs", "events"):
        value = summary[key]
        text = f"{value:.1f}" if isinstance(value, float) else str(value)
        print(f"  {key:16s} {text}")
    links = sorted(result.link_utilization().items(),
                   key=lambda kv: -kv[1])[:8]
    if links:
        print("\n  busiest links (mean utilization over the run):")
        for name, u in links:
            print(f"    {name:12s} {u:7.1%}")
    if args.out:
        dump_json({
            "suite": "solve",
            "scenario": scenario.describe(),
            "summary": summary,
            "flows": [{"index": f.index, "src": f.src, "dst": f.dst,
                       "nbytes": f.nbytes, "arrival_us": f.arrival,
                       "fct_us": f.fct_us, "bandwidth_mbs": f.bandwidth,
                       "rails": f.rails} for f in result.flows],
            "link_utilization": result.link_utilization(),
        }, args.out)
        print(f"\nwrote {args.out}")
    return 0


def cmd_fuzz(args) -> int:
    from .fuzz import load_repro, minimize_scenario, run_campaign, run_scenario

    if args.scenario and not args.replay:
        args.replay = args.scenario
    if args.replay:
        scenario = load_repro(args.replay)
        if args.minimize:
            result = run_scenario(scenario)
            if not result.ok:
                scenario = minimize_scenario(
                    scenario, result.failures[0].invariant,
                    progress=lambda msg: print(msg, flush=True))
        result = run_scenario(scenario)
        print(f"replay {args.replay}: {scenario.describe()}")
        for key, value in sorted(result.stats.items()):
            print(f"  {key:12s} {value}")
        if result.ok:
            print("  PASS: no invariant violated")
            return 0
        for f in result.failures:
            print(f"  {f}")
        return 1

    report = run_campaign(
        runs=args.runs, seed_base=args.seed,
        time_budget=args.time_budget,
        minimize=not args.no_minimize,
        out_dir=args.out_dir,
        progress=lambda msg: print(msg, flush=True),
        jobs=args.jobs)
    print(report.summary())
    return 0 if report.ok else 1


def cmd_trace(args) -> int:
    from .analysis import write_chrome_trace, write_spans_chrome

    session, elapsed, _attempts = _forwarded_run(args)
    n = write_chrome_trace(session.trace, args.out)
    print(f"wrote {args.out}: {n} trace events "
          f"(run took {elapsed:.1f} µs simulated)")
    if args.spans_out:
        n = write_spans_chrome(session.spans, args.spans_out)
        print(f"wrote {args.spans_out}: {n} span events")
    return 0


def _regress_default(which: str):
    from .bench import regress as rg
    return rg.DEFAULT_BASELINE if which == "baseline" else rg.DEFAULT_OUT


def _solve_default_baseline():
    from .solver.validate import DEFAULT_VALIDATE_BASELINE
    return DEFAULT_VALIDATE_BASELINE


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Madeleine inter-device forwarding reproduction (IPPS'01)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="print the calibrated protocol table") \
        .set_defaults(fn=cmd_info)

    p = sub.add_parser("ping", help="one forwarding measurement (§3.1 method)")
    p.add_argument("--direction", choices=["sci-to-myri", "myri-to-sci"],
                   default="sci-to-myri")
    p.add_argument("--size", type=_parse_size, default=4 << 20)
    p.add_argument("--packet", type=_parse_size, default=64 << 10)
    p.set_defaults(fn=cmd_ping)

    p = sub.add_parser("raw", help="raw single-network bandwidth curve")
    p.add_argument("--protocol", default="myrinet")
    p.add_argument("--sizes", type=_parse_sizes,
                   default=[(1 << k) << 10 for k in range(0, 13, 2)])
    p.set_defaults(fn=cmd_raw)

    for name, fn in (("fig6", cmd_fig6), ("fig7", cmd_fig7)):
        p = sub.add_parser(name, help=f"regenerate {name} of the paper")
        p.add_argument("--packets", type=_parse_sizes,
                       default=list(PAPER_PACKET_SIZES))
        p.add_argument("--sizes", type=_parse_sizes,
                       default=list(PAPER_MESSAGE_SIZES))
        p.set_defaults(fn=fn)

    def _forward_args(p) -> None:
        p.add_argument("--direction", choices=sorted(_DIRECTIONS),
                       default="sci-to-myri")
        p.add_argument("--size", type=_parse_size, default=4 << 20)
        p.add_argument("--packet", type=_parse_size, default=64 << 10)
        p.add_argument("--drop", type=float, default=0.0,
                       help="per-fragment drop probability (chaos)")
        p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser(
        "stats", help="telemetry snapshot of one forwarded transfer")
    _forward_args(p)
    p.add_argument("--json", metavar="PATH",
                   help="also write the snapshot as JSON")
    p.add_argument("--csv", metavar="PATH",
                   help="also write the snapshot as CSV")
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser(
        "bench",
        help="benchmark-regression suite (figures 5-8 + latency points)")
    p.add_argument("--regress", action="store_true",
                   help="run the suite and compare against the baseline")
    p.add_argument("--update-baseline", action="store_true",
                   help="refresh the committed baseline from this run")
    p.add_argument("--quick", action="store_true",
                   help="skip the fig6/fig7 sweeps (CI smoke subset)")
    p.add_argument("--baseline", default=str(_regress_default("baseline")),
                   help="baseline JSON path")
    p.add_argument("--out", default=str(_regress_default("out")),
                   help="results JSON output path (BENCH_PR3.json)")
    p.add_argument("--tolerance", type=float, default=None,
                   help="override the baseline's tolerance band")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="run scenarios in a multiprocessing pool of N "
                        "workers (deterministic per-scenario seeds)")
    p.add_argument("--sweep-pipeline", action="store_true",
                   help="sweep gateway pipeline depth x fragment size on "
                        "the fig5 topology (plus the adaptive tuner)")
    p.add_argument("--probe", action="store_true",
                   help="with --sweep-pipeline: run the online rate probe "
                        "and feed measured rates to the tuner")
    p.add_argument("--sweep-rails", action="store_true",
                   help="sweep stripe rail count x paquet size on the "
                        "multirail dual-NIC topology (measured vs model)")
    p.add_argument("--sweep-nodes", action="store_true",
                   help="scale-out grid: generated tori up to 256 nodes "
                        "under open-loop traffic (p50/p99 FCT, events/MB)")
    p.add_argument("--sweep-out", default="",
                   help="with a --sweep-* flag: also write the sweep table "
                        "as JSON to this path")
    p.add_argument("--scenario", metavar="FILE",
                   help="run one declarative traffic scenario "
                        "(YAML or JSON, see docs/scaling.md)")
    p.add_argument("--mode", choices=["des", "solver"], default="des",
                   help="with --sweep-rails/--sweep-nodes/--scenario: "
                        "'solver' estimates cells with the analytic "
                        "fixed-point solver instead of simulating "
                        "(docs/solver.md)")
    p.add_argument("--profile", nargs="?", const="bench_profile.pstats",
                   default=None, metavar="PSTATS",
                   help="run the selected bench action under cProfile: "
                        "print the top-20 cumulative functions and write "
                        "a .pstats artifact (default bench_profile.pstats); "
                        "forces a serial run")
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "solve",
        help="analytic fast-path solver: flow rates/FCTs without the DES")
    p.add_argument("--scenario", metavar="FILE",
                   help="solve one declarative scenario (YAML or JSON)")
    p.add_argument("--validate", action="store_true",
                   help="cross-check solver vs DES on the sampled "
                        "fig5-fig8, multirail, and traffic cells")
    p.add_argument("--update-baseline", action="store_true",
                   help="with --validate: commit this run's max errors as "
                        "the new regression floor")
    p.add_argument("--baseline",
                   default=str(_solve_default_baseline()),
                   help="validation baseline JSON path")
    p.add_argument("--out", default="",
                   help="also write the result as JSON to this path")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="with --validate: run the DES cells in a "
                        "multiprocessing pool of N workers (identical "
                        "numbers, per-cell wall clock kept for the "
                        "speedup figure)")
    p.set_defaults(fn=cmd_solve)

    p = sub.add_parser(
        "fuzz",
        help="coverage-guided scenario fuzzer (invariants of "
             "docs/robustness.md)")
    p.add_argument("--runs", type=int, default=100,
                   help="number of scenarios to execute")
    p.add_argument("--seed", type=int, default=0,
                   help="base seed: run i uses seed+i")
    p.add_argument("--time-budget", type=float, default=None, metavar="S",
                   help="stop after S wall-clock seconds even if --runs "
                        "remain")
    p.add_argument("--replay", metavar="FILE",
                   help="re-execute one repro file instead of a campaign")
    p.add_argument("--scenario", metavar="FILE",
                   help="alias for --replay accepting scenario files "
                        "(YAML or JSON, bare or fuzz-repro wrapped)")
    p.add_argument("--minimize", action="store_true",
                   help="with --replay: shrink the scenario first if it "
                        "still fails")
    p.add_argument("--no-minimize", action="store_true",
                   help="campaign mode: save failures unminimized")
    p.add_argument("--out-dir", default="fuzz-corpus", metavar="DIR",
                   help="directory for repro files of failing scenarios")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="campaign mode: run scenarios in a multiprocessing "
                        "pool of N workers (independent random draws per "
                        "seed; disables corpus-guided mutation)")
    p.set_defaults(fn=cmd_fuzz)

    p = sub.add_parser(
        "trace", help="Chrome about:tracing export of one forwarded transfer")
    _forward_args(p)
    p.add_argument("--out", default="trace.json",
                   help="trace-event JSON output path")
    p.add_argument("--spans-out", default="",
                   help="also export telemetry spans to this path")
    p.set_defaults(fn=cmd_trace)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
