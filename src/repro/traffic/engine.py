"""The traffic engine: drive hundreds of concurrent flows over a session.

The engine expands a scenario's :class:`~repro.scenario.TrafficSpec` into
deterministic flows (:mod:`repro.traffic.flows`) and drives them open-loop:
every flow starts at its Poisson arrival time regardless of whether earlier
flows finished, so offered load — not completion rate — shapes the arrival
process, and congestion shows up as flow-completion-time (FCT) inflation
instead of silently throttling the workload.

Plain flows carry a 12-byte self-describing header (flow id + length) so
per-destination receivers can demultiplex arrivals in any order; reliable
flows ride :class:`~repro.madeleine.ReliableEndpoint` and complete at the
sender's delivery ack.  Flow-level results are recorded twice: exact
per-flow records on the engine (:attr:`TrafficEngine.records`, feeding the
p50/p99 summary) and aggregate metrics through the telemetry registry
(``traffic.*`` — see docs/telemetry.md).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from ..scenario import Scenario, TrafficSpec
from .flows import Flow, generate_flows

if TYPE_CHECKING:  # pragma: no cover
    from ..madeleine import Session

__all__ = ["FlowRecord", "TrafficEngine", "run_traffic"]

#: plain-flow framing: little-endian (flow_id: u32, nbytes: u64).
_FRAME = struct.Struct("<IQ")


@dataclass(frozen=True)
class FlowRecord:
    """One finished flow: completion time minus open-loop arrival time."""

    flow: Flow
    completed_at: float

    @property
    def fct(self) -> float:
        """Flow completion time, µs."""
        return self.completed_at - self.flow.arrival


class TrafficEngine:
    """Expand a scenario's traffic spec and drive it over ``session``.

    Usage::

        session = Session.from_scenario(scenario)
        engine = TrafficEngine(session, scenario)
        engine.start()
        session.run()
        print(engine.summary())
    """

    def __init__(self, session: "Session", scenario: Scenario,
                 spec: Optional[TrafficSpec] = None,
                 endpoints: Optional[Sequence[str]] = None) -> None:
        spec = spec if spec is not None else scenario.traffic
        if spec is None:
            raise ValueError("scenario has no traffic spec")
        if not session.virtual_channels:
            raise ValueError("session has no virtual channel")
        self.session = session
        self.scenario = scenario
        self.spec = spec
        self.vch = session.virtual_channels[0]
        names = list(endpoints if endpoints is not None
                     else scenario.topology.endpoint_names())
        self.flows = generate_flows(spec, scenario.seed, names)
        self.records: list[FlowRecord] = []
        self._arrivals = {f.index: f.arrival for f in self.flows}
        self._active = 0
        self.peak_active = 0
        self._started = False
        m = session.metrics
        self._m_started = m.counter("traffic.flows_started")
        self._m_completed = m.counter("traffic.flows_completed")
        self._m_active = m.gauge("traffic.active_flows")
        self._m_fct = m.histogram("traffic.fct_us")
        self._m_bytes = m.counter("traffic.bytes_delivered")

    # -- flow lifecycle bookkeeping -----------------------------------------
    def _flow_started(self) -> None:
        self._m_started.inc()
        self._active += 1
        if self._active > self.peak_active:
            self.peak_active = self._active
        self._m_active.inc()

    def _flow_completed(self, flow: Flow) -> None:
        self._active -= 1
        self._m_active.dec()
        self._m_completed.inc()
        self._m_bytes.inc(flow.nbytes)
        record = FlowRecord(flow=flow, completed_at=self.session.now)
        self._m_fct.observe(record.fct)
        self.records.append(record)

    # -- plain traffic -------------------------------------------------------
    def _plain_sender(self, flow: Flow):
        from ..madeleine import RecvMode, SendMode
        s = self.session
        sim = s.sim
        if flow.arrival > sim.now:
            yield sim.timeout(flow.arrival - sim.now)
        self._flow_started()
        payload = _payload(self.scenario.seed, flow.index, flow.nbytes)
        ep = self.vch.endpoint(s.rank(flow.src))
        msg = ep.begin_packing(s.rank(flow.dst))
        yield msg.pack(_FRAME.pack(flow.index, flow.nbytes),
                       SendMode.CHEAPER, RecvMode.EXPRESS)
        yield msg.pack(payload, SendMode.CHEAPER, RecvMode.CHEAPER)
        yield msg.end_packing()

    def _plain_receiver(self, dst: str, count: int):
        from ..madeleine import RecvMode, SendMode
        s = self.session
        ep = self.vch.endpoint(s.rank(dst))
        by_index = {f.index: f for f in self.flows}
        for _ in range(count):
            inc = yield ep.begin_unpacking()
            ev, head = inc.unpack(_FRAME.size, SendMode.CHEAPER,
                                  RecvMode.EXPRESS)
            yield ev
            flow_id, nbytes = _FRAME.unpack(head.tobytes())
            _ev, _buf = inc.unpack(int(nbytes), SendMode.CHEAPER,
                                   RecvMode.CHEAPER)
            yield inc.end_unpacking()
            self._flow_completed(by_index[flow_id])

    # -- reliable traffic ----------------------------------------------------
    def _reliable_sender(self, flows: list[Flow], rel) -> object:
        s = self.session
        sim = s.sim
        for flow in flows:
            if flow.arrival > sim.now:
                yield sim.timeout(flow.arrival - sim.now)
            self._flow_started()
            payload = _payload(self.scenario.seed, flow.index, flow.nbytes)
            yield from rel.send(s.rank(flow.dst), payload)
            self._flow_completed(flow)

    # -- entry points --------------------------------------------------------
    def start(self) -> None:
        """Spawn every traffic process; drive with ``session.run()``.

        Plain traffic gets one sender process per flow (arrivals are
        open-loop; concurrent sends to one destination queue on the
        connection locks, which is the congestion under test) and one
        receiver process per destination.  Reliable traffic is serialized
        per source — the go-back-N window is per endpoint pair — with
        queueing delay counted into FCT.
        """
        if self._started:
            raise RuntimeError("traffic already started")
        self._started = True
        s = self.session
        if self.spec.kind == "reliable":
            from ..madeleine import ReliableEndpoint, RetryPolicy
            policy = RetryPolicy(max_attempts=self.scenario.max_attempts)
            parties = sorted({f.src for f in self.flows}
                             | {f.dst for f in self.flows})
            rel = {}
            for name in parties:
                rank = s.rank(name)
                rel[rank] = ReliableEndpoint(self.vch.endpoint(rank), policy)
            by_src: dict[str, list[Flow]] = {}
            for f in self.flows:
                by_src.setdefault(f.src, []).append(f)
            for src in sorted(by_src):
                s.spawn(self._reliable_sender(by_src[src], rel[s.rank(src)]),
                        name=f"traffic-send:{src}")
        else:
            by_dst: dict[str, int] = {}
            for f in self.flows:
                by_dst[f.dst] = by_dst.get(f.dst, 0) + 1
            for dst in sorted(by_dst):
                s.spawn(self._plain_receiver(dst, by_dst[dst]),
                        name=f"traffic-recv:{dst}")
            for f in self.flows:
                s.spawn(self._plain_sender(f),
                        name=f"traffic-flow:{f.index}")

    def summary(self) -> dict:
        """Flow-level statistics after the run (times in µs).

        FCT statistics exist only for flows that actually completed: a run
        with zero completions reports them as NaN (there is no honest
        number — certainly not 0), and ``events_per_mb`` is NaN when no
        bytes were delivered.  Consumers that need hard numbers must check
        ``completed`` (the regress scaling cell refuses partial runs), and
        anything serializing a summary must route it through
        :func:`repro.bench.jsonio.json_safe` — ``json.dumps`` would other-
        wise emit bare ``NaN``/``Infinity``, which is not JSON.
        """
        nan = float("nan")
        fcts = np.array([r.fct for r in self.records])
        total_bytes = sum(r.flow.nbytes for r in self.records)
        duration = self.session.now
        events = self.session.sim.events_processed
        fnet = self.session.world.fnet
        mb = total_bytes / 1e6
        return {
            "flows": len(self.flows),
            "completed": len(self.records),
            "peak_active": self.peak_active,
            "p50_fct_us": float(np.percentile(fcts, 50)) if len(fcts) else nan,
            "p99_fct_us": float(np.percentile(fcts, 99)) if len(fcts) else nan,
            "mean_fct_us": float(fcts.mean()) if len(fcts) else nan,
            "max_fct_us": float(fcts.max()) if len(fcts) else nan,
            "duration_us": duration,
            "bytes": total_bytes,
            "goodput_mbs": (total_bytes / duration) if duration else 0.0,
            "events": events,
            "events_per_mb": (events / mb) if mb else nan,
            # work done by the incremental fluid-rate engine (see
            # docs/performance.md): flows re-solved vs flows live, summed
            # over rate-recomputation epochs.
            "fluid_epochs": fnet.recompute_epochs,
            "fluid_recompute_flows": fnet.recomputed_flows,
            "fluid_recompute_fraction": (
                fnet.recomputed_flows / fnet.live_flow_epochs
                if fnet.live_flow_epochs else 0.0),
        }


def _payload(seed: int, index: int, nbytes: int) -> bytes:
    rng = np.random.default_rng((seed, index))
    return rng.integers(0, 256, nbytes, dtype=np.uint8).tobytes()


def run_traffic(scenario: Scenario, *, telemetry: bool = True):
    """Build the scenario's stack, drive its traffic to completion, and
    return ``(session, engine)`` — the one-call entry the benches use."""
    from ..madeleine import Session
    session = Session.from_scenario(scenario, telemetry=telemetry)
    engine = TrafficEngine(session, scenario)
    engine.start()
    session.run()
    return session, engine
