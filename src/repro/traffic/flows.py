"""Deterministic flow generation from a :class:`TrafficSpec`.

Everything is a pure function of ``(spec, seed, endpoints)``: the same
inputs always yield the same flow list (sources, destinations, sizes,
Poisson arrival times), which is what makes large traffic scenarios
replayable and lets property tests pin the schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..scenario import TrafficSpec

__all__ = ["Flow", "generate_flows"]

#: domain-separation constant mixed into the flow rng seed so traffic draws
#: never correlate with payload or fault rngs derived from the same seed.
_FLOW_STREAM = 0x7AF19C


@dataclass(frozen=True)
class Flow:
    """One generated transfer: ``src`` → ``dst``, ``nbytes``, arriving at
    ``arrival`` µs (open-loop: arrivals do not wait for earlier flows)."""

    index: int
    src: str
    dst: str
    nbytes: int
    arrival: float


def generate_flows(spec: TrafficSpec, seed: int,
                   endpoints: Sequence[str]) -> list[Flow]:
    """Expand ``spec`` into concrete flows over ``endpoints``."""
    endpoints = list(endpoints)
    n = len(endpoints)
    if n < 2:
        raise ValueError(f"traffic needs >= 2 endpoints, got {n}")
    rng = np.random.default_rng((int(seed), _FLOW_STREAM))

    gaps = rng.exponential(spec.mean_interarrival, spec.flows)
    arrivals = np.cumsum(gaps)
    if spec.size_jitter > 0.0:
        lo = spec.size * (1.0 - spec.size_jitter)
        hi = spec.size * (1.0 + spec.size_jitter)
        sizes = np.maximum(rng.uniform(lo, hi, spec.flows), 1.0).astype(
            np.int64)
    else:
        sizes = np.full(spec.flows, spec.size, dtype=np.int64)

    def uniform_pair() -> tuple[str, str]:
        si = int(rng.integers(n))
        dj = int(rng.integers(n - 1))
        if dj >= si:
            dj += 1
        return endpoints[si], endpoints[dj]

    pairs: list[tuple[str, str]] = []
    if spec.pattern == "uniform":
        for _ in range(spec.flows):
            pairs.append(uniform_pair())
    elif spec.pattern == "permutation":
        perm = list(rng.permutation(n))
        for i in range(n):
            if perm[i] == i:        # no endpoint talks to itself
                j = (i + 1) % n
                perm[i], perm[j] = perm[j], perm[i]
        for k in range(spec.flows):
            src = k % n
            pairs.append((endpoints[src], endpoints[int(perm[src])]))
    elif spec.pattern == "hotspot":
        hot = int(rng.integers(n))
        for _ in range(spec.flows):
            if float(rng.random()) < spec.hotspot_fraction:
                si = int(rng.integers(n - 1))
                if si >= hot:
                    si += 1
                pairs.append((endpoints[si], endpoints[hot]))
            else:
                pairs.append(uniform_pair())
    elif spec.pattern == "incast":
        sink = int(rng.integers(n))
        for _ in range(spec.flows):
            si = int(rng.integers(n - 1))
            if si >= sink:
                si += 1
            pairs.append((endpoints[si], endpoints[sink]))
    else:  # pragma: no cover - TrafficSpec validates the pattern
        raise ValueError(f"unknown pattern {spec.pattern!r}")

    return [Flow(index=i, src=s, dst=d, nbytes=int(sizes[i]),
                 arrival=float(arrivals[i]))
            for i, (s, d) in enumerate(pairs)]
