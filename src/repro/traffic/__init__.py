"""Open-loop traffic generation over declarative scenarios.

:mod:`repro.traffic.flows` expands a :class:`~repro.scenario.TrafficSpec`
into deterministic flows (Poisson arrivals; uniform / permutation /
hotspot / incast patterns); :mod:`repro.traffic.engine` drives them over a
session and reports flow-completion-time statistics (p50/p99) plus
``traffic.*`` telemetry.
"""

from .engine import FlowRecord, TrafficEngine, run_traffic
from .flows import Flow, generate_flows

__all__ = ["Flow", "FlowRecord", "TrafficEngine", "generate_flows",
           "run_traffic"]
