"""Telemetry: the observability layer of the reproduction.

The paper's evaluation is built on ``rdtsc`` instrumentation of the gateway
pipeline; this package is the software equivalent for the simulated stack —
a :class:`MetricsRegistry` of counters/gauges/histograms plus a
:class:`SpanTracker` of structured intervals, both driven by the simulated
clock and both **off by default** (a disabled :class:`Telemetry` records
nothing and never creates simulation events, so benchmark numbers are
bit-identical with or without it).

Every :class:`~repro.hw.topology.World` owns one disabled ``Telemetry``;
``Session(world, telemetry=True)`` (or ``world.telemetry.enable()``) turns
it on.  The transport stack holds live instrument handles either way, which
is what makes late enabling work.

See ``docs/telemetry.md`` for the metric catalog.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim.trace import TraceRecorder
from .conservation import (ConservationLaw, LawViolation, FRAGMENT_LAW,
                           STRIPE_LAW, STANDARD_LAWS, check_laws)
from .registry import (Counter, Gauge, Histogram, MetricsRegistry,
                       NullRegistry, format_metrics)
from .spans import Span, SpanTracker

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "NullRegistry", "format_metrics", "Span", "SpanTracker",
           "Telemetry", "NULL_TELEMETRY",
           "ConservationLaw", "LawViolation", "FRAGMENT_LAW", "STRIPE_LAW",
           "STANDARD_LAWS", "check_laws"]


class Telemetry:
    """One facade over the registry and the span tracker."""

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 trace: Optional[TraceRecorder] = None,
                 enabled: bool = True) -> None:
        self.metrics = MetricsRegistry(clock=clock, enabled=enabled)
        self.spans = SpanTracker(clock=clock, trace=trace, enabled=enabled)

    @property
    def enabled(self) -> bool:
        return self.metrics.enabled

    def enable(self) -> "Telemetry":
        self.metrics.enable()
        self.spans.enable()
        return self

    def disable(self) -> "Telemetry":
        self.metrics.disable()
        self.spans.disable()
        return self

    def reset(self) -> None:
        self.metrics.reset()
        self.spans.reset()


class _NullTelemetry(Telemetry):
    """Shared always-off telemetry for components constructed without one."""

    def __init__(self) -> None:
        super().__init__(enabled=False)
        self.metrics = NullRegistry()

    def enable(self) -> "Telemetry":
        raise RuntimeError("the shared null telemetry cannot be enabled; "
                           "construct a Telemetry() of your own")


#: default for optional ``telemetry=`` parameters across the codebase.
NULL_TELEMETRY = _NullTelemetry()
