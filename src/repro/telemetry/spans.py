"""Structured spans, layered on the raw trace stream.

A *span* is a named interval of simulated time with attributes and optional
nesting — the structured sibling of the free-form
:class:`~repro.sim.trace.TraceRecorder` records the components already emit.
The tracker does two things with every span:

* keeps the finished :class:`Span` objects for programmatic queries and the
  Chrome ``about:tracing`` exporter
  (:func:`repro.analysis.export.spans_to_chrome`);
* mirrors ``<name>_begin`` / ``<name>_end`` records into the attached
  :class:`~repro.sim.trace.TraceRecorder`, so spans and legacy records stay
  interleaved in one stream.

Two usage shapes:

* explicit, for generator-based simulation processes (a ``with`` block
  cannot straddle a ``yield`` meaningfully)::

      sp = tracker.begin("gateway", "forward", gw=2)
      ...
      sp.finish(ok=True)

* context manager, for straight-line code::

      with tracker.span("analysis", "collate"):
          ...

Nesting: ``begin`` takes an explicit ``parent``; the context-manager form
maintains a current-span stack automatically.  Simulation processes
interleave arbitrarily, so implicit nesting across processes would lie —
explicit is the honest default there.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..sim.trace import TraceRecorder

__all__ = ["Span", "SpanTracker"]


@dataclass
class Span:
    """One named interval of simulated time."""

    id: int
    category: str
    name: str
    start: float
    parent: Optional[int] = None
    stop: Optional[float] = None
    attrs: dict[str, Any] = field(default_factory=dict)
    _tracker: Optional["SpanTracker"] = field(default=None, repr=False)

    @property
    def open(self) -> bool:
        return self.stop is None

    @property
    def duration(self) -> float:
        if self.stop is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.stop - self.start

    def finish(self, **attrs: Any) -> "Span":
        """Close the span at the current simulated time."""
        if self._tracker is not None:
            self._tracker.end(self, **attrs)
        return self

    @property
    def depth(self) -> int:
        """Nesting depth (0 = root), walking the parent chain."""
        if self._tracker is None or self.parent is None:
            return 0
        parent = self._tracker.get(self.parent)
        return 1 + parent.depth if parent is not None else 0


class _NullSpan(Span):
    """The span a disabled tracker hands out: finishing it does nothing."""

    def __init__(self) -> None:
        super().__init__(id=-1, category="", name="", start=0.0)

    def finish(self, **attrs: Any) -> "Span":
        return self


_NULL_SPAN = _NullSpan()


class SpanTracker:
    """Creates, closes, and stores spans against a simulated-time clock."""

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 trace: Optional[TraceRecorder] = None,
                 enabled: bool = True) -> None:
        self.clock = clock or (lambda: 0.0)
        self.trace = trace
        self.enabled = enabled
        self.completed: list[Span] = []
        self._by_id: dict[int, Span] = {}
        self._ids = itertools.count(1)
        self._stack: list[Span] = []

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self.completed.clear()
        self._by_id.clear()
        self._stack.clear()

    # -- creation / closing ------------------------------------------------------
    def begin(self, category: str, name: str,
              parent: Optional[Span] = None, **attrs: Any) -> Span:
        """Open a span now; returns a live handle (``finish()`` closes it)."""
        if not self.enabled:
            return _NULL_SPAN
        span = Span(id=next(self._ids), category=category, name=name,
                    start=self.clock(),
                    parent=parent.id if parent is not None else None,
                    attrs=dict(attrs), _tracker=self)
        self._by_id[span.id] = span
        if self.trace is not None:
            self.trace.emit(span.start, category, f"{name}_begin",
                            span=span.id, **attrs)
        return span

    def end(self, span: Span, **attrs: Any) -> None:
        if span is _NULL_SPAN or not self.enabled:
            return
        if span.stop is not None:
            raise ValueError(f"span {span.name!r} (#{span.id}) already ended")
        span.stop = self.clock()
        span.attrs.update(attrs)
        self.completed.append(span)
        if self.trace is not None:
            self.trace.emit(span.stop, span.category, f"{span.name}_end",
                            span=span.id, **attrs)

    @contextmanager
    def span(self, category: str, name: str, **attrs: Any):
        """Context-manager form with automatic nesting under the enclosing
        ``span()`` block."""
        parent = self._stack[-1] if self._stack else None
        sp = self.begin(category, name, parent=parent, **attrs)
        self._stack.append(sp)
        try:
            yield sp
        finally:
            self._stack.pop()
            self.end(sp)

    # -- queries ---------------------------------------------------------------
    def get(self, span_id: int) -> Optional[Span]:
        return self._by_id.get(span_id)

    def query(self, category: Optional[str] = None,
              name: Optional[str] = None) -> list[Span]:
        """Completed spans matching the given category/name."""
        return [sp for sp in self.completed
                if (category is None or sp.category == category)
                and (name is None or sp.name == name)]

    def children(self, span: Span) -> list[Span]:
        return [sp for sp in self.completed if sp.parent == span.id]

    def __len__(self) -> int:
        return len(self.completed)
