"""Conservation laws over the metric registry.

A conservation law is an exact accounting identity that must hold after the
simulator drains, whatever faults were injected along the way: every
fragment offered to a NIC is delivered, dropped, blackholed, failed, or
still parked unmatched in the fabric; every stripe sent is reassembled once
its message completes.  The fuzz executor (:mod:`repro.fuzz.executor`)
evaluates these after each scenario; ``docs/robustness.md`` documents each
law and the counters backing it.

Laws are written against :meth:`MetricsRegistry.total` so they aggregate
over all label sets (every NIC, every virtual channel).  Residual terms
that live outside the registry — e.g. the fabric's unmatched-send count —
are passed in by the caller as ``extra`` addends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence, Tuple

from .registry import MetricsRegistry

__all__ = ["ConservationLaw", "LawViolation", "FRAGMENT_LAW", "STRIPE_LAW",
           "STANDARD_LAWS", "check_laws"]


@dataclass(frozen=True)
class ConservationLaw:
    """``sum(lhs) == sum(rhs) + sum(extra terms named in rhs_extra)``."""

    name: str
    #: counter names summed on the left-hand side.
    lhs: Tuple[str, ...]
    #: counter names summed on the right-hand side.
    rhs: Tuple[str, ...]
    #: names of caller-supplied residuals added to the right-hand side.
    rhs_extra: Tuple[str, ...] = ()
    description: str = ""

    def evaluate(self, metrics: MetricsRegistry,
                 extra: Mapping[str, float] | None = None
                 ) -> "LawViolation | None":
        extra = extra or {}
        missing = [k for k in self.rhs_extra if k not in extra]
        if missing:
            raise KeyError(
                f"law {self.name!r} needs extra terms {missing}; "
                f"got {sorted(extra)}")
        lhs = sum(metrics.total(n) for n in self.lhs)
        rhs = (sum(metrics.total(n) for n in self.rhs)
               + sum(extra[k] for k in self.rhs_extra))
        if lhs == rhs:
            return None
        terms = {n: metrics.total(n) for n in (*self.lhs, *self.rhs)}
        terms.update({k: extra[k] for k in self.rhs_extra})
        return LawViolation(law=self, lhs=lhs, rhs=rhs, terms=terms)


@dataclass(frozen=True)
class LawViolation:
    """One broken identity, with every term's value for the bug report."""

    law: ConservationLaw
    lhs: float
    rhs: float
    terms: Mapping[str, float] = field(default_factory=dict)

    def __str__(self) -> str:
        parts = ", ".join(f"{k}={v:g}" for k, v in self.terms.items())
        return (f"{self.law.name}: {self.lhs:g} != {self.rhs:g} ({parts})")


#: Every fragment offered to a NIC is accounted for exactly once: it was
#: delivered (``wire.fragments``), dropped by a fault verdict, blackholed
#: by an abandoning gateway, failed with a capacity error, or is still
#: sitting unmatched in the fabric (``pending_sends`` residual).
FRAGMENT_LAW = ConservationLaw(
    name="fragment-conservation",
    lhs=("wire.fragments_offered",),
    rhs=("wire.fragments", "faults.fragments_dropped",
         "wire.fragments_blackholed", "wire.fragments_failed"),
    rhs_extra=("pending_sends",),
    description="offered = delivered + dropped + blackholed + failed "
                "+ unmatched-at-drain",
)

#: Every stripe sent is reassembled exactly once per completed message;
#: stripes of abandoned messages remain as the ``stripes_abandoned``
#: residual the caller computes from aborted reassembly groups.
STRIPE_LAW = ConservationLaw(
    name="stripe-conservation",
    lhs=("vchannel.stripes_sent",),
    rhs=("vchannel.stripes_reassembled",),
    rhs_extra=("stripes_abandoned",),
    description="stripes sent = stripes reassembled + stripes of "
                "abandoned messages",
)

STANDARD_LAWS: Tuple[ConservationLaw, ...] = (FRAGMENT_LAW, STRIPE_LAW)


def check_laws(metrics: MetricsRegistry,
               extra: Mapping[str, float] | None = None,
               laws: Sequence[ConservationLaw] = STANDARD_LAWS,
               ) -> list[LawViolation]:
    """Evaluate ``laws``; returns the violations (empty list = all hold)."""
    out = []
    for law in laws:
        v = law.evaluate(metrics, extra)
        if v is not None:
            out.append(v)
    return out
