"""Metrics registry: counters, gauges, and histograms.

The registry is the numeric half of the observability layer (spans are the
other half, :mod:`repro.telemetry.spans`).  Components create *instruments*
once — ``registry.counter("reliable.retransmits", rank=3)`` — and hit them
on their hot paths; an instrument is identified by its name plus its label
set, so two endpoints incrementing the same metric name produce two series.

Disabled registries are (almost) free: every instrument checks a single
``enabled`` flag before touching state, no simulation events are ever
created, and :meth:`MetricsRegistry.snapshot` returns an empty mapping.
Because instruments are live handles onto the registry, a registry can be
enabled *after* the instruments were created (the
:class:`~repro.madeleine.session.Session` does exactly that: the world's
NICs and pools are built before the session turns telemetry on).

Histograms support **simulated-time windows**: constructed with
``window=<µs>``, a histogram additionally keeps per-window statistics that
reset every time the registry clock crosses a window boundary — the rolling
view a long soak run wants next to the lifetime aggregate.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "NullRegistry", "format_metrics"]

#: default histogram bucket upper bounds (µs-flavoured, powers of 10/2).
DEFAULT_BOUNDS = (10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0)


def _label_key(labels: dict[str, Any]) -> tuple[tuple[str, Any], ...]:
    return tuple(sorted(labels.items()))


class Instrument:
    """Base of all instruments: a name, a label set, and the owning registry."""

    kind = "?"

    __slots__ = ("registry", "name", "labels")

    def __init__(self, registry: "MetricsRegistry", name: str,
                 labels: dict[str, Any]) -> None:
        self.registry = registry
        self.name = name
        self.labels = labels

    @property
    def enabled(self) -> bool:
        return self.registry.enabled

    def data(self) -> dict[str, Any]:
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name} {self.labels}>"


class Counter(Instrument):
    """Monotonically increasing count (events, bytes, retries)."""

    kind = "counter"

    __slots__ = ("value",)

    def __init__(self, registry, name, labels) -> None:
        super().__init__(registry, name, labels)
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if self.registry.enabled:
            if n < 0:
                raise ValueError("counters only go up")
            self.value += n

    def data(self) -> dict[str, Any]:
        return {"value": self.value}

    def reset(self) -> None:
        self.value = 0


class Gauge(Instrument):
    """Point-in-time level (queue depth, blocks in use) with a high-water
    mark — the ``hwm`` is what pool-sizing questions actually need."""

    kind = "gauge"

    __slots__ = ("value", "hwm")

    def __init__(self, registry, name, labels) -> None:
        super().__init__(registry, name, labels)
        self.value = 0
        self.hwm = 0

    def set(self, value) -> None:
        if self.registry.enabled:
            self.value = value
            if value > self.hwm:
                self.hwm = value

    def inc(self, n=1) -> None:
        self.set(self.value + n)

    def dec(self, n=1) -> None:
        if self.registry.enabled:
            self.value -= n

    def data(self) -> dict[str, Any]:
        return {"value": self.value, "hwm": self.hwm}

    def reset(self) -> None:
        self.value = 0
        self.hwm = 0


class Histogram(Instrument):
    """Distribution of observed values, with optional simulated-time windows.

    Lifetime aggregates (count/sum/min/max + cumulative buckets) always
    accumulate; with ``window`` set, a rolling ``(window_start, count, sum)``
    triple resets whenever the registry clock enters a new window.
    """

    kind = "histogram"

    __slots__ = ("bounds", "buckets", "count", "total", "min", "max",
                 "window", "window_start", "window_count", "window_total")

    def __init__(self, registry, name, labels,
                 bounds: tuple[float, ...] = DEFAULT_BOUNDS,
                 window: Optional[float] = None) -> None:
        super().__init__(registry, name, labels)
        if window is not None and window <= 0:
            raise ValueError("window must be > 0")
        self.bounds = tuple(sorted(bounds))
        self.window = window
        self.reset()

    def observe(self, value: float) -> None:
        if not self.registry.enabled:
            return
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[i] += 1
                break
        else:
            self.buckets[-1] += 1
        if self.window is not None:
            now = self.registry.clock()
            start = (now // self.window) * self.window
            if start != self.window_start:
                self.window_start = start
                self.window_count = 0
                self.window_total = 0.0
            self.window_count += 1
            self.window_total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def data(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "count": self.count, "sum": self.total, "mean": self.mean,
            "min": self.min, "max": self.max,
            "buckets": {f"le_{b:g}": n
                        for b, n in zip((*self.bounds[:-1], float("inf")),
                                        self.buckets)},
        }
        if self.window is not None:
            out["window"] = {"start": self.window_start,
                             "count": self.window_count,
                             "sum": self.window_total}
        return out

    def reset(self) -> None:
        self.buckets = [0] * len(self.bounds)
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self.window_start = None
        self.window_count = 0
        self.window_total = 0.0


class MetricsRegistry:
    """Get-or-create instrument store keyed by ``(name, labels)``.

    ``clock`` supplies the registry's notion of *now* (simulated µs for a
    world-attached registry); histogram windows and snapshots use it.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 enabled: bool = True) -> None:
        self.clock = clock or (lambda: 0.0)
        self.enabled = enabled
        self._instruments: dict[tuple[str, tuple], Instrument] = {}

    # -- lifecycle ---------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Zero every instrument (the instrument handles stay valid)."""
        for inst in self._instruments.values():
            inst.reset()

    # -- instrument factories ------------------------------------------------------
    def _get(self, cls, name: str, labels: dict[str, Any], **kwargs):
        key = (name, _label_key(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = cls(self, name, labels, **kwargs)
            self._instruments[key] = inst
        elif not isinstance(inst, cls):
            raise ValueError(
                f"metric {name!r} already registered as {inst.kind}")
        return inst

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, bounds: tuple[float, ...] = DEFAULT_BOUNDS,
                  window: Optional[float] = None,
                  **labels: Any) -> Histogram:
        return self._get(Histogram, name, labels, bounds=bounds,
                         window=window)

    # -- queries ---------------------------------------------------------------
    def value(self, name: str, **labels: Any) -> Any:
        """Current value of one series (0 if it does not exist)."""
        inst = self._instruments.get((name, _label_key(labels)))
        if inst is None:
            return 0
        return inst.value if hasattr(inst, "value") else inst.count

    def total(self, name: str):
        """Sum of a counter/gauge metric across all of its label sets."""
        return sum(inst.value for (n, _k), inst in self._instruments.items()
                   if n == name and hasattr(inst, "value"))

    def series(self, name: str) -> list[Instrument]:
        return [inst for (n, _k), inst in self._instruments.items()
                if n == name]

    def snapshot(self) -> dict[str, Any]:
        """All metrics as one JSON-serializable mapping.

        ``{name: {"kind": ..., "series": [{"labels": {...}, ...data}]}}``,
        deterministically ordered.  Empty while the registry is disabled —
        a no-op registry emits nothing.
        """
        if not self.enabled:
            return {}
        out: dict[str, Any] = {}
        for (name, _key), inst in sorted(self._instruments.items(),
                                         key=lambda kv: kv[0]):
            entry = out.setdefault(name, {"kind": inst.kind, "series": []})
            entry["series"].append({"labels": dict(inst.labels),
                                    **inst.data()})
        return out

    def __len__(self) -> int:
        return len(self._instruments)


class NullRegistry(MetricsRegistry):
    """A registry that can never record: for standalone components that want
    an always-valid ``metrics`` attribute with zero bookkeeping."""

    def __init__(self) -> None:
        super().__init__(enabled=False)

    def enable(self) -> None:
        raise RuntimeError("a NullRegistry cannot be enabled")


def format_metrics(snapshot: dict[str, Any]) -> str:
    """Human-readable table of a :meth:`MetricsRegistry.snapshot`."""
    if not snapshot:
        return "(no metrics recorded)"
    lines = [f"{'metric':40s}{'labels':34s}{'value':>14s}"]
    lines.append("-" * len(lines[0]))
    for name, entry in snapshot.items():
        for series in entry["series"]:
            labels = ",".join(f"{k}={v}" for k, v in
                              sorted(series["labels"].items()))
            if entry["kind"] == "histogram":
                value = (f"n={series['count']} mean={series['mean']:.1f} "
                         f"max={series['max'] if series['max'] is not None else 0:.1f}")
                lines.append(f"{name:40s}{labels:34s}{value:>14s}")
            elif entry["kind"] == "gauge":
                value = f"{series['value']} (hwm {series['hwm']})"
                lines.append(f"{name:40s}{labels:34s}{value:>14s}")
            else:
                lines.append(f"{name:40s}{labels:34s}{series['value']:>14}")
    return "\n".join(lines)
