"""Gateway forwarding engine (§2.2.2, Figure 4).

For every (gateway rank × incoming special channel) a :class:`ForwardingWorker`
runs two cooperating threads per message:

* the **receive thread** posts a staging buffer, receives the next item
  (descriptor or MTU-sized fragment), and hands the buffer over;
* the **send thread** retransmits each item toward the next hop and recycles
  the buffer.

Two pipeline disciplines are implemented (``GatewayParams.lockstep``):

* **lockstep** (default — the paper's design): the threads share two buffers
  and exchange them at a synchronization point each step, paying the
  buffer-switch software overhead (≈ 40 µs measured in §3.3.1) *on the
  critical path*: steady-state period = max(recv, send) + overhead, exactly
  the Figure 5 model;
* **decoupled** (ablation): a bounded queue of ``pipeline_depth`` buffers
  lets the receive thread run ahead, hiding the switch overhead behind the
  longer step.

Staging-buffer choice implements the zero-copy rules of §2.3:

* incoming network uses static receive buffers → land there (its rx pool);
* else if the outgoing network needs static send buffers → *borrow* a block
  from the outgoing TM's tx pool and receive straight into it;
* else use the worker's own recycled dynamic buffers.

Only when **both** networks require static buffers is a (serial, charged)
copy performed between the landing block and an outgoing block — the one
unavoidable copy the paper concedes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional

from ..hw.params import GatewayParams
from ..memory import Buffer, StaticBufferPool
from ..sim import Barrier, Queue, Semaphore
from .wire import DESC_BYTES, MODE_GTM, Announce, decode_descriptor

if TYPE_CHECKING:  # pragma: no cover
    from .channel import RealChannel
    from .tm import TransmissionModule
    from .vchannel import VirtualChannel

__all__ = ["ForwardingWorker", "GatewayError"]


class GatewayError(RuntimeError):
    """Protocol violation observed by a forwarding worker."""


@dataclass
class _Item:
    meta: dict
    staging: Buffer
    pool: Optional[StaticBufferPool]
    nbytes: int
    seq: int
    last: bool


class ForwardingWorker:
    """Forwards GTM messages arriving on one special channel at one gateway."""

    _ids = itertools.count()

    def __init__(self, vchannel: "VirtualChannel", gw_rank: int,
                 in_channel: "RealChannel",
                 params: Optional[GatewayParams] = None) -> None:
        self.id = next(ForwardingWorker._ids)
        self.vchannel = vchannel
        self.gw_rank = gw_rank
        self.in_channel = in_channel
        self.params = params or GatewayParams()
        self.sim = in_channel.sim
        self.node = in_channel.world.nodes[gw_rank]
        self.trace = in_channel.fabric.trace
        self.accounting = in_channel.fabric.accounting
        self._free_dynamic: list[Buffer] = []
        self._seq = itertools.count()
        self._ingress_next = 0.0   # earliest instant the regulator allows
        self.messages_forwarded = 0
        self.process = self.sim.process(
            self._main_loop(), name=f"gwR:{gw_rank}:{in_channel.id}")

    # -- staging buffers ---------------------------------------------------------
    def _acquire_staging(self, in_tm: "TransmissionModule",
                         out_tm: "TransmissionModule", mtu: int):
        """Yields; returns (buffer, pool-or-None) per the zero-copy rules."""
        if in_tm.protocol.rx_static:
            block = yield in_tm.rx_pool.acquire()
            return block, in_tm.rx_pool
        if out_tm.protocol.tx_static:
            block = yield out_tm.tx_pool.acquire()
            return block, out_tm.tx_pool
        if self._free_dynamic:
            return self._free_dynamic.pop(), None
        size = max(mtu, DESC_BYTES)
        return Buffer.alloc(size, label=f"gw{self.gw_rank}.staging"), None

    def _release_staging(self, buffer: Buffer,
                         pool: Optional[StaticBufferPool]) -> None:
        if pool is not None:
            pool.release(buffer)
        else:
            self._free_dynamic.append(buffer)

    # -- per-message dispatch ------------------------------------------------------
    def _main_loop(self):
        ep = self.in_channel.endpoint(self.gw_rank)
        sim = self.sim
        while True:
            announce, hop_src = yield ep.incoming.get()
            if announce.mode != MODE_GTM:
                raise GatewayError(
                    f"non-GTM announce on special channel {self.in_channel.id!r}")
            if announce.hops_left < 1:
                raise GatewayError(
                    f"announce for {announce.final_dst} reached gateway "
                    f"{self.gw_rank} with no hops left")
            hop = self.vchannel.routes.next_hop(self.gw_rank, announce.final_dst)
            final = hop.dst == announce.final_dst
            # Back to the regular channel once past the last gateway (§2.2.2).
            out_channel = (hop.channel if final
                           else self.vchannel.special_twin(hop.channel))
            out_tm = out_channel.tm(self.gw_rank)
            in_tm = self.in_channel.tm(self.gw_rank)
            # The forwarded message owns the outgoing connection for its
            # whole duration — another worker (or the gateway's own
            # application traffic) must not interleave fragments on it.
            out_lock = out_channel.endpoint(self.gw_rank).connection_lock(hop.dst)
            yield out_lock.acquire()
            fwd = replace(announce, hops_left=announce.hops_left - 1)
            yield out_tm.send_announce(hop.dst, fwd)
            self.trace.emit(sim.now, "gateway", "message_start",
                            gw=self.gw_rank, msg=announce.msg_id,
                            origin=announce.origin, dst=announce.final_dst,
                            route=f"{in_tm.protocol.name}->{out_tm.protocol.name}")
            # Lockstep is inherently a two-buffer scheme; other depths run
            # through the decoupled queue (depth 1 = store-and-forward per
            # fragment).
            if self.params.lockstep and self.params.pipeline_depth == 2:
                yield from self._pipeline_lockstep(
                    in_tm, out_tm, hop.dst, hop_src, announce)
            else:
                yield from self._pipeline_decoupled(
                    in_tm, out_tm, hop.dst, hop_src, announce)
            out_lock.release()
            self.messages_forwarded += 1
            self.trace.emit(sim.now, "gateway", "message_end",
                            gw=self.gw_rank, msg=announce.msg_id)

    # -- one received item -----------------------------------------------------------
    def _receive_item(self, in_tm: "TransmissionModule",
                      out_tm: "TransmissionModule", hop_src: int,
                      announce: Announce):
        """Yields; returns the received :class:`_Item`."""
        staging, pool = yield from self._acquire_staging(
            in_tm, out_tm, announce.mtu)
        # §4 future work: regulate the incoming flow — delay the next posted
        # receive so the accepted ingress rate stays under the limit.
        limit = self.params.ingress_limit
        if limit is not None and self._ingress_next > self.sim.now:
            yield self.sim.timeout(self._ingress_next - self.sim.now,
                                   name=f"gw{self.gw_rank}.regulate")
        seq = next(self._seq)
        t0 = self.sim.now
        meta, n = yield in_tm.post_item(hop_src, staging,
                                        capacity=len(staging))
        if limit is not None:
            self._ingress_next = self.sim.now + max(0.0, n / limit
                                                    - (self.sim.now - t0))
        self.trace.emit(self.sim.now, "gateway", "recv",
                        gw=self.gw_rank, msg=announce.msg_id, seq=seq,
                        nbytes=n, start=t0, kind=meta.get("type"))
        last = (meta.get("type") == "desc" and
                decode_descriptor(staging.view(0, DESC_BYTES).tobytes())
                .is_terminator)
        return _Item(meta=meta, staging=staging, pool=pool, nbytes=n,
                     seq=seq, last=last)

    # -- one retransmitted item ---------------------------------------------------------
    def _transmit_item(self, item: _Item, in_tm: "TransmissionModule",
                       out_tm: "TransmissionModule", next_rank: int,
                       announce: Announce):
        sim = self.sim
        both_static = in_tm.protocol.rx_static and out_tm.protocol.tx_static
        t0 = sim.now
        if both_static and item.nbytes > 0:
            # The unavoidable copy of §2.3: landing block -> send block,
            # serial and charged at host memcpy speed.
            out_block = yield out_tm.tx_pool.acquire()
            yield from self.node.memcpy(item.nbytes)
            out_block.view(0, item.nbytes).copy_from(
                item.staging.view(0, item.nbytes), self.accounting, sim.now,
                "gateway.static_copy")
            self._release_staging(item.staging, item.pool)
            yield out_tm.send_item(next_rank, out_block.view(0, item.nbytes),
                                   meta=dict(item.meta))
            out_tm.tx_pool.release(out_block)
        else:
            yield out_tm.send_item(next_rank,
                                   item.staging.view(0, item.nbytes),
                                   meta=dict(item.meta), nbytes=item.nbytes)
            self._release_staging(item.staging, item.pool)
        self.trace.emit(sim.now, "gateway", "send",
                        gw=self.gw_rank, msg=announce.msg_id, seq=item.seq,
                        nbytes=item.nbytes, start=t0, kind=item.meta.get("type"))

    # -- the paper's lockstep double-buffer pipeline (Figures 4/5) ------------------------
    def _pipeline_lockstep(self, in_tm, out_tm, next_rank, hop_src, announce):
        sim = self.sim
        barrier = Barrier(sim, 2, name=f"gw{self.gw_rank}.swap")
        handoff = Queue(sim, capacity=1, name=f"gw{self.gw_rank}.handoff")
        sender = sim.process(
            self._lockstep_sender(handoff, barrier, in_tm, out_tm,
                                  next_rank, announce),
            name=f"gwS:{self.gw_rank}:{self.in_channel.id}")
        while True:
            item = yield from self._receive_item(in_tm, out_tm, hop_src,
                                                 announce)
            # Both threads meet, then exchange their buffers: the switch
            # overhead sits on the critical path (§3.3.1).
            yield barrier.wait()
            yield sim.timeout(self.params.switch_overhead,
                              name=f"gw{self.gw_rank}.swap")
            self.trace.emit(sim.now, "gateway", "swap",
                            gw=self.gw_rank, msg=announce.msg_id, seq=item.seq)
            yield handoff.put(item)
            if item.last:
                break
        yield sender   # drain: the terminator must leave before the next message

    def _lockstep_sender(self, handoff, barrier, in_tm, out_tm, next_rank,
                         announce):
        # Round 0: nothing to send yet, just meet the receive thread.
        yield barrier.wait()
        while True:
            item = yield handoff.get()
            yield from self._transmit_item(item, in_tm, out_tm, next_rank,
                                           announce)
            if item.last:
                return
            yield barrier.wait()

    # -- the decoupled bounded-queue pipeline (ablation) -----------------------------------
    def _pipeline_decoupled(self, in_tm, out_tm, next_rank, hop_src, announce):
        sim = self.sim
        depth = self.params.pipeline_depth
        gate = Semaphore(sim, depth, name=f"gw{self.gw_rank}.gate")
        handoff = Queue(sim, capacity=max(1, depth - 1),
                        name=f"gw{self.gw_rank}.handoff")
        sender = sim.process(
            self._decoupled_sender(handoff, gate, in_tm, out_tm, next_rank,
                                   announce),
            name=f"gwS:{self.gw_rank}:{self.in_channel.id}")
        while True:
            yield gate.acquire()
            item = yield from self._receive_item(in_tm, out_tm, hop_src,
                                                 announce)
            yield sim.timeout(self.params.switch_overhead,
                              name=f"gw{self.gw_rank}.swap")
            self.trace.emit(sim.now, "gateway", "swap",
                            gw=self.gw_rank, msg=announce.msg_id, seq=item.seq)
            yield handoff.put(item)
            if item.last:
                break
        yield sender

    def _decoupled_sender(self, handoff, gate, in_tm, out_tm, next_rank,
                          announce):
        while True:
            item = yield handoff.get()
            yield from self._transmit_item(item, in_tm, out_tm, next_rank,
                                           announce)
            gate.release()
            if item.last:
                return
