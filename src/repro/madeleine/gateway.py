"""Gateway forwarding engine (§2.2.2, Figure 4).

For every (gateway rank × incoming special channel) a :class:`ForwardingWorker`
runs two cooperating threads per message:

* the **receive thread** posts a staging buffer, receives the next item
  (descriptor or MTU-sized fragment), and hands the buffer over;
* the **send thread** retransmits each item toward the next hop and recycles
  the buffer.

Two pipeline disciplines are implemented
(:class:`~repro.hw.params.PipelineConfig`, legacy ``GatewayParams.lockstep``):

* **lockstep** (default — the paper's design): the threads share two buffers
  and exchange them at a synchronization point each step, paying the
  buffer-switch software overhead (≈ 40 µs measured in §3.3.1) *on the
  critical path*: steady-state period = max(recv, send) + overhead, exactly
  the Figure 5 model;
* **credit pipeline** (the N-deep generalization): a staging-buffer ring of
  ``depth`` blocks per direction with credit-based flow control — the
  receive thread advances only while it holds one of ``credits`` credits,
  the send thread returns the credit when the retransmit completes.  The
  switch overhead moves off the critical path whenever the send step is the
  longer one; one credit degenerates to store-and-forward per fragment.

Staging-buffer choice implements the zero-copy rules of §2.3:

* incoming network uses static receive buffers → land there (its rx pool);
* else if the outgoing network needs static send buffers → *borrow* a block
  from the outgoing TM's tx pool and receive straight into it;
* else use the worker's own recycled dynamic buffers.

Only when **both** networks require static buffers is a (serial, charged)
copy performed between the landing block and an outgoing block — the one
unavoidable copy the paper concedes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional

from ..hw.params import GatewayParams
from ..memory import Buffer, StaticBufferPool
from ..memory.pool import PoolExhausted
from ..routing import NoRouteError
from ..sim import Barrier, GatewayCrashed, Queue, Semaphore
from .wire import DESC_BYTES, MODE_GTM, Announce, decode_descriptor

if TYPE_CHECKING:  # pragma: no cover
    from .channel import RealChannel
    from .tm import TransmissionModule
    from .vchannel import VirtualChannel

__all__ = ["ForwardingWorker", "GatewayError", "TEST_HOOKS"]


@dataclass
class _TestHooks:
    """Deliberate-bug switches for the fuzz executor's self-test.

    ``leak_credits`` disables the credit return in the N-deep pipeline so
    a known-bad implementation exists for the credit-leak invariant to
    catch (tests/fuzz/test_executor.py).  Never set outside tests.
    """

    leak_credits: bool = False


TEST_HOOKS = _TestHooks()


class GatewayError(RuntimeError):
    """Protocol violation observed by a forwarding worker."""


class _Stalled(Exception):
    """Internal: a forwarding step exceeded ``GatewayParams.stall_timeout``."""


@dataclass
class _Item:
    meta: dict
    staging: Buffer
    pool: Optional[StaticBufferPool]
    nbytes: int
    seq: int
    last: bool


class ForwardingWorker:
    """Forwards GTM messages arriving on one special channel at one gateway."""

    _ids = itertools.count()

    def __init__(self, vchannel: "VirtualChannel", gw_rank: int,
                 in_channel: "RealChannel",
                 params: Optional[GatewayParams] = None) -> None:
        self.id = next(ForwardingWorker._ids)
        self.vchannel = vchannel
        self.gw_rank = gw_rank
        self.in_channel = in_channel
        self.params = params or GatewayParams()
        self.pipeline = self.params.resolved_pipeline
        self.sim = in_channel.sim
        self.node = in_channel.world.nodes[gw_rank]
        self.trace = in_channel.fabric.trace
        self.accounting = in_channel.fabric.accounting
        telemetry = in_channel.fabric.telemetry
        self.spans = telemetry.spans
        m = telemetry.metrics
        self._m_forwarded = m.counter("gateway.messages_forwarded",
                                      gw=gw_rank)
        self._m_abandoned = m.counter("gateway.messages_abandoned",
                                      gw=gw_rank)
        self._m_items = m.counter("gateway.items_forwarded", gw=gw_rank)
        #: staged items currently inside this direction's pipeline (one
        #: series per rank × incoming channel); its ``hwm`` is the pipeline
        #: occupancy the paper's double-buffer argument is about.
        self._g_occupancy = m.gauge("gateway.occupancy", gw=gw_rank,
                                    channel=in_channel.id)
        #: plain mirror of the occupancy gauge, read by the adaptive
        #: transport policy as its gateway-load signal (no telemetry query).
        self.staged_items = 0
        self._h_swap = m.histogram("gateway.swap_us", gw=gw_rank)
        #: receive-thread waits for a returned credit (the send side is the
        #: pipeline bottleneck at that instant).
        self._m_credit_stalls = m.counter("gateway.credit_stalls",
                                          gw=gw_rank, channel=in_channel.id)
        #: staging-ring blocks in use at each dynamic-staging acquire.
        self._h_ring = m.histogram("gateway.ring_depth",
                                   bounds=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0),
                                   gw=gw_rank, channel=in_channel.id)
        #: per-direction staging-buffer ring for dynamic×dynamic routes,
        #: lazily sized to the first message's MTU (recreated if a later
        #: route negotiates a larger one).
        self._ring: Optional[StaticBufferPool] = None
        self._seq = itertools.count()
        self._ingress_next = 0.0   # earliest instant the regulator allows
        self.messages_forwarded = 0
        self.messages_abandoned = 0
        #: credits held by the receive thread right now (credit pipeline
        #: only).  Returns to 0 after every cleanly forwarded message —
        #: the fuzz executor's credit-leak invariant (docs/robustness.md).
        self.credits_outstanding = 0
        self._g_credits = m.gauge("gateway.credits_outstanding",
                                  gw=gw_rank, channel=in_channel.id)
        self._retired = False
        self._abort_ev = self.sim.event(name=f"gw{gw_rank}.abort")
        self.process = self.sim.process(
            self._main_loop(), name=f"gwR:{gw_rank}:{in_channel.id}")

    @property
    def retired(self) -> bool:
        return self._retired

    def retire(self) -> None:
        """Permanently stop this worker (its gateway node crashed).

        A fresh worker is spawned on restart; the old one exits at its next
        scheduling point and never touches the channel again.
        """
        if self._retired:
            return
        self._retired = True
        if self._ring is not None:
            # A receive thread blocked on the private staging ring would
            # otherwise never observe the crash (the fault injector only
            # fails the protocol pools).
            self._ring.fail_waiters(
                GatewayCrashed(f"gateway {self.gw_rank} retired"))
        if not self._abort_ev.triggered:
            self._abort_ev.succeed()

    def _yield_bounded(self, ev):
        """Wait for ``ev``, bounded by the stall timeout.

        Raises :class:`_Stalled` when the bound expires first; with no
        timeout configured this is a plain wait.  A failure of ``ev`` (node
        crash) propagates unchanged.
        """
        timeout = self.params.stall_timeout
        if timeout is None:
            value = yield ev
            return value
        idx, value = yield self.sim.any_of(
            [ev, self.sim.timeout(timeout, name=f"gw{self.gw_rank}.stall")])
        if idx == 1:
            raise _Stalled()
        return value

    # -- staging buffers ---------------------------------------------------------
    def _acquire_staging(self, in_tm: "TransmissionModule",
                         out_tm: "TransmissionModule", mtu: int):
        """Yields; returns (buffer, pool-or-None) per the zero-copy rules."""
        if in_tm.protocol.rx_static:
            pool = in_tm.rx_pool
        elif out_tm.protocol.tx_static:
            pool = out_tm.tx_pool
        else:
            ring = self._staging_ring(mtu)
            try:
                # Fast path: a free ring block costs no simulator event,
                # exactly like the recycled free list it replaces.
                block = ring.try_acquire()
            except PoolExhausted:
                block = yield from self._bounded_acquire(ring)
            self._h_ring.observe(float(ring.count - ring.available))
            return block, ring
        block = yield from self._bounded_acquire(pool)
        return block, pool

    def _staging_ring(self, mtu: int) -> StaticBufferPool:
        """The per-direction staging-buffer ring (``depth`` blocks)."""
        size = max(mtu, DESC_BYTES)
        ring = self._ring
        if ring is None or ring.block_size < size:
            # Outstanding blocks of a smaller predecessor keep their owner
            # reference through ``_Item.pool``, so their releases stay safe.
            self._ring = ring = StaticBufferPool(
                self.sim, self.pipeline.depth, size,
                name=f"gw{self.gw_rank}.{self.in_channel.id}.ring",
                telemetry=self.in_channel.fabric.telemetry)
        return ring

    def _bounded_acquire(self, pool: StaticBufferPool):
        """Pool acquire under the stall bound; never strands a block.

        A stalled acquire is withdrawn; if it was granted in the very
        instant the bound expired, the block is handed straight back.
        """
        acq = pool.acquire()
        try:
            block = yield from self._yield_bounded(acq)
        except _Stalled:
            if not pool.cancel_acquire(acq):
                acq.add_callback(
                    lambda ev, p=pool: p.release(ev.value) if ev.ok else None)
            raise
        return block

    def _release_staging(self, buffer: Buffer,
                         pool: Optional[StaticBufferPool]) -> None:
        # Every staged item leaves the pipeline through here (or through the
        # static-copy hand-over in _transmit_item), so the occupancy gauge
        # stays balanced on all abandon paths too.
        self._g_occupancy.dec()
        self.staged_items -= 1
        if pool is not None:
            pool.release(buffer)

    # -- per-message dispatch ------------------------------------------------------
    def _main_loop(self):
        ep = self.in_channel.endpoint(self.gw_rank)
        sim = self.sim
        while True:
            get_ev = ep.incoming.get()
            idx, value = yield sim.any_of([get_ev, self._abort_ev])
            if idx == 1 or self._retired:
                # Retired mid-race: withdraw the pending get so it cannot
                # steal an announce from the replacement worker.
                if not get_ev.triggered:
                    ep.incoming.cancel_get(get_ev)
                return
            announce, hop_src = value
            try:
                if announce.mode != MODE_GTM:
                    raise GatewayError(
                        f"non-GTM announce on special channel "
                        f"{self.in_channel.id!r}")
                if announce.hops_left < 1:
                    raise GatewayError(
                        f"announce for {announce.final_dst} reached gateway "
                        f"{self.gw_rank} with no hops left")
                hop = self.vchannel.routes.next_hop(self.gw_rank,
                                                    announce.final_dst)
            except (GatewayError, NoRouteError) as exc:
                if self.in_channel.fabric.injector is not None:
                    # Under an armed fault plan a bad announce / vanished
                    # route is survivable: refuse the message, let the
                    # origin's retry find another rail.
                    self.trace.emit(sim.now, "gateway", "forward_refused",
                                    gw=self.gw_rank, msg=announce.msg_id,
                                    reason=str(exc))
                    self.messages_abandoned += 1
                    self._m_abandoned.inc()
                    continue
                raise
            final = hop.dst == announce.final_dst
            # Back to the regular channel once past the last gateway (§2.2.2).
            out_channel = (hop.channel if final
                           else self.vchannel.special_twin(hop.channel))
            out_tm = out_channel.tm(self.gw_rank)
            in_tm = self.in_channel.tm(self.gw_rank)
            # The forwarded message owns the outgoing connection for its
            # whole duration — another worker (or the gateway's own
            # application traffic) must not interleave fragments on it.
            out_lock = out_channel.endpoint(self.gw_rank).connection_lock(hop.dst)
            yield out_lock.acquire()
            if self._retired:
                out_lock.release()
                return
            ok = False
            fwd_span = None
            try:
                fwd = replace(announce, hops_left=announce.hops_left - 1)
                try:
                    yield from self._yield_bounded(
                        out_tm.send_announce(hop.dst, fwd))
                except _Stalled:
                    self.trace.emit(sim.now, "gateway", "message_abandoned",
                                    gw=self.gw_rank, msg=announce.msg_id,
                                    where="announce")
                    self.messages_abandoned += 1
                    self._m_abandoned.inc()
                    continue
                self.trace.emit(sim.now, "gateway", "message_start",
                                gw=self.gw_rank, msg=announce.msg_id,
                                origin=announce.origin, dst=announce.final_dst,
                                route=f"{in_tm.protocol.name}->{out_tm.protocol.name}")
                fwd_span = self.spans.begin(
                    "gateway", "forward", gw=self.gw_rank,
                    msg=announce.msg_id, dst=announce.final_dst,
                    route=f"{in_tm.protocol.name}->{out_tm.protocol.name}")
                # Lockstep is inherently a two-buffer scheme; other depths
                # run through the credit pipeline (one credit = store-and-
                # forward per fragment).
                if self.pipeline.is_lockstep:
                    ok = yield from self._pipeline_lockstep(
                        in_tm, out_tm, hop.dst, hop_src, announce)
                else:
                    ok = yield from self._pipeline_credit(
                        in_tm, out_tm, hop.dst, hop_src, announce)
            except GatewayCrashed:
                self._retired = True
                if fwd_span is not None:
                    self.spans.end(fwd_span, ok=False, crashed=True)
                return
            finally:
                out_lock.release()
            if fwd_span is not None:
                self.spans.end(fwd_span, ok=ok)
            if ok:
                self.messages_forwarded += 1
                self._m_forwarded.inc()
                self.trace.emit(sim.now, "gateway", "message_end",
                                gw=self.gw_rank, msg=announce.msg_id)
            else:
                self.messages_abandoned += 1
                self._m_abandoned.inc()
                self.trace.emit(sim.now, "gateway", "message_abandoned",
                                gw=self.gw_rank, msg=announce.msg_id,
                                where="pipeline")

    # -- one received item -----------------------------------------------------------
    def _receive_item(self, in_tm: "TransmissionModule",
                      out_tm: "TransmissionModule", hop_src: int,
                      announce: Announce):
        """Yields; returns the received :class:`_Item`.

        On a stall the staging buffer is reclaimed, not leaked: an
        unmatched posted receive is withdrawn from the fabric and the
        buffer recycled at once; a matched one is recycled only when its
        (late or blackholed) transfer completes, so reused memory can
        never be written by a straggler.
        """
        staging, pool = yield from self._acquire_staging(
            in_tm, out_tm, announce.mtu)
        self._g_occupancy.inc()
        self.staged_items += 1
        # §4 future work: regulate the incoming flow — delay the next posted
        # receive so the accepted ingress rate stays under the limit.
        limit = self.params.ingress_limit
        if limit is not None and self._ingress_next > self.sim.now:
            yield self.sim.timeout(self._ingress_next - self.sim.now,
                                   name=f"gw{self.gw_rank}.regulate")
        seq = next(self._seq)
        t0 = self.sim.now
        post_ev = in_tm.post_item(hop_src, staging, capacity=len(staging),
                                  msg_id=announce.msg_id)
        try:
            meta, n = yield from self._yield_bounded(post_ev)
        except _Stalled:
            fabric = in_tm.channel.fabric
            tag = in_tm.body_tag(hop_src, announce.msg_id)
            if fabric.cancel_recv(in_tm.nic, tag, post_ev):
                self._release_staging(staging, pool)
            else:
                post_ev.add_callback(
                    lambda ev, b=staging, p=pool:
                    self._release_staging(b, p) if ev.ok else None)
            raise
        if limit is not None:
            self._ingress_next = self.sim.now + max(0.0, n / limit
                                                    - (self.sim.now - t0))
        self.trace.emit(self.sim.now, "gateway", "recv",
                        gw=self.gw_rank, msg=announce.msg_id, seq=seq,
                        nbytes=n, start=t0, kind=meta.get("type"))
        last = False
        if meta.get("type") == "eagr":
            # An eager message's whole body is this single record; there is
            # no terminating descriptor to wait for.
            last = True
        elif meta.get("type") == "desc":
            try:
                last = decode_descriptor(
                    staging.view(0, DESC_BYTES).tobytes()).is_terminator
            except ValueError as exc:
                if self.in_channel.fabric.injector is None:
                    raise GatewayError(
                        f"malformed descriptor at gateway {self.gw_rank} "
                        f"(msg {announce.msg_id}): {exc}") from exc
                # Corrupted in transit: forward it anyway (end-to-end
                # integrity is the reliable layer's job) and keep treating
                # the stream as open; a lost terminator surfaces as a stall.
        return _Item(meta=meta, staging=staging, pool=pool, nbytes=n,
                     seq=seq, last=last)

    # -- one retransmitted item ---------------------------------------------------------
    def _transmit_item(self, item: _Item, in_tm: "TransmissionModule",
                       out_tm: "TransmissionModule", next_rank: int,
                       announce: Announce):
        """Yields; raises :class:`_Stalled` if the next hop stops taking
        fragments.  Buffers involved in a stalled send are recycled once
        the send completes — the abandon path blackholes it, so completion
        (and with it the reclaim) is guaranteed."""
        sim = self.sim
        both_static = in_tm.protocol.rx_static and out_tm.protocol.tx_static
        t0 = sim.now
        if both_static and item.nbytes > 0:
            # The unavoidable copy of §2.3: landing block -> send block,
            # serial and charged at host memcpy speed.
            try:
                out_block = yield from self._bounded_acquire(out_tm.tx_pool)
            except _Stalled:
                self._release_staging(item.staging, item.pool)
                raise
            yield from self.node.memcpy(item.nbytes)
            out_block.view(0, item.nbytes).copy_from(
                item.staging.view(0, item.nbytes), self.accounting, sim.now,
                "gateway.static_copy")
            self._release_staging(item.staging, item.pool)
            send_ev = out_tm.send_item(next_rank,
                                       out_block.view(0, item.nbytes),
                                       meta=dict(item.meta),
                                       msg_id=announce.msg_id)
            try:
                yield from self._yield_bounded(send_ev)
            except _Stalled:
                send_ev.add_callback(
                    lambda ev, b=out_block, p=out_tm.tx_pool:
                    p.release(b) if ev.ok else None)
                raise
            out_tm.tx_pool.release(out_block)
        else:
            send_ev = out_tm.send_item(next_rank,
                                       item.staging.view(0, item.nbytes),
                                       meta=dict(item.meta),
                                       nbytes=item.nbytes,
                                       msg_id=announce.msg_id)
            try:
                yield from self._yield_bounded(send_ev)
            except _Stalled:
                send_ev.add_callback(
                    lambda ev, b=item.staging, p=item.pool:
                    self._release_staging(b, p) if ev.ok else None)
                raise
            self._release_staging(item.staging, item.pool)
        self._m_items.inc()
        self.trace.emit(sim.now, "gateway", "send",
                        gw=self.gw_rank, msg=announce.msg_id, seq=item.seq,
                        nbytes=item.nbytes, start=t0, kind=item.meta.get("type"))

    def _abandon_transmit(self, out_tm: "TransmissionModule",
                          announce: Announce) -> None:
        """Give up on the outgoing side of a message: complete its pending
        (unmatched) fragment sends into the void so nothing dangles."""
        out_tm.channel.fabric.blackhole_pending_sends(out_tm.channel.id,
                                                      announce.msg_id)

    def _drain_handoff(self, handoff: Queue) -> None:
        """Recycle staged items a dead sender never consumed."""
        while True:
            got, item = handoff.try_get()
            if not got:
                return
            if item is not None:
                self._release_staging(item.staging, item.pool)

    # -- the paper's lockstep double-buffer pipeline (Figures 4/5) ------------------------
    def _pipeline_lockstep(self, in_tm, out_tm, next_rank, hop_src, announce):
        """Returns True if the whole message left, False if abandoned."""
        sim = self.sim
        barrier = Barrier(sim, 2, name=f"gw{self.gw_rank}.swap")
        handoff = Queue(sim, capacity=1, name=f"gw{self.gw_rank}.handoff")
        sender = sim.process(
            self._lockstep_sender(handoff, barrier, in_tm, out_tm,
                                  next_rank, announce),
            name=f"gwS:{self.gw_rank}:{self.in_channel.id}")
        ok = True
        while True:
            try:
                item = yield from self._receive_item(in_tm, out_tm, hop_src,
                                                     announce)
            except _Stalled:
                item = None   # poison: tell the sender to stop
                ok = False
            # Both threads meet, then exchange their buffers: the switch
            # overhead sits on the critical path (§3.3.1).  The sender
            # process itself is the second wait target so an abandoning
            # sender cannot strand us at the barrier.
            idx, _value = yield sim.any_of([barrier.wait(), sender])
            if idx == 1:
                # The sender died while we were receiving: recycle the item
                # it will never take.
                if item is not None:
                    self._release_staging(item.staging, item.pool)
                ok = False
                break
            if item is None:
                yield handoff.put(item)
                break
            yield sim.timeout(self.params.switch_overhead,
                              name=f"gw{self.gw_rank}.swap")
            self._h_swap.observe(self.params.switch_overhead)
            self.trace.emit(sim.now, "gateway", "swap",
                            gw=self.gw_rank, msg=announce.msg_id, seq=item.seq)
            yield handoff.put(item)
            if item.last:
                break
        # Drain: the terminator (or the abandon) must settle before the next
        # message.  All sender exits are guaranteed finite.
        sent_ok = yield sender
        self._drain_handoff(handoff)
        return ok and sent_ok

    def _lockstep_sender(self, handoff, barrier, in_tm, out_tm, next_rank,
                         announce):
        try:
            # Round 0: nothing to send yet, just meet the receive thread.
            yield barrier.wait()
            while True:
                item = yield handoff.get()
                if item is None:
                    return False
                yield from self._transmit_item(item, in_tm, out_tm,
                                               next_rank, announce)
                if item.last:
                    return True
                yield barrier.wait()
        except (_Stalled, GatewayCrashed):
            self._abandon_transmit(out_tm, announce)
            return False

    # -- the N-deep credit pipeline (generalizes the decoupled ablation) -------------------
    def _pipeline_credit(self, in_tm, out_tm, next_rank, hop_src, announce):
        """Returns True if the whole message left, False if abandoned.

        ``credits`` bounds the staged items in flight; the receive thread
        acquires a credit before posting a buffer, the send thread returns
        it when the retransmit completes, so the ring of ``depth`` staging
        blocks can never be oversubscribed.
        """
        sim = self.sim
        pipe = self.pipeline
        gate = Semaphore(sim, pipe.effective_credits,
                         name=f"gw{self.gw_rank}.credits")
        handoff = Queue(sim, capacity=max(1, pipe.depth - 1),
                        name=f"gw{self.gw_rank}.handoff")
        sender = sim.process(
            self._credit_sender(handoff, gate, in_tm, out_tm, next_rank,
                                announce),
            name=f"gwS:{self.gw_rank}:{self.in_channel.id}")
        ok = True
        while True:
            acq = gate.acquire()
            if not acq.triggered:
                self._m_credit_stalls.inc()
            idx, _value = yield sim.any_of([acq, sender])
            if idx == 1:
                ok = False
                break
            self.credits_outstanding += 1
            self._g_credits.inc()
            try:
                item = yield from self._receive_item(in_tm, out_tm, hop_src,
                                                     announce)
            except _Stalled:
                ok = False
                # Poison the queue; any_of because a stalled sender may
                # never drain it (its process event ends the wait instead).
                yield sim.any_of([handoff.put(None), sender])
                break
            yield sim.timeout(self.params.switch_overhead,
                              name=f"gw{self.gw_rank}.swap")
            self._h_swap.observe(self.params.switch_overhead)
            self.trace.emit(sim.now, "gateway", "swap",
                            gw=self.gw_rank, msg=announce.msg_id, seq=item.seq)
            yield handoff.put(item)
            if item.last:
                break
        sent_ok = yield sender
        self._drain_handoff(handoff)
        return ok and sent_ok

    def _credit_sender(self, handoff, gate, in_tm, out_tm, next_rank,
                       announce):
        try:
            while True:
                item = yield handoff.get()
                if item is None:
                    return False
                yield from self._transmit_item(item, in_tm, out_tm,
                                               next_rank, announce)
                if not TEST_HOOKS.leak_credits:
                    gate.release()
                    self.credits_outstanding -= 1
                    self._g_credits.dec()
                if item.last:
                    return True
        except (_Stalled, GatewayCrashed):
            self._abandon_transmit(out_tm, announce)
            return False
