"""Virtual channels (§2.2.1).

A virtual channel bundles a set of real channels into one addressing domain.
Creating one:

* builds, per member real channel, a *special* twin used exclusively for
  messages that still have gateways ahead of them (Figure 3);
* computes minimum-hop routes over the member channels;
* spawns a forwarding worker on every (gateway, incoming special channel).

``begin_packing`` picks the underlying machinery dynamically: a direct
(route length 1) message goes through the regular per-protocol path exactly
as before; anything longer goes through the Generic Transmission Module.
The application never sees the difference — the paper's transparency claim.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Optional, Sequence, Union

from dataclasses import replace as _dc_replace

from ..hw.params import GatewayParams, PipelineConfig
from ..routing import (RouteTable, StripePolicy, StripeScheduler,
                       disjoint_routes, gateway_ranks, negotiate_mtu,
                       tune_fragment_size)
from ..sim import Event, Queue
from .adaptive import TransportPolicy, apply_restripe
from .bmm import UnpackMismatch
from .channel import RealChannel
from .endpoint import MessageEndpoint
from .gateway import ForwardingWorker
from .gtm import GTMIncoming, GTMOutgoing
from .message import IncomingMessage, OutgoingMessage
from .stripe import StripedIncoming, StripedOutgoing
from .wire import MODE_GTM, MODE_REGULAR

if TYPE_CHECKING:  # pragma: no cover
    pass

__all__ = ["VirtualChannel", "VChannelEndpoint"]

DEFAULT_PACKET_SIZE = 16 << 10


class VChannelEndpoint(MessageEndpoint):
    """One rank's view of a virtual channel: a unified incoming stream over
    every member regular channel the rank belongs to."""

    def __init__(self, vchannel: "VirtualChannel", rank: int) -> None:
        self.vchannel = vchannel
        self.rank = rank
        sim = vchannel.sim
        self.incoming: Queue = Queue(sim, name=f"{vchannel.name}@{rank}.in")
        #: open stripe groups keyed by (origin, stripe_id): striped rails
        #: arriving on any member channel join here until the group is full.
        self._stripe_groups: dict[tuple[int, int], StripedIncoming] = {}
        self._channels = [ch for ch in vchannel.channels
                          if rank in ch.members]
        for ch in self._channels:
            sim.process(self._mover(ch), name=f"vmove:{ch.id}@{rank}")

    def _mover(self, channel: RealChannel):
        ep = channel.endpoint(self.rank)
        while True:
            announce, hop_src = yield ep.incoming.get()
            if announce.mode == MODE_GTM and announce.striped:
                # One rail of a stripe group: consume it here instead of
                # surfacing a per-rail message to the application.  The
                # rail identifies its group in its stripe record, read on
                # the rail's own executor so the mover never blocks.
                self._attach_stripe_rail(ep, announce, hop_src)
                continue
            yield self.incoming.put((channel, announce, hop_src))

    # -- stripe reassembly --------------------------------------------------------
    def _attach_stripe_rail(self, ep, announce, hop_src: int) -> None:
        rail = GTMIncoming(ep, announce, hop_src)
        rail.read_stripe_record().add_callback(
            lambda ev: self._join_stripe_group(rail, ev))

    def _join_stripe_group(self, rail: GTMIncoming, ev: Event) -> None:
        if not ev.ok:
            if self.vchannel._injector is not None:
                # Rail died — or its stripe record arrived corrupted —
                # before identifying its group.  Defuse so the kernel does
                # not re-raise through step(), abort the rail to reclaim
                # anything it still holds, and let the reliable layer's
                # retransmission recover the message end to end.
                ev.defuse()
                rail.abort()
                self.vchannel._m_rails_abandoned.inc()
                return
            raise ev.value
        record = ev.value
        key = (rail.origin, record.stripe_id)
        group = self._stripe_groups.get(key)
        if group is None:
            group = StripedIncoming(self.vchannel, rail.origin,
                                    record.stripe_id, record.total)
            self._stripe_groups[key] = group
            # The group surfaces to the application once, when its first
            # rail arrives; the channel slot is None because the message
            # spans several member channels.
            self.incoming.put_nowait((None, group, rail.origin))
        try:
            group.attach(record, rail)
        except UnpackMismatch:
            if self.vchannel._injector is None:
                raise
            # A corrupted stripe record can forge another group's identity
            # — wrong rail count, or a seq slot already taken.  The clash
            # is correct to raise on a clean wire, but under injection it
            # is the wire's fault: abandon the rail and let retransmission
            # recover whichever message it belonged to.  A group opened by
            # a forged record never completes; the reliable receiver's
            # stall bound aborts it.
            rail.abort()
            self.vchannel._m_rails_abandoned.inc()
            return
        if group.complete:
            del self._stripe_groups[key]

    # -- user interface ---------------------------------------------------------
    def begin_packing(self, dst: int) -> Union[OutgoingMessage, GTMOutgoing, StripedOutgoing]:
        return self.vchannel._begin_packing(self.rank, dst)

    def begin_unpacking(self) -> Event:
        """Event yielding the next incoming message — an
        :class:`IncomingMessage` or a :class:`GTMIncoming` depending on the
        pre-body announce, invisible to the caller."""
        out = self.vchannel.sim.event()
        got = self.incoming.get()

        def build(ev: Event) -> None:
            channel, announce, hop_src = ev.value
            if channel is None:
                # A reassembled stripe group (built by the mover); the
                # announce slot already holds the StripedIncoming.
                out.succeed(announce)
                return
            ep = channel.endpoint(self.rank)
            if announce.mode == MODE_GTM:
                out.succeed(GTMIncoming(ep, announce, hop_src))
            elif announce.mode == MODE_REGULAR:
                out.succeed(IncomingMessage(ep, announce, hop_src))
            else:  # pragma: no cover - decode validates modes already
                out.fail(ValueError(f"bad announce mode {announce.mode}"))

        got.add_callback(build)
        return out


class VirtualChannel:
    """A set of real channels with transparent inter-device forwarding."""

    def __init__(self, channels: Sequence[RealChannel],
                 packet_size: int = DEFAULT_PACKET_SIZE,
                 gateway_params: Optional[GatewayParams] = None,
                 name: str = "", multirail: bool = False,
                 header_batching: bool = False,
                 pipeline: Optional[PipelineConfig] = None,
                 stripe_policy: Optional[StripePolicy] = None,
                 transport_policy: Optional[TransportPolicy] = None) -> None:
        if not channels:
            raise ValueError("a virtual channel needs at least one real channel")
        worlds = {id(ch.world) for ch in channels}
        if len(worlds) != 1:
            raise ValueError("member channels belong to different worlds")
        if any(ch.special for ch in channels):
            raise ValueError("virtual channels are built from regular channels")
        self.channels = list(channels)
        self.world = channels[0].world
        self.sim = self.world.sim
        self.packet_size = packet_size
        gp = gateway_params or GatewayParams()
        if pipeline is not None:
            gp = _dc_replace(gp, pipeline=pipeline)
        self.gateway_params = gp
        #: the resolved forwarding-pipeline config every worker runs.
        self.pipeline = gp.resolved_pipeline
        #: per-route tuned fragment sizes (adaptive MTU mode).
        self._mtu_cache: dict[tuple[str, ...], int] = {}
        #: probe-measured per-protocol host rates refining the tuner.
        self._rate_overrides: Optional[dict[str, float]] = None
        self.name = name or f"vch({','.join(ch.id for ch in channels)})"
        self.routes = RouteTable(self.channels,
                                 telemetry=self.world.telemetry)
        #: reroute-forcing health losses seen by this virtual channel.
        self._m_failovers = self.world.telemetry.metrics.counter(
            "vchannel.failovers", vchannel=self.name)
        # Special (forwarding) twin per member channel, §2.2.2 / Figure 3.
        self._specials: dict[str, RealChannel] = {
            ch.id: RealChannel(self.world, ch.protocol.name, ch.members,
                               name=f"{ch.id}!fwd",
                               adapter_index=ch.adapter_index, special=True)
            for ch in self.channels
        }
        #: multi-rail mode: when several minimum-hop routes exist (parallel
        #: gateways), spread successive messages across them round-robin.
        #: Inter-message ordering between one pair is then no longer
        #: guaranteed — the standard multi-rail trade-off.
        self.multirail = multirail
        #: header batching (§2.3): piggyback each buffer's self-description
        #: record on its first fragment instead of spending a wire record on
        #: it.  Negotiated per message through the announce, so receivers
        #: and gateways need no out-of-band agreement.  Off by default: the
        #: calibrated paper figures were measured without it.
        self.header_batching = header_batching
        self._rail_counters: dict[tuple[int, int], int] = {}
        #: transparent multirail striping: when set and several disjoint
        #: rails exist between a pair, each large paquet is split across
        #: them (§ docs/performance.md).  Orthogonal to ``multirail``
        #: (round-robin), which spreads whole *messages*.
        self.stripe_policy = stripe_policy
        # (generation, rails, scheduler) per pair; rebuilt whenever the
        # route table invalidates, so a revived rail rejoins the stripe
        # set without anyone touching the cache by hand.
        self._stripe_plans: dict[tuple[int, int],
                                 tuple[int, list, StripeScheduler]] = {}
        m = self.world.telemetry.metrics
        self._m_stripes_sent = m.counter("vchannel.stripes_sent",
                                         vchannel=self.name)
        #: stripes consumed by a completed reassembly; pairs with
        #: ``stripes_sent`` in the striping conservation law
        #: (docs/robustness.md) — they match once every striped message
        #: has fully drained.
        self._m_stripes_reassembled = m.counter("vchannel.stripes_reassembled",
                                                vchannel=self.name)
        #: stripe rails whose record never decoded (sender crash mid-record
        #: or corruption in transit); the whole striped message is left to
        #: the reliable layer to retransmit.
        self._m_rails_abandoned = m.counter("vchannel.stripe_rails_abandoned",
                                            vchannel=self.name)
        self._h_stripe_depth = m.histogram(
            "vchannel.stripe_reassembly_depth",
            bounds=(1.0, 2.0, 4.0, 8.0), vchannel=self.name)
        self._rail_gauges: dict[int, object] = {}
        #: congestion-aware adaptive transport (docs/adaptive.md); None
        #: (the default) keeps every wire decision exactly as before.
        self.transport_policy = transport_policy
        #: policy-gated fail-fast registry: striped sends in flight, so a
        #: rail loss aborts them at once instead of riding out the
        #: reliable layer's stall bound.
        self._live_stripes: set[StripedOutgoing] = set()
        self._m_eager_sends = m.counter("vchannel.eager_sends",
                                        vchannel=self.name)
        #: weight moves (suspensions + readmissions + fail-fast aborts)
        #: applied by the adaptive re-striping policy.
        self._m_restripe_events = m.counter("vchannel.restripe_events",
                                            vchannel=self.name)
        #: multirail messages steered off their round-robin rail by
        #: gateway-occupancy feedback.
        self._m_balance_moves = m.counter("gateway.balance_moves",
                                          vchannel=self.name)
        self.gateways = gateway_ranks(self.channels)
        self.workers: list[ForwardingWorker] = []
        for gw in self.gateways:
            for ch in self.channels:
                if gw in ch.members:
                    self.workers.append(ForwardingWorker(
                        self, gw, self._specials[ch.id], self.gateway_params))
        self._endpoints: dict[int, VChannelEndpoint] = {}
        self._injector = None
        injector = self.world.fabric.injector
        if injector is not None:
            self.watch_faults(injector)

    # -- fault awareness ---------------------------------------------------------
    def watch_faults(self, injector) -> None:
        """Subscribe to an armed :class:`~repro.faults.FaultInjector` so link
        and node transitions update routing health (failover) and crash /
        revive this virtual channel's forwarding workers.

        Called automatically from the constructor when a fault plan is armed
        before the virtual channel is built."""
        if self._injector is injector:
            return
        if self._injector is not None:
            raise RuntimeError(f"{self.name!r} already watches an injector")
        self._injector = injector
        injector.subscribe(self._on_fault)

    def _on_fault(self, kind: str, subject) -> None:
        if kind == "link_down":
            self.routes.mark_down(subject)
            self._m_failovers.inc()
            if self.transport_policy is not None:
                self._fail_fast_stripes(subject)
        elif kind == "link_up":
            self.routes.mark_up(subject)
        elif kind == "node_down":
            self.routes.mark_node_down(subject)
            self._m_failovers.inc()
            for w in self.workers:
                if w.gw_rank == subject:
                    w.retire()
        elif kind == "node_up":
            self.routes.mark_node_up(subject)
            self._revive_rank(subject)

    def _fail_fast_stripes(self, channel) -> None:
        """Policy-gated rail-loss recovery: abort striped transfers that
        have a stripe riding the dead channel.

        A dead link drops even the 16-byte lockstep records, so re-weighting
        cannot rescue a message already striped over it.  Aborting makes the
        sender blackhole its remaining stripes and the receiver short-ACK at
        once, so the reliable layer resends immediately — re-planned on the
        surviving rails via the generation-keyed stripe cache — instead of
        riding out its stall bound.  Incomplete receive groups are also
        abandoned: mid-fault they are exactly the ones about to stall.
        """
        cid = channel if isinstance(channel, str) else channel.id
        for out in list(self._live_stripes):
            if any(hop.channel.id == cid
                   for rail in out.rail_routes for hop in rail):
                self._live_stripes.discard(out)
                out.abort()
                self._m_restripe_events.inc()
        for ep in self._endpoints.values():
            for key, group in list(ep._stripe_groups.items()):
                del ep._stripe_groups[key]
                group.abort()
                self._m_restripe_events.inc()

    def _maybe_restripe(self, scheduler: StripeScheduler) -> None:
        """Per-paquet hook from :class:`StripedOutgoing`: re-weight the
        rail set when the policy says so.  A ``None`` policy returns
        before touching anything, so plain runs stay bit-identical."""
        pol = self.transport_policy
        if pol is None:
            return
        moved = apply_restripe(pol, scheduler, self)
        if moved:
            self._m_restripe_events.inc(moved)

    def _revive_rank(self, rank: int) -> None:
        """Bring a restarted node back: flush stale state queued at its
        endpoints, restart crashed announce listeners, and respawn the
        forwarding workers that retired when it crashed."""
        for ch in [*self.channels, *self._specials.values()]:
            if rank in ch.members:
                ep = ch.endpoint(rank)
                ep.drain_incoming()
                ep.restart_listener()
        replaced = []
        for w in self.workers:
            if w.gw_rank == rank and w.retired:
                w.retire()
                replaced.append(ForwardingWorker(
                    self, rank, w.in_channel, self.gateway_params))
            else:
                replaced.append(w)
        self.workers = replaced

    # -- structure -------------------------------------------------------------
    @property
    def members(self) -> list[int]:
        return self.routes.members()

    def special_twin(self, channel: RealChannel) -> RealChannel:
        return self._specials[channel.id]

    def mtu_for(self, src: int, dst: int) -> int:
        return self.effective_mtu(self.routes.route(src, dst))

    def effective_mtu(self, route) -> int:
        """Fragment size the GTM uses on ``route``.

        Static mode (default): the §2.3 negotiation,
        ``min(packet_size, per-hop MTU)``.  Adaptive mode
        (``PipelineConfig(adaptive_mtu=True)``): the knee of the analytic
        pipeline model via :func:`repro.routing.tune_fragment_size`, cached
        per path; the wire-format MTU stays the upper bound.
        """
        route = list(route)
        if not self.pipeline.adaptive_mtu or len(route) < 2:
            return negotiate_mtu(route, self.packet_size)
        key = tuple(hop.channel.id for hop in route)
        mtu = self._mtu_cache.get(key)
        if mtu is None:
            mtu = tune_fragment_size(route, gateway=self.gateway_params,
                                     pipeline=self.pipeline,
                                     slack=self.pipeline.tuner_slack,
                                     rate_overrides=self._rate_overrides)
            self._mtu_cache[key] = mtu
        return mtu

    def calibrate_rates(self, rates: dict[str, float]) -> None:
        """Feed probe-measured host rates (protocol name → bytes/µs) into
        the adaptive fragment tuner and drop previously tuned sizes."""
        self._rate_overrides = dict(rates)
        self._mtu_cache.clear()

    def _rail_gauge(self, rail: int):
        """Bytes currently in flight on rail ``rail`` of this channel's
        stripe set (lazy: rails only exist once striping engages)."""
        g = self._rail_gauges.get(rail)
        if g is None:
            g = self.world.telemetry.metrics.gauge(
                "vchannel.rail_occupancy", vchannel=self.name, rail=rail)
            self._rail_gauges[rail] = g
        return g

    def _stripe_rails(self, src: int,
                      dst: int) -> tuple[list, Optional[StripeScheduler]]:
        """The disjoint rail set (and its scheduler) for one pair.

        Cached per pair, keyed by the route table's generation: any health
        transition bumps the generation, so a failed rail drops out of the
        stripe set at the next message and a revived one rejoins — no
        manual invalidation.  The scheduler (and its backlog estimate) is
        rebuilt on regeneration, which is exact: in-flight stripes of the
        old rail set drain on their own connections.
        """
        key = (src, dst)
        cached = self._stripe_plans.get(key)
        gen = self.routes.generation
        if cached is not None and cached[0] == gen:
            return cached[1], cached[2]
        rails = disjoint_routes(self.routes.all_routes(src, dst),
                                self.stripe_policy.max_rails)
        scheduler = (StripeScheduler(rails, self.stripe_policy,
                                     self._rate_overrides)
                     if len(rails) > 1 else None)
        self._stripe_plans[key] = (gen, rails, scheduler)
        return rails, scheduler

    def endpoint(self, rank: int) -> VChannelEndpoint:
        if rank not in self.routes.graph:
            raise KeyError(f"rank {rank} is not a member of {self.name!r}")
        if rank not in self._endpoints:
            self._endpoints[rank] = VChannelEndpoint(self, rank)
        return self._endpoints[rank]

    # -- sending ------------------------------------------------------------------
    def begin_packing(self, src: int,
                      dst: int) -> Union[OutgoingMessage, GTMOutgoing, StripedOutgoing]:
        """Deprecated spelling of ``endpoint(src).begin_packing(dst)``.

        The two-argument form predates the unified
        :class:`~repro.madeleine.endpoint.MessageEndpoint` protocol; go
        through the endpoint so application code stays channel-kind
        agnostic.
        """
        warnings.warn(
            "VirtualChannel.begin_packing(src, dst) is deprecated; use "
            "vchannel.endpoint(src).begin_packing(dst)",
            DeprecationWarning, stacklevel=2)
        return self._begin_packing(src, dst)

    def _begin_packing(self, src: int,
                       dst: int) -> Union[OutgoingMessage, GTMOutgoing, StripedOutgoing]:
        """Start a message; the real channel (and whether the GTM is needed)
        is chosen from the route, §2.2.1."""
        pol = self.transport_policy
        eager = pol.eager_threshold if pol is not None else 0
        if self.stripe_policy is not None:
            rails, scheduler = self._stripe_rails(src, dst)
            if scheduler is not None:
                return StripedOutgoing(self, src, dst, rails, scheduler)
        route = self.routes.route(src, dst)
        if len(route) == 1:
            return route[0].channel.endpoint(src).begin_packing(dst)
        if self.multirail:
            rails = self.routes.all_routes(src, dst)
            if len(rails) > 1:
                i = self._rail_counters.get((src, dst), 0)
                self._rail_counters[(src, dst)] = i + 1
                # stagger the starting rail per pair so traffic to different
                # destinations spreads across the gateways immediately
                pick = (i + src + dst) % len(rails)
                if pol is not None and pol.gateway_balance:
                    pick = self._balanced_pick(rails, pick)
                return GTMOutgoing(self, src, dst, route=rails[pick],
                                   eager_threshold=eager)
        return GTMOutgoing(self, src, dst, eager_threshold=eager)

    def _balanced_pick(self, rails, rr_pick: int) -> int:
        """Occupancy-driven rail choice across parallel gateways.

        The load signal is the first-hop forwarding worker's staged-item
        count; ties fall back to round-robin order (distance from the
        round-robin pick), so an idle system behaves exactly like plain
        round-robin.
        """
        def load(route) -> int:
            hop0 = route[0]
            fwd_id = f"{hop0.channel.id}!fwd"
            return sum(w.staged_items for w in self.workers
                       if w.gw_rank == hop0.dst
                       and w.in_channel.id == fwd_id and not w.retired)

        loads = [load(r) for r in rails]
        best = min(range(len(rails)),
                   key=lambda k: (loads[k], (k - rr_pick) % len(rails)))
        if best != rr_pick:
            self._m_balance_moves.inc()
        return best

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<VirtualChannel {self.name} members={self.members} "
                f"gateways={self.gateways}>")
