"""Congestion-aware adaptive transport policy (ROADMAP item 4).

The paper's forwarding scheme is static: rail choice, fragment size, and
the rendezvous-style announce/descriptor handshake are fixed per message.
A :class:`TransportPolicy` attached to a virtual channel adds three
runtime adaptations, all driven by signals the simulator already tracks:

* **eager/rendezvous switching** — messages whose packed bytes fit under
  ``eager_threshold`` skip the per-buffer descriptor stream entirely: the
  sender withholds the announce until ``end_packing``, then emits one
  self-describing wire record (entry table + payloads) negotiated through
  the announce's *eager* mode bit.  Gateways forward it like any other
  item.  Large messages keep the rendezvous path unchanged.  This is the
  eager/rendezvous protocol split of the MPICH2-over-InfiniBand work
  (PAPERS.md) grafted onto Madeleine's GTM.
* **dynamic re-striping** — before each striped paquet is split, the
  scheduler's per-rail drain-time estimates are compared; a rail whose
  predicted drain exceeds the healthiest rail's by ``restripe_high``
  (plus a slack floor, so idle channels never flap) is suspended — its
  weight drops to zero and it only carries zero-length lockstep stripes —
  and readmitted once it recovers under ``restripe_low``.  A rail whose
  route lost a link or an interior gateway is suspended outright.
* **gateway load balancing** — round-robin multirail rail choice is
  replaced by least-staged-items-first over the parallel gateways'
  forwarding workers (ties keep the round-robin order, so an idle system
  behaves exactly like plain round-robin).

Everything here is synchronous bookkeeping: no simulator events are
created, so a policy that never fires leaves the event schedule
bit-identical to an unconfigured run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..routing import StripeScheduler
    from .vchannel import VirtualChannel

__all__ = ["TransportPolicy", "apply_restripe", "rail_is_healthy"]


@dataclass(frozen=True)
class TransportPolicy:
    """Per-vchannel adaptive-transport configuration.

    ``eager_threshold`` — messages whose eager record (4-byte header,
    8 bytes per buffer, plus payloads) stays within this many bytes are
    sent eagerly; 0 disables the eager path.  The effective budget is
    additionally clamped to the route's MTU so the record always fits one
    gateway staging block.

    ``restripe_high`` / ``restripe_low`` — hysteresis band on the ratio of
    a rail's predicted drain time to the healthiest rail's: suspend above
    ``high``, readmit below ``low``.  ``restripe_slack_us`` is an absolute
    drain-time floor under which a rail is never suspended, so microscopic
    backlogs on an otherwise idle system cannot trigger moves.

    ``gateway_balance`` — replace round-robin multirail rail choice with
    occupancy-driven selection across parallel gateways.
    """

    eager_threshold: int = 4 << 10
    restripe_high: float = 4.0
    restripe_low: float = 2.0
    restripe_slack_us: float = 500.0
    gateway_balance: bool = True

    def __post_init__(self) -> None:
        if self.eager_threshold < 0:
            raise ValueError(
                f"eager_threshold must be >= 0, got {self.eager_threshold}")
        if self.restripe_low < 1.0:
            raise ValueError(
                f"restripe_low must be >= 1, got {self.restripe_low}")
        if self.restripe_high <= self.restripe_low:
            raise ValueError(
                f"restripe_high ({self.restripe_high}) must exceed "
                f"restripe_low ({self.restripe_low}) — the hysteresis band "
                f"would be empty or inverted")
        if self.restripe_slack_us < 0:
            raise ValueError(
                f"restripe_slack_us must be >= 0, "
                f"got {self.restripe_slack_us}")


def rail_is_healthy(route, routes) -> bool:
    """True when no hop of ``route`` crosses a down link or a down
    interior node (the final destination's health is the message's
    problem, not the rail set's)."""
    down_channels = routes.down_channels
    down_nodes = routes.down_nodes
    for hop in route:
        if hop.channel.id in down_channels:
            return False
    for hop in route[:-1]:
        if hop.dst in down_nodes:
            return False
    return True


def apply_restripe(policy: TransportPolicy, scheduler: "StripeScheduler",
                   vchannel: "VirtualChannel") -> int:
    """Re-weight ``scheduler``'s rails from current health and backlog.

    Returns the number of weight moves (suspensions plus readmissions)
    applied; the caller counts them into ``vchannel.restripe_events``.
    Pure synchronous bookkeeping — no simulator events.
    """
    routes = vchannel.routes
    n = len(scheduler.rails)
    healthy = [rail_is_healthy(scheduler.rails[i], routes) for i in range(n)]
    moves = 0
    # Health first: a dead rail is suspended regardless of load, a revived
    # one rejoins at full weight (its backlog estimate still drains).
    for i in range(n):
        if not healthy[i] and scheduler.weights[i] > 0.0:
            if sum(1 for j in range(n)
                   if healthy[j] and scheduler.weights[j] > 0.0) == 0:
                continue        # never suspend the last usable rail
            scheduler.set_weight(i, 0.0)
            moves += 1
    candidates = [i for i in range(n) if healthy[i]]
    if len(candidates) < 2:
        # Readmission of revived rails still counts as moves above; with
        # fewer than two healthy rails there is no load to balance.
        for i in candidates:
            if scheduler.weights[i] == 0.0:
                scheduler.set_weight(i, 1.0)
                moves += 1
        return moves
    # Drain-time hysteresis among the healthy rails.  The reference is the
    # fastest currently-admitted healthy rail; with everything suspended
    # (first call after a mass fault) fall back to the fastest healthy one.
    def drain(i: int) -> float:
        return scheduler._backlog[i] / scheduler.rates[i]

    admitted = [i for i in candidates if scheduler.weights[i] > 0.0]
    ref = min(drain(i) for i in (admitted or candidates))
    slack = policy.restripe_slack_us
    for i in candidates:
        d = drain(i)
        if scheduler.weights[i] > 0.0:
            if (d > policy.restripe_high * ref + slack
                    and len([j for j in candidates
                             if scheduler.weights[j] > 0.0]) > 1):
                scheduler.set_weight(i, 0.0)
                moves += 1
        else:
            if d <= policy.restripe_low * ref + slack:
                scheduler.set_weight(i, 1.0)
                moves += 1
    return moves
