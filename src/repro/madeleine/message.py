"""Incremental message construction — the ``mad_pack`` interface (§2.1.2).

A message is built piecewise:

* sender: ``begin_packing(dst)`` → ``pack(data, smode, rmode)``* →
  ``end_packing()``;
* receiver: ``begin_unpacking()`` → ``unpack(nbytes, smode, rmode)``* →
  ``end_unpacking()``,

where the unpack sequence must mirror the pack sequence exactly (sizes and
flags): Madeleine messages are **not self-described** on homogeneous paths,
for efficiency.  Violations raise :class:`~repro.madeleine.bmm.UnpackMismatch`.

All operations are executed in order by a per-message *executor* process, so
a blocking step (static-pool acquisition, an EXPRESS receive) delays the
following ones exactly as the real library's in-flight state machine would.
Each ``pack``/``unpack`` returns an :class:`~repro.sim.Event` the caller may
yield on; ``end_packing``/``end_unpacking`` return an event that triggers
once the whole message is flushed/delivered.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Optional, Union

import numpy as np

from ..memory import Buffer
from ..sim import Event, Queue
from .bmm import make_receiver_bmm, make_sender_bmm
from .flags import RecvMode, SendMode
from .wire import MODE_REGULAR, Announce

if TYPE_CHECKING:  # pragma: no cover
    from .channel import Endpoint

__all__ = ["OutgoingMessage", "IncomingMessage", "MessageStateError"]

_msg_ids = itertools.count(1)


class MessageStateError(RuntimeError):
    """Operation on a finished message, or overlapping messages on one
    connection."""


class _ExecutorMixin:
    """Runs queued generator ops strictly in order."""

    def _init_executor(self, sim, name: str) -> None:
        self.sim = sim
        self._ops: Queue = Queue(sim, name=f"{name}.ops")
        self._finished = sim.event(name=f"{name}.done")
        self._closed = False
        #: True once the executor process has returned (normally or on a
        #: failed op) — leak detectors key on this after an abort.
        self._exec_done = False
        sim.process(self._executor(), name=f"{name}.exec")

    def _submit(self, gen) -> Event:
        if self._closed:
            raise MessageStateError("message already finalized")
        done = self.sim.event()
        self._ops.put((gen, done, False))
        return done

    def _submit_final(self, gen) -> Event:
        if self._closed:
            raise MessageStateError("message already finalized")
        self._closed = True
        self._ops.put((gen, self._finished, True))
        return self._finished

    def _executor(self):
        while True:
            gen, done, last = yield self._ops.get()
            try:
                result = yield from gen
            except BaseException as exc:
                self._exec_done = True
                done.fail(exc)
                return
            # The op's return value rides on the completion event, so ops
            # that produce data (a decoded record, a received size) can be
            # driven from outside the executor.  Schedule-preserving: the
            # event count and trigger instants are unchanged.
            done.succeed(result)
            if last:
                self._exec_done = True
                return


def _as_buffer(data: Union[Buffer, bytes, bytearray, np.ndarray]) -> Buffer:
    return data if isinstance(data, Buffer) else Buffer.wrap(data)


class OutgoingMessage(_ExecutorMixin):
    """A message being packed on a regular (single-network) channel."""

    def __init__(self, endpoint: "Endpoint", dst: int) -> None:
        if dst == endpoint.rank:
            raise ValueError("cannot send a message to self")
        if dst not in endpoint.channel.members:
            raise ValueError(
                f"rank {dst} is not a member of channel {endpoint.channel.id!r}")
        self.endpoint = endpoint
        self.dst = dst
        self.msg_id = next(_msg_ids)
        tm = endpoint.tm
        self._init_executor(tm.channel.sim, f"out:{self.msg_id}")
        # One message at a time per connection: the whole message holds the
        # connection lock (concurrent messages to the same peer queue up).
        lock = endpoint.connection_lock(dst)
        self._finished.add_callback(lambda _ev: lock.release())
        self.bmm = make_sender_bmm(tm, dst, self.msg_id)
        announce = Announce(mode=MODE_REGULAR, origin=endpoint.rank,
                            final_dst=dst, mtu=0, msg_id=self.msg_id)
        self._submit(self._announce_op(tm, lock, announce))

    def _announce_op(self, tm, lock, announce):
        yield lock.acquire()
        yield tm.send_announce(self.dst, announce)

    def pack(self, data, smode: SendMode = SendMode.CHEAPER,
             rmode: RecvMode = RecvMode.CHEAPER) -> Event:
        """Append one data block to the message (``mad_pack``)."""
        buf = _as_buffer(data)
        return self._submit(self.bmm.op_pack(buf, SendMode(smode),
                                             RecvMode(rmode)))

    def end_packing(self) -> Event:
        """Flush everything (``mad_end_packing``); the event triggers when
        the whole message has been transmitted."""
        return self._submit_final(self.bmm.op_finalize())

    def abort(self) -> None:
        """Stop emitting and let pending sends complete into the void.

        Used by fault-recovery code when the receiver abandoned this
        message: remaining fragments are blackholed on the fabric so the
        executor drains naturally and releases the connection lock.
        """
        self.bmm.aborted = True
        tm = self.endpoint.tm
        tm.channel.fabric.blackhole_pending_sends(tm.channel.id, self.msg_id)


class IncomingMessage(_ExecutorMixin):
    """A message being unpacked at a regular channel endpoint.

    Created by ``Endpoint.begin_unpacking()``; :attr:`origin` identifies the
    packing node.
    """

    def __init__(self, endpoint: "Endpoint", announce: Announce,
                 hop_src: int) -> None:
        self.endpoint = endpoint
        self.announce = announce
        self.origin = announce.origin
        self.hop_src = hop_src   # who transmitted the last hop (gateway or origin)
        self.msg_id = announce.msg_id
        tm = endpoint.tm
        self._init_executor(tm.channel.sim, f"in:{self.msg_id}")
        self.bmm = make_receiver_bmm(tm, hop_src, self.msg_id)

    def unpack(self, nbytes: Optional[int] = None,
               smode: SendMode = SendMode.CHEAPER,
               rmode: RecvMode = RecvMode.CHEAPER,
               into: Optional[Buffer] = None) -> tuple[Event, Buffer]:
        """Extract the next data block (``mad_unpack``).

        Returns ``(event, buffer)``: the buffer receives the data, the event
        triggers when the block's delivery guarantee holds (immediately for
        EXPRESS, possibly deferred for CHEAPER).
        """
        if into is None:
            if nbytes is None:
                raise ValueError("unpack needs nbytes or a destination buffer")
            into = Buffer.alloc(nbytes, label="unpack")
        elif nbytes is not None and nbytes != len(into):
            raise ValueError("nbytes disagrees with destination buffer size")
        ev = self._submit(self.bmm.op_unpack(into, SendMode(smode),
                                             RecvMode(rmode)))
        return ev, into

    def end_unpacking(self) -> Event:
        """Finish the message; the event triggers once every block (including
        deferred CHEAPER/LATER data) has landed."""
        return self._submit_final(self.bmm.op_finalize())
