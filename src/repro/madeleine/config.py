"""Declarative session configuration.

Madeleine sessions were launched from network configuration files (the PM2
``leonie`` launcher); this module provides the equivalent front-end: a plain
dict (JSON-compatible) describing nodes, channels, and virtual channels,
turned into a ready :class:`~repro.madeleine.session.Session` in one call.

Example::

    cfg = {
        "nodes": {
            "m0": ["myrinet"],
            "gw": ["myrinet", "sci"],
            "s0": ["sci"],
        },
        "channels": {
            "myri": {"protocol": "myrinet", "members": ["m0", "gw"]},
            "sci":  {"protocol": "sci", "members": ["gw", "s0"]},
        },
        "virtual_channels": {
            "world": {"channels": ["myri", "sci"], "packet_size": 65536},
        },
    }
    session, channels, vchannels = load_config(cfg)
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping, Union

from ..hw.params import GatewayParams, NodeParams, PCIParams
from ..hw.topology import build_world
from .channel import RealChannel
from .session import Session
from .vchannel import DEFAULT_PACKET_SIZE, VirtualChannel

__all__ = ["load_config", "load_config_file", "ConfigError"]


class ConfigError(ValueError):
    """Malformed session configuration."""


def _require(mapping: Mapping[str, Any], key: str, where: str):
    try:
        return mapping[key]
    except KeyError:
        raise ConfigError(f"{where}: missing required key {key!r}") from None


def _node_params(spec: Mapping[str, Any]) -> NodeParams:
    pci_spec = spec.get("pci", {})
    known_pci = {"clock_mhz", "width_bytes", "duplex_efficiency",
                 "pio_preempt_slowdown"}
    bad = set(pci_spec) - known_pci
    if bad:
        raise ConfigError(f"unknown pci option(s): {sorted(bad)}")
    pci = PCIParams(**pci_spec)
    known = {"memcpy_bandwidth", "cpus"}
    extra = {k: v for k, v in spec.items() if k in known}
    bad = set(spec) - known - {"pci"}
    if bad:
        raise ConfigError(f"unknown node_params option(s): {sorted(bad)}")
    return NodeParams(pci=pci, **extra)


def load_config(cfg: Mapping[str, Any]) -> tuple[
        Session, dict[str, RealChannel], dict[str, VirtualChannel]]:
    """Build a session from a configuration mapping.

    Returns ``(session, channels_by_name, virtual_channels_by_name)``.
    """
    if not isinstance(cfg, Mapping):
        raise ConfigError(f"configuration must be a mapping, got {type(cfg)}")
    unknown = set(cfg) - {"nodes", "channels", "virtual_channels",
                          "node_params"}
    if unknown:
        raise ConfigError(f"unknown top-level key(s): {sorted(unknown)}")
    nodes = _require(cfg, "nodes", "configuration")
    if not nodes:
        raise ConfigError("configuration declares no nodes")
    node_params = (_node_params(cfg["node_params"])
                   if "node_params" in cfg else None)
    world = build_world(nodes, node_params=node_params)
    session = Session(world)

    channels: dict[str, RealChannel] = {}
    for name, spec in cfg.get("channels", {}).items():
        protocol = _require(spec, "protocol", f"channel {name!r}")
        members = _require(spec, "members", f"channel {name!r}")
        try:
            channels[name] = session.channel(
                protocol, members, name=name,
                adapter_index=spec.get("adapter_index", 0))
        except (KeyError, ValueError) as exc:
            raise ConfigError(f"channel {name!r}: {exc}") from exc

    vchannels: dict[str, VirtualChannel] = {}
    for name, spec in cfg.get("virtual_channels", {}).items():
        member_names = _require(spec, "channels", f"virtual channel {name!r}")
        try:
            member_channels = [channels[m] for m in member_names]
        except KeyError as exc:
            raise ConfigError(
                f"virtual channel {name!r} references unknown channel "
                f"{exc.args[0]!r}") from None
        gw_spec = spec.get("gateway", {})
        known_gw = {"switch_overhead", "pipeline_depth", "lockstep",
                    "ingress_limit"}
        bad = set(gw_spec) - known_gw
        if bad:
            raise ConfigError(
                f"virtual channel {name!r}: unknown gateway option(s) "
                f"{sorted(bad)}")
        vchannels[name] = session.virtual_channel(
            member_channels,
            packet_size=spec.get("packet_size", DEFAULT_PACKET_SIZE),
            gateway_params=GatewayParams(**gw_spec) if gw_spec else None,
            name=name)
    return session, channels, vchannels


def load_config_file(path: Union[str, Path]) -> tuple[
        Session, dict[str, RealChannel], dict[str, VirtualChannel]]:
    """Load a JSON configuration file (see :func:`load_config`)."""
    with open(path, encoding="utf-8") as fh:
        try:
            cfg = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"{path}: invalid JSON ({exc})") from exc
    return load_config(cfg)
