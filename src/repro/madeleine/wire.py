"""Wire formats for announces and self-description records (§2.3).

Homogeneous Madeleine messages are deliberately *not* self-described (the
receiver supplies sizes at unpack time), so the only wire metadata for a
regular message is the small **announce** that tells the receiver which
transmission module to use — the "additional information transmitted before
the actual message body" of §2.2.2.

Messages that cross a gateway additionally carry the Generic Transmission
Module's **self-description** stream: a route header in the announce
(final destination rank + MTU), then for each user buffer a descriptor
record (length + emission/reception constraints), the buffer's fragments,
and finally an empty descriptor terminating the message — exactly the
sender↔gateway protocol the paper lists.

Records are encoded as real bytes (struct little-endian) so the codec can be
property-tested; the fabric carries them as ordinary payloads.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from .flags import RecvMode, SendMode

__all__ = [
    "Announce", "Descriptor", "StripeRecord", "EagerEntry", "EagerRecord",
    "MODE_REGULAR", "MODE_GTM",
    "ANNOUNCE_BYTES", "DESC_BYTES", "STRIPE_BYTES", "STRIPE_VERSION",
    "EAGER_HDR_BYTES", "EAGER_ENTRY_BYTES", "EAGER_VERSION",
    "encode_announce", "decode_announce",
    "encode_descriptor", "decode_descriptor",
    "encode_stripe", "decode_stripe",
    "encode_eager", "decode_eager", "eager_record_bytes",
    "encode_eager_table",
]

#: announce modes
MODE_REGULAR = 0    # plain single-network message, regular TM on both ends
MODE_GTM = 1        # message built by the Generic Transmission Module

_ANNOUNCE_FMT = "<BHHHIB"          # mode, origin, final_dst, mtu_kb, msg_id, hops_left
_DESC_FMT = "<IBBBx8x"             # length, send mode, recv mode, kind, padding
_STRIPE_FMT = "<BxHHI6x"           # version, seq, total, stripe_id, padding

_DESC_KIND_DATA = 0
_DESC_KIND_TERMINATOR = 1

ANNOUNCE_BYTES = struct.calcsize(_ANNOUNCE_FMT)   # 12
DESC_BYTES = struct.calcsize(_DESC_FMT)           # 16
STRIPE_BYTES = struct.calcsize(_STRIPE_FMT)       # 16

#: wire version of the stripe record — bumped if the layout ever changes,
#: so a mixed-version session fails loudly instead of misassembling.
STRIPE_VERSION = 1

_MTU_UNIT = 1024   # MTUs are whole KB on the wire (they are KB-sized powers of two)

#: high bit of the wire mode byte: header batching — the GTM piggybacks each
#: buffer's descriptor record on that buffer's first fragment (§2.3's
#: aggregation of control information with payload).
_MODE_BATCHED_BIT = 0x80

#: second-highest bit of the mode byte: this announce opens one *stripe* of
#: a multirail message.  The rail's first body item is a
#: :class:`StripeRecord` telling the receiver which reassembly group the
#: rail belongs to; gateways forward the bit (and the record) untouched.
_MODE_STRIPED_BIT = 0x40

#: third-highest bit of the mode byte: this message travels **eager** — the
#: whole body (descriptors and payloads) is folded into one
#: :class:`EagerRecord` wire item instead of the per-buffer
#: descriptor/fragment/terminator stream.  Gateways forward the bit (and the
#: record) untouched; only the final receiver parses it.
_MODE_EAGER_BIT = 0x20

_MODE_FLAG_BITS = _MODE_BATCHED_BIT | _MODE_STRIPED_BIT | _MODE_EAGER_BIT

#: wire field ceilings (exceeding one would silently wrap in struct.pack)
_MAX_RANK = 0xFFFF            # origin / final_dst pack as H
_MAX_MTU = 0xFFFF * _MTU_UNIT  # mtu_kb packs as H => MTUs below 64 MiB
_MAX_MSG_ID = 0xFFFF_FFFF     # msg_id packs as I
_MAX_HOPS = 0xFF              # hops_left packs as B
_MAX_DESC_LEN = 0xFFFF_FFFF   # descriptor length packs as I


@dataclass(frozen=True)
class Announce:
    """Pre-body message information (one per message per hop)."""

    mode: int                  # MODE_REGULAR or MODE_GTM
    origin: int                # rank of the packing node
    final_dst: int             # rank of the ultimate receiver
    mtu: int                   # fragment size negotiated for the whole path
    msg_id: int
    hops_left: int = 0         # remaining forwarding hops after this one
    batched: bool = False      # GTM header batching negotiated for the message
    striped: bool = False      # this message is one stripe of a multirail group
    eager: bool = False        # body travels as one EagerRecord wire item

    def __post_init__(self) -> None:
        if self.mode not in (MODE_REGULAR, MODE_GTM):
            raise ValueError(f"bad announce mode {self.mode}")
        if self.mtu % _MTU_UNIT:
            raise ValueError(f"MTU must be a multiple of {_MTU_UNIT}: {self.mtu}")
        if self.eager and (self.batched or self.striped):
            raise ValueError("eager announces exclude batching and striping")


@dataclass(frozen=True)
class Descriptor:
    """Self-description record for one packed buffer (GTM stream).

    The end-of-message terminator is an explicitly flagged empty record
    (so that genuinely zero-length user buffers remain representable).
    """

    length: int
    smode: SendMode = SendMode.CHEAPER
    rmode: RecvMode = RecvMode.CHEAPER
    terminator: bool = False

    def __post_init__(self) -> None:
        if self.terminator and self.length:
            raise ValueError("terminator records carry no data")

    @property
    def is_terminator(self) -> bool:
        return self.terminator


def _check_range(what: str, value: int, limit: int) -> None:
    if not 0 <= value <= limit:
        raise ValueError(
            f"announce {what}={value} does not fit the wire field "
            f"(0..{limit}); refusing to emit a corrupt record")


def encode_announce(a: Announce) -> bytes:
    """Encode; raises :class:`ValueError` on any value that would silently
    wrap in its fixed-width wire field (e.g. MTUs of 64 MiB and beyond)."""
    _check_range("origin", a.origin, _MAX_RANK)
    _check_range("final_dst", a.final_dst, _MAX_RANK)
    _check_range("mtu", a.mtu, _MAX_MTU)
    _check_range("msg_id", a.msg_id, _MAX_MSG_ID)
    _check_range("hops_left", a.hops_left, _MAX_HOPS)
    mode = (a.mode | (_MODE_BATCHED_BIT if a.batched else 0)
            | (_MODE_STRIPED_BIT if a.striped else 0)
            | (_MODE_EAGER_BIT if a.eager else 0))
    return struct.pack(_ANNOUNCE_FMT, mode, a.origin, a.final_dst,
                       a.mtu // _MTU_UNIT, a.msg_id, a.hops_left)


def decode_announce(raw: bytes) -> Announce:
    """Decode an announce record; ``raw`` must be exactly the record."""
    raw = bytes(raw)
    if len(raw) != ANNOUNCE_BYTES:
        raise ValueError(
            f"announce record must be exactly {ANNOUNCE_BYTES} bytes, "
            f"got {len(raw)}")
    mode, origin, final_dst, mtu_kb, msg_id, hops_left = struct.unpack(
        _ANNOUNCE_FMT, raw)
    return Announce(mode=mode & ~_MODE_FLAG_BITS, origin=origin,
                    final_dst=final_dst, mtu=mtu_kb * _MTU_UNIT,
                    msg_id=msg_id, hops_left=hops_left,
                    batched=bool(mode & _MODE_BATCHED_BIT),
                    striped=bool(mode & _MODE_STRIPED_BIT),
                    eager=bool(mode & _MODE_EAGER_BIT))


def encode_descriptor(d: Descriptor) -> bytes:
    if not 0 <= d.length <= _MAX_DESC_LEN:
        raise ValueError(
            f"descriptor length={d.length} does not fit the wire field "
            f"(0..{_MAX_DESC_LEN}); refusing to emit a corrupt record")
    kind = _DESC_KIND_TERMINATOR if d.terminator else _DESC_KIND_DATA
    return struct.pack(_DESC_FMT, d.length, int(d.smode), int(d.rmode), kind)


def decode_descriptor(raw: bytes) -> Descriptor:
    """Decode a descriptor record; ``raw`` must be exactly the record."""
    raw = bytes(raw)
    if len(raw) != DESC_BYTES:
        raise ValueError(
            f"descriptor record must be exactly {DESC_BYTES} bytes, "
            f"got {len(raw)}")
    length, smode, rmode, kind = struct.unpack(_DESC_FMT, raw)
    return Descriptor(length=length, smode=SendMode(smode),
                      rmode=RecvMode(rmode),
                      terminator=kind == _DESC_KIND_TERMINATOR)


_MAX_STRIPE_ID = 0xFFFF_FFFF   # stripe_id packs as I
_MAX_STRIPE_SEQ = 0xFFFF       # seq / total pack as H


@dataclass(frozen=True)
class StripeRecord:
    """Reassembly header of one multirail stripe.

    Sent as the first body item of a striped message (announce mode byte
    carries the striped bit), it tells the final receiver that this rail is
    stripe ``seq`` of the ``total``-rail group ``(origin, stripe_id)``.
    Gateways forward it like any other item.
    """

    stripe_id: int             # group id, unique per origin
    seq: int                   # this rail's index within the group
    total: int                 # number of rails in the group
    version: int = STRIPE_VERSION

    def __post_init__(self) -> None:
        if self.total < 1:
            raise ValueError(f"stripe group needs >= 1 rail, got {self.total}")
        if not 0 <= self.seq < self.total:
            raise ValueError(
                f"stripe seq {self.seq} outside group of {self.total}")


def encode_stripe(s: StripeRecord) -> bytes:
    """Encode; raises :class:`ValueError` on any value that would silently
    wrap in its fixed-width wire field."""
    for what, value, limit in (("stripe_id", s.stripe_id, _MAX_STRIPE_ID),
                               ("seq", s.seq, _MAX_STRIPE_SEQ),
                               ("total", s.total, _MAX_STRIPE_SEQ),
                               ("version", s.version, 0xFF)):
        if not 0 <= value <= limit:
            raise ValueError(
                f"stripe {what}={value} does not fit the wire field "
                f"(0..{limit}); refusing to emit a corrupt record")
    return struct.pack(_STRIPE_FMT, s.version, s.seq, s.total, s.stripe_id)


def decode_stripe(raw: bytes) -> StripeRecord:
    """Decode a stripe record; ``raw`` must be exactly the record and carry
    a known version."""
    raw = bytes(raw)
    if len(raw) != STRIPE_BYTES:
        raise ValueError(
            f"stripe record must be exactly {STRIPE_BYTES} bytes, "
            f"got {len(raw)}")
    version, seq, total, stripe_id = struct.unpack(_STRIPE_FMT, raw)
    if version != STRIPE_VERSION:
        raise ValueError(
            f"unknown stripe-record version {version} "
            f"(this build speaks version {STRIPE_VERSION})")
    return StripeRecord(stripe_id=stripe_id, seq=seq, total=total,
                        version=version)


_EAGER_HDR_FMT = "<BxH"            # version, entry count
_EAGER_ENTRY_FMT = "<IBBxx"        # payload length, send mode, recv mode

EAGER_HDR_BYTES = struct.calcsize(_EAGER_HDR_FMT)       # 4
EAGER_ENTRY_BYTES = struct.calcsize(_EAGER_ENTRY_FMT)   # 8

#: wire version of the eager record — bumped if the layout ever changes,
#: so a mixed-version session fails loudly instead of misdelivering.
EAGER_VERSION = 1

_MAX_EAGER_ENTRIES = 0xFFFF   # entry count packs as H


@dataclass(frozen=True)
class EagerEntry:
    """One packed buffer of an eager message: payload plus its emission and
    reception constraints (the same triple a :class:`Descriptor` carries)."""

    data: bytes
    smode: SendMode = SendMode.CHEAPER
    rmode: RecvMode = RecvMode.CHEAPER


@dataclass(frozen=True)
class EagerRecord:
    """The whole body of an eager message as a single wire item (§2.3
    adapted): per-buffer descriptor entries and their payloads travel
    together, replacing the descriptor/fragment/terminator stream.

    Sent only when the announce carries the eager mode bit; gateways
    forward the record like any other item (one store-and-forward instead
    of three or more), and only the final receiver parses it.
    """

    entries: tuple[EagerEntry, ...] = ()
    version: int = EAGER_VERSION

    @property
    def total_payload(self) -> int:
        return sum(len(e.data) for e in self.entries)


def eager_record_bytes(lengths) -> int:
    """Wire size of an eager record carrying buffers of ``lengths`` bytes."""
    lengths = list(lengths)
    return (EAGER_HDR_BYTES + EAGER_ENTRY_BYTES * len(lengths)
            + sum(lengths))


def encode_eager_table(triples, version: int = EAGER_VERSION) -> bytes:
    """Encode just the control part of an eager record (header plus entry
    table) from ``(length, smode, rmode)`` triples; the payloads follow it
    on the wire.  Raises :class:`ValueError` on any value that would
    silently wrap in its fixed-width wire field."""
    triples = list(triples)
    if not 0 <= version <= 0xFF:
        raise ValueError(
            f"eager version={version} does not fit the wire field "
            f"(0..255); refusing to emit a corrupt record")
    if len(triples) > _MAX_EAGER_ENTRIES:
        raise ValueError(
            f"eager record with {len(triples)} entries does not fit "
            f"the wire field (0..{_MAX_EAGER_ENTRIES}); refusing to emit "
            f"a corrupt record")
    parts = [struct.pack(_EAGER_HDR_FMT, version, len(triples))]
    for length, smode, rmode in triples:
        if not 0 <= length <= _MAX_DESC_LEN:
            raise ValueError(
                f"eager entry of {length}B does not fit the wire "
                f"field (0..{_MAX_DESC_LEN}); refusing to emit a corrupt "
                f"record")
        parts.append(struct.pack(_EAGER_ENTRY_FMT, length,
                                 int(smode), int(rmode)))
    return b"".join(parts)


def encode_eager(rec: EagerRecord) -> bytes:
    """Encode a full eager record (entry table and payloads)."""
    table = encode_eager_table(
        ((len(e.data), e.smode, e.rmode) for e in rec.entries),
        version=rec.version)
    return table + b"".join(bytes(e.data) for e in rec.entries)


def decode_eager(raw: bytes) -> EagerRecord:
    """Decode an eager record; ``raw`` must be exactly the record (entry
    table and concatenated payloads) and carry a known version."""
    raw = bytes(raw)
    if len(raw) < EAGER_HDR_BYTES:
        raise ValueError(
            f"eager record needs at least {EAGER_HDR_BYTES} bytes, "
            f"got {len(raw)}")
    version, count = struct.unpack_from(_EAGER_HDR_FMT, raw, 0)
    if version != EAGER_VERSION:
        raise ValueError(
            f"unknown eager-record version {version} "
            f"(this build speaks version {EAGER_VERSION})")
    table_end = EAGER_HDR_BYTES + EAGER_ENTRY_BYTES * count
    if len(raw) < table_end:
        raise ValueError(
            f"eager record truncated: {count} entries need "
            f"{table_end} header bytes, got {len(raw)}")
    triples = []
    total = 0
    for i in range(count):
        length, smode, rmode = struct.unpack_from(
            _EAGER_ENTRY_FMT, raw, EAGER_HDR_BYTES + i * EAGER_ENTRY_BYTES)
        triples.append((length, SendMode(smode), RecvMode(rmode)))
        total += length
    if len(raw) != table_end + total:
        raise ValueError(
            f"eager record announces {total}B of payload but carries "
            f"{len(raw) - table_end}B")
    entries = []
    off = table_end
    for length, smode, rmode in triples:
        entries.append(EagerEntry(data=raw[off:off + length],
                                  smode=smode, rmode=rmode))
        off += length
    return EagerRecord(entries=tuple(entries), version=version)
