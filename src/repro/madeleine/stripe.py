"""Transparent multirail striping (bandwidth aggregation over disjoint rails).

A virtual channel configured with a :class:`~repro.routing.StripePolicy`
splits each large paquet into stripes and pushes them concurrently down up
to K disjoint routes, each stripe flowing through its own per-rail GTM
message (and therefore its own gateway pipeline).  The pieces:

* sender — :class:`StripedOutgoing` wraps one
  :class:`~repro.madeleine.gtm.GTMOutgoing` per rail; every rail's
  announce carries the *striped* mode bit and its first body item is a
  16-byte :class:`~repro.madeleine.wire.StripeRecord` naming the
  reassembly group ``(origin, stripe_id)`` and the rail's index;
* gateways — oblivious: the stripe record is forwarded like any other
  item, exactly as the paper's gateways forward descriptors they never
  parse;
* receiver — the virtual-channel endpoint diverts striped announces,
  reads each rail's stripe record, and joins rails into a
  :class:`StripedIncoming`, which is what ``begin_unpacking`` hands the
  application.  Each ``unpack`` gathers the per-rail descriptors first
  (they encode the split), carves the destination buffer into disjoint
  views, and lets all rails deliver their fragments concurrently.

Like round-robin multirail, striping relaxes inter-message ordering
between one pair of ranks; *within* a message the unpack sequence mirrors
the pack sequence exactly, as everywhere in Madeleine.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Optional

from ..memory import Buffer
from ..sim import Event
from .bmm import UnpackMismatch
from .flags import RecvMode, SendMode, validate_modes
from .gtm import GTMIncoming, GTMOutgoing
from .message import _ExecutorMixin, _as_buffer
from .wire import StripeRecord

if TYPE_CHECKING:  # pragma: no cover
    from ..routing import StripeScheduler
    from .vchannel import VirtualChannel

__all__ = ["StripedOutgoing", "StripedIncoming"]

_stripe_ids = itertools.count(1)


class _StripeAborted(Exception):
    """Internal: the striped message was abandoned by recovery code."""


class StripedOutgoing:
    """Packs a message as K concurrent stripes, one per disjoint rail.

    Mirrors the :class:`~repro.madeleine.message.OutgoingMessage` surface;
    each op fans out to the per-rail GTM messages and completes when every
    rail has accepted its stripe.  No executor of its own: the per-rail
    executors already serialize each rail's stream, and the stripe plan is
    computed synchronously at ``pack`` time from the scheduler's live
    backlog.
    """

    def __init__(self, vchannel: "VirtualChannel", src: int, dst: int,
                 rails: list, scheduler: "StripeScheduler") -> None:
        self.vchannel = vchannel
        self.sim = vchannel.sim
        self.src = src
        self.dst = dst
        self.scheduler = scheduler
        self.stripe_id = next(_stripe_ids)
        self.aborted = False
        total = len(rails)
        #: the rails' routes, kept for the adaptive policy's health checks
        #: (which stripes ride a channel that just died).
        self.rail_routes = [list(route) for route in rails]
        self.rails = [
            GTMOutgoing(vchannel, src, dst, route=route,
                        stripe=StripeRecord(stripe_id=self.stripe_id,
                                            seq=i, total=total))
            for i, route in enumerate(rails)]
        self.msg_id = self.rails[0].msg_id
        vchannel._m_stripes_sent.inc(total)
        if vchannel.transport_policy is not None:
            # Fail-fast registry: a rail loss aborts this transfer at once.
            vchannel._live_stripes.add(self)

    def pack(self, data, smode: SendMode = SendMode.CHEAPER,
             rmode: RecvMode = RecvMode.CHEAPER) -> Event:
        """Split one paquet across the rails per the scheduler's plan.

        Every rail packs its (possibly empty) stripe so the per-rail
        descriptor streams stay in lockstep with the reassembly.
        """
        buf = _as_buffer(data)
        self.vchannel._maybe_restripe(self.scheduler)
        chunks = self.scheduler.plan(len(buf))
        events = []
        off = 0
        for i, (rail, nbytes) in enumerate(zip(self.rails, chunks)):
            view = buf.view(off, off + nbytes)
            off += nbytes
            self.scheduler.note_sent(i, nbytes)
            gauge = self.vchannel._rail_gauge(i)
            gauge.inc(nbytes)
            ev = rail.pack(view, smode, rmode)
            ev.add_callback(
                lambda _e, i=i, n=nbytes, g=gauge:
                (self.scheduler.note_done(i, n), g.dec(n)))
            events.append(ev)
        return self.sim.all_of(events)

    def end_packing(self) -> Event:
        """Event triggering once every rail's stripe has fully flushed."""
        ev = self.sim.all_of([rail.end_packing() for rail in self.rails])
        if self.vchannel.transport_policy is not None:
            ev.add_callback(
                lambda _e: self.vchannel._live_stripes.discard(self))
        return ev

    def abort(self) -> None:
        """Stop emitting on every rail (fault recovery)."""
        self.aborted = True
        self.vchannel._live_stripes.discard(self)
        for rail in self.rails:
            rail.abort()


class StripedIncoming(_ExecutorMixin):
    """Reassembles one striped message from its per-rail GTM streams.

    Built by the receiving virtual-channel endpoint as soon as the first
    rail of a group identifies itself; the remaining rails attach as their
    stripe records arrive.  Unpack ops wait for the full rail set, gather
    one descriptor per rail (the stripe split), then consume all rails'
    fragments concurrently into disjoint views of the destination buffer —
    in-order reassembly with no reorder buffer and no extra copy beyond
    what each rail's protocol already requires.
    """

    def __init__(self, vchannel: "VirtualChannel", origin: int,
                 stripe_id: int, total: int) -> None:
        self.vchannel = vchannel
        self.origin = origin
        self.stripe_id = stripe_id
        self.total = total
        self.aborted = False
        self.msg_id = stripe_id
        self._rails: list[Optional[GTMIncoming]] = [None] * total
        sim = vchannel.sim
        self._attach_evs = [
            sim.event(name=f"stripe-in:{stripe_id}.rail{i}")
            for i in range(total)]
        self._deferred: list[Buffer] = []
        self._h_depth = vchannel._h_stripe_depth
        self._init_executor(sim, f"stripe-in:{origin}:{stripe_id}")

    # -- rail arrival ---------------------------------------------------------
    def attach(self, record: StripeRecord, rail: GTMIncoming) -> None:
        """Join one rail to the group (its stripe record just decoded)."""
        if record.total != self.total:
            raise UnpackMismatch(
                f"stripe group {self.stripe_id} of origin {self.origin}: "
                f"rail announces {record.total} rails, group was opened "
                f"with {self.total}")
        if self._rails[record.seq] is not None:
            raise UnpackMismatch(
                f"stripe group {self.stripe_id} of origin {self.origin}: "
                f"duplicate rail seq {record.seq}")
        self._rails[record.seq] = rail
        if self.aborted:
            # The group was abandoned before this rail arrived; its attach
            # event was already force-triggered by abort(), so just reclaim
            # whatever the late rail holds.
            rail.abort()
            return
        self._attach_evs[record.seq].succeed(rail)

    @property
    def complete(self) -> bool:
        """True once every rail of the group has attached."""
        return all(rail is not None for rail in self._rails)

    # -- public interface (mirrors GTMIncoming) --------------------------------
    def unpack(self, nbytes: Optional[int] = None,
               smode: SendMode = SendMode.CHEAPER,
               rmode: RecvMode = RecvMode.CHEAPER,
               into: Optional[Buffer] = None) -> tuple[Event, Buffer]:
        if into is None:
            if nbytes is None:
                raise ValueError("unpack needs nbytes or a destination buffer")
            into = Buffer.alloc(nbytes, label="stripe.unpack")
        elif nbytes is not None and nbytes != len(into):
            raise ValueError("nbytes disagrees with destination buffer size")
        ev = self._submit(self._op_unpack(into, SendMode(smode),
                                          RecvMode(rmode)))
        return ev, into

    def end_unpacking(self) -> Event:
        return self._submit_final(self._op_finalize())

    def abort(self) -> None:
        """Abandon the message: abort every attached rail (late-attaching
        rails are aborted as they arrive) and unblock the reassembly
        executor.

        Rails that never attach would otherwise strand the executor in
        :meth:`_wait_rails` forever — a process leak holding the group's op
        queue and any deferred buffers.  Force-triggering the pending
        attach events wakes the executor, whose next :meth:`_wait_rails`
        raises and drains it; if no op is in flight, a poison close op is
        queued so the executor exits instead of waiting on ops that will
        never come.
        """
        if self.aborted:
            return
        self.aborted = True
        for rail in self._rails:
            if rail is not None:
                rail.abort()
        for ev in self._attach_evs:
            if not ev.triggered:
                ev.succeed(None)
        # Nobody legitimately waits on an abandoned message's completion;
        # defuse so the executor's failure does not re-raise through the
        # kernel when the application has already walked away.
        self._finished.defuse()
        if not self._closed:
            self._submit_final(self._abort_close())

    def _abort_close(self):
        raise _StripeAborted()
        yield  # pragma: no cover - makes this a generator

    # -- ops --------------------------------------------------------------------
    def _op_unpack(self, buf: Buffer, smode: SendMode, rmode: RecvMode):
        validate_modes(smode, rmode)
        if smode == SendMode.LATER:
            self._deferred.append(buf)
            return
        yield from self._gather(buf)

    def _wait_rails(self):
        pending = [ev for ev in self._attach_evs if not ev.triggered]
        if pending:
            yield self.sim.all_of(pending)
        if self.aborted:
            raise _StripeAborted()

    def _gather(self, buf: Buffer):
        yield from self._wait_rails()
        # One descriptor per rail first: together they encode how the
        # sender split this paquet.
        desc_events = [rail.read_descriptor() for rail in self._rails]
        yield self.sim.all_of(desc_events)
        lengths = []
        for ev in desc_events:
            if ev.value.is_terminator:
                raise UnpackMismatch(
                    "stripe ended (terminator) while data was expected — "
                    "unpack sequence does not mirror the pack sequence")
            lengths.append(ev.value.length)
        if sum(lengths) != len(buf):
            raise UnpackMismatch(
                f"stripes announce {sum(lengths)}B but unpack expects "
                f"{len(buf)}B")
        self._h_depth.observe(float(sum(1 for n in lengths if n)))
        events = []
        off = 0
        for rail, nbytes in zip(self._rails, lengths):
            events.append(rail.read_into(buf.view(off, off + nbytes)))
            off += nbytes
        yield self.sim.all_of(events)

    def _op_finalize(self):
        for buf in self._deferred:
            yield from self._gather(buf)
        self._deferred.clear()
        yield from self._wait_rails()
        # Every rail must close with its own terminator.
        yield self.sim.all_of([rail.end_unpacking()
                               for rail in self._rails])
        self.vchannel._m_stripes_reassembled.inc(self.total)
