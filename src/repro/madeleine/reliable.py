"""End-to-end reliable transfers over a virtual channel.

Madeleine itself assumes reliable networks (§2.1.2) — the simulation's fault
layer (:mod:`repro.faults`) breaks that assumption, so this module adds the
classic go-back-N recovery loop *above* the pack/unpack interface:

* a transfer is cut into a fixed, route-independent fragment grid;
* each delivery **attempt** is one ordinary virtual-channel message: a
  CRC-protected header (transfer id, attempt number, resume point, grid
  geometry) followed by the not-yet-acknowledged fragments, each carrying
  its own CRC32 trailer;
* the receiver consumes fragments in order, advancing a cumulative
  acknowledgement counter; any gap, corruption, or stall abandons the rest
  of the attempt and reports the counter back in an ``ACK`` message;
* the sender waits for the full acknowledgement under an exponential-backoff
  retransmission timeout; on expiry (or a partial ACK) it aborts the attempt
  — pending fragment sends complete into the void — and starts the next one
  *from the acknowledged fragment*, re-resolving the route first.

Because every attempt re-resolves its route against the live
:class:`~repro.routing.RouteTable`, a link or gateway failure mid-message
simply moves the retransmission onto a surviving minimum-hop rail
(failover).  A transfer that cannot make progress ends in a **typed**
exception — :class:`~repro.sim.RetryExhausted` when the retry budget runs
out, :class:`~repro.routing.NoRouteError` when the endpoint pair is
partitioned — never a hang.
"""

from __future__ import annotations

import itertools
import struct
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Union

import numpy as np

from ..memory import Buffer
from ..routing import NoRouteError
from ..sim import Event, GatewayCrashed, Queue, RetryExhausted
from .flags import RecvMode, SendMode

if TYPE_CHECKING:  # pragma: no cover
    from .vchannel import VChannelEndpoint

__all__ = ["ReliableEndpoint", "RetryPolicy", "HEADER_BYTES"]

_MAGIC = 0x4D414452          # "MADR"
_KIND_DATA = 1
_KIND_ACK = 2
_HDR_FMT = "<IB3xIIIIIIII"   # magic, kind, src, dst, transfer, attempt,
                             # nfrags, total bytes, fragment size
_CRC_FMT = "<I"
HEADER_BYTES = struct.calcsize(_HDR_FMT) + struct.calcsize(_CRC_FMT)
FRAG_CRC_BYTES = struct.calcsize(_CRC_FMT)

_transfer_ids = itertools.count(1)


class _BadHeader(ValueError):
    """Header failed its magic/CRC check (corrupted in transit)."""


def _encode_header(kind: int, src: int, dst: int, transfer: int,
                   attempt: int, start: int, nfrags: int, total: int,
                   frag_size: int) -> bytes:
    # src/dst travel inside the CRC-protected header rather than being read
    # off the announce: a corrupted announce origin would poison the
    # receiver's reply address for the transfer's whole lifetime, and a
    # corrupted announce destination would let the wrong rank accept it.
    body = struct.pack(_HDR_FMT, _MAGIC, kind, src, dst, transfer, attempt,
                       start, nfrags, total, frag_size)
    return body + struct.pack(_CRC_FMT, zlib.crc32(body))


def _decode_header(raw: bytes) -> tuple[int, int, int, int, int, int, int,
                                        int, int]:
    body, (crc,) = raw[:-FRAG_CRC_BYTES], struct.unpack(
        _CRC_FMT, raw[-FRAG_CRC_BYTES:])
    if zlib.crc32(body) != crc:
        raise _BadHeader("header CRC mismatch")
    magic, kind, src, dst, transfer, attempt, start, nfrags, total, \
        frag_size = struct.unpack(_HDR_FMT, body)
    if magic != _MAGIC:
        raise _BadHeader(f"bad magic {magic:#x}")
    return kind, src, dst, transfer, attempt, start, nfrags, total, frag_size


def _frag_crc(frag: bytes, transfer: int, seq: int) -> int:
    """Fragment CRC bound to the fragment's *identity*, not just its bytes.

    Whole-fragment loss delivers stale staging memory, which can hold an
    internally consistent older fragment (its own trailer included) — a
    content-only CRC would accept it at the wrong grid position.  Folding
    (transfer, seq) into the checksum makes any stale or shifted fragment
    fail verification.
    """
    return zlib.crc32(struct.pack("<II", transfer, seq), zlib.crc32(frag))


def _disown(ev: Event) -> None:
    """Detach from an event we may never wait on: a late failure must not
    take the whole simulation down (see ``Simulator.step``)."""
    def _defuse(e: Event) -> None:
        if not e.ok:
            e.defuse()
    ev.add_callback(_defuse)


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs of the go-back-N recovery loop (all times in µs)."""

    #: fragment-grid unit; route-independent so a retransmission on a
    #: different rail resumes exactly at the acknowledged fragment.
    frag_size: int = 8 << 10
    #: consecutive *zero-progress* attempts tolerated before
    #: :class:`RetryExhausted`.  An attempt that advanced the cumulative ack
    #: resets the count (and the RTO): go-back-N progress is monotone, so
    #: total attempts stay bounded by ``max_attempts × fragments`` while
    #: lossy-but-alive paths are never given up on mid-stream.
    max_attempts: int = 8
    #: initial retransmission timeout (covers one full attempt + ACK).
    rto: float = 50_000.0
    #: multiplicative backoff applied to the RTO after each failed attempt.
    backoff: float = 2.0
    #: RTO ceiling.
    rto_max: float = 400_000.0
    #: receiver-side per-fragment stall bound: how long an expected fragment
    #: may fail to arrive before the attempt is abandoned and acked short.
    stall_timeout: float = 10_000.0
    #: independent copies of each ACK message.  An ACK is a single tiny
    #: message, so its loss is what usually makes the sender miss real
    #: receiver progress; redundancy shrinks that chance geometrically.
    ack_copies: int = 2
    #: receiver-side re-ACK period.  Losing every copy of an abandon's ACK
    #: (or losing the attempt before its header, which yields no ACK at
    #: all) leaves the sender blind to real receiver progress; periodic
    #: re-ACKs of incomplete transfers repair that within one period.
    reack_interval: float = 20_000.0
    #: how long after the last fragment arrival an incomplete transfer
    #: keeps being re-ACKed.  Must exceed the sender's worst-case silence
    #: (``rto_max`` plus an attempt), and bounds the work done after a
    #: sender gives up, so an abandoned simulation still terminates.
    reack_ttl: float = 1_000_000.0

    def __post_init__(self) -> None:
        if self.frag_size < 1:
            raise ValueError("frag_size must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if min(self.rto, self.rto_max, self.stall_timeout) <= 0:
            raise ValueError("timeouts must be > 0")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1.0")
        if self.ack_copies < 1:
            raise ValueError("ack_copies must be >= 1")
        if self.reack_interval <= 0 or self.reack_ttl <= 0:
            raise ValueError("re-ACK knobs must be > 0")
        if self.reack_ttl <= self.rto_max:
            raise ValueError("reack_ttl must exceed rto_max")


class _SendState:
    __slots__ = ("acked", "nfrags", "attempt_t0")

    def __init__(self, nfrags: int) -> None:
        self.acked = 0
        self.nfrags = nfrags
        #: when the attempt currently on the wire was emitted — the ACK that
        #: advances the window dates its latency from here.
        self.attempt_t0 = 0.0


class _RecvState:
    __slots__ = ("src", "acked", "nfrags", "total", "frag_size", "data",
                 "done", "last_activity")

    def __init__(self, src: int, nfrags: int, total: int,
                 frag_size: int, now: float) -> None:
        self.src = src
        self.acked = 0
        self.nfrags = nfrags
        self.total = total
        self.frag_size = frag_size
        self.data = bytearray(total)
        self.done = False
        #: when the last attempt for this transfer reached us — re-ACKs
        #: stop ``reack_ttl`` after the sender falls silent.
        self.last_activity = now


class ReliableEndpoint:
    """Reliable send/receive on top of one rank's virtual-channel endpoint.

    The instance *owns* the endpoint's incoming stream (its pump replaces
    direct ``begin_unpacking`` use): data attempts and ACKs are demultiplexed
    internally, completed transfers appear on :attr:`deliveries`.

    Usage, inside simulation processes::

        rel = ReliableEndpoint(vch.endpoint(rank))
        attempts = yield from rel.send(dst, payload)      # sender
        src, data, transfer = yield from rel.recv()       # receiver
    """

    def __init__(self, vep: "VChannelEndpoint",
                 policy: RetryPolicy | None = None) -> None:
        self.vep = vep
        self.rank = vep.rank
        self.sim = vep.vchannel.sim
        self.trace = vep.vchannel.world.fabric.trace
        self.policy = policy or RetryPolicy()
        # Pre-registered instruments: they appear (at zero) in snapshots
        # even before the first fault, so dashboards have a stable schema.
        m = vep.vchannel.world.telemetry.metrics
        lbl = dict(vchannel=vep.vchannel.name, rank=self.rank)
        self._m_bytes = m.counter("reliable.bytes_sent", **lbl)
        self._m_frags = m.counter("reliable.fragments_sent", **lbl)
        self._m_attempts = m.counter("reliable.attempts", **lbl)
        self._m_retransmits = m.counter("reliable.retransmits", **lbl)
        self._m_delivered = m.counter("reliable.deliveries", **lbl)
        self._m_acks = m.counter("reliable.acks_received", **lbl)
        self._h_ack_latency = m.histogram("reliable.ack_latency_us", **lbl)
        #: completed transfers, as ``(src, payload: bytes, transfer_id)``.
        self.deliveries: Queue = Queue(self.sim,
                                       name=f"rel@{self.rank}.deliveries")
        self._sends: dict[int, _SendState] = {}
        self._recvs: dict[int, _RecvState] = {}
        self._ack_waiters: dict[int, Event] = {}
        self.retransmits = 0
        self._reack_kick: Optional[Event] = None
        self.sim.process(self._pump(), name=f"rel:pump@{self.rank}")
        self.sim.process(self._reacker(), name=f"rel:reack@{self.rank}")

    # ------------------------------------------------------------------ sender
    def send(self, dst: int, payload: Union[bytes, bytearray, np.ndarray,
                                            Buffer]):
        """Generator: deliver ``payload`` to ``dst`` exactly once.

        Returns the number of attempts used.  Raises
        :class:`~repro.sim.RetryExhausted` when the retry budget runs out
        and :class:`~repro.routing.NoRouteError` when no retry is left and
        the pair is partitioned.
        """
        data = self._as_bytes(payload)
        if not data:
            # A zero-fragment attempt would have nothing to acknowledge, so
            # delivery could never be confirmed.
            raise ValueError("reliable send needs a non-empty payload")
        policy = self.policy
        nfrags = -(-len(data) // policy.frag_size)
        transfer = next(_transfer_ids)
        st = _SendState(nfrags)
        self._sends[transfer] = st
        rto = policy.rto
        route_error: NoRouteError | None = None
        attempt = 0
        stalls = 0          # consecutive attempts with zero ack progress
        while stalls < policy.max_attempts:
            attempt += 1
            self._m_attempts.inc()
            if attempt > 1:
                self.retransmits += 1
                self._m_retransmits.inc()
            try:
                msg = self.vep.begin_packing(dst)
            except NoRouteError as exc:
                # Partitioned *right now*; links may come back — burn one
                # zero-progress attempt waiting an RTO, re-raise once the
                # budget is gone.
                route_error = exc
                stalls += 1
                if stalls >= policy.max_attempts:
                    raise
                self.trace.emit(self.sim.now, "reliable", "no_route",
                                src=self.rank, dst=dst, transfer=transfer,
                                attempt=attempt)
                yield self.sim.timeout(rto, name=f"rel.wait_route.{transfer}")
                rto = min(rto * policy.backoff, policy.rto_max)
                continue
            route_error = None
            start = st.acked
            header = _encode_header(_KIND_DATA, self.rank, dst, transfer,
                                    attempt, start, nfrags, len(data),
                                    policy.frag_size)
            _disown(msg.pack(header, SendMode.CHEAPER, RecvMode.EXPRESS))
            for seq in range(start, nfrags):
                frag = data[seq * policy.frag_size:
                            (seq + 1) * policy.frag_size]
                _disown(msg.pack(
                    frag + struct.pack(_CRC_FMT,
                                       _frag_crc(frag, transfer, seq)),
                    SendMode.CHEAPER, RecvMode.EXPRESS))
                self._m_frags.inc()
                self._m_bytes.inc(len(frag))
            _disown(msg.end_packing())
            st.attempt_t0 = self.sim.now
            self.trace.emit(self.sim.now, "reliable", "attempt",
                            src=self.rank, dst=dst, transfer=transfer,
                            attempt=attempt, start=start, nfrags=nfrags)
            # Wait for the cumulative ACK to reach nfrags, bounded by the RTO.
            while st.acked < nfrags:
                ack_ev = self.sim.event(name=f"rel.ack.{transfer}")
                self._ack_waiters[transfer] = ack_ev
                idx, _v = yield self.sim.any_of([
                    ack_ev,
                    self.sim.timeout(rto, name=f"rel.rto.{transfer}")])
                self._ack_waiters.pop(transfer, None)
                if idx == 1:
                    break       # RTO expired: abandon and retransmit.
                if st.acked > start:
                    # A short ACK that advanced the window: the receiver
                    # finished (and maybe abandoned) this attempt — resend
                    # from the new mark.  ACKs with *no* progress are
                    # redundant copies of an abandon we already reacted to;
                    # breaking on them would kill the fresh attempt they
                    # race against, so keep waiting instead.
                    break
            if st.acked >= nfrags:
                # Fully acknowledged — anything still in flight from this
                # attempt is a duplicate the receiver may have already
                # walked away from.  Abort it so the executor cannot sit on
                # an unmatched send holding the connection lock hostage.
                msg.abort()
                del self._sends[transfer]
                self.trace.emit(self.sim.now, "reliable", "delivered",
                                src=self.rank, dst=dst, transfer=transfer,
                                attempts=attempt)
                return attempt
            msg.abort()
            self.trace.emit(self.sim.now, "reliable", "attempt_failed",
                            src=self.rank, dst=dst, transfer=transfer,
                            attempt=attempt, acked=st.acked)
            if st.acked > start:
                stalls = 0
                rto = policy.rto
            else:
                stalls += 1
                rto = min(rto * policy.backoff, policy.rto_max)
        del self._sends[transfer]
        raise RetryExhausted(
            f"transfer {transfer} to rank {dst} gave up after "
            f"{attempt} attempts — no ack progress in the last "
            f"{policy.max_attempts} ({st.acked}/{nfrags} fragments "
            f"acknowledged)",
            attempts=attempt, acked_fragments=st.acked,
            total_fragments=nfrags) from route_error

    # ---------------------------------------------------------------- receiver
    def recv(self):
        """Generator: the next completed transfer as
        ``(src, payload: bytes, transfer_id)``."""
        result = yield self.deliveries.get()
        return result

    # -------------------------------------------------------------------- pump
    def _pump(self):
        while True:
            try:
                incoming = yield self.vep.begin_unpacking()
            except GatewayCrashed:
                return
            self.sim.process(self._handle_safe(incoming),
                             name=f"rel:msg@{self.rank}")

    def _handle_safe(self, incoming):
        """Never let a handler process die with an unhandled exception — an
        unwaited failed process would take the whole simulation down."""
        try:
            yield from self._handle(incoming)
        except Exception as exc:
            self.trace.emit(self.sim.now, "reliable", "handler_error",
                            rank=self.rank, reason=str(exc))

    def _bounded(self, ev: Event):
        """Wait for ``ev`` under the stall bound; returns (ok, value).  A
        lost event is left behind safely (late failures auto-defuse via the
        triggered ``any_of``)."""
        idx, value = yield self.sim.any_of([
            ev, self.sim.timeout(self.policy.stall_timeout,
                                 name=f"rel.stall@{self.rank}")])
        if idx == 1:
            return False, None
        return True, value

    def _handle(self, incoming):
        """Consume one incoming vchannel message (a DATA attempt or an ACK).

        Every failure mode — stall, corruption, mismatched stream — degrades
        to "abandon the attempt and ACK what we have"; the sender's timeout
        loop does the rest.
        """
        ev, hbuf = incoming.unpack(HEADER_BYTES, SendMode.SAFER,
                                   RecvMode.EXPRESS)
        try:
            ok, _ = yield from self._bounded(ev)
        except Exception:
            ok = False
        if not ok:
            self._abandon_incoming(incoming)
            self.trace.emit(self.sim.now, "reliable", "attempt_abandoned",
                            rank=self.rank, where="header")
            return
        try:
            kind, src, dst, transfer, attempt, start, nfrags, total, \
                frag_size = _decode_header(hbuf.tobytes())
        except _BadHeader as exc:
            self._abandon_incoming(incoming)
            self.trace.emit(self.sim.now, "reliable", "attempt_abandoned",
                            rank=self.rank, where="header",
                            reason=str(exc))
            return
        if dst != self.rank:
            # A corrupted announce routed someone else's message here;
            # drop it — the real destination's silence triggers a resend.
            self._abandon_incoming(incoming)
            self.trace.emit(self.sim.now, "reliable", "attempt_abandoned",
                            rank=self.rank, where="misrouted", src=src,
                            dst=dst, transfer=transfer)
            return
        if kind == _KIND_ACK:
            st = self._sends.get(transfer)
            if st is not None:
                self._m_acks.inc()
                if start > st.acked:
                    # This ACK advanced the window: its latency is the time
                    # since the attempt it acknowledges was emitted.
                    self._h_ack_latency.observe(self.sim.now - st.attempt_t0)
                st.acked = max(st.acked, start)
                waiter = self._ack_waiters.pop(transfer, None)
                if waiter is not None and not waiter.triggered:
                    waiter.succeed(start)
            try:
                ok, _ = yield from self._bounded(incoming.end_unpacking())
            except Exception:
                ok = False
            if not ok:
                self._abandon_incoming(incoming)
            return
        yield from self._handle_data(incoming, src, transfer, attempt, start,
                                     nfrags, total, frag_size)

    @staticmethod
    def _abandon_incoming(incoming) -> None:
        """Abort an incoming message we are walking away from, so its
        executor does not sit forever on receives that can no longer
        complete (holding static-pool landing blocks hostage)."""
        abort = getattr(incoming, "abort", None)
        if abort is not None:
            abort()

    def _handle_data(self, incoming, src: int, transfer: int, attempt: int,
                     start: int, nfrags: int, total: int, frag_size: int):
        st = self._recvs.get(transfer)
        if st is None:
            st = _RecvState(src, nfrags, total, frag_size, self.sim.now)
            self._recvs[transfer] = st
        st.src = src            # refresh: src is CRC-protected per attempt
        st.last_activity = self.sim.now
        if (self._reack_kick is not None
                and not self._reack_kick.triggered):
            self._reack_kick.succeed()
        complete = True
        for seq in range(start, nfrags):
            size = min(frag_size, total - seq * frag_size)
            ev, fbuf = incoming.unpack(size + FRAG_CRC_BYTES, SendMode.SAFER,
                                       RecvMode.EXPRESS)
            try:
                ok, _ = yield from self._bounded(ev)
            except Exception:
                ok = False
            if not ok:
                complete = False
                break
            raw = fbuf.tobytes()
            frag, (crc,) = raw[:size], struct.unpack(
                _CRC_FMT, raw[size:])
            if _frag_crc(frag, transfer, seq) != crc:
                self.trace.emit(self.sim.now, "reliable", "frag_corrupt",
                                rank=self.rank, transfer=transfer, seq=seq)
                complete = False
                break
            if seq == st.acked:            # in-order: accept
                st.data[seq * frag_size:seq * frag_size + size] = frag
                st.acked += 1
            # seq < st.acked: duplicate from an earlier attempt — ignore.
        if complete:
            # Let the message close cleanly (GTM terminator / deferred data).
            try:
                ok, _ = yield from self._bounded(incoming.end_unpacking())
                complete = ok
            except Exception:
                complete = False
        if not complete:
            self._abandon_incoming(incoming)
            self.trace.emit(self.sim.now, "reliable", "attempt_abandoned",
                            rank=self.rank, transfer=transfer,
                            attempt=attempt, acked=st.acked)
        if st.acked >= st.nfrags and not st.done:
            st.done = True
            self._m_delivered.inc()
            yield self.deliveries.put((st.src, bytes(st.data), transfer))
        yield from self._send_ack(st.src, transfer, st.acked)

    def _send_ack(self, dst: int, transfer: int, acked: int):
        # Each copy is an independent message (own announce, own routing):
        # duplicates are harmless (cumulative acks are idempotent) and the
        # sender only needs one of them to observe receiver progress.
        for _copy in range(self.policy.ack_copies):
            try:
                msg = self.vep.begin_packing(dst)
            except NoRouteError:
                # No way back right now; the sender's RTO covers the silence.
                self.trace.emit(self.sim.now, "reliable", "ack_unroutable",
                                rank=self.rank, transfer=transfer, dst=dst)
                return
            header = _encode_header(_KIND_ACK, self.rank, dst, transfer, 0,
                                    acked, 0, 0, 0)
            _disown(msg.pack(header, SendMode.CHEAPER, RecvMode.EXPRESS))
            end_ev = msg.end_packing()
            _disown(end_ev)
            # Bound the flush: the ACK path can be faulty too.  On a stall
            # the message is aborted so its connection lock frees up.
            idx, _v = yield self.sim.any_of([
                end_ev, self.sim.timeout(self.policy.rto,
                                         name=f"rel.ack_flush.{transfer}")])
            if idx == 1:
                msg.abort()

    def _reacker(self):
        """Periodically re-ACK incomplete transfers with recent activity.

        Covers the two silent-loss cases: every copy of an abandon's ACK
        dying in transit, and attempts lost before their header (which
        produce no ACK at all).  Sleeps only while candidates exist — once
        every live transfer completes or goes quiet for ``reack_ttl`` the
        process parks on a kick event, so the simulation can drain.
        """
        policy = self.policy
        while True:
            live = [(t, st) for t, st in self._recvs.items()
                    if not st.done
                    and self.sim.now - st.last_activity < policy.reack_ttl]
            if not live:
                self._reack_kick = self.sim.event(
                    name=f"rel.reack_kick@{self.rank}")
                yield self._reack_kick
                self._reack_kick = None
                continue
            yield self.sim.timeout(policy.reack_interval,
                                   name=f"rel.reack@{self.rank}")
            for transfer, st in live:
                if (st.done or self.sim.now - st.last_activity
                        < policy.reack_interval):
                    continue    # saw an attempt this period: it was ACKed
                self.trace.emit(self.sim.now, "reliable", "reack",
                                rank=self.rank, transfer=transfer,
                                acked=st.acked)
                yield from self._send_ack(st.src, transfer, st.acked)

    @staticmethod
    def _as_bytes(payload) -> bytes:
        if isinstance(payload, Buffer):
            return payload.tobytes()
        if isinstance(payload, np.ndarray):
            return payload.tobytes()
        return bytes(payload)
