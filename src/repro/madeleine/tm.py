"""Transmission Modules: the protocol-facing side of a channel endpoint.

A TM binds one channel endpoint (channel × rank) to a NIC and exposes the
fragment-level operations the Buffer Management layer and the Generic TM sit
on: announce exchange, typed item sends (descriptors / payload fragments),
and access to the protocol's static buffer pools — the handle the gateway
uses for the zero-copy buffer-borrowing trick of §2.3.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from ..hw.fabric import NIC
from ..memory import Buffer, StaticBufferPool
from ..sim import Event
from .wire import ANNOUNCE_BYTES, Announce, decode_announce, encode_announce

if TYPE_CHECKING:  # pragma: no cover
    from .channel import RealChannel

__all__ = ["TransmissionModule"]


class TransmissionModule:
    """Fragment transport for one (channel, rank) pair."""

    def __init__(self, channel: "RealChannel", rank: int, nic: NIC) -> None:
        self.channel = channel
        self.rank = rank
        self.nic = nic
        self.protocol = nic.protocol

    # -- tags -----------------------------------------------------------------
    def announce_tag(self) -> tuple:
        # One FIFO announce stream per receiving endpoint (all senders).
        return ("ann", self.channel.id, self.rank)

    def body_tag(self, src: int, msg_id: int = 0) -> tuple:
        # In-order body stream per point-to-point connection, qualified by
        # message id so a slot posted for an abandoned attempt can never
        # steal fragments of a later (retried) message.
        return ("body", self.channel.id, src, self.rank, msg_id)

    def _peer_nic(self, rank: int) -> NIC:
        return self.channel.tm(rank).nic

    # -- pools (the gateway borrows from these, §2.3) ---------------------------
    @property
    def tx_pool(self) -> Optional[StaticBufferPool]:
        return self.nic.tx_pool

    @property
    def rx_pool(self) -> Optional[StaticBufferPool]:
        return self.nic.rx_pool

    # -- announce exchange ------------------------------------------------------
    def send_announce(self, dst: int, announce: Announce) -> Event:
        peer = self._peer_nic(dst)
        payload = Buffer.wrap(encode_announce(announce), label="announce")
        return self.nic.send(peer, peer_tm_announce_tag(self.channel, dst),
                             payload, meta={"type": "announce",
                                            "hop_src": self.rank})

    def post_announce(self, buffer: Buffer) -> Event:
        """Post a slot for the next announce arriving at this endpoint.

        The event value is ``(meta, nbytes)``; decode the buffer with
        :func:`decode_announce_buffer` afterwards.
        """
        if len(buffer) < ANNOUNCE_BYTES:
            raise ValueError("announce buffer too small")
        return self.channel.fabric.post_recv(self.nic, self.announce_tag(),
                                             buffer)

    # -- body items --------------------------------------------------------------
    def send_item(self, dst: int, payload: Optional[Buffer],
                  meta: dict[str, Any], nbytes: Optional[int] = None,
                  msg_id: int = 0) -> Event:
        peer = self._peer_nic(dst)
        tag = ("body", self.channel.id, self.rank, dst, msg_id)
        return self.nic.send(peer, tag, payload, meta=meta, nbytes=nbytes)

    def post_item(self, src: int, buffer: Optional[Buffer],
                  capacity: Optional[int] = None, msg_id: int = 0) -> Event:
        return self.channel.fabric.post_recv(self.nic,
                                             self.body_tag(src, msg_id),
                                             buffer, capacity=capacity)


def peer_tm_announce_tag(channel: "RealChannel", dst: int) -> tuple:
    return ("ann", channel.id, dst)


def decode_announce_buffer(buffer: Buffer) -> Announce:
    # Landing buffers may be over-provisioned; the codec wants the exact
    # record, so slice before decoding.
    return decode_announce(buffer.view(0, ANNOUNCE_BYTES).tobytes())
