"""Session management: the top-level user entry point.

A :class:`Session` owns a :class:`~repro.hw.topology.World` and the channels
created over it, and runs application processes.  Typical use::

    from repro.hw import build_world
    from repro.madeleine import Session

    world = build_world({"m0": ["myrinet"], "gw": ["myrinet", "sci"],
                         "s0": ["sci"]})
    session = Session(world)
    myri = session.channel("myrinet", ["m0", "gw"])
    sci = session.channel("sci", ["gw", "s0"])
    vch = session.virtual_channel([myri, sci], packet_size=64 << 10)

    def app_sender():
        msg = vch.endpoint(session.rank("m0")).begin_packing(session.rank("s0"))
        yield msg.pack(payload)
        yield msg.end_packing()

    session.spawn(app_sender())
    session.run()
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence, Union

from ..hw.params import GatewayParams
from ..hw.topology import World
from ..sim import Event, Process
from .channel import RealChannel
from .vchannel import DEFAULT_PACKET_SIZE, VirtualChannel

__all__ = ["Session"]


class Session:
    """Channels, virtual channels, and application processes over a world."""

    def __init__(self, world: World) -> None:
        self.world = world
        self.sim = world.sim
        self.channels: list[RealChannel] = []
        self.virtual_channels: list[VirtualChannel] = []

    # -- naming ------------------------------------------------------------------
    def rank(self, node_name: str) -> int:
        """Rank of a node by name."""
        return self.world.names[node_name].rank

    def ranks(self, names: Sequence[Union[str, int]]) -> list[int]:
        return [n if isinstance(n, int) else self.rank(n) for n in names]

    # -- channel construction ---------------------------------------------------
    def channel(self, protocol: str, members: Sequence[Union[str, int]],
                name: Optional[str] = None,
                adapter_index: int = 0) -> RealChannel:
        """Create a regular channel over ``protocol`` joining ``members``
        (ranks or node names)."""
        ch = RealChannel(self.world, protocol, self.ranks(members),
                         name=name, adapter_index=adapter_index)
        self.channels.append(ch)
        return ch

    def virtual_channel(self, channels: Sequence[RealChannel],
                        packet_size: int = DEFAULT_PACKET_SIZE,
                        gateway_params: Optional[GatewayParams] = None,
                        name: str = "",
                        multirail: bool = False) -> VirtualChannel:
        """Bundle real channels into a virtual channel with transparent
        forwarding on every gateway node (``multirail`` spreads messages
        over parallel equal-length routes, relaxing inter-message order)."""
        vch = VirtualChannel(channels, packet_size=packet_size,
                             gateway_params=gateway_params, name=name,
                             multirail=multirail)
        self.virtual_channels.append(vch)
        return vch

    # -- execution ------------------------------------------------------------------
    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Run an application process (a generator yielding sim events)."""
        return self.sim.process(gen, name=name or "app")

    def run(self, until: Optional[Union[float, Event]] = None):
        return self.sim.run(until)

    @property
    def now(self) -> float:
        return self.sim.now
