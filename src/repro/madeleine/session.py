"""Session management: the top-level user entry point.

A :class:`Session` owns a :class:`~repro.hw.topology.World` and the channels
created over it, runs application processes, and is the switch for the
observability layer (:mod:`repro.telemetry`).  Typical use::

    from repro.hw import build_world
    from repro.madeleine import Session

    world = build_world({"m0": ["myrinet"], "gw": ["myrinet", "sci"],
                         "s0": ["sci"]})
    with Session(world, packet_size=64 << 10, telemetry=True) as session:
        myri = session.channel("myrinet", ["m0", "gw"])
        sci = session.channel("sci", ["gw", "s0"])
        vch = session.virtual_channel([myri, sci])

        def app_sender():
            msg = vch.endpoint(session.rank("m0")).begin_packing(
                session.rank("s0"))
            yield msg.pack(payload)
            yield msg.end_packing()

        session.spawn(app_sender())
        session.run()
        print(session.metrics.total("gateway.messages_forwarded"))

Configuration is keyword-only: ``packet_size=`` sets the default virtual
channel packet size, ``telemetry=True/False`` enables/disables the world's
telemetry (``None`` leaves it as it is — off for a fresh world), and
``fault_plan=`` arms a :class:`~repro.faults.FaultPlan` before any channel
exists.  A closed session (after the ``with`` block, or ``close()``)
refuses to build channels or spawn processes; its telemetry stays readable
so results can be collected after the fact.
"""

from __future__ import annotations

from typing import (TYPE_CHECKING, Generator, Mapping, Optional, Sequence,
                    Union)

from ..hw.params import GatewayParams, PipelineConfig
from ..hw.topology import World
from ..sim import Event, Process
from ..sim.trace import TraceRecorder
from ..telemetry import MetricsRegistry, SpanTracker, Telemetry
from .channel import RealChannel
from .vchannel import DEFAULT_PACKET_SIZE, VirtualChannel

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.plan import FaultPlan
    from ..routing import StripePolicy
    from ..scenario import Scenario
    from .adaptive import TransportPolicy

__all__ = ["Session"]


class Session:
    """Channels, virtual channels, and application processes over a world."""

    def __init__(self, world: World, *,
                 packet_size: Optional[int] = None,
                 telemetry: Optional[bool] = None,
                 fault_plan: Optional["FaultPlan"] = None) -> None:
        self.world = world
        self.sim = world.sim
        self.channels: list[RealChannel] = []
        self.virtual_channels: list[VirtualChannel] = []
        self.default_packet_size = (DEFAULT_PACKET_SIZE if packet_size is None
                                    else packet_size)
        self._closed = False
        if telemetry is True:
            world.telemetry.enable()
        elif telemetry is False:
            world.telemetry.disable()
        elif telemetry is not None:
            raise TypeError("telemetry= takes True, False, or None")
        if fault_plan is not None:
            fault_plan.arm(world)

    @classmethod
    def from_scenario(cls, scenario: "Scenario", *,
                      telemetry: bool = True) -> "Session":
        """Build the whole stack a declarative scenario describes.

        Constructs the world (on the scenario's scheduler), every real
        channel of the topology, arms the fault plan (after the channels
        exist, so link-event targets validate; quiet plans stay unarmed to
        keep the injector-free hot path), and bundles the channels into one
        virtual channel with the scenario's policies.  The construction
        order is fixed — it is what makes fuzz replays bit-identical.

        The session exposes the result as ``session.channels`` /
        ``session.virtual_channels[0]``; drive traffic by hand or via
        :class:`repro.traffic.TrafficEngine`.
        """
        scenario.validate()
        from ..scenario import build_world
        world = build_world(scenario)
        session = cls(world, packet_size=scenario.packet_size,
                      telemetry=telemetry)
        channels = []
        for name, proto, members, aidx in scenario.topology.channel_specs():
            channels.append(session.channel(proto, members, name=name,
                                            adapter_index=aidx))
        if not scenario.quiet:
            scenario.faults.arm(world)
        pipeline = None
        if scenario.pipeline is not None:
            depth, credits, lockstep = scenario.pipeline
            pipeline = PipelineConfig(depth=depth, credits=credits,
                                      lockstep=lockstep)
        stripe = None
        if scenario.stripe is not None:
            from ..routing import StripePolicy
            stripe = StripePolicy(max_rails=scenario.stripe[0],
                                  min_stripe=scenario.stripe[1])
        adaptive = None
        if scenario.adaptive is not None:
            from .adaptive import TransportPolicy
            eager, high, low, balance = scenario.adaptive
            adaptive = TransportPolicy(eager_threshold=eager,
                                       restripe_high=high,
                                       restripe_low=low,
                                       gateway_balance=balance)
        session.virtual_channel(
            channels,
            gateway_params=GatewayParams(
                stall_timeout=scenario.gw_stall_timeout),
            multirail=scenario.multirail,
            header_batching=scenario.header_batching,
            pipeline=pipeline,
            stripe_policy=stripe,
            transport_policy=adaptive)
        return session

    # -- lifecycle ---------------------------------------------------------------
    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """End the session: no further channels or processes.

        Telemetry and the trace remain readable — closing is about
        construction, not about the collected results.
        """
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("session is closed")

    # -- observability -----------------------------------------------------------
    @property
    def telemetry(self) -> Telemetry:
        return self.world.telemetry

    @property
    def metrics(self) -> MetricsRegistry:
        """The world's metrics registry (empty snapshot while disabled)."""
        return self.world.telemetry.metrics

    @property
    def spans(self) -> SpanTracker:
        return self.world.telemetry.spans

    @property
    def trace(self) -> TraceRecorder:
        return self.world.trace

    # -- naming ------------------------------------------------------------------
    def rank(self, node_name: str) -> int:
        """Rank of a node by name."""
        return self.world.names[node_name].rank

    def ranks(self, names: Sequence[Union[str, int]]) -> list[int]:
        return [n if isinstance(n, int) else self.rank(n) for n in names]

    # -- channel construction ---------------------------------------------------
    def channel(self, protocol: str, members: Sequence[Union[str, int]],
                name: Optional[str] = None,
                adapter_index: Union[int, Mapping[Union[str, int], int]] = 0,
                ) -> RealChannel:
        """Create a regular channel over ``protocol`` joining ``members``
        (ranks or node names).  ``adapter_index`` selects which adapter each
        member binds: one index for all, or a per-member mapping (names or
        ranks) for multi-NIC nodes — unlisted members use adapter 0."""
        self._check_open()
        if isinstance(adapter_index, Mapping):
            adapter_index = {self.rank(k) if isinstance(k, str) else k: v
                             for k, v in adapter_index.items()}
        ch = RealChannel(self.world, protocol, self.ranks(members),
                         name=name, adapter_index=adapter_index)
        self.channels.append(ch)
        return ch

    def virtual_channel(self, channels: Sequence[RealChannel],
                        packet_size: Optional[int] = None,
                        gateway_params: Optional[GatewayParams] = None,
                        name: str = "",
                        multirail: bool = False,
                        header_batching: bool = False,
                        pipeline: Optional["PipelineConfig"] = None,
                        stripe_policy: Optional["StripePolicy"] = None,
                        transport_policy: Optional["TransportPolicy"] = None,
                        ) -> VirtualChannel:
        """Bundle real channels into a virtual channel with transparent
        forwarding on every gateway node (``multirail`` spreads messages
        over parallel equal-length routes, relaxing inter-message order;
        ``header_batching`` piggybacks GTM self-description records on
        payload fragments, §2.3; ``pipeline`` configures the N-deep
        credit-based gateway pipeline and the adaptive fragment tuner;
        ``stripe_policy`` enables transparent multirail striping — large
        paquets split across disjoint rails for aggregate bandwidth;
        ``transport_policy`` turns on the congestion-aware adaptive
        transport, docs/adaptive.md).
        ``packet_size=None`` uses the session default."""
        self._check_open()
        vch = VirtualChannel(channels,
                             packet_size=(self.default_packet_size
                                          if packet_size is None
                                          else packet_size),
                             gateway_params=gateway_params, name=name,
                             multirail=multirail,
                             header_batching=header_batching,
                             pipeline=pipeline,
                             stripe_policy=stripe_policy,
                             transport_policy=transport_policy)
        self.virtual_channels.append(vch)
        return vch

    # -- execution ------------------------------------------------------------------
    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Run an application process (a generator yielding sim events)."""
        self._check_open()
        return self.sim.process(gen, name=name or "app")

    def run(self, until: Optional[Union[float, Event]] = None):
        return self.sim.run(until)

    @property
    def now(self) -> float:
        return self.sim.now
