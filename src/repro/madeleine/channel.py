"""Channels and channel endpoints.

A *channel* is a closed communication world bound to one network protocol
and one adapter per member node (§2.1.2): in-order delivery is guaranteed
for point-to-point connections within a channel.  Every member rank owns an
:class:`Endpoint` holding its Transmission Module and an announce listener —
the message-handler thread that Madeleine runs per channel.

Channels created with ``special=True`` are the forwarding-only twins that
virtual channels add per network device (§2.2.2, Figure 3): gateways listen
on them, applications never do.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Mapping, Optional, Sequence, Union

from ..hw.topology import World
from ..memory import Buffer
from ..sim import Event, GatewayCrashed, Mutex, Queue
from .endpoint import MessageEndpoint
from .message import IncomingMessage, OutgoingMessage
from .tm import TransmissionModule
from .wire import ANNOUNCE_BYTES, decode_announce

if TYPE_CHECKING:  # pragma: no cover
    pass

__all__ = ["RealChannel", "Endpoint"]

_channel_seq = itertools.count()


class Endpoint(MessageEndpoint):
    """One rank's attachment to a channel."""

    def __init__(self, channel: "RealChannel", rank: int) -> None:
        self.channel = channel
        self.rank = rank
        self.node = channel.world.nodes[rank]
        nic = self.node.nic(channel.protocol.name,
                            channel.adapter_index_for(rank))
        self.tm = TransmissionModule(channel, rank, nic)
        #: (Announce, hop_src) pairs, in arrival order.
        self.incoming: Queue = Queue(channel.sim,
                                     name=f"{channel.id}@{rank}.in")
        #: per-destination connection locks: a Madeleine connection carries
        #: one message at a time, so every sender (application message or
        #: gateway forwarding worker) holds the lock for the whole message.
        self._conn_locks: dict[int, Mutex] = {}
        self._listener_dead = False
        self._listener_proc = channel.sim.process(
            self._listener(), name=f"listen:{channel.id}@{rank}")

    def connection_lock(self, dst: int) -> Mutex:
        if dst not in self._conn_locks:
            self._conn_locks[dst] = Mutex(
                self.channel.sim, name=f"{self.channel.id}:{self.rank}->{dst}")
        return self._conn_locks[dst]

    def _listener(self):
        """Repost an announce slot forever; queue each arriving announce."""
        while True:
            buf = Buffer.alloc(ANNOUNCE_BYTES, label="announce.rx")
            try:
                meta, _n = yield self.tm.post_announce(buf)
            except GatewayCrashed:
                # Our node went down: park until restart_listener() respawns.
                self._listener_dead = True
                return
            try:
                announce = decode_announce(buf.tobytes())
            except ValueError as exc:
                # Corrupted announce under an armed fault plan: not safely
                # forwardable, drop it (the sender's retry recovers).
                self.channel.fabric.trace.emit(
                    self.channel.sim.now, "fault", "announce_dropped",
                    channel=self.channel.id, rank=self.rank, reason=str(exc))
                continue
            yield self.incoming.put((announce, meta["hop_src"]))

    def restart_listener(self) -> None:
        """Respawn the announce listener if a node crash killed it."""
        if not self._listener_dead:
            return
        self._listener_dead = False
        self._listener_proc = self.channel.sim.process(
            self._listener(),
            name=f"listen:{self.channel.id}@{self.rank}")

    def drain_incoming(self) -> int:
        """Throw away announces queued before a crash; returns the count."""
        n = 0
        while True:
            got, _item = self.incoming.try_get()
            if not got:
                return n
            n += 1

    # -- the user-facing interface ---------------------------------------------
    def begin_packing(self, dst: int) -> OutgoingMessage:
        """``mad_begin_packing``: start a message to ``dst``."""
        return OutgoingMessage(self, dst)

    def begin_unpacking(self) -> Event:
        """``mad_begin_unpacking``: event yielding the next
        :class:`IncomingMessage` on this channel."""
        out = self.channel.sim.event()
        got = self.incoming.get()

        def build(ev: Event) -> None:
            announce, hop_src = ev.value
            out.succeed(IncomingMessage(self, announce, hop_src))

        got.add_callback(build)
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Endpoint {self.channel.id}@{self.rank}>"


class RealChannel:
    """A protocol-bound channel over a set of member ranks."""

    def __init__(self, world: World, protocol_name: str,
                 members: Sequence[int], name: Optional[str] = None,
                 adapter_index: Union[int, Mapping[int, int]] = 0,
                 special: bool = False) -> None:
        from ..hw.params import PROTOCOLS
        if len(set(members)) != len(members):
            raise ValueError("duplicate ranks in channel membership")
        if len(members) < 2:
            raise ValueError("a channel needs at least two members")
        self.world = world
        self.sim = world.sim
        self.fabric = world.fabric
        self.protocol = PROTOCOLS[protocol_name]
        self.members = tuple(members)
        #: which adapter each member binds: one index for everyone, or a
        #: rank -> index mapping for multi-NIC nodes (a dual-NIC node joins
        #: one channel per NIC; missing ranks default to adapter 0).
        self.adapter_index = (dict(adapter_index)
                              if isinstance(adapter_index, Mapping)
                              else adapter_index)
        self.special = special
        seq = next(_channel_seq)
        self.id = name or f"ch{seq}:{protocol_name}{'!fwd' if special else ''}"
        world.channel_ids.add(self.id)
        for rank in members:
            node = world.nodes.get(rank)
            if node is None:
                raise ValueError(f"unknown rank {rank}")
            if not node.has_protocol(protocol_name):
                raise ValueError(
                    f"node {node.name!r} has no {protocol_name!r} adapter")
        self.endpoints: dict[int, Endpoint] = {
            rank: Endpoint(self, rank) for rank in members
        }

    def adapter_index_for(self, rank: int) -> int:
        if isinstance(self.adapter_index, dict):
            return self.adapter_index.get(rank, 0)
        return self.adapter_index

    def endpoint(self, rank: int) -> Endpoint:
        try:
            return self.endpoints[rank]
        except KeyError:
            raise KeyError(f"rank {rank} is not a member of {self.id!r}") from None

    def tm(self, rank: int) -> TransmissionModule:
        return self.endpoint(rank).tm

    def __repr__(self) -> str:  # pragma: no cover
        kind = "special" if self.special else "regular"
        return f"<RealChannel {self.id} ({kind}) members={self.members}>"
