"""Convenience helpers over the raw pack/unpack interface.

The Madeleine API is deliberately low-level (incremental packing with
explicit flags); these generators cover the common whole-message cases so
applications and tests stay short::

    yield from send_arrays(vch.endpoint(src), dst, header, body)
    bufs = yield from recv_arrays(vch.endpoint(dst), len(header), len(body))
"""

from __future__ import annotations

from typing import Generator, Union

import numpy as np

from ..memory import Buffer
from .flags import RecvMode, SendMode

__all__ = ["send_arrays", "recv_arrays", "recv_message_into"]

Payload = Union[Buffer, bytes, bytearray, np.ndarray]


def send_arrays(endpoint, dst: int, *arrays: Payload,
                smode: SendMode = SendMode.CHEAPER,
                rmode: RecvMode = RecvMode.CHEAPER) -> Generator:
    """Pack ``arrays`` into one message to ``dst`` and flush it."""
    msg = endpoint.begin_packing(dst)
    for arr in arrays:
        msg.pack(arr, smode, rmode)
    yield msg.end_packing()


def recv_arrays(endpoint, *sizes: int,
                smode: SendMode = SendMode.CHEAPER,
                rmode: RecvMode = RecvMode.CHEAPER) -> Generator:
    """Receive one message of ``len(sizes)`` blocks; returns
    ``(origin, [Buffer, ...])``."""
    incoming = yield endpoint.begin_unpacking()
    bufs = []
    for n in sizes:
        _ev, buf = incoming.unpack(n, smode, rmode)
        bufs.append(buf)
    yield incoming.end_unpacking()
    return incoming.origin, bufs


def recv_message_into(endpoint, *buffers: Buffer,
                      smode: SendMode = SendMode.CHEAPER,
                      rmode: RecvMode = RecvMode.CHEAPER) -> Generator:
    """Receive one message directly into caller-owned buffers; returns the
    origin rank."""
    incoming = yield endpoint.begin_unpacking()
    for buf in buffers:
        incoming.unpack(into=buf, smode=smode, rmode=rmode)
    yield incoming.end_unpacking()
    return incoming.origin
