"""The Madeleine multi-device communication library, with the inter-device
data-forwarding mechanism of the paper.

Layering (Figure 1 + the paper's extension):

* :mod:`~repro.madeleine.tm` — Transmission Modules (protocol-facing);
* :mod:`~repro.madeleine.bmm` — Buffer Management Modules (dynamic eager /
  static chunked);
* :mod:`~repro.madeleine.channel` — regular channels and endpoints;
* :mod:`~repro.madeleine.message` — the ``mad_pack``/``mad_unpack`` interface;
* :mod:`~repro.madeleine.gtm` — the Generic Transmission Module
  (self-described, MTU-fragmented messages for heterogeneous routes);
* :mod:`~repro.madeleine.vchannel` — virtual channels (regular + special
  twins, routing, transparency);
* :mod:`~repro.madeleine.gateway` — the double-buffered forwarding pipeline;
* :mod:`~repro.madeleine.session` — the user entry point.
"""

import itertools

from .adaptive import TransportPolicy
from .bmm import UnpackMismatch, split_fragments
from .channel import Endpoint, RealChannel
from .endpoint import MessageEndpoint
from .flags import (RECV_CHEAPER, RECV_EXPRESS, SEND_CHEAPER, SEND_LATER,
                    SEND_SAFER, RecvMode, SendMode, validate_modes)
from .gateway import ForwardingWorker, GatewayError
from .gtm import GTMIncoming, GTMOutgoing
from .helpers import recv_arrays, recv_message_into, send_arrays
from .message import IncomingMessage, MessageStateError, OutgoingMessage
from .reliable import ReliableEndpoint, RetryPolicy
from .session import Session
from .stripe import StripedIncoming, StripedOutgoing
from .vchannel import DEFAULT_PACKET_SIZE, VChannelEndpoint, VirtualChannel
from .wire import (ANNOUNCE_BYTES, DESC_BYTES, EAGER_ENTRY_BYTES,
                   EAGER_HDR_BYTES, MODE_GTM, MODE_REGULAR, STRIPE_BYTES,
                   Announce, Descriptor, EagerEntry, EagerRecord,
                   StripeRecord, decode_announce, decode_descriptor,
                   decode_eager, decode_stripe, eager_record_bytes,
                   encode_announce, encode_descriptor, encode_eager,
                   encode_stripe)

def reset_global_ids() -> None:
    """Restart the process-wide id counters (messages, transfers, stripes,
    channels, forwarding workers).

    Ids are opaque labels, so sharing one counter across sessions is
    normally harmless — but fault-recovery code branches on wire *content*
    that embeds them (a stale fragment redelivered by a drop verdict, a
    corrupted record), so two runs of the same seeded scenario in one
    process can diverge after the first fault.  A replay harness that needs
    bit-identical schedules (the fuzzer, minimization) calls this before
    each run to start every session from the same id space.
    """
    from . import channel, gateway, gtm, message, reliable, stripe
    from ..sim import fluid
    message._msg_ids = itertools.count(1)
    gtm._msg_ids = itertools.count(1 << 20)
    stripe._stripe_ids = itertools.count(1)
    reliable._transfer_ids = itertools.count(1)
    channel._channel_seq = itertools.count()
    gateway.ForwardingWorker._ids = itertools.count()
    fluid.Flow._ids = itertools.count()


__all__ = [
    "reset_global_ids",
    "TransportPolicy",
    "UnpackMismatch", "split_fragments",
    "Endpoint", "RealChannel", "MessageEndpoint",
    "RECV_CHEAPER", "RECV_EXPRESS", "SEND_CHEAPER", "SEND_LATER",
    "SEND_SAFER", "RecvMode", "SendMode", "validate_modes",
    "ForwardingWorker", "GatewayError",
    "GTMIncoming", "GTMOutgoing",
    "recv_arrays", "recv_message_into", "send_arrays",
    "IncomingMessage", "MessageStateError", "OutgoingMessage",
    "ReliableEndpoint", "RetryPolicy",
    "Session",
    "StripedIncoming", "StripedOutgoing",
    "DEFAULT_PACKET_SIZE", "VChannelEndpoint", "VirtualChannel",
    "ANNOUNCE_BYTES", "DESC_BYTES", "EAGER_ENTRY_BYTES", "EAGER_HDR_BYTES",
    "MODE_GTM", "MODE_REGULAR", "STRIPE_BYTES", "Announce", "Descriptor",
    "EagerEntry", "EagerRecord", "StripeRecord",
    "decode_announce", "decode_descriptor", "decode_eager", "decode_stripe",
    "eager_record_bytes", "encode_announce", "encode_descriptor",
    "encode_eager", "encode_stripe",
]
