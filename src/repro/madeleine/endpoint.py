"""The unified message-endpoint protocol.

Madeleine's user interface is the packing/unpacking state machine (§2.1.1):

* sender: ``begin_packing(dst)`` → message, then ``pack(...)`` zero or more
  times, then ``end_packing()``;
* receiver: ``begin_unpacking()`` → message, then ``unpack(...)`` mirroring
  the sender's pack calls, then ``end_unpacking()``.

Historically the two endpoint flavors exposed divergent shapes: a
:class:`~repro.madeleine.channel.Endpoint` (one rank on one real channel)
had ``begin_packing(dst)``, while a virtual channel was driven through
``VirtualChannel.begin_packing(src, dst)`` — application code had to know
which kind of channel it was holding.  :class:`MessageEndpoint` is the
single protocol both now implement: obtain an endpoint with
``channel.endpoint(rank)`` (real or virtual, same spelling) and the rest of
the message lifecycle is identical.  The messages an endpoint hands out
differ in concrete type (:class:`~repro.madeleine.message.OutgoingMessage`
vs :class:`~repro.madeleine.gtm.GTMOutgoing`, and their incoming twins) but
share the pack/unpack surface, so callers never branch on channel kind —
the paper's transparency claim, stated as an interface.
"""

from __future__ import annotations

import abc

from ..sim import Event

__all__ = ["MessageEndpoint"]


class MessageEndpoint(abc.ABC):
    """One rank's attachment to a (real or virtual) channel.

    Concrete endpoints also expose ``rank`` (the local rank) and an
    ``incoming`` queue; this ABC pins down only the message lifecycle
    entry points application code should use.
    """

    @abc.abstractmethod
    def begin_packing(self, dst: int):
        """``mad_begin_packing``: start an outgoing message to ``dst``.

        Returns a message object with ``pack(data, smode, rmode)`` and
        ``end_packing()``.
        """

    @abc.abstractmethod
    def begin_unpacking(self) -> Event:
        """``mad_begin_unpacking``: event yielding the next incoming
        message, which mirrors the sender with ``unpack(...)`` and
        ``end_unpacking()``."""
