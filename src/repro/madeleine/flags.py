"""Madeleine pack/unpack semantics flags.

``mad_pack``/``mad_unpack`` take a pair of flags describing *when* the
library may move the data and *when* the user may reuse/inspect the buffer
(Madeleine II interface; see [1] in the paper):

Send modes
  * ``SEND_SAFER`` — the library copies the data immediately; the user may
    modify the buffer as soon as ``pack`` returns.
  * ``SEND_LATER`` — the library reads the buffer only at ``end_packing``
    time; the user may modify it up to that point.
  * ``SEND_CHEAPER`` — the library chooses the cheapest strategy for the
    underlying network (the default); the buffer must stay untouched until
    ``end_packing``.

Receive modes
  * ``RECV_EXPRESS`` — the data is guaranteed available when ``unpack``
    returns; mandatory for data that the application needs in order to
    interpret the rest of the message.
  * ``RECV_CHEAPER`` — the data is only guaranteed after ``end_unpacking``;
    lets the library pick the cheapest strategy.

The combination ``SEND_LATER`` + ``RECV_EXPRESS`` is contradictory (the
receiver would wait for data the sender has not agreed to emit yet) and is
rejected, as in Madeleine.
"""

from __future__ import annotations

import enum

__all__ = [
    "SendMode", "RecvMode",
    "SEND_SAFER", "SEND_LATER", "SEND_CHEAPER",
    "RECV_EXPRESS", "RECV_CHEAPER",
    "validate_modes",
]


class SendMode(enum.IntEnum):
    SAFER = 0
    LATER = 1
    CHEAPER = 2


class RecvMode(enum.IntEnum):
    EXPRESS = 0
    CHEAPER = 1


SEND_SAFER = SendMode.SAFER
SEND_LATER = SendMode.LATER
SEND_CHEAPER = SendMode.CHEAPER

RECV_EXPRESS = RecvMode.EXPRESS
RECV_CHEAPER = RecvMode.CHEAPER


def validate_modes(smode: SendMode, rmode: RecvMode) -> None:
    """Reject contradictory flag pairs."""
    smode = SendMode(smode)
    rmode = RecvMode(rmode)
    if smode == SendMode.LATER and rmode == RecvMode.EXPRESS:
        raise ValueError(
            "send_LATER data cannot be received EXPRESS: the sender may "
            "delay emission until end_packing")
