"""Buffer Management Modules (§2.1.1).

Two BMM families are modelled, matching the two disciplines the paper
describes:

* :class:`EagerDynamicBMM` / :class:`EagerDynamicBMMRx` — dynamic buffers:
  each packed user buffer is referenced directly (zero-copy) and transmitted
  eagerly as its own fragment(s).  Used by BIP/Myrinet and TCP.
* :class:`StaticChunkBMM` / :class:`StaticChunkBMMRx` — static buffers: user
  data is copied into protocol-provided chunks (mapped SCI segments, SBP
  kernel buffers) which are flushed when full or at an EXPRESS/end boundary.
  This is an *aggregation scheme*: consecutive small buffers share a chunk.

The two families group buffers **differently**, which is precisely why raw
inter-device forwarding is impossible and the Generic TM exists (§2.2.2).

BMM methods are generators executed in pack/unpack order by the message's
executor process (see :mod:`repro.madeleine.message`); they yield simulation
events (pool acquisitions, fragment completions).

Endpoint copies performed by the static BMM are *accounted* but charged no
simulated time: the real SISCI module overlaps the copy into the mapped
segment with the PIO emission, so its cost is already inside the calibrated
per-network curve (see EXPERIMENTS.md).  Gateway copies, by contrast, are
serial and charged (see :mod:`repro.madeleine.gateway`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from ..memory import Buffer
from ..sim import Event
from .flags import RecvMode, SendMode, validate_modes

if TYPE_CHECKING:  # pragma: no cover
    from .tm import TransmissionModule

__all__ = [
    "UnpackMismatch",
    "EagerDynamicBMM", "EagerDynamicBMMRx",
    "StaticChunkBMM", "StaticChunkBMMRx",
    "make_sender_bmm", "make_receiver_bmm",
    "split_fragments",
]


class UnpackMismatch(RuntimeError):
    """The unpack sequence does not mirror the pack sequence."""


def split_fragments(length: int, mtu: int) -> list[tuple[int, int]]:
    """Deterministic (offset, size) split of a buffer into <= mtu pieces.

    Shared by senders and receivers so posted slots always line up with
    emitted fragments.
    """
    if mtu < 1:
        raise ValueError("mtu must be >= 1")
    return [(off, min(mtu, length - off)) for off in range(0, max(length, 1), mtu)] \
        if length > 0 else []


class _SenderBase:
    def __init__(self, tm: "TransmissionModule", dst: int,
                 msg_id: int = 0) -> None:
        self.tm = tm
        self.dst = dst
        self.msg_id = msg_id
        self.sim = tm.channel.sim
        self.accounting = tm.channel.fabric.accounting
        self.aborted = False
        self._send_events: list[Event] = []
        self._deferred: list[tuple[Buffer, SendMode, RecvMode]] = []

    def _send(self, payload, meta: dict) -> Event:
        return self.tm.send_item(self.dst, payload, meta=meta,
                                 msg_id=self.msg_id)

    def op_pack(self, buffer: Buffer, smode: SendMode,
                rmode: RecvMode) -> Generator:
        validate_modes(smode, rmode)
        if smode == SendMode.LATER:
            self._deferred.append((buffer, smode, rmode))
            return
        yield from self._emit(buffer, smode, rmode)

    def op_finalize(self) -> Generator:
        for buffer, _smode, rmode in self._deferred:
            if self.aborted:
                break
            yield from self._emit(buffer, SendMode.CHEAPER, rmode)
        self._deferred.clear()
        yield from self._flush_tail()
        if self._send_events:
            yield self.sim.all_of(self._send_events)
        self._send_events.clear()

    # subclass hooks ---------------------------------------------------------
    def _emit(self, buffer: Buffer, smode: SendMode,
              rmode: RecvMode) -> Generator:
        raise NotImplementedError

    def _flush_tail(self) -> Generator:
        return
        yield  # pragma: no cover


class EagerDynamicBMM(_SenderBase):
    """Dynamic buffers, sent eagerly and zero-copy (one fragment per piece)."""

    def _emit(self, buffer: Buffer, smode: SendMode,
              rmode: RecvMode) -> Generator:
        if smode == SendMode.SAFER:
            # The user may touch the buffer right after pack(): shadow it.
            shadow = Buffer.alloc(len(buffer), label="bmm.safer")
            shadow.copy_from(buffer, self.accounting, self.sim.now, "bmm.safer")
            buffer = shadow
        for off, size in split_fragments(len(buffer), self.tm.protocol.max_mtu):
            if self.aborted:
                return
            ev = self._send(buffer.view(off, off + size),
                            meta={"type": "frag"})
            self._send_events.append(ev)
        return
        yield  # pragma: no cover - purely synchronous emission


class EagerDynamicBMMRx:
    """Receiver mirror of :class:`EagerDynamicBMM`."""

    def __init__(self, tm: "TransmissionModule", src: int,
                 msg_id: int = 0) -> None:
        self.tm = tm
        self.src = src
        self.msg_id = msg_id
        self.sim = tm.channel.sim
        self._recv_events: list[Event] = []
        self._deferred: list[tuple[Buffer, RecvMode]] = []

    def op_unpack(self, buffer: Buffer, smode: SendMode,
                  rmode: RecvMode) -> Generator:
        validate_modes(smode, rmode)
        if smode == SendMode.LATER:
            self._deferred.append((buffer, rmode))
            return
        done = self._post(buffer)
        if rmode == RecvMode.EXPRESS:
            yield done
        else:
            self._recv_events.append(done)

    def op_finalize(self) -> Generator:
        for buffer, _rmode in self._deferred:
            self._recv_events.append(self._post(buffer))
        self._deferred.clear()
        if self._recv_events:
            yield self.sim.all_of(self._recv_events)
        self._recv_events.clear()

    def _post(self, buffer: Buffer) -> Event:
        pieces = split_fragments(len(buffer), self.tm.protocol.max_mtu)
        events = []
        for off, size in pieces:
            slot_ev = self.tm.post_item(self.src, buffer.view(off, off + size),
                                        msg_id=self.msg_id)
            events.append(_checked(self.sim, slot_ev, size))
        return self.sim.all_of(events) if events else self.sim.timeout(0)


def _checked(sim, slot_ev: Event, expected: int) -> Event:
    """Fail if the arriving fragment is shorter than the posted piece."""
    out = sim.event()

    def verify(ev: Event) -> None:
        if not ev.ok:
            ev.defuse()
            out.fail(ev.value)
            return
        _meta, n = ev.value
        if n != expected:
            out.fail(UnpackMismatch(
                f"expected a {expected}B fragment, received {n}B — unpack "
                f"sequence does not mirror the pack sequence"))
        else:
            out.succeed(n)

    slot_ev.add_callback(verify)
    return out


class StaticChunkBMM(_SenderBase):
    """Static buffers: copy into protocol chunks, flush on boundaries."""

    def __init__(self, tm: "TransmissionModule", dst: int,
                 msg_id: int = 0) -> None:
        super().__init__(tm, dst, msg_id)
        if tm.tx_pool is None:
            raise RuntimeError(
                f"protocol {tm.protocol.name!r} has no static tx pool")
        self.chunk_size = min(tm.protocol.chunk_size, tm.tx_pool.block_size)
        self._block: Optional[Buffer] = None
        self._offset = 0

    def _emit(self, buffer: Buffer, smode: SendMode,
              rmode: RecvMode) -> Generator:
        remaining = len(buffer)
        pos = 0
        while remaining > 0 and not self.aborted:
            if self._block is None:
                block = yield self.tm.tx_pool.acquire()
                if self.aborted:
                    # Aborted while waiting for the block: nothing staged in
                    # it yet, hand it straight back.
                    self.tm.tx_pool.release(block)
                    return
                self._block = block
                self._offset = 0
            space = self.chunk_size - self._offset
            take = min(space, remaining)
            dst_view = self._block.view(self._offset, self._offset + take)
            dst_view.copy_from(buffer.view(pos, pos + take), self.accounting,
                               self.sim.now, "bmm.chunk_in")
            self._offset += take
            pos += take
            remaining -= take
            if self._offset >= self.chunk_size:
                self._flush()
        if rmode == RecvMode.EXPRESS:
            # EXPRESS data must be on the wire when the matching unpack runs.
            self._flush()

    def _flush(self) -> None:
        if self._block is None or self._offset == 0:
            return
        block, used = self._block, self._offset
        self._block, self._offset = None, 0
        if self.aborted:
            # A post-abort send would never match and would wedge the
            # executor's final all_of; just recycle the block.
            self.tm.tx_pool.release(block)
            return
        ev = self._send(block.view(0, used), meta={"type": "chunk"})
        pool = self.tm.tx_pool
        ev.add_callback(lambda _e: pool.release(block))
        self._send_events.append(ev)

    def _flush_tail(self) -> Generator:
        self._flush()
        return
        yield  # pragma: no cover


class StaticChunkBMMRx:
    """Receiver mirror of :class:`StaticChunkBMM`.

    Consumes inbound chunks sequentially; does not need to predict the
    sender's flush points because each posted pool block accepts whatever
    chunk length actually arrives.
    """

    def __init__(self, tm: "TransmissionModule", src: int,
                 msg_id: int = 0) -> None:
        self.tm = tm
        self.src = src
        self.msg_id = msg_id
        self.sim = tm.channel.sim
        self.accounting = tm.channel.fabric.accounting
        if tm.rx_pool is None:
            raise RuntimeError(
                f"protocol {tm.protocol.name!r} has no static rx pool")
        self._block: Optional[Buffer] = None
        self._length = 0
        self._offset = 0
        self._deferred: list[tuple[Buffer, RecvMode]] = []

    def op_unpack(self, buffer: Buffer, smode: SendMode,
                  rmode: RecvMode) -> Generator:
        validate_modes(smode, rmode)
        if smode == SendMode.LATER:
            self._deferred.append((buffer, rmode))
            return
        yield from self._consume(buffer)

    def op_finalize(self) -> Generator:
        for buffer, _rmode in self._deferred:
            yield from self._consume(buffer)
        self._deferred.clear()
        if self._block is not None and self._offset < self._length:
            leftover = self._length - self._offset
            raise UnpackMismatch(
                f"{leftover}B left in the final chunk: unpack sequence does "
                f"not mirror the pack sequence")
        self._release()

    def _consume(self, buffer: Buffer) -> Generator:
        remaining = len(buffer)
        pos = 0
        while remaining > 0:
            if self._block is None or self._offset >= self._length:
                self._release()
                self._block = yield self.tm.rx_pool.acquire()
                ev = self.tm.post_item(self.src, self._block,
                                       msg_id=self.msg_id)
                _meta, n = yield ev
                self._length = n
                self._offset = 0
            take = min(self._length - self._offset, remaining)
            dst_view = buffer.view(pos, pos + take)
            dst_view.copy_from(
                self._block.view(self._offset, self._offset + take),
                self.accounting, self.sim.now, "bmm.chunk_out")
            self._offset += take
            pos += take
            remaining -= take

    def _release(self) -> None:
        if self._block is not None and (self._offset >= self._length):
            self.tm.rx_pool.release(self._block)
            self._block = None
            self._length = self._offset = 0


class GatherDynamicBMM(_SenderBase):
    """Dynamic buffers with scatter/gather aggregation (§2.1.1).

    Consecutive small buffers are grouped — zero-copy, as a gather list —
    into one wire fragment of up to ``max_mtu`` bytes, saving the
    per-fragment fixed cost.  Groups close when the next buffer would not
    fit, at an EXPRESS boundary, or at end_packing.  Buffers of at least
    one MTU bypass grouping and are sent as solo fragments.
    """

    def __init__(self, tm: "TransmissionModule", dst: int,
                 msg_id: int = 0) -> None:
        super().__init__(tm, dst, msg_id)
        self.mtu = tm.protocol.max_mtu
        self._group: list[Buffer] = []
        self._group_bytes = 0

    def _emit(self, buffer: Buffer, smode: SendMode,
              rmode: RecvMode) -> Generator:
        if self.aborted:
            return
        if smode == SendMode.SAFER:
            shadow = Buffer.alloc(len(buffer), label="bmm.safer")
            shadow.copy_from(buffer, self.accounting, self.sim.now, "bmm.safer")
            buffer = shadow
        if len(buffer) >= self.mtu:
            self._flush_group()
            for off, size in split_fragments(len(buffer), self.mtu):
                ev = self._send(buffer.view(off, off + size),
                                meta={"type": "frag"})
                self._send_events.append(ev)
        else:
            if self._group_bytes + len(buffer) > self.mtu:
                self._flush_group()
            self._group.append(buffer)
            self._group_bytes += len(buffer)
            if rmode == RecvMode.EXPRESS:
                self._flush_group()
        return
        yield  # pragma: no cover - purely synchronous emission

    def _flush_group(self) -> None:
        if not self._group:
            return
        group, self._group = self._group, []
        self._group_bytes = 0
        if self.aborted:
            return
        ev = self._send(group, meta={"type": "frag"})
        self._send_events.append(ev)

    def _flush_tail(self) -> Generator:
        self._flush_group()
        return
        yield  # pragma: no cover


class GatherDynamicBMMRx:
    """Receiver mirror of :class:`GatherDynamicBMM`: replays the same
    grouping decisions over the unpack sequence and posts scatter lists."""

    def __init__(self, tm: "TransmissionModule", src: int,
                 msg_id: int = 0) -> None:
        self.tm = tm
        self.src = src
        self.msg_id = msg_id
        self.sim = tm.channel.sim
        self.mtu = tm.protocol.max_mtu
        self._recv_events: list[Event] = []
        self._deferred: list[tuple[Buffer, RecvMode]] = []
        self._group: list[Buffer] = []
        self._group_bytes = 0

    def op_unpack(self, buffer: Buffer, smode: SendMode,
                  rmode: RecvMode) -> Generator:
        validate_modes(smode, rmode)
        if smode == SendMode.LATER:
            self._deferred.append((buffer, rmode))
            return
        ev = self._mirror(buffer, rmode)
        if rmode == RecvMode.EXPRESS:
            yield ev

    def op_finalize(self) -> Generator:
        for buffer, rmode in self._deferred:
            self._mirror(buffer, rmode)
        self._deferred.clear()
        self._flush_group()
        if self._recv_events:
            yield self.sim.all_of(self._recv_events)
        self._recv_events.clear()

    def _mirror(self, buffer: Buffer, rmode: RecvMode) -> Event:
        """Apply the sender's grouping rule; returns an event that triggers
        once this buffer's group (or solo fragments) have landed."""
        if len(buffer) >= self.mtu:
            self._flush_group()
            events = []
            for off, size in split_fragments(len(buffer), self.mtu):
                slot_ev = self.tm.post_item(self.src,
                                            buffer.view(off, off + size),
                                            msg_id=self.msg_id)
                events.append(_checked(self.sim, slot_ev, size))
            done = self.sim.all_of(events)
            self._recv_events.append(done)
            return done
        if self._group_bytes + len(buffer) > self.mtu:
            self._flush_group()
        self._group.append(buffer)
        self._group_bytes += len(buffer)
        if rmode == RecvMode.EXPRESS:
            return self._flush_group()
        # CHEAPER: the group may still grow; completion is guaranteed by
        # op_finalize, which flushes and waits for everything.
        return self.sim.timeout(0)

    def _flush_group(self) -> Event:
        if not self._group:
            return self.sim.timeout(0)
        group, self._group = self._group, []
        expected, self._group_bytes = self._group_bytes, 0
        slot_ev = self.tm.post_item(self.src, group, msg_id=self.msg_id)
        done = _checked(self.sim, slot_ev, expected)
        self._recv_events.append(done)
        return done


def make_sender_bmm(tm: "TransmissionModule", dst: int, msg_id: int = 0):
    if tm.protocol.tx_static:
        return StaticChunkBMM(tm, dst, msg_id)
    if tm.protocol.gather:
        return GatherDynamicBMM(tm, dst, msg_id)
    return EagerDynamicBMM(tm, dst, msg_id)


def make_receiver_bmm(tm: "TransmissionModule", src: int, msg_id: int = 0):
    # Grouping is a *sender-side* decision: mirror what the peer's sender
    # BMM does, which is determined by the (shared) protocol parameters.
    if tm.protocol.tx_static:
        return StaticChunkBMMRx(tm, src, msg_id)
    if tm.protocol.gather:
        return GatherDynamicBMMRx(tm, src, msg_id)
    return EagerDynamicBMMRx(tm, src, msg_id)
