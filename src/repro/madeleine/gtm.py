"""The Generic Transmission Module (§2.2.2, §2.3).

Messages that travel across at least two different networks bypass the
regular per-protocol BMMs: both the origin and the final receiver use the
GTM, which guarantees that the data is grouped identically on both ends
(no ungroup/regroup cost at gateways) and adds the self-description the
gateways need.

Wire protocol per message (§2.3):

1. announce carrying (mode=GTM, origin, final destination, MTU, msg id);
2. per packed buffer: a 16-byte descriptor record (length + emission and
   reception constraints), then the buffer fragmented into MTU-sized pieces;
3. an empty descriptor terminating the message.

Zero-copy rules at the endpoints: on dynamic-buffer protocols fragments are
views of user memory; on static-buffer protocols the origin stages each
fragment in a protocol block (accounted, overlapped — see EXPERIMENTS.md)
and the final receiver copies out of the landing block.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Optional

from ..memory import Buffer
from ..sim import Event
from .bmm import UnpackMismatch, split_fragments
from .flags import RecvMode, SendMode, validate_modes
from .message import MessageStateError, _ExecutorMixin, _as_buffer
from .wire import (DESC_BYTES, EAGER_HDR_BYTES, MODE_GTM, STRIPE_BYTES,
                   Announce, Descriptor, StripeRecord, decode_descriptor,
                   decode_eager, decode_stripe, eager_record_bytes,
                   encode_descriptor, encode_eager_table, encode_stripe)

if TYPE_CHECKING:  # pragma: no cover
    from .channel import Endpoint
    from .tm import TransmissionModule
    from .vchannel import VirtualChannel

__all__ = ["GTMOutgoing", "GTMIncoming"]

_msg_ids = itertools.count(1 << 20)   # disjoint from regular message ids


class _UnpackAborted(Exception):
    """Internal: the incoming message was abandoned by recovery code."""


class GTMOutgoing(_ExecutorMixin):
    """Packs a message onto the first hop of a multi-network route."""

    def __init__(self, vchannel: "VirtualChannel", src: int, dst: int,
                 route=None, stripe: Optional[StripeRecord] = None,
                 eager_threshold: int = 0) -> None:
        route = route if route is not None else vchannel.routes.route(src, dst)
        if len(route) < 2 and stripe is None:
            raise ValueError("GTM is only used for forwarded messages")
        self.vchannel = vchannel
        self.src = src
        self.dst = dst
        #: this message is one rail of a multirail stripe group.  Header
        #: batching is forced off on stripes: the reassembly gathers the
        #: per-rail descriptors *before* any payload so it can carve the
        #: destination buffer, which a piggybacked head would defeat.
        self.stripe = stripe
        self.batched = vchannel.header_batching and stripe is None
        # Static negotiation or the adaptive fragment tuner, per the
        # virtual channel's pipeline config; the announce carries the
        # result so receivers and gateways follow without renegotiating.
        self.mtu = vchannel.effective_mtu(route)
        hop0 = route[0]
        # First hop targets a gateway on forwarded routes: use the special
        # channel.  A *direct* rail (dual-NIC striping) has no gateway
        # ahead and stays on the regular channel.
        wire_channel = (vchannel.special_twin(hop0.channel)
                        if len(route) > 1 else hop0.channel)
        self.tm: "TransmissionModule" = wire_channel.tm(src)
        self.hop_dst = hop0.dst
        self.msg_id = next(_msg_ids)
        self.accounting = self.tm.channel.fabric.accounting
        self.aborted = False
        self._send_events: list[Event] = []
        self._deferred: list[tuple[Buffer, RecvMode]] = []
        self._init_executor(self.tm.channel.sim, f"gtm-out:{self.msg_id}")
        # One in-flight message per (first-hop) connection, as in Madeleine.
        lock = wire_channel.endpoint(src).connection_lock(hop0.dst)
        self._lock = lock
        self._hops_left = len(route) - 1
        self._finished.add_callback(lambda _ev: lock.release())
        #: adaptive eager/rendezvous switch: while this is a list the
        #: message has not committed to a wire path — packs accumulate here
        #: and the announce is withheld until the size decision is made.
        self._eager_pending: Optional[list] = None
        if eager_threshold > 0 and stripe is None:
            self._eager_budget = min(eager_threshold, self.mtu)
            if self._eager_budget >= EAGER_HDR_BYTES:
                self._eager_pending = []
                return
        self._submit(self._announce_op(lock, self._rendezvous_announce()))

    def _rendezvous_announce(self) -> Announce:
        return Announce(mode=MODE_GTM, origin=self.src, final_dst=self.dst,
                        mtu=self.mtu, msg_id=self.msg_id,
                        hops_left=self._hops_left, batched=self.batched,
                        striped=self.stripe is not None)

    def _announce_op(self, lock, announce: Announce):
        yield lock.acquire()
        yield self.tm.send_announce(self.hop_dst, announce)
        if self.stripe is not None:
            # The stripe record is the rail's first body item: it names the
            # reassembly group this rail belongs to.  Gateways forward it
            # like any other record.
            self._send_events.append(self._send(
                Buffer.wrap(encode_stripe(self.stripe)),
                meta={"type": "stripe"}))

    # -- public interface (mirrors OutgoingMessage) ----------------------------
    def pack(self, data, smode: SendMode = SendMode.CHEAPER,
             rmode: RecvMode = RecvMode.CHEAPER) -> Event:
        buf = _as_buffer(data)
        if self._eager_pending is not None:
            return self._pack_eager(buf, SendMode(smode), RecvMode(rmode))
        return self._submit(self._op_pack(buf, SendMode(smode), RecvMode(rmode)))

    def end_packing(self) -> Event:
        if self._eager_pending is not None:
            pending, self._eager_pending = self._eager_pending, None
            return self._submit_final(self._op_eager_finalize(pending))
        return self._submit_final(self._op_finalize())

    def abort(self) -> None:
        """Stop emitting; blackhole whatever is already queued on the fabric
        so the executor drains and releases the first-hop connection lock."""
        self.aborted = True
        self.tm.channel.fabric.blackhole_pending_sends(
            self.tm.channel.id, self.msg_id)

    # -- eager path (adaptive transport) -----------------------------------------
    def _pack_eager(self, buf: Buffer, smode: SendMode, rmode: RecvMode) -> Event:
        """Buffer a pack while the message is still an eager candidate.

        The bytes are emitted as one wire record at :meth:`end_packing`; if
        the accumulated record would outgrow the eager budget, the message
        commits to the rendezvous path instead and the buffered packs are
        replayed through the regular ops, in order.
        """
        if self._closed:
            raise MessageStateError("message already finalized")
        validate_modes(smode, rmode)
        if smode == SendMode.SAFER and not self.tm.protocol.tx_static:
            shadow = Buffer.alloc(len(buf), label="gtm.safer")
            shadow.copy_from(buf, self.accounting, self.sim.now, "gtm.safer")
            buf = shadow
        self._eager_pending.append((buf, smode, rmode))
        if (eager_record_bytes(len(b) for b, _s, _r in self._eager_pending)
                > self._eager_budget):
            self._switch_to_rendezvous()
        # The pack is accepted at once: emission happens at end_packing
        # (eager) or was just replayed onto the executor (rendezvous).
        ev = self.sim.event(name=f"gtm-out:{self.msg_id}.eagerpack")
        ev.succeed()
        return ev

    def _switch_to_rendezvous(self) -> None:
        pending, self._eager_pending = self._eager_pending, None
        self._submit(self._announce_op(self._lock, self._rendezvous_announce()))
        for buf, smode, rmode in pending:
            ev = self._submit(self._op_pack(buf, smode, rmode))
            # Nobody waits on replayed pack events; keep a failure (abort
            # during emission) from escaping through the kernel.
            ev.add_callback(lambda e: None if e.ok else e.defuse())

    def _op_eager_finalize(self, pending):
        # The receiver consumes LATER unpacks at end_unpacking: order the
        # record the way the receiving side will read it.
        pending = ([e for e in pending if e[1] != SendMode.LATER]
                   + [e for e in pending if e[1] == SendMode.LATER])
        yield self._lock.acquire()
        if self.aborted:
            return
        announce = Announce(mode=MODE_GTM, origin=self.src,
                            final_dst=self.dst, mtu=self.mtu,
                            msg_id=self.msg_id, hops_left=self._hops_left,
                            eager=True)
        yield self.tm.send_announce(self.hop_dst, announce)
        table = encode_eager_table((len(buf), smode, rmode)
                                   for buf, smode, rmode in pending)
        total = len(table) + sum(len(buf) for buf, _s, _r in pending)
        if self.tm.protocol.tx_static:
            block = yield self.tm.tx_pool.acquire()
            if self.aborted:
                self.tm.tx_pool.release(block)
                return
            target = block
        else:
            block = None
            target = Buffer.alloc(total, label="gtm.eager")
        target.view(0, len(table)).copy_from(
            Buffer.wrap(table), self.accounting, self.sim.now, "gtm.eager")
        off = len(table)
        for buf, _smode, _rmode in pending:
            if len(buf):
                target.view(off, off + len(buf)).copy_from(
                    buf, self.accounting, self.sim.now, "gtm.eager")
            off += len(buf)
        ev = self._send(target.view(0, total), meta={"type": "eagr"})
        if block is not None:
            pool = self.tm.tx_pool
            ev.add_callback(lambda _e, b=block: pool.release(b))
        self._send_events.append(ev)
        self.vchannel._m_eager_sends.inc()
        yield self.sim.all_of(self._send_events)
        self._send_events.clear()

    # -- ops ---------------------------------------------------------------------
    def _op_pack(self, buf: Buffer, smode: SendMode, rmode: RecvMode):
        validate_modes(smode, rmode)
        if smode == SendMode.LATER:
            self._deferred.append((buf, rmode))
            return
        yield from self._emit(buf, smode, rmode)

    def _send(self, payload, meta: dict) -> Event:
        return self.tm.send_item(self.hop_dst, payload, meta=meta,
                                 msg_id=self.msg_id)

    def _emit(self, buf: Buffer, smode: SendMode, rmode: RecvMode):
        if self.aborted:
            return
        desc = Descriptor(length=len(buf), smode=smode, rmode=rmode)
        desc_buf = Buffer.wrap(encode_descriptor(desc))
        if self.batched:
            # Header batching (§2.3): the descriptor rides in the same wire
            # record as the head of the buffer instead of costing its own
            # send.  The head is shortened so the combined record still fits
            # one MTU (gateways stage whole records in MTU-sized blocks).
            head = min(len(buf), self.mtu - DESC_BYTES)
        else:
            head = 0
            self._send_events.append(
                self._send(desc_buf, meta={"type": "desc"}))
        if smode == SendMode.SAFER and not self.tm.protocol.tx_static:
            shadow = Buffer.alloc(len(buf), label="gtm.safer")
            shadow.copy_from(buf, self.accounting, self.sim.now, "gtm.safer")
            buf = shadow
        if self.batched:
            if self.aborted:
                return
            if self.tm.protocol.tx_static and head:
                block = yield self.tm.tx_pool.acquire()
                if self.aborted:
                    self.tm.tx_pool.release(block)
                    return
                block.view(0, head).copy_from(
                    buf.view(0, head), self.accounting,
                    self.sim.now, "gtm.stage")
                ev = self._send([desc_buf, block.view(0, head)],
                                meta={"type": "gtmh"})
                pool = self.tm.tx_pool
                ev.add_callback(lambda _e, b=block: pool.release(b))
            elif head:
                ev = self._send([desc_buf, buf.view(0, head)],
                                meta={"type": "gtmh"})
            else:
                # Zero-length buffer: the record is just the descriptor.
                ev = self._send([desc_buf], meta={"type": "gtmh"})
            self._send_events.append(ev)
        for off, size in split_fragments(len(buf) - head, self.mtu):
            off += head
            if self.aborted:
                return
            if self.tm.protocol.tx_static:
                block = yield self.tm.tx_pool.acquire()
                if self.aborted:
                    # Aborted during the wait: a send submitted now could
                    # never match — recycle the block and stop.
                    self.tm.tx_pool.release(block)
                    return
                block.view(0, size).copy_from(
                    buf.view(off, off + size), self.accounting,
                    self.sim.now, "gtm.stage")
                ev = self._send(block.view(0, size), meta={"type": "frag"})
                pool = self.tm.tx_pool
                ev.add_callback(lambda _e, b=block: pool.release(b))
            else:
                ev = self._send(buf.view(off, off + size),
                                meta={"type": "frag"})
            self._send_events.append(ev)

    def _op_finalize(self):
        for buf, rmode in self._deferred:
            if self.aborted:
                break
            yield from self._emit(buf, SendMode.CHEAPER, rmode)
        self._deferred.clear()
        if not self.aborted:
            terminator = Descriptor(length=0, terminator=True)
            self._send_events.append(self._send(
                Buffer.wrap(encode_descriptor(terminator)),
                meta={"type": "desc"}))
        yield self.sim.all_of(self._send_events)
        self._send_events.clear()


class GTMIncoming(_ExecutorMixin):
    """Unpacks a forwarded message at its final receiver.

    The message arrives on a *regular* channel (the last gateway switches
    back to it, §2.2.2); the announce's GTM mode told the endpoint to build
    this class instead of :class:`~repro.madeleine.message.IncomingMessage`.
    """

    def __init__(self, endpoint: "Endpoint", announce: Announce,
                 hop_src: int) -> None:
        if announce.mode != MODE_GTM:
            raise ValueError("announce is not a GTM announce")
        self.endpoint = endpoint
        self.announce = announce
        self.origin = announce.origin
        self.hop_src = hop_src
        self.mtu = announce.mtu
        self.batched = announce.batched
        self.msg_id = announce.msg_id
        self.tm = endpoint.tm
        self.accounting = self.tm.channel.fabric.accounting
        self._deferred: list[Buffer] = []
        self.aborted = False
        self._init_executor(self.tm.channel.sim, f"gtm-in:{self.msg_id}")
        self._abort_ev = self.sim.event(name=f"gtm-in:{self.msg_id}.abort")
        self.eager = announce.eager
        self._eager_rec = None
        self._eager_idx = 0
        if self.eager:
            # The whole body is one wire record; fetch it ahead of any
            # unpack op (the executor runs ops strictly in order, so every
            # later op sees the decoded record).
            ev = self._submit(self._op_recv_eager())
            ev.add_callback(self._eager_fetched)

    def _eager_fetched(self, ev: Event) -> None:
        if ev.ok:
            return
        if self.aborted or isinstance(ev.value, _UnpackAborted):
            # Recovery code abandoned the message; nobody waits on the
            # constructor-submitted fetch, so swallow its failure.
            ev.defuse()
        # Otherwise (malformed record on a clean wire) the failure escapes
        # through the kernel — loud, like any other protocol mismatch.

    # -- public interface ----------------------------------------------------
    def unpack(self, nbytes: Optional[int] = None,
               smode: SendMode = SendMode.CHEAPER,
               rmode: RecvMode = RecvMode.CHEAPER,
               into: Optional[Buffer] = None) -> tuple[Event, Buffer]:
        if into is None:
            if nbytes is None:
                raise ValueError("unpack needs nbytes or a destination buffer")
            into = Buffer.alloc(nbytes, label="gtm.unpack")
        elif nbytes is not None and nbytes != len(into):
            raise ValueError("nbytes disagrees with destination buffer size")
        ev = self._submit(self._op_unpack(into, SendMode(smode),
                                          RecvMode(rmode)))
        return ev, into

    def end_unpacking(self) -> Event:
        return self._submit_final(self._op_finalize())

    def abort(self) -> None:
        """Abandon the rest of the message (fault recovery).

        The peer gave up (or the stream is corrupt beyond repair):
        remaining items will never arrive, so wake the executor out of any
        pending receive or pool acquire, and reclaim the buffers those
        operations hold.  Subsequent unpack events fail with an internal
        abort error (callers that abandon a message have stopped waiting
        on them).
        """
        if self.aborted:
            return
        self.aborted = True
        if not self._abort_ev.triggered:
            self._abort_ev.succeed()

    # -- abort-aware waits --------------------------------------------------------
    def _wait_acquire(self, pool):
        """Pool acquire racing the abort switch; never strands a block."""
        acq = pool.acquire()
        idx, value = yield self.sim.any_of([acq, self._abort_ev])
        if idx == 1:
            if not pool.cancel_acquire(acq):
                acq.add_callback(
                    lambda ev, p=pool: p.release(ev.value) if ev.ok else None)
            raise _UnpackAborted()
        return value

    def _wait_post(self, post_ev: Event, block, pool):
        """Posted-receive wait racing the abort switch.

        On abort, an unmatched slot is withdrawn from the fabric and its
        landing block recycled at once; a matched one recycles when the
        in-flight transfer completes.
        """
        idx, value = yield self.sim.any_of([post_ev, self._abort_ev])
        if idx == 1:
            fabric = self.tm.channel.fabric
            tag = self.tm.body_tag(self.hop_src, self.msg_id)
            if fabric.cancel_recv(self.tm.nic, tag, post_ev):
                if pool is not None:
                    pool.release(block)
            elif pool is not None:
                post_ev.add_callback(
                    lambda ev, b=block, p=pool:
                    p.release(b) if ev.ok else None)
            raise _UnpackAborted()
        return value

    # -- ops --------------------------------------------------------------------
    def _op_unpack(self, buf: Buffer, smode: SendMode, rmode: RecvMode):
        validate_modes(smode, rmode)
        if smode == SendMode.LATER:
            self._deferred.append(buf)
            return
        yield from self._consume(buf)

    def _op_recv_eager(self):
        """Receive the single eager wire record (entry table + payloads)."""
        if self.tm.protocol.rx_static:
            block = yield from self._wait_acquire(self.tm.rx_pool)
            post = self.tm.post_item(self.hop_src, block,
                                     capacity=len(block),
                                     msg_id=self.msg_id)
            meta, n = yield from self._wait_post(post, block,
                                                 self.tm.rx_pool)
            try:
                if meta.get("type") != "eagr":
                    raise UnpackMismatch(
                        f"expected an 'eagr' item, got {meta.get('type')!r}")
                raw = block.view(0, n).tobytes()
            finally:
                self.tm.rx_pool.release(block)
        else:
            cap = max(self.mtu, EAGER_HDR_BYTES)
            dbuf = Buffer.alloc(cap, label="gtm.eager")
            post = self.tm.post_item(self.hop_src, dbuf, capacity=cap,
                                     msg_id=self.msg_id)
            meta, n = yield from self._wait_post(post, None, None)
            if meta.get("type") != "eagr":
                raise UnpackMismatch(
                    f"expected an 'eagr' item, got {meta.get('type')!r}")
            raw = dbuf.view(0, n).tobytes()
        try:
            self._eager_rec = decode_eager(raw)
        except ValueError as exc:
            raise UnpackMismatch(f"malformed eager record: {exc}") from exc

    def _consume_eager(self, buf: Buffer):
        rec = self._eager_rec
        if rec is None or self._eager_idx >= len(rec.entries):
            raise UnpackMismatch(
                "eager record carries fewer buffers than were unpacked")
        entry = rec.entries[self._eager_idx]
        self._eager_idx += 1
        if len(entry.data) != len(buf):
            raise UnpackMismatch(
                f"eager entry carries {len(entry.data)}B but unpack "
                f"expects {len(buf)}B")
        if len(buf):
            buf.copy_from(Buffer.wrap(entry.data), self.accounting,
                          self.sim.now, "gtm.deliver")
        return
        yield  # pragma: no cover - generator form; consuming never waits

    def _consume(self, buf: Buffer):
        if self.eager:
            yield from self._consume_eager(buf)
            return
        if self.batched:
            head = yield from self._recv_batched_head(buf)
        else:
            head = 0
            desc = yield from self._recv_desc()
            if desc.length != len(buf):
                raise UnpackMismatch(
                    f"descriptor announces {desc.length}B but unpack "
                    f"expects {len(buf)}B")
        yield from self._consume_fragments(buf, head)

    def _consume_fragments(self, buf: Buffer, head: int = 0):
        """Receive the fragments of one buffer into ``buf[head:]`` (its
        descriptor — or batched head — has already been consumed)."""
        for off, size in split_fragments(len(buf) - head, self.mtu):
            off += head
            if self.tm.protocol.rx_static:
                block = yield from self._wait_acquire(self.tm.rx_pool)
                post = self.tm.post_item(self.hop_src, block,
                                         msg_id=self.msg_id)
                meta, n = yield from self._wait_post(post, block,
                                                     self.tm.rx_pool)
                try:
                    self._expect(meta, n, "frag", size)
                    buf.view(off, off + size).copy_from(
                        block.view(0, size), self.accounting, self.sim.now,
                        "gtm.deliver")
                finally:
                    self.tm.rx_pool.release(block)
            else:
                post = self.tm.post_item(self.hop_src,
                                         buf.view(off, off + size),
                                         msg_id=self.msg_id)
                meta, n = yield from self._wait_post(post, None, None)
                self._expect(meta, n, "frag", size)

    def _recv_record(self, wanted_type: str, nbytes: int):
        """Receive one fixed-size control record; returns its raw bytes."""
        if self.tm.protocol.rx_static:
            block = yield from self._wait_acquire(self.tm.rx_pool)
            post = self.tm.post_item(self.hop_src, block, msg_id=self.msg_id)
            meta, n = yield from self._wait_post(post, block,
                                                 self.tm.rx_pool)
            try:
                self._expect(meta, n, wanted_type, nbytes)
                raw = block.view(0, nbytes).tobytes()
            finally:
                self.tm.rx_pool.release(block)
        else:
            dbuf = Buffer.alloc(nbytes, label=f"gtm.{wanted_type}")
            post = self.tm.post_item(self.hop_src, dbuf, msg_id=self.msg_id)
            meta, n = yield from self._wait_post(post, None, None)
            self._expect(meta, n, wanted_type, nbytes)
            raw = dbuf.tobytes()
        return raw

    def _recv_desc(self):
        raw = yield from self._recv_record("desc", DESC_BYTES)
        return decode_descriptor(raw)

    def _recv_stripe(self):
        raw = yield from self._recv_record("stripe", STRIPE_BYTES)
        return decode_stripe(raw)

    # -- striped-rail interface (driven by StripedIncoming) -------------------
    def read_stripe_record(self) -> Event:
        """Event carrying this rail's :class:`StripeRecord` — the first
        body item of a striped message."""
        return self._submit(self._recv_stripe())

    def read_descriptor(self) -> Event:
        """Event carrying the next :class:`Descriptor` on this rail."""
        return self._submit(self._recv_desc())

    def read_into(self, view: Buffer) -> Event:
        """Consume this rail's stripe of one paquet into ``view`` (whose
        length the rail's descriptor announced)."""
        return self._submit(self._consume_fragments(view))

    def _recv_batched_head(self, buf: Buffer):
        """Receive one header-batched record: descriptor + buffer head.

        Mirrors the sender's batched :meth:`GTMOutgoing._emit`: the first
        wire record of each buffer gathers the 16-byte descriptor with up to
        ``mtu - DESC_BYTES`` bytes of payload.  Returns the number of payload
        bytes delivered (the head), so the caller consumes the remainder as
        plain fragments.
        """
        head = min(len(buf), self.mtu - DESC_BYTES)
        if self.tm.protocol.rx_static:
            block = yield from self._wait_acquire(self.tm.rx_pool)
            post = self.tm.post_item(self.hop_src, block, msg_id=self.msg_id)
            meta, n = yield from self._wait_post(post, block, self.tm.rx_pool)
            try:
                self._expect(meta, n, "gtmh", DESC_BYTES + head)
                desc = decode_descriptor(block.view(0, DESC_BYTES).tobytes())
                if desc.length != len(buf):
                    raise UnpackMismatch(
                        f"descriptor announces {desc.length}B but unpack "
                        f"expects {len(buf)}B")
                if head:
                    buf.view(0, head).copy_from(
                        block.view(DESC_BYTES, DESC_BYTES + head),
                        self.accounting, self.sim.now, "gtm.deliver")
            finally:
                self.tm.rx_pool.release(block)
        else:
            dbuf = Buffer.alloc(DESC_BYTES, label="gtm.desc")
            post = self.tm.post_item(self.hop_src,
                                     [dbuf, buf.view(0, head)],
                                     msg_id=self.msg_id)
            meta, n = yield from self._wait_post(post, None, None)
            self._expect(meta, n, "gtmh", DESC_BYTES + head)
            desc = decode_descriptor(dbuf.tobytes())
            if desc.length != len(buf):
                raise UnpackMismatch(
                    f"descriptor announces {desc.length}B but unpack "
                    f"expects {len(buf)}B")
        return head

    @staticmethod
    def _expect(meta: dict, n: int, wanted_type: str, wanted_size: int) -> None:
        if meta.get("type") != wanted_type:
            raise UnpackMismatch(
                f"expected a {wanted_type!r} item, got {meta.get('type')!r} — "
                f"unpack sequence does not mirror the pack sequence")
        if n != wanted_size:
            raise UnpackMismatch(
                f"expected {wanted_size}B {wanted_type}, received {n}B")

    def _op_finalize(self):
        for buf in self._deferred:
            yield from self._consume(buf)
        self._deferred.clear()
        if self.eager:
            rec = self._eager_rec
            left = (len(rec.entries) if rec is not None else 0) - self._eager_idx
            if left:
                raise UnpackMismatch(
                    f"message carries {left} more buffers than were unpacked")
            return
        desc = yield from self._recv_desc()
        if not desc.is_terminator:
            raise UnpackMismatch(
                f"message carries {desc.length}B more data than was unpacked")
