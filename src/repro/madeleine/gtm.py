"""The Generic Transmission Module (§2.2.2, §2.3).

Messages that travel across at least two different networks bypass the
regular per-protocol BMMs: both the origin and the final receiver use the
GTM, which guarantees that the data is grouped identically on both ends
(no ungroup/regroup cost at gateways) and adds the self-description the
gateways need.

Wire protocol per message (§2.3):

1. announce carrying (mode=GTM, origin, final destination, MTU, msg id);
2. per packed buffer: a 16-byte descriptor record (length + emission and
   reception constraints), then the buffer fragmented into MTU-sized pieces;
3. an empty descriptor terminating the message.

Zero-copy rules at the endpoints: on dynamic-buffer protocols fragments are
views of user memory; on static-buffer protocols the origin stages each
fragment in a protocol block (accounted, overlapped — see EXPERIMENTS.md)
and the final receiver copies out of the landing block.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Optional

from ..memory import Buffer
from ..sim import Event
from .bmm import UnpackMismatch, split_fragments
from .flags import RecvMode, SendMode, validate_modes
from .message import _ExecutorMixin, _as_buffer
from .wire import (DESC_BYTES, MODE_GTM, STRIPE_BYTES, Announce, Descriptor,
                   StripeRecord, decode_descriptor, decode_stripe,
                   encode_descriptor, encode_stripe)

if TYPE_CHECKING:  # pragma: no cover
    from .channel import Endpoint
    from .tm import TransmissionModule
    from .vchannel import VirtualChannel

__all__ = ["GTMOutgoing", "GTMIncoming"]

_msg_ids = itertools.count(1 << 20)   # disjoint from regular message ids


class _UnpackAborted(Exception):
    """Internal: the incoming message was abandoned by recovery code."""


class GTMOutgoing(_ExecutorMixin):
    """Packs a message onto the first hop of a multi-network route."""

    def __init__(self, vchannel: "VirtualChannel", src: int, dst: int,
                 route=None, stripe: Optional[StripeRecord] = None) -> None:
        route = route if route is not None else vchannel.routes.route(src, dst)
        if len(route) < 2 and stripe is None:
            raise ValueError("GTM is only used for forwarded messages")
        self.vchannel = vchannel
        self.src = src
        self.dst = dst
        #: this message is one rail of a multirail stripe group.  Header
        #: batching is forced off on stripes: the reassembly gathers the
        #: per-rail descriptors *before* any payload so it can carve the
        #: destination buffer, which a piggybacked head would defeat.
        self.stripe = stripe
        self.batched = vchannel.header_batching and stripe is None
        # Static negotiation or the adaptive fragment tuner, per the
        # virtual channel's pipeline config; the announce carries the
        # result so receivers and gateways follow without renegotiating.
        self.mtu = vchannel.effective_mtu(route)
        hop0 = route[0]
        # First hop targets a gateway on forwarded routes: use the special
        # channel.  A *direct* rail (dual-NIC striping) has no gateway
        # ahead and stays on the regular channel.
        wire_channel = (vchannel.special_twin(hop0.channel)
                        if len(route) > 1 else hop0.channel)
        self.tm: "TransmissionModule" = wire_channel.tm(src)
        self.hop_dst = hop0.dst
        self.msg_id = next(_msg_ids)
        self.accounting = self.tm.channel.fabric.accounting
        self.aborted = False
        self._send_events: list[Event] = []
        self._deferred: list[tuple[Buffer, RecvMode]] = []
        self._init_executor(self.tm.channel.sim, f"gtm-out:{self.msg_id}")
        # One in-flight message per (first-hop) connection, as in Madeleine.
        lock = wire_channel.endpoint(src).connection_lock(hop0.dst)
        self._finished.add_callback(lambda _ev: lock.release())
        announce = Announce(mode=MODE_GTM, origin=src, final_dst=dst,
                            mtu=self.mtu, msg_id=self.msg_id,
                            hops_left=len(route) - 1, batched=self.batched,
                            striped=stripe is not None)
        self._submit(self._announce_op(lock, announce))

    def _announce_op(self, lock, announce: Announce):
        yield lock.acquire()
        yield self.tm.send_announce(self.hop_dst, announce)
        if self.stripe is not None:
            # The stripe record is the rail's first body item: it names the
            # reassembly group this rail belongs to.  Gateways forward it
            # like any other record.
            self._send_events.append(self._send(
                Buffer.wrap(encode_stripe(self.stripe)),
                meta={"type": "stripe"}))

    # -- public interface (mirrors OutgoingMessage) ----------------------------
    def pack(self, data, smode: SendMode = SendMode.CHEAPER,
             rmode: RecvMode = RecvMode.CHEAPER) -> Event:
        buf = _as_buffer(data)
        return self._submit(self._op_pack(buf, SendMode(smode), RecvMode(rmode)))

    def end_packing(self) -> Event:
        return self._submit_final(self._op_finalize())

    def abort(self) -> None:
        """Stop emitting; blackhole whatever is already queued on the fabric
        so the executor drains and releases the first-hop connection lock."""
        self.aborted = True
        self.tm.channel.fabric.blackhole_pending_sends(
            self.tm.channel.id, self.msg_id)

    # -- ops ---------------------------------------------------------------------
    def _op_pack(self, buf: Buffer, smode: SendMode, rmode: RecvMode):
        validate_modes(smode, rmode)
        if smode == SendMode.LATER:
            self._deferred.append((buf, rmode))
            return
        yield from self._emit(buf, smode, rmode)

    def _send(self, payload, meta: dict) -> Event:
        return self.tm.send_item(self.hop_dst, payload, meta=meta,
                                 msg_id=self.msg_id)

    def _emit(self, buf: Buffer, smode: SendMode, rmode: RecvMode):
        if self.aborted:
            return
        desc = Descriptor(length=len(buf), smode=smode, rmode=rmode)
        desc_buf = Buffer.wrap(encode_descriptor(desc))
        if self.batched:
            # Header batching (§2.3): the descriptor rides in the same wire
            # record as the head of the buffer instead of costing its own
            # send.  The head is shortened so the combined record still fits
            # one MTU (gateways stage whole records in MTU-sized blocks).
            head = min(len(buf), self.mtu - DESC_BYTES)
        else:
            head = 0
            self._send_events.append(
                self._send(desc_buf, meta={"type": "desc"}))
        if smode == SendMode.SAFER and not self.tm.protocol.tx_static:
            shadow = Buffer.alloc(len(buf), label="gtm.safer")
            shadow.copy_from(buf, self.accounting, self.sim.now, "gtm.safer")
            buf = shadow
        if self.batched:
            if self.aborted:
                return
            if self.tm.protocol.tx_static and head:
                block = yield self.tm.tx_pool.acquire()
                if self.aborted:
                    self.tm.tx_pool.release(block)
                    return
                block.view(0, head).copy_from(
                    buf.view(0, head), self.accounting,
                    self.sim.now, "gtm.stage")
                ev = self._send([desc_buf, block.view(0, head)],
                                meta={"type": "gtmh"})
                pool = self.tm.tx_pool
                ev.add_callback(lambda _e, b=block: pool.release(b))
            elif head:
                ev = self._send([desc_buf, buf.view(0, head)],
                                meta={"type": "gtmh"})
            else:
                # Zero-length buffer: the record is just the descriptor.
                ev = self._send([desc_buf], meta={"type": "gtmh"})
            self._send_events.append(ev)
        for off, size in split_fragments(len(buf) - head, self.mtu):
            off += head
            if self.aborted:
                return
            if self.tm.protocol.tx_static:
                block = yield self.tm.tx_pool.acquire()
                if self.aborted:
                    # Aborted during the wait: a send submitted now could
                    # never match — recycle the block and stop.
                    self.tm.tx_pool.release(block)
                    return
                block.view(0, size).copy_from(
                    buf.view(off, off + size), self.accounting,
                    self.sim.now, "gtm.stage")
                ev = self._send(block.view(0, size), meta={"type": "frag"})
                pool = self.tm.tx_pool
                ev.add_callback(lambda _e, b=block: pool.release(b))
            else:
                ev = self._send(buf.view(off, off + size),
                                meta={"type": "frag"})
            self._send_events.append(ev)

    def _op_finalize(self):
        for buf, rmode in self._deferred:
            if self.aborted:
                break
            yield from self._emit(buf, SendMode.CHEAPER, rmode)
        self._deferred.clear()
        if not self.aborted:
            terminator = Descriptor(length=0, terminator=True)
            self._send_events.append(self._send(
                Buffer.wrap(encode_descriptor(terminator)),
                meta={"type": "desc"}))
        yield self.sim.all_of(self._send_events)
        self._send_events.clear()


class GTMIncoming(_ExecutorMixin):
    """Unpacks a forwarded message at its final receiver.

    The message arrives on a *regular* channel (the last gateway switches
    back to it, §2.2.2); the announce's GTM mode told the endpoint to build
    this class instead of :class:`~repro.madeleine.message.IncomingMessage`.
    """

    def __init__(self, endpoint: "Endpoint", announce: Announce,
                 hop_src: int) -> None:
        if announce.mode != MODE_GTM:
            raise ValueError("announce is not a GTM announce")
        self.endpoint = endpoint
        self.announce = announce
        self.origin = announce.origin
        self.hop_src = hop_src
        self.mtu = announce.mtu
        self.batched = announce.batched
        self.msg_id = announce.msg_id
        self.tm = endpoint.tm
        self.accounting = self.tm.channel.fabric.accounting
        self._deferred: list[Buffer] = []
        self.aborted = False
        self._init_executor(self.tm.channel.sim, f"gtm-in:{self.msg_id}")
        self._abort_ev = self.sim.event(name=f"gtm-in:{self.msg_id}.abort")

    # -- public interface ----------------------------------------------------
    def unpack(self, nbytes: Optional[int] = None,
               smode: SendMode = SendMode.CHEAPER,
               rmode: RecvMode = RecvMode.CHEAPER,
               into: Optional[Buffer] = None) -> tuple[Event, Buffer]:
        if into is None:
            if nbytes is None:
                raise ValueError("unpack needs nbytes or a destination buffer")
            into = Buffer.alloc(nbytes, label="gtm.unpack")
        elif nbytes is not None and nbytes != len(into):
            raise ValueError("nbytes disagrees with destination buffer size")
        ev = self._submit(self._op_unpack(into, SendMode(smode),
                                          RecvMode(rmode)))
        return ev, into

    def end_unpacking(self) -> Event:
        return self._submit_final(self._op_finalize())

    def abort(self) -> None:
        """Abandon the rest of the message (fault recovery).

        The peer gave up (or the stream is corrupt beyond repair):
        remaining items will never arrive, so wake the executor out of any
        pending receive or pool acquire, and reclaim the buffers those
        operations hold.  Subsequent unpack events fail with an internal
        abort error (callers that abandon a message have stopped waiting
        on them).
        """
        if self.aborted:
            return
        self.aborted = True
        if not self._abort_ev.triggered:
            self._abort_ev.succeed()

    # -- abort-aware waits --------------------------------------------------------
    def _wait_acquire(self, pool):
        """Pool acquire racing the abort switch; never strands a block."""
        acq = pool.acquire()
        idx, value = yield self.sim.any_of([acq, self._abort_ev])
        if idx == 1:
            if not pool.cancel_acquire(acq):
                acq.add_callback(
                    lambda ev, p=pool: p.release(ev.value) if ev.ok else None)
            raise _UnpackAborted()
        return value

    def _wait_post(self, post_ev: Event, block, pool):
        """Posted-receive wait racing the abort switch.

        On abort, an unmatched slot is withdrawn from the fabric and its
        landing block recycled at once; a matched one recycles when the
        in-flight transfer completes.
        """
        idx, value = yield self.sim.any_of([post_ev, self._abort_ev])
        if idx == 1:
            fabric = self.tm.channel.fabric
            tag = self.tm.body_tag(self.hop_src, self.msg_id)
            if fabric.cancel_recv(self.tm.nic, tag, post_ev):
                if pool is not None:
                    pool.release(block)
            elif pool is not None:
                post_ev.add_callback(
                    lambda ev, b=block, p=pool:
                    p.release(b) if ev.ok else None)
            raise _UnpackAborted()
        return value

    # -- ops --------------------------------------------------------------------
    def _op_unpack(self, buf: Buffer, smode: SendMode, rmode: RecvMode):
        validate_modes(smode, rmode)
        if smode == SendMode.LATER:
            self._deferred.append(buf)
            return
        yield from self._consume(buf)

    def _consume(self, buf: Buffer):
        if self.batched:
            head = yield from self._recv_batched_head(buf)
        else:
            head = 0
            desc = yield from self._recv_desc()
            if desc.length != len(buf):
                raise UnpackMismatch(
                    f"descriptor announces {desc.length}B but unpack "
                    f"expects {len(buf)}B")
        yield from self._consume_fragments(buf, head)

    def _consume_fragments(self, buf: Buffer, head: int = 0):
        """Receive the fragments of one buffer into ``buf[head:]`` (its
        descriptor — or batched head — has already been consumed)."""
        for off, size in split_fragments(len(buf) - head, self.mtu):
            off += head
            if self.tm.protocol.rx_static:
                block = yield from self._wait_acquire(self.tm.rx_pool)
                post = self.tm.post_item(self.hop_src, block,
                                         msg_id=self.msg_id)
                meta, n = yield from self._wait_post(post, block,
                                                     self.tm.rx_pool)
                try:
                    self._expect(meta, n, "frag", size)
                    buf.view(off, off + size).copy_from(
                        block.view(0, size), self.accounting, self.sim.now,
                        "gtm.deliver")
                finally:
                    self.tm.rx_pool.release(block)
            else:
                post = self.tm.post_item(self.hop_src,
                                         buf.view(off, off + size),
                                         msg_id=self.msg_id)
                meta, n = yield from self._wait_post(post, None, None)
                self._expect(meta, n, "frag", size)

    def _recv_record(self, wanted_type: str, nbytes: int):
        """Receive one fixed-size control record; returns its raw bytes."""
        if self.tm.protocol.rx_static:
            block = yield from self._wait_acquire(self.tm.rx_pool)
            post = self.tm.post_item(self.hop_src, block, msg_id=self.msg_id)
            meta, n = yield from self._wait_post(post, block,
                                                 self.tm.rx_pool)
            try:
                self._expect(meta, n, wanted_type, nbytes)
                raw = block.view(0, nbytes).tobytes()
            finally:
                self.tm.rx_pool.release(block)
        else:
            dbuf = Buffer.alloc(nbytes, label=f"gtm.{wanted_type}")
            post = self.tm.post_item(self.hop_src, dbuf, msg_id=self.msg_id)
            meta, n = yield from self._wait_post(post, None, None)
            self._expect(meta, n, wanted_type, nbytes)
            raw = dbuf.tobytes()
        return raw

    def _recv_desc(self):
        raw = yield from self._recv_record("desc", DESC_BYTES)
        return decode_descriptor(raw)

    def _recv_stripe(self):
        raw = yield from self._recv_record("stripe", STRIPE_BYTES)
        return decode_stripe(raw)

    # -- striped-rail interface (driven by StripedIncoming) -------------------
    def read_stripe_record(self) -> Event:
        """Event carrying this rail's :class:`StripeRecord` — the first
        body item of a striped message."""
        return self._submit(self._recv_stripe())

    def read_descriptor(self) -> Event:
        """Event carrying the next :class:`Descriptor` on this rail."""
        return self._submit(self._recv_desc())

    def read_into(self, view: Buffer) -> Event:
        """Consume this rail's stripe of one paquet into ``view`` (whose
        length the rail's descriptor announced)."""
        return self._submit(self._consume_fragments(view))

    def _recv_batched_head(self, buf: Buffer):
        """Receive one header-batched record: descriptor + buffer head.

        Mirrors the sender's batched :meth:`GTMOutgoing._emit`: the first
        wire record of each buffer gathers the 16-byte descriptor with up to
        ``mtu - DESC_BYTES`` bytes of payload.  Returns the number of payload
        bytes delivered (the head), so the caller consumes the remainder as
        plain fragments.
        """
        head = min(len(buf), self.mtu - DESC_BYTES)
        if self.tm.protocol.rx_static:
            block = yield from self._wait_acquire(self.tm.rx_pool)
            post = self.tm.post_item(self.hop_src, block, msg_id=self.msg_id)
            meta, n = yield from self._wait_post(post, block, self.tm.rx_pool)
            try:
                self._expect(meta, n, "gtmh", DESC_BYTES + head)
                desc = decode_descriptor(block.view(0, DESC_BYTES).tobytes())
                if desc.length != len(buf):
                    raise UnpackMismatch(
                        f"descriptor announces {desc.length}B but unpack "
                        f"expects {len(buf)}B")
                if head:
                    buf.view(0, head).copy_from(
                        block.view(DESC_BYTES, DESC_BYTES + head),
                        self.accounting, self.sim.now, "gtm.deliver")
            finally:
                self.tm.rx_pool.release(block)
        else:
            dbuf = Buffer.alloc(DESC_BYTES, label="gtm.desc")
            post = self.tm.post_item(self.hop_src,
                                     [dbuf, buf.view(0, head)],
                                     msg_id=self.msg_id)
            meta, n = yield from self._wait_post(post, None, None)
            self._expect(meta, n, "gtmh", DESC_BYTES + head)
            desc = decode_descriptor(dbuf.tobytes())
            if desc.length != len(buf):
                raise UnpackMismatch(
                    f"descriptor announces {desc.length}B but unpack "
                    f"expects {len(buf)}B")
        return head

    @staticmethod
    def _expect(meta: dict, n: int, wanted_type: str, wanted_size: int) -> None:
        if meta.get("type") != wanted_type:
            raise UnpackMismatch(
                f"expected a {wanted_type!r} item, got {meta.get('type')!r} — "
                f"unpack sequence does not mirror the pack sequence")
        if n != wanted_size:
            raise UnpackMismatch(
                f"expected {wanted_size}B {wanted_type}, received {n}B")

    def _op_finalize(self):
        for buf in self._deferred:
            yield from self._consume(buf)
        self._deferred.clear()
        desc = yield from self._recv_desc()
        if not desc.is_terminator:
            raise UnpackMismatch(
                f"message carries {desc.length}B more data than was unpacked")
