"""Analytic fast-path network solver (see docs/solver.md).

``solve(scenario)`` returns per-flow bandwidth/FCT estimates and
per-resource utilization for any :class:`~repro.scenario.Scenario` without
running the discrete-event simulator; ``repro solve --validate``
cross-checks it against the DES and enforces the committed error floor.
"""

from .core import (FlowEstimate, SolverResult, max_min_rates, solve,
                   solve_bandwidth)
from .network import Resource, RoutedFlow, SolverNetwork

__all__ = [
    "FlowEstimate", "Resource", "RoutedFlow", "SolverNetwork",
    "SolverResult", "max_min_rates", "solve", "solve_bandwidth",
]
