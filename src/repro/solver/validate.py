"""Solver-vs-DES cross validation: ``repro solve --validate``.

The solver's claim is *equivalence within a committed floor*: on every
sampled cell of the paper's evaluation — the figure 5 transfer, the
figure 6/7 bandwidth grids, the figure 8 pipeline-shape ratios, and the
multirail striping grid — the analytic estimate must sit within the strict
limit (5%) of the discrete-event measurement, at a wall-clock speedup of
at least two orders of magnitude.  This module runs exactly that
cross-check, and :func:`compare_validate` enforces the floors committed in
``benchmarks/baselines/solver_validate.json`` so any kernel or solver
change that widens the gap fails CI.

Two sampling caveats are deliberate (measured, and documented in
docs/solver.md):

* the model error shrinks with *fragments per message* (the setup term the
  solver shares with :func:`~repro.analysis.model.route_setup_time`
  dominates short transfers), so grid cells are sampled at >= 32 fragments
  — the regime §3.3.1's asymptotic argument is about;
* the Myrinet→SCI direction carries the PIO-under-DMA approximation
  (§3.4.1) whose asymptotic error is ~3.5–4%, so its large-paquet cells
  are sampled at 128 fragments where the total stays within the limit.

The torus/fat-tree **traffic** family is different in kind: a fluid solver
provably smooths the queueing tail a message-serialized DES produces
(FIFO-per-destination receivers, gateway worker queues), so its cells are
validated against a *loose* committed floor instead of the strict limit —
the floor still pins the gap, it just does not pretend fluid == queued.
"""

from __future__ import annotations

import pathlib
import time
from typing import Callable, Optional

from ..analysis.model import _rail_period
from ..hw.params import DEFAULT_GATEWAY, DEFAULT_NODE, PROTOCOLS
from ..scenario import MessageSpec, Scenario, Topology, TrafficSpec
from .core import solve, solve_bandwidth

__all__ = ["ping_scenario", "multirail_scenario", "traffic_scenario",
           "run_validate", "compare_validate", "format_validate",
           "write_validate_baseline", "DEFAULT_VALIDATE_BASELINE",
           "STRICT_LIMIT", "MIN_SPEEDUP"]

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]
DEFAULT_VALIDATE_BASELINE = (_REPO_ROOT / "benchmarks" / "baselines"
                             / "solver_validate.json")

#: the acceptance criterion: strict families must match the DES this well.
STRICT_LIMIT = 0.05
#: and the whole validation run must beat the DES by this wall-clock factor.
MIN_SPEEDUP = 100.0
#: absolute slack added to a committed per-family floor before failing: the
#: DES is deterministic but float summation order is not sacred across
#: refactors, so a hair of drift is not a regression.
FLOOR_SLACK = 0.005

_MESSAGE = 2 << 20


# -- scenario builders (shared with the bench solver modes) ------------------
def ping_scenario(packet: int, message: int,
                  direction: str = "b0->a0") -> Scenario:
    """The fig5/6/7 testbed as a scenario: a0 —myrinet— gw00 —sci— b0,
    one ``message``-byte transfer (matching ``PingHarness.measure``)."""
    topo = Topology(kind="chain", protocols=("myrinet", "sci"),
                    sizes=(1, 1), gateways=(1,))
    src, dst = ("b0", "a0") if direction == "b0->a0" else ("a0", "b0")
    return Scenario(seed=0, topology=topo, packet_size=packet,
                    messages=(MessageSpec(src=src, dst=dst, nbytes=message,
                                          kind="plain"),))


def multirail_scenario(packet: int, message: int, rails: int) -> Scenario:
    """The multirail testbed as a scenario: ``rails`` disjoint
    myrinet+gateway+sci rails a0 → b0 with striping on (the
    ``MultirailHarness`` measurement); ``rails=1`` degrades to the chain."""
    if rails == 1:
        return ping_scenario(packet, message, direction="a0->b0")
    topo = Topology(kind="multirail", protocols=("myrinet", "sci"),
                    gateways=(rails,))
    return Scenario(seed=0, topology=topo, packet_size=packet,
                    stripe=(rails, 4096),
                    messages=(MessageSpec(src="a0", dst="b0", nbytes=message,
                                          kind="plain"),))


def traffic_scenario(kind: str, flows: int, seed: int = 11) -> Scenario:
    """One open-loop traffic cell (the ``sweep-nodes`` shape): 32 KB flows,
    200 µs mean interarrival, calendar scheduler."""
    if kind == "torus":
        topo = Topology(kind="torus", protocols=("myrinet",), dims=(4, 4))
    else:
        topo = Topology(kind="fat_tree", protocols=("myrinet", "sci"),
                        sizes=(4, 2), gateways=(2,))
    return Scenario(seed=seed, topology=topo, packet_size=16 << 10,
                    traffic=TrafficSpec(flows=flows, mean_interarrival=200.0,
                                        size=32 << 10),
                    scheduler="calendar", gw_stall_timeout=None)


# -- sampled cells -----------------------------------------------------------
#: (packet, fragments-per-message) grids; message = packet × fragments.
_FIG6_CELLS = tuple((p, f) for p in (8 << 10, 64 << 10, 128 << 10)
                    for f in (32, 128))
#: Myrinet→SCI carries the ~4% asymptotic PIO approximation, so the large
#: paquets are sampled deep into the asymptote (128 fragments).
_FIG7_CELLS = ((8 << 10, 32), (8 << 10, 64), (8 << 10, 128),
               (64 << 10, 128), (128 << 10, 128))
_MULTIRAIL_CELLS = tuple((r, p) for r in (1, 2, 3)
                         for p in (4 << 10, 8 << 10, 16 << 10))
_TRAFFIC_CELLS = (("torus", 16), ("torus", 64), ("fat_tree", 32))


def _rel(solver: float, des: float) -> float:
    return abs(solver - des) / abs(des)


def _des_ping(packet: int, message: int, direction: str) -> float:
    from ..bench.ping import PingHarness
    return PingHarness(packet_size=packet).measure(
        message, direction=direction).bandwidth


def _des_multirail(rails: int, packet: int, message: int) -> float:
    from ..bench.ping import MultirailHarness
    from ..routing import StripePolicy
    policy = StripePolicy(max_rails=rails) if rails > 1 else None
    return MultirailHarness(packet_size=packet, rails=rails,
                            stripe_policy=policy).measure(message).bandwidth


def _des_pipeline_stats(direction: str, packet: int):
    """Figure 8 shape: pipeline stats of one traced 2 MB transfer."""
    import numpy as np

    from ..analysis import extract_timeline, pipeline_stats
    from ..bench.ping import PingHarness
    harness = PingHarness(packet_size=packet)
    world, session, vch, _ack = harness.build()
    src, dst = (("a0", "b0") if direction == "myri->sci" else ("b0", "a0"))
    data = np.zeros(_MESSAGE, dtype=np.uint8)

    def snd():
        m = vch.endpoint(session.rank(src)).begin_packing(session.rank(dst))
        yield m.pack(data)
        yield m.end_packing()

    def rcv():
        inc = yield vch.endpoint(session.rank(dst)).begin_unpacking()
        _ev, _b = inc.unpack(_MESSAGE)
        yield inc.end_unpacking()

    session.spawn(snd())
    session.spawn(rcv())
    session.run()
    return pipeline_stats(extract_timeline(world.trace))


def _cell(name: str, des: float, solver: float) -> dict:
    return {"name": name, "des": des, "solver": solver,
            "rel_err": _rel(solver, des)}


def _des_specs() -> list[tuple]:
    """The flat DES work list: ``(key, kind, *args)`` per measured cell,
    in the order the families consume them."""
    specs: list[tuple] = [("fig5", "ping", 64 << 10, _MESSAGE, "b0->a0")]
    for name, cells_spec, direction in (("fig6", _FIG6_CELLS, "b0->a0"),
                                        ("fig7", _FIG7_CELLS, "a0->b0")):
        for packet, frags in cells_spec:
            specs.append((f"{name}:{packet}:{frags}", "ping", packet,
                          packet * frags, direction))
    for direction in ("myri->sci", "sci->myri"):
        specs.append((f"fig8:{direction}", "pipe", direction, 64 << 10))
    for rails, packet in _MULTIRAIL_CELLS:
        specs.append((f"multirail:{rails}:{packet}", "rail", rails, packet,
                      _MESSAGE))
    for kind, flows in _TRAFFIC_CELLS:
        specs.append((f"traffic:{kind}:{flows}", "traffic", kind, flows))
    return specs


def _des_cell(spec: tuple) -> tuple:
    """Module-level (picklable) pool worker: one DES cell.

    Returns ``(key, value, wall_seconds)``.  The wall clock is measured
    inside the worker, so a pooled run reports the same cumulative DES
    cost a serial run does and the committed speedup figure stays the sum
    of identical per-cell measurements.  Every cell builds its own
    pristine deterministic world, so the values match a serial run
    exactly.
    """
    key, kind = spec[0], spec[1]
    t0 = time.perf_counter()
    if kind == "ping":
        _key, _kind, packet, message, direction = spec
        value = _des_ping(packet, message, direction)
    elif kind == "pipe":
        _key, _kind, direction, packet = spec
        stats = _des_pipeline_stats(direction, packet)
        value = (stats.send_recv_ratio, stats.mean_period_us)
    elif kind == "rail":
        _key, _kind, rails, packet, message = spec
        value = _des_multirail(rails, packet, message)
    else:   # traffic
        from ..bench.scale import run_traffic_scenario
        _key, _kind, tkind, flows = spec
        value = run_traffic_scenario(traffic_scenario(tkind, flows))
    return key, value, time.perf_counter() - t0


def run_validate(progress: Optional[Callable[[str], None]] = None,
                 jobs: Optional[int] = None) -> dict:
    """Run every family; returns the full comparison result.

    Each cell runs the DES measurement and the solver estimate and records
    the relative error; DES and solver wall-clock are accumulated
    separately so the result carries the measured speedup.  ``jobs > 1``
    spreads the DES cells (which carry essentially all of the wall clock)
    over a ``multiprocessing`` pool; the solver side stays serial in the
    parent.  The numbers are identical either way — only elapsed time
    changes, and the speedup accounting uses per-cell wall clock measured
    inside the workers.
    """
    specs = _des_specs()
    des_results: dict[str, tuple] = {}
    if jobs and jobs > 1:
        import multiprocessing as mp
        with mp.Pool(min(jobs, len(specs))) as pool:
            for key, value, wall in pool.imap_unordered(_des_cell, specs):
                des_results[key] = (value, wall)
                if progress:
                    progress(f"des {key}")
    else:
        for spec in specs:
            key, value, wall = _des_cell(spec)
            des_results[key] = (value, wall)
            if progress:
                progress(f"des {key}")

    timer = {"des": 0.0, "solver": 0.0,
             "strict_des": 0.0, "strict_solver": 0.0}
    scope = {"strict": True}

    def timed(side: str, fn, *args):
        t0 = time.perf_counter()
        out = fn(*args)
        dt = time.perf_counter() - t0
        timer[side] += dt
        if scope["strict"]:
            timer[f"strict_{side}"] += dt
        return out

    def des_of(key: str):
        value, wall = des_results.pop(key)
        timer["des"] += wall
        if scope["strict"]:
            timer["strict_des"] += wall
        return value

    families: dict[str, dict] = {}

    def family(name: str, cells: list[dict], strict: bool) -> None:
        families[name] = {
            "strict": strict,
            "cells": cells,
            "max_rel_err": max(c["rel_err"] for c in cells),
        }

    # fig5: the paper's balanced configuration, one cell.
    des = des_of("fig5")
    sol = timed("solver", solve_bandwidth,
                ping_scenario(64 << 10, _MESSAGE, "b0->a0"))
    family("fig5", [_cell("64k_2m_b0_to_a0", des, sol)], strict=True)

    # fig6/fig7: bandwidth grids, sampled at >= 32 fragments per message.
    for name, cells_spec, direction in (("fig6", _FIG6_CELLS, "b0->a0"),
                                        ("fig7", _FIG7_CELLS, "a0->b0")):
        cells = []
        for packet, frags in cells_spec:
            message = packet * frags
            des = des_of(f"{name}:{packet}:{frags}")
            sol = timed("solver", solve_bandwidth,
                        ping_scenario(packet, message, direction))
            cells.append(_cell(f"{packet >> 10}k_x{frags}", des, sol))
        family(name, cells, strict=True)

    # fig8: pipeline shape — send/recv ratio and steady period, both
    # directions, solver side straight from the _rail_period kernel.
    cells = []
    pipe = DEFAULT_GATEWAY.resolved_pipeline
    for direction, p_in, p_out in (
            ("myri->sci", PROTOCOLS["myrinet"], PROTOCOLS["sci"]),
            ("sci->myri", PROTOCOLS["sci"], PROTOCOLS["myrinet"])):
        send_recv_ratio, mean_period_us = des_of(f"fig8:{direction}")
        t_recv, t_send, period = _rail_period(p_in, p_out, 64 << 10,
                                              DEFAULT_GATEWAY, DEFAULT_NODE,
                                              pipe)
        tag = direction.replace("->", "_to_")
        cells.append(_cell(f"{tag}_send_recv_ratio",
                           send_recv_ratio, t_send / t_recv))
        cells.append(_cell(f"{tag}_period_us",
                           mean_period_us, period))
    family("fig8", cells, strict=True)

    # multirail: striped bandwidth grid (rails=1 rides the chain).
    cells = []
    for rails, packet in _MULTIRAIL_CELLS:
        des = des_of(f"multirail:{rails}:{packet}")
        sol = timed("solver", solve_bandwidth,
                    multirail_scenario(packet, _MESSAGE, rails))
        cells.append(_cell(f"rails{rails}_{packet >> 10}k", des, sol))
    family("multirail", cells, strict=True)

    # traffic: fluid vs queued — loose floor, max error across the four
    # flow-level metrics per cell.  (Outside the strict wall-clock budget:
    # the committed >= 100x speedup is the fig/multirail grids' figure.)
    scope["strict"] = False
    cells = []
    for kind, flows in _TRAFFIC_CELLS:
        sc = traffic_scenario(kind, flows)
        des_row = des_of(f"traffic:{kind}:{flows}")
        sol_row = timed("solver", lambda s: solve(s).summary(), sc)
        worst = max(_rel(sol_row[k], des_row[k])
                    for k in ("goodput_mbs", "mean_fct_us", "p99_fct_us",
                              "duration_us"))
        cells.append({"name": f"{kind}_x{flows}",
                      "des": des_row["goodput_mbs"],
                      "solver": sol_row["goodput_mbs"],
                      "rel_err": worst})
    family("traffic", cells, strict=False)

    strict_max = max(f["max_rel_err"] for f in families.values()
                     if f["strict"])
    return {
        "suite": "solver-validate",
        "families": families,
        "max_strict_rel_err": strict_max,
        "des_seconds": timer["des"],
        "solver_seconds": timer["solver"],
        #: the committed figure: fig5–fig8 + multirail grids only.
        "speedup": (timer["strict_des"] / timer["strict_solver"]
                    if timer["strict_solver"] else float("inf")),
        "overall_speedup": (timer["des"] / timer["solver"]
                            if timer["solver"] else float("inf")),
    }


def compare_validate(result: dict, baseline: dict) -> list[str]:
    """Failure messages for ``result`` against the committed baseline.

    Strict families must stay within the strict limit *and* within their
    committed floor (+ absolute slack); loose families within their floor
    only; the run must keep the committed wall-clock speedup.
    """
    failures = []
    strict_limit = baseline.get("strict_limit", STRICT_LIMIT)
    slack = baseline.get("slack", FLOOR_SLACK)
    for name, committed in baseline.get("families", {}).items():
        fam = result["families"].get(name)
        if fam is None:
            failures.append(f"{name}: family missing from this run")
            continue
        err = fam["max_rel_err"]
        floor = committed["max_rel_err"]
        if committed.get("strict", True) and err > strict_limit:
            failures.append(
                f"{name}: max rel error {err:.2%} exceeds the strict "
                f"solver==DES limit ({strict_limit:.0%})")
        if err > floor + slack:
            failures.append(
                f"{name}: max rel error {err:.2%} exceeds the committed "
                f"floor {floor:.2%} (+{slack:.1%} slack) — the solver "
                f"drifted from the DES")
    min_speedup = baseline.get("min_speedup", MIN_SPEEDUP)
    if result["speedup"] < min_speedup:
        failures.append(
            f"speedup: solver is only {result['speedup']:.0f}x faster than "
            f"the DES (committed minimum {min_speedup:.0f}x)")
    return failures


def format_validate(result: dict, failures: list[str]) -> str:
    lines = [f"{'cell':28s} {'DES':>12s} {'solver':>12s} {'rel err':>9s}"]
    lines.append("-" * len(lines[0]))
    for name, fam in result["families"].items():
        tag = "strict" if fam["strict"] else "loose"
        lines.append(f"{name} ({tag}):")
        for c in fam["cells"]:
            lines.append(f"  {c['name']:26s} {c['des']:12.3f} "
                         f"{c['solver']:12.3f} {c['rel_err']:8.2%}")
        lines.append(f"  {'max':26s} {'':12s} {'':12s} "
                     f"{fam['max_rel_err']:8.2%}")
    lines.append(
        f"\nstrict max {result['max_strict_rel_err']:.2%}; wall clock "
        f"DES {result['des_seconds']:.2f}s vs solver "
        f"{result['solver_seconds']:.3f}s "
        f"({result['speedup']:.0f}x on the strict grids, "
        f"{result['overall_speedup']:.0f}x overall)")
    if failures:
        lines.append("\nFAILURES:")
        lines.extend(f"  - {f}" for f in failures)
    else:
        lines.append("\nsolver matches the DES within every committed floor")
    return "\n".join(lines)


def write_validate_baseline(result: dict, path: pathlib.Path) -> None:
    """Commit the measured per-family max errors (plus the strict limit,
    slack, and speedup commitments) as the new regression floor."""
    import json
    existing = {}
    if path.exists():
        existing = json.loads(path.read_text(encoding="utf-8"))
    payload = {
        "strict_limit": existing.get("strict_limit", STRICT_LIMIT),
        "slack": existing.get("slack", FLOOR_SLACK),
        "min_speedup": existing.get("min_speedup", MIN_SPEEDUP),
        "families": {
            name: {"max_rel_err": fam["max_rel_err"],
                   "strict": fam["strict"]}
            for name, fam in result["families"].items()
        },
    }
    from ..bench.jsonio import dump_json
    path.parent.mkdir(parents=True, exist_ok=True)
    dump_json(payload, path)
