"""Static network view of a :class:`~repro.scenario.Scenario`.

The analytic solver never builds a simulation world: this module turns a
scenario's topology into the three things the fixed-point iteration needs,
using *exactly* the DES's own routing machinery so solver and simulator
agree on which wires a flow crosses:

* **routes** — a :class:`~repro.routing.RouteTable` over lightweight channel
  stubs (the table only reads ``id``/``members``, so no simulator state is
  required); minimum-hop selection, deterministic tie-breaks, and the
  disjoint-rail enumeration used by striping are therefore bit-identical to
  what :class:`~repro.madeleine.VirtualChannel` computes;
* **resources** — the shared capacities congestion lives on: each node's
  PCI bus (every NIC transfer crosses it; a forwarding node pays twice),
  each NIC (one ``host_peak`` stream per adapter), and each channel's wire;
* **footprints** — per-route ``(resource, weight)`` lists plus the
  analytic rate ceiling from the §3.3.1 gateway-pipeline kernel
  (:func:`~repro.analysis.model.fragment_time` for direct hops,
  ``_rail_period`` for every gateway relay along the route).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from ..analysis.model import _rail_period, fragment_time, route_setup_time
from ..hw.params import (DEFAULT_GATEWAY, DEFAULT_NODE, PROTOCOLS,
                         GatewayParams, NodeParams, PipelineConfig,
                         ProtocolParams)
from ..routing import (Hop, RouteTable, StripePolicy, disjoint_routes,
                       negotiate_mtu)
from ..scenario import Scenario

__all__ = ["Resource", "RoutedFlow", "SolverNetwork"]


@dataclass(frozen=True)
class _StubChannel:
    """The slice of :class:`~repro.madeleine.RealChannel` the route table
    reads: an id, member ranks, the protocol, and each member's NIC index."""

    id: str
    protocol: ProtocolParams
    members: tuple[int, ...]
    adapter_index: Mapping[int, int]

    def nic(self, rank: int) -> tuple:
        """The (node, protocol, adapter) key of ``rank``'s seat."""
        return (rank, self.protocol.name, self.adapter_index.get(rank, 0))


@dataclass(frozen=True)
class Resource:
    """One shared capacity: a PCI bus, a NIC, or a channel wire."""

    key: tuple
    capacity: float        # bytes/µs


@dataclass(frozen=True)
class RoutedFlow:
    """One fluid flow the allocator sees: a rail (or rail subset) of an
    application flow, with its analytic ceiling and resource footprint."""

    id: tuple                      # (flow index, rail index)
    nbytes: float                  # fractional for stripe chunks
    arrival: float
    ceiling: float                 # bytes/µs, from the pipeline kernel
    setup_us: float                # route-aware pre-streaming setup
    footprint: tuple[tuple[tuple, int], ...]   # ((resource key, weight), ...)
    #: interned integer resource ids aligned with ``footprint`` (see
    #: :attr:`SolverNetwork.res_index`) — the epoch loop's contention
    #: bookkeeping indexes arrays by these instead of hashing key tuples.
    res_ids: tuple = ()


class SolverNetwork:
    """Routes, resources, and per-flow cost kernels for one scenario."""

    def __init__(self, scenario: Scenario,
                 node_params: Optional[NodeParams] = None,
                 gateway_params: Optional[GatewayParams] = None) -> None:
        self.scenario = scenario
        topo = scenario.topology
        #: node name → rank, matching ``build_world`` insertion order.
        self.rank = {name: i for i, name in enumerate(topo.node_spec())}
        self.names = list(self.rank)
        self.node = node_params or DEFAULT_NODE
        self.gateway = gateway_params or DEFAULT_GATEWAY
        if scenario.pipeline is not None:
            depth, credits, lockstep = scenario.pipeline
            self.pipeline = PipelineConfig(depth=depth, credits=credits,
                                           lockstep=lockstep)
        else:
            self.pipeline = self.gateway.resolved_pipeline
        self.stripe = (StripePolicy(max_rails=scenario.stripe[0],
                                    min_stripe=scenario.stripe[1])
                       if scenario.stripe is not None else None)
        self.channels: list[_StubChannel] = []
        by_id: dict[str, _StubChannel] = {}
        for name, proto, members, aidx in topo.channel_specs():
            ranks = tuple(self.rank[m] for m in members)
            if isinstance(aidx, Mapping):
                amap = {self.rank[m]: aidx.get(m, 0) for m in members}
            else:
                amap = {self.rank[m]: int(aidx) for m in members}
            stub = _StubChannel(id=name, protocol=PROTOCOLS[proto],
                                members=ranks, adapter_index=amap)
            self.channels.append(stub)
            by_id[name] = stub
        self._by_id = by_id
        self.routes = RouteTable(self.channels)
        self._resources: dict[tuple, Resource] = {}
        self._res_index: dict[tuple, int] = {}
        for ch in self.channels:
            self._add_resource(("link", ch.id), ch.protocol.link_bandwidth)
            for rank in ch.members:
                self._add_resource(("pci", rank), self.node.pci.capacity)
                self._add_resource(("nic",) + ch.nic(rank),
                                   ch.protocol.host_peak)
        # One unit-capacity receive slot per endpoint: the DES delivers one
        # incoming *message* at a time per node (connection locks, FIFO
        # receivers), so k concurrent flows into one endpoint each make
        # ~1/k progress even when NIC bandwidth is spare.  Each flow loads
        # the slot with ``rate / its solo ceiling`` (all rails of a striped
        # flow are one message and share one load term), which is the fluid
        # processor-sharing analogue of that FIFO — a solo flow saturates
        # its slot exactly when it reaches its ceiling, changing nothing.
        for name in topo.endpoint_names():
            self._add_resource(("rx", self.rank[name]), 1.0)

    def _add_resource(self, key: tuple, capacity: float) -> None:
        if key not in self._resources:
            self._resources[key] = Resource(key=key, capacity=capacity)
            self._res_index[key] = len(self._res_index)

    @property
    def resources(self) -> dict[tuple, Resource]:
        return self._resources

    @property
    def res_index(self) -> dict:
        """Resource key → dense integer id (registration order)."""
        return self._res_index

    def res_keys(self) -> list[tuple]:
        """Resource keys in id order (the inverse of :attr:`res_index`)."""
        return list(self._res_index)

    def _intern(self, footprint: tuple) -> tuple:
        """The ``res_ids`` tuple matching ``footprint`` entry for entry."""
        return tuple(self._res_index[key] for key, _w in footprint)

    # -- per-route kernels ---------------------------------------------------
    def packet_for(self, route: Sequence[Hop]) -> int:
        """The fragment size the GTM would negotiate on ``route``."""
        return negotiate_mtu(route, self.scenario.packet_size)

    def route_protocols(self, route: Sequence[Hop]) -> list[ProtocolParams]:
        return [h.channel.protocol for h in route]

    def ceiling(self, route: Sequence[Hop],
                end_share: float = float("inf")) -> float:
        """Steady-state rate limit of one flow on ``route`` (bytes/µs).

        Direct routes stream fragments back to back at the (possibly
        end-shared) host rate; forwarded routes are limited by the slowest
        gateway pipeline along the way, computed with the same
        ``_rail_period`` kernel the closed-form predictions use — a 2-hop
        route therefore reproduces :func:`predict_forwarding` exactly, and
        an ``end_share``-capped rail reproduces :func:`predict_multirail`'s
        per-rail figure.
        """
        packet = self.packet_for(route)
        protos = self.route_protocols(route)
        if len(protos) == 1:
            p = protos[0]
            rate = min(p.host_peak, end_share)
            return packet / fragment_time(p, packet, rate=rate)
        period = 0.0
        for p_in, p_out in zip(protos, protos[1:]):
            _r, _s, step = _rail_period(p_in, p_out, packet, self.gateway,
                                        self.node, self.pipeline,
                                        end_share=end_share)
            period = max(period, step)
        return packet / period

    def steady_period(self, route: Sequence[Hop],
                      end_share: float = float("inf")) -> float:
        """Bottleneck pipeline period of ``route`` (µs per fragment)."""
        return self.packet_for(route) / self.ceiling(route, end_share)

    def setup_time(self, route: Sequence[Hop], rails: int = 1,
                   end_share: float = float("inf")) -> float:
        """Route-aware pre-streaming setup (announce, stripe record,
        per-gateway switch, pipeline fill) — the shared
        :func:`~repro.analysis.model.route_setup_time` helper."""
        return route_setup_time(self.route_protocols(route),
                                self.steady_period(route, end_share),
                                gateway=self.gateway, rails=rails)

    def footprint(self, route: Sequence[Hop]) -> tuple:
        """``((resource key, weight), ...)`` of one unit-rate flow on
        ``route``: each hop loads its channel wire, both seats' NICs, and
        both seats' PCI buses (so an interior gateway is loaded twice —
        once receiving, once retransmitting)."""
        weights: dict[tuple, int] = {}
        for hop in route:
            ch = hop.channel
            for key in (("link", ch.id),
                        ("nic",) + ch.nic(hop.src),
                        ("nic",) + ch.nic(hop.dst),
                        ("pci", hop.src),
                        ("pci", hop.dst)):
                weights[key] = weights.get(key, 0) + 1
        return tuple(sorted(weights.items()))

    # -- flow expansion ------------------------------------------------------
    def rails_for(self, src: int, dst: int) -> list[list[Hop]]:
        """The disjoint rail set striping would use (primary route only
        when no stripe policy is configured)."""
        if self.stripe is None:
            return [self.routes.route(src, dst)]
        rails = disjoint_routes(self.routes.all_routes(src, dst),
                                self.stripe.max_rails)
        return rails or [self.routes.route(src, dst)]

    def routed_flows(self, index: int, src_name: str, dst_name: str,
                     nbytes: int, arrival: float = 0.0) -> list[RoutedFlow]:
        """Expand one application flow into its rail flows.

        A striped flow splits across its disjoint rails in proportion to
        each rail's ceiling (the fluid limit of the water-filling stripe
        scheduler), with every rail's end-host rate capped at a
        ``capacity / rails`` fair share exactly as in
        :func:`predict_multirail`; an unstriped (or too-small) flow rides
        its primary route alone.
        """
        src, dst = self.rank[src_name], self.rank[dst_name]
        rails = self.rails_for(src, dst)
        if (len(rails) < 2 or self.stripe is None
                or nbytes < 2 * self.stripe.min_stripe):
            route = rails[0] if len(rails) < 2 else self.routes.route(src, dst)
            ceil = self.ceiling(route)
            footprint = self.footprint(route) \
                + ((("rx", dst), 1.0 / ceil),)
            return [RoutedFlow(id=(index, 0), nbytes=nbytes, arrival=arrival,
                               ceiling=ceil,
                               setup_us=self.setup_time(route),
                               footprint=footprint,
                               res_ids=self._intern(footprint))]
        share = self.node.pci.capacity / len(rails)
        ceilings = [self.ceiling(r, end_share=share) for r in rails]
        total = sum(ceilings)
        out = []
        assigned = 0.0
        # fractional byte counts: the fluid split is exact, and rounding to
        # whole bytes would skew the max-over-rails finish time.
        for k, (route, ceil) in enumerate(zip(rails, ceilings)):
            chunk = (nbytes - assigned if k == len(rails) - 1
                     else nbytes * ceil / total)
            assigned += chunk
            footprint = self.footprint(route) + ((("rx", dst), 1.0 / total),)
            out.append(RoutedFlow(
                id=(index, k), nbytes=chunk, arrival=arrival, ceiling=ceil,
                setup_us=self.setup_time(route, rails=len(rails),
                                         end_share=share),
                footprint=footprint,
                res_ids=self._intern(footprint)))
        return out
