"""The fluid fixed-point solver: per-flow rates and FCTs without the DES.

The paper already argues (§3.3.1) that the gateway pipeline's steady period
predicts forwarding bandwidth analytically; this module generalizes that
argument from one flow on one gateway to a whole scenario.  Each flow is a
*fluid* — a rate, not a fragment schedule — whose per-route ceiling comes
from the same ``_rail_period``/``fragment_time`` kernel the closed-form
predictions use, and whose share of every contended resource (end-host PCI
buses, gateway buses, NICs, wire segments) is settled by **max-min fair
allocation**: progressive filling raises all rates together, freezing a
flow when it hits its pipeline ceiling or when one of its resources
saturates, until every flow is frozen — the fixed point.

Flow completion times come from an event loop over the fluid system: the
allocation is recomputed at every flow arrival and completion (the only
instants it can change), rates are integrated in between, and each
application flow finishes when its last rail drains.  A scenario with one
flow on the 3-node testbed collapses to exactly
:func:`~repro.analysis.model.predict_forwarding`; a single striped flow on
the multirail topology collapses to
:func:`~repro.analysis.model.predict_multirail`.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..scenario import Scenario
from .network import RoutedFlow, SolverNetwork

__all__ = ["FlowEstimate", "SolverResult", "max_min_rates", "solve",
           "solve_bandwidth"]

_REL_EPS = 1e-9


def max_min_rates(flows: Sequence[RoutedFlow],
                  capacities: dict) -> dict:
    """Max-min fair rates (bytes/µs) for ``flows`` over ``capacities``.

    Progressive filling: every unfrozen flow's rate rises at the same pace;
    a flow freezes when it reaches its own ``ceiling`` (the §3.3.1 pipeline
    limit of its route) or when any resource in its footprint saturates.
    Each round freezes at least one flow, so the fixed point lands in at
    most ``len(flows)`` rounds.  A flow's ``footprint`` weights count how
    many times it crosses a resource (a gateway's PCI bus carries each
    forwarded byte twice), so ``rate × weight`` is what a flow consumes.
    """
    rate = {f.id: 0.0 for f in flows}
    used = {key: 0.0 for key in capacities}
    active = list(flows)
    while active:
        load: dict = {}
        for f in active:
            for key, w in f.footprint:
                load[key] = load.get(key, 0.0) + w
        inc = min(f.ceiling - rate[f.id] for f in active)
        for key, demand in load.items():
            inc = min(inc, (capacities[key] - used[key]) / demand)
        inc = max(inc, 0.0)
        for f in active:
            rate[f.id] += inc
            for key, w in f.footprint:
                used[key] += w * inc
        saturated = {
            key for key in load
            if capacities[key] - used[key] <= _REL_EPS * max(1.0,
                                                             capacities[key])
        }
        rest = [f for f in active
                if rate[f.id] < f.ceiling - _REL_EPS * max(1.0, f.ceiling)
                and not any(key in saturated for key, _w in f.footprint)]
        if len(rest) == len(active):   # numerical stall: nothing froze
            break                      # pragma: no cover
        active = rest
    return rate


@dataclass(frozen=True)
class FlowEstimate:
    """Solver estimate for one application flow (all its rails together)."""

    index: int
    src: str
    dst: str
    nbytes: int
    arrival: float        # open-loop arrival, µs
    setup_us: float       # route-aware pre-streaming setup (slowest rail)
    finish_us: float      # last rail drained
    rails: int

    @property
    def fct_us(self) -> float:
        """Flow completion time, µs."""
        return self.finish_us - self.arrival

    @property
    def bandwidth(self) -> float:
        """Delivered MB/s (== bytes/µs) over the flow's lifetime."""
        return self.nbytes / self.fct_us


@dataclass
class SolverResult:
    """Per-flow estimates plus per-resource utilization for one scenario."""

    scenario: Scenario
    flows: list[FlowEstimate]
    #: resource key -> mean utilization over the run (allocated ÷ capacity).
    utilization: dict
    duration_us: float
    #: fixed-point recomputations (one per arrival/completion epoch).
    recomputes: int
    #: rail flows actually re-solved, summed over epochs (the work done);
    #: with ``incremental=False`` this equals ``live_flow_epochs``.
    epoch_flows: int = 0
    #: live rail flows at each epoch, summed — ``epoch_flows /
    #: live_flow_epochs`` is the mean fraction of the population each
    #: epoch had to touch.
    live_flow_epochs: int = 0
    #: contention-component size -> number of times a component of that
    #: size was re-solved.
    component_sizes: dict = None
    #: with ``crosscheck=True``: the largest relative deviation of any
    #: epoch's live rates from a from-scratch :func:`max_min_rates` oracle.
    crosscheck_max_dev: float = 0.0

    def link_utilization(self) -> dict[str, float]:
        """Wire-segment utilization only, keyed by channel id."""
        return {key[1]: u for key, u in self.utilization.items()
                if key[0] == "link"}

    def summary(self) -> dict:
        """Flow-level statistics in the traffic engine's summary shape, so
        sweep tables and regress comparisons can consume either engine."""
        fcts = np.array([f.fct_us for f in self.flows])
        total_bytes = sum(f.nbytes for f in self.flows)
        peak = 0
        live = 0
        marks = sorted([(f.arrival, 1) for f in self.flows]
                       + [(f.finish_us, -1) for f in self.flows],
                       key=lambda m: (m[0], -m[1]))
        for _t, d in marks:
            live += d
            peak = max(peak, live)
        mb = total_bytes / 1e6
        return {
            "mode": "solver",
            "flows": len(self.flows),
            "completed": len(self.flows),
            "peak_active": peak,
            "p50_fct_us": float(np.percentile(fcts, 50)),
            "p99_fct_us": float(np.percentile(fcts, 99)),
            "mean_fct_us": float(fcts.mean()),
            "max_fct_us": float(fcts.max()),
            "duration_us": self.duration_us,
            "bytes": total_bytes,
            "goodput_mbs": (total_bytes / self.duration_us
                            if self.duration_us else 0.0),
            "events": self.recomputes,
            "events_per_mb": (self.recomputes / mb) if mb else float("nan"),
            "epoch_flows": self.epoch_flows,
            "live_flow_epochs": self.live_flow_epochs,
            "recompute_fraction": (self.epoch_flows / self.live_flow_epochs
                                   if self.live_flow_epochs else 0.0),
        }


def _application_flows(scenario: Scenario) -> list[tuple]:
    """(index, src, dst, nbytes, arrival) for every flow the scenario
    offers: the explicit message list at t=0, then the generated traffic —
    expanded by the *same* :func:`~repro.traffic.flows.generate_flows` the
    DES engine uses, so both see identical arrivals."""
    out = [(i, m.src, m.dst, m.nbytes, 0.0)
           for i, m in enumerate(scenario.messages)]
    if scenario.traffic is not None:
        from ..traffic.flows import generate_flows
        base = len(out)
        names = scenario.topology.endpoint_names()
        for f in generate_flows(scenario.traffic, scenario.seed, names):
            out.append((base + f.index, f.src, f.dst, f.nbytes, f.arrival))
    if not out:
        raise ValueError("scenario has no traffic to solve")
    return out


class _Rail:
    """Mutable epoch-loop state of one active rail flow.

    ``rem`` is the bytes left at ``t_last``; the pair is only *settled*
    (advanced to the current instant) when the rail's rate actually
    changes, so a rail in an untouched contention component carries its
    state — and its predicted finish — across epochs verbatim.
    """

    __slots__ = ("rf", "fp", "rem", "t_last", "rate", "version", "seq")

    def __init__(self, rf: RoutedFlow, seq: int) -> None:
        self.rf = rf
        #: (resource id, weight) pairs — footprint with interned keys.
        self.fp = tuple(zip(rf.res_ids, (w for _k, w in rf.footprint)))
        self.rem = float(rf.nbytes)
        self.t_last = rf.arrival + rf.setup_us
        self.rate = 0.0
        self.version = 0
        self.seq = seq


def _fill_solver_component(comp: list, capacities: list) -> dict:
    """Progressive filling of one contention component of active rails.

    The rounds mirror :func:`max_min_rates` (same freeze slack, same
    saturation test, same stall break) restricted to the component; since
    components share no resources, the component-wise fixed points compose
    to the global one.  Two arithmetic shortcuts keep each round linear in
    ``active + resources`` instead of ``active × footprint``: a resource's
    demand is maintained across rounds (frozen flows subtract their weights
    on exit) rather than rebuilt, and its usage advances by
    ``demand × inc`` in one step rather than per member — both reorder
    float sums, so rates can drift ulps (≪ the 1e-9 crosscheck gate) from
    the reference filling, never past a freeze slack.
    """
    n = len(comp)
    ceils = [rail.rf.ceiling for rail in comp]
    slacks = [_REL_EPS * max(1.0, c) for c in ceils]
    fps = [rail.fp for rail in comp]
    rate = [0.0] * n
    load: dict = {}              # resource id -> total active demand
    count: dict = {}             # resource id -> active member count
    used: dict = {}
    for fp in fps:
        for i, w in fp:
            load[i] = load.get(i, 0.0) + w
            count[i] = count.get(i, 0) + 1
            used[i] = 0.0
    cap_slack = {i: _REL_EPS * (capacities[i] if capacities[i] > 1.0 else 1.0)
                 for i in load}
    active = list(range(n))
    while active:
        inc = math.inf
        for k in active:
            head = ceils[k] - rate[k]
            if head < inc:
                inc = head
        for i, demand in load.items():
            head = (capacities[i] - used[i]) / demand
            if head < inc:
                inc = head
        if inc < 0.0:
            inc = 0.0
        saturated = set()
        for i, demand in load.items():
            u = used[i] + demand * inc
            used[i] = u
            if capacities[i] - u <= cap_slack[i]:
                saturated.add(i)
        rest = []
        for k in active:
            r = rate[k] + inc
            rate[k] = r
            if r < ceils[k] - slacks[k] and not (
                    saturated and any(i in saturated for i, _w in fps[k])):
                rest.append(k)
        if len(rest) == len(active):   # numerical stall: nothing froze
            break                      # pragma: no cover
        j = 0
        for k in active:               # retire the flows that froze
            if j < len(rest) and rest[j] == k:
                j += 1
                continue
            for i, w in fps[k]:
                count[i] -= 1
                if count[i]:
                    load[i] -= w
                else:
                    del load[i]
                    del count[i]
        active = rest
    return {rail.rf.id: rate[k] for k, rail in enumerate(comp)}


def solve(scenario: Scenario, node_params=None, gateway_params=None,
          incremental: bool = True,
          crosscheck: bool = False) -> SolverResult:
    """Solve ``scenario`` analytically: route every flow with the DES's own
    route table, allocate max-min fair rates at every arrival/completion
    epoch, and integrate the fluid rates into per-flow finish times and
    per-resource utilization.

    Rates only change inside the contention component(s) an epoch's
    arrivals/completions touch, so by default (``incremental=True``) only
    those components are re-filled; rails elsewhere keep their rates and
    predicted finish times verbatim.  ``incremental=False`` re-fills every
    component each epoch — identical results, more work (a rail whose
    re-filled rate is unchanged is left unsettled either way, which is what
    makes the two modes *bit*-identical, not merely close).
    ``crosscheck=True`` additionally re-solves every epoch from scratch
    with :func:`max_min_rates` and records the largest relative rate
    deviation in :attr:`SolverResult.crosscheck_max_dev`.
    """
    net = SolverNetwork(scenario, node_params=node_params,
                        gateway_params=gateway_params)
    res_keys = net.res_keys()
    caps = {key: net.resources[key].capacity for key in res_keys}
    capacities = [caps[key] for key in res_keys]      # dense, by resource id
    apps = _application_flows(scenario)
    rails: list[RoutedFlow] = []
    meta = {}           # app index -> (src, dst, nbytes, arrival, setup, k)
    for index, src, dst, nbytes, arrival in apps:
        expanded = net.routed_flows(index, src, dst, nbytes, arrival=arrival)
        rails.extend(expanded)
        meta[index] = (src, dst, nbytes, arrival,
                       max(r.setup_us for r in expanded), len(expanded))

    # Streaming starts once the route's setup (announce, stripe record,
    # switch overheads, pipeline fill) has played out.  Arrivals are
    # sorted once and consumed through an index cursor — the historical
    # ``pending.pop(0)`` re-shuffled the whole list on every admission.
    arrivals = sorted(rails, key=lambda r: (r.arrival + r.setup_us, r.id))
    cursor = 0
    active: dict = {}                     # rail id -> _Rail
    members: list[dict] = [{} for _ in res_keys]   # res id -> {rail id: _Rail}
    finish: dict = {}                     # rail id -> finish time
    util = [0.0] * len(res_keys)          # integral of allocated load, bytes
    res_rate = [0.0] * len(res_keys)      # current total weighted rate
    res_last = [0.0] * len(res_keys)      # last settle time
    heap: list = []                       # (t_pred, seq, rail id, version)
    now = 0.0
    seq = 0
    recomputes = 0
    epoch_flows = 0
    live_flow_epochs = 0
    component_sizes: dict = {}
    crosscheck_dev = 0.0

    def settle_resource(i: int, t: float) -> None:
        dt = t - res_last[i]
        if dt > 0.0:
            util[i] += res_rate[i] * dt
        res_last[i] = t

    def next_finish() -> float:
        """Earliest predicted rail finish (lazy-dropping stale entries)."""
        while heap:
            t_pred, _s, rid, version = heap[0]
            rail = active.get(rid)
            if rail is None or rail.version != version:
                heapq.heappop(heap)
                continue
            return t_pred
        return math.inf

    def resolve(seeds: list) -> None:
        """Re-fill the contention component(s) reachable from ``seeds``."""
        nonlocal recomputes, epoch_flows, live_flow_epochs, crosscheck_dev
        if not incremental:
            seeds = list(active.values())
        visited: set = set()
        touched = 0
        for seed in seeds:
            if seed.rf.id in visited or seed.rf.id not in active:
                continue
            comp = [seed]
            visited.add(seed.rf.id)
            frontier = [seed]
            while frontier:
                grown = []
                for rail in frontier:
                    for i, _w in rail.fp:
                        for orid, (other, _ow) in members[i].items():
                            if orid not in visited:
                                visited.add(orid)
                                comp.append(other)
                                grown.append(other)
                frontier = grown
            comp.sort(key=lambda rail: rail.seq)
            touched += len(comp)
            component_sizes[len(comp)] = component_sizes.get(len(comp), 0) + 1
            comp_res = {i for rail in comp for i, _w in rail.fp}
            for i in comp_res:
                settle_resource(i, now)
            rates = _fill_solver_component(comp, capacities)
            for rail in comp:
                r = rates[rail.rf.id]
                if r <= 0.0:
                    raise RuntimeError(
                        f"fluid flow {rail.rf.id} starved (rate 0); resource "
                        f"capacities leave it no share")
                if r != rail.rate:
                    # settle progress at the old rate, then switch
                    dt = now - rail.t_last
                    if dt > 0.0:
                        rail.rem -= rail.rate * dt
                    rail.t_last = now
                    delta = r - rail.rate
                    for i, w in rail.fp:
                        res_rate[i] += delta * w
                    rail.rate = r
                    rail.version += 1
                    heapq.heappush(heap, (now + rail.rem / r, rail.seq,
                                          rail.rf.id, rail.version))
        recomputes += 1
        epoch_flows += touched
        live_flow_epochs += len(active)
        if crosscheck and active:
            oracle = max_min_rates([rail.rf for rail in active.values()],
                                   caps)
            for rail in active.values():
                ref = oracle[rail.rf.id]
                dev = abs(rail.rate - ref) / max(1.0, abs(ref))
                crosscheck_dev = max(crosscheck_dev, dev)

    while cursor < len(arrivals) or active:
        if not active:
            nxt = arrivals[cursor]
            now = max(now, nxt.arrival + nxt.setup_us)
        else:
            horizon = next_finish()
            if cursor < len(arrivals):
                nxt = arrivals[cursor]
                horizon = min(horizon, nxt.arrival + nxt.setup_us)
            now = horizon
        # Completions: pop every rail whose residue at `now` is below the
        # sub-µbyte drain threshold (the heap is predicted-finish ordered,
        # so the qualifying prefix is contiguous up to the 1e-6 slack).
        done = []
        while heap:
            t_pred, _s, rid, version = heap[0]
            rail = active.get(rid)
            if rail is None or rail.version != version:
                heapq.heappop(heap)
                continue
            if t_pred <= now + 1e-6 / rail.rate:   # rem(now) <= 1e-6 bytes
                heapq.heappop(heap)
                done.append(rail)
            else:
                break
        seeds = []
        seen = set()
        for rail in done:
            finish[rail.rf.id] = now
            del active[rail.rf.id]
        for rail in done:
            for i, w in rail.fp:
                settle_resource(i, now)
                del members[i][rail.rf.id]
                if members[i]:
                    res_rate[i] -= rail.rate * w
                    for orid, (other, _ow) in members[i].items():
                        if orid not in seen:
                            seen.add(orid)
                            seeds.append(other)
                else:
                    res_rate[i] = 0.0
        seeds.sort(key=lambda rail: rail.seq)
        while cursor < len(arrivals) and \
                arrivals[cursor].arrival + arrivals[cursor].setup_us \
                <= now + _REL_EPS:
            rf = arrivals[cursor]
            cursor += 1
            if rf.nbytes <= 0:     # a rail the stripe split left empty
                finish[rf.id] = now
                continue
            rail = _Rail(rf, seq)
            seq += 1
            rail.t_last = now
            active[rf.id] = rail
            for i, w in rail.fp:
                members[i][rf.id] = (rail, w)
            seeds.append(rail)
        resolve(seeds)

    duration = max(finish.values()) if finish else 0.0
    for i in range(len(res_keys)):
        settle_resource(i, duration)
    estimates = []
    for index in sorted(meta):
        src, dst, nbytes, arrival, setup, k = meta[index]
        fin = max(finish[(index, r)] for r in range(k))
        estimates.append(FlowEstimate(index=index, src=src, dst=dst,
                                      nbytes=nbytes, arrival=arrival,
                                      setup_us=setup, finish_us=fin,
                                      rails=k))
    utilization = {key: (util[i] / (capacities[i] * duration)
                         if duration else 0.0)
                   for i, key in enumerate(res_keys)}
    return SolverResult(scenario=scenario, flows=estimates,
                        utilization=utilization, duration_us=duration,
                        recomputes=recomputes, epoch_flows=epoch_flows,
                        live_flow_epochs=live_flow_epochs,
                        component_sizes=component_sizes,
                        crosscheck_max_dev=crosscheck_dev)


def solve_bandwidth(scenario: Scenario, node_params=None,
                    gateway_params=None) -> float:
    """Single-message convenience: the solved bandwidth (MB/s) of a
    scenario's one transfer — the solver-side analogue of
    :meth:`PingHarness.measure(...).bandwidth`."""
    result = solve(scenario, node_params=node_params,
                   gateway_params=gateway_params)
    if len(result.flows) != 1:
        raise ValueError(f"expected a single-transfer scenario, got "
                         f"{len(result.flows)} flows")
    return result.flows[0].bandwidth
