"""The fluid fixed-point solver: per-flow rates and FCTs without the DES.

The paper already argues (§3.3.1) that the gateway pipeline's steady period
predicts forwarding bandwidth analytically; this module generalizes that
argument from one flow on one gateway to a whole scenario.  Each flow is a
*fluid* — a rate, not a fragment schedule — whose per-route ceiling comes
from the same ``_rail_period``/``fragment_time`` kernel the closed-form
predictions use, and whose share of every contended resource (end-host PCI
buses, gateway buses, NICs, wire segments) is settled by **max-min fair
allocation**: progressive filling raises all rates together, freezing a
flow when it hits its pipeline ceiling or when one of its resources
saturates, until every flow is frozen — the fixed point.

Flow completion times come from an event loop over the fluid system: the
allocation is recomputed at every flow arrival and completion (the only
instants it can change), rates are integrated in between, and each
application flow finishes when its last rail drains.  A scenario with one
flow on the 3-node testbed collapses to exactly
:func:`~repro.analysis.model.predict_forwarding`; a single striped flow on
the multirail topology collapses to
:func:`~repro.analysis.model.predict_multirail`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..scenario import Scenario
from .network import RoutedFlow, SolverNetwork

__all__ = ["FlowEstimate", "SolverResult", "max_min_rates", "solve",
           "solve_bandwidth"]

_REL_EPS = 1e-9


def max_min_rates(flows: Sequence[RoutedFlow],
                  capacities: dict) -> dict:
    """Max-min fair rates (bytes/µs) for ``flows`` over ``capacities``.

    Progressive filling: every unfrozen flow's rate rises at the same pace;
    a flow freezes when it reaches its own ``ceiling`` (the §3.3.1 pipeline
    limit of its route) or when any resource in its footprint saturates.
    Each round freezes at least one flow, so the fixed point lands in at
    most ``len(flows)`` rounds.  A flow's ``footprint`` weights count how
    many times it crosses a resource (a gateway's PCI bus carries each
    forwarded byte twice), so ``rate × weight`` is what a flow consumes.
    """
    rate = {f.id: 0.0 for f in flows}
    used = {key: 0.0 for key in capacities}
    active = list(flows)
    while active:
        load: dict = {}
        for f in active:
            for key, w in f.footprint:
                load[key] = load.get(key, 0.0) + w
        inc = min(f.ceiling - rate[f.id] for f in active)
        for key, demand in load.items():
            inc = min(inc, (capacities[key] - used[key]) / demand)
        inc = max(inc, 0.0)
        for f in active:
            rate[f.id] += inc
            for key, w in f.footprint:
                used[key] += w * inc
        saturated = {
            key for key in load
            if capacities[key] - used[key] <= _REL_EPS * max(1.0,
                                                             capacities[key])
        }
        rest = [f for f in active
                if rate[f.id] < f.ceiling - _REL_EPS * max(1.0, f.ceiling)
                and not any(key in saturated for key, _w in f.footprint)]
        if len(rest) == len(active):   # numerical stall: nothing froze
            break                      # pragma: no cover
        active = rest
    return rate


@dataclass(frozen=True)
class FlowEstimate:
    """Solver estimate for one application flow (all its rails together)."""

    index: int
    src: str
    dst: str
    nbytes: int
    arrival: float        # open-loop arrival, µs
    setup_us: float       # route-aware pre-streaming setup (slowest rail)
    finish_us: float      # last rail drained
    rails: int

    @property
    def fct_us(self) -> float:
        """Flow completion time, µs."""
        return self.finish_us - self.arrival

    @property
    def bandwidth(self) -> float:
        """Delivered MB/s (== bytes/µs) over the flow's lifetime."""
        return self.nbytes / self.fct_us


@dataclass
class SolverResult:
    """Per-flow estimates plus per-resource utilization for one scenario."""

    scenario: Scenario
    flows: list[FlowEstimate]
    #: resource key -> mean utilization over the run (allocated ÷ capacity).
    utilization: dict
    duration_us: float
    #: fixed-point recomputations (one per arrival/completion epoch).
    recomputes: int

    def link_utilization(self) -> dict[str, float]:
        """Wire-segment utilization only, keyed by channel id."""
        return {key[1]: u for key, u in self.utilization.items()
                if key[0] == "link"}

    def summary(self) -> dict:
        """Flow-level statistics in the traffic engine's summary shape, so
        sweep tables and regress comparisons can consume either engine."""
        fcts = np.array([f.fct_us for f in self.flows])
        total_bytes = sum(f.nbytes for f in self.flows)
        peak = 0
        live = 0
        marks = sorted([(f.arrival, 1) for f in self.flows]
                       + [(f.finish_us, -1) for f in self.flows],
                       key=lambda m: (m[0], -m[1]))
        for _t, d in marks:
            live += d
            peak = max(peak, live)
        mb = total_bytes / 1e6
        return {
            "mode": "solver",
            "flows": len(self.flows),
            "completed": len(self.flows),
            "peak_active": peak,
            "p50_fct_us": float(np.percentile(fcts, 50)),
            "p99_fct_us": float(np.percentile(fcts, 99)),
            "mean_fct_us": float(fcts.mean()),
            "max_fct_us": float(fcts.max()),
            "duration_us": self.duration_us,
            "bytes": total_bytes,
            "goodput_mbs": (total_bytes / self.duration_us
                            if self.duration_us else 0.0),
            "events": self.recomputes,
            "events_per_mb": (self.recomputes / mb) if mb else float("nan"),
        }


def _application_flows(scenario: Scenario) -> list[tuple]:
    """(index, src, dst, nbytes, arrival) for every flow the scenario
    offers: the explicit message list at t=0, then the generated traffic —
    expanded by the *same* :func:`~repro.traffic.flows.generate_flows` the
    DES engine uses, so both see identical arrivals."""
    out = [(i, m.src, m.dst, m.nbytes, 0.0)
           for i, m in enumerate(scenario.messages)]
    if scenario.traffic is not None:
        from ..traffic.flows import generate_flows
        base = len(out)
        names = scenario.topology.endpoint_names()
        for f in generate_flows(scenario.traffic, scenario.seed, names):
            out.append((base + f.index, f.src, f.dst, f.nbytes, f.arrival))
    if not out:
        raise ValueError("scenario has no traffic to solve")
    return out


def solve(scenario: Scenario, node_params=None,
          gateway_params=None) -> SolverResult:
    """Solve ``scenario`` analytically: route every flow with the DES's own
    route table, allocate max-min fair rates at every arrival/completion
    epoch, and integrate the fluid rates into per-flow finish times and
    per-resource utilization."""
    net = SolverNetwork(scenario, node_params=node_params,
                        gateway_params=gateway_params)
    caps = {key: r.capacity for key, r in net.resources.items()}
    apps = _application_flows(scenario)
    rails: list[RoutedFlow] = []
    meta = {}           # app index -> (src, dst, nbytes, arrival, setup, k)
    for index, src, dst, nbytes, arrival in apps:
        expanded = net.routed_flows(index, src, dst, nbytes, arrival=arrival)
        rails.extend(expanded)
        meta[index] = (src, dst, nbytes, arrival,
                       max(r.setup_us for r in expanded), len(expanded))

    # Streaming starts once the route's setup (announce, stripe record,
    # switch overheads, pipeline fill) has played out.
    pending = sorted(rails, key=lambda r: (r.arrival + r.setup_us, r.id))
    active: dict = {}                     # rail id -> [RoutedFlow, remaining]
    finish: dict = {}                     # rail id -> finish time
    util = {key: 0.0 for key in caps}     # integral of allocated rate, bytes
    now = 0.0
    recomputes = 0
    while pending or active:
        if not active:
            now = max(now, pending[0].arrival + pending[0].setup_us)
        else:
            rates = max_min_rates([f for f, _rem in active.values()], caps)
            recomputes += 1
            dt_done = math.inf
            for rid, (_f, rem) in active.items():
                r = rates[rid]
                if r <= 0.0:
                    raise RuntimeError(
                        f"fluid flow {rid} starved (rate 0); resource "
                        f"capacities leave it no share")
                dt_done = min(dt_done, rem / r)
            horizon = now + dt_done
            if pending:
                horizon = min(horizon,
                              pending[0].arrival + pending[0].setup_us)
            dt = horizon - now
            for rid, entry in active.items():
                f, rem = entry
                entry[1] = rem - rates[rid] * dt
                for key, w in f.footprint:
                    util[key] += rates[rid] * w * dt
            now = horizon
            done = [rid for rid, (_f, rem) in active.items()
                    if rem <= 1e-6]       # sub-µbyte residue == drained
            for rid in done:
                finish[rid] = now
                del active[rid]
        while pending and pending[0].arrival + pending[0].setup_us \
                <= now + _REL_EPS:
            f = pending.pop(0)
            if f.nbytes <= 0:      # a rail the stripe split left empty
                finish[f.id] = now
            else:
                active[f.id] = [f, float(f.nbytes)]

    duration = max(finish.values()) if finish else 0.0
    estimates = []
    for index in sorted(meta):
        src, dst, nbytes, arrival, setup, k = meta[index]
        fin = max(finish[(index, r)] for r in range(k))
        estimates.append(FlowEstimate(index=index, src=src, dst=dst,
                                      nbytes=nbytes, arrival=arrival,
                                      setup_us=setup, finish_us=fin,
                                      rails=k))
    utilization = {key: (util[key] / (caps[key] * duration)
                         if duration else 0.0) for key in caps}
    return SolverResult(scenario=scenario, flows=estimates,
                        utilization=utilization, duration_us=duration,
                        recomputes=recomputes)


def solve_bandwidth(scenario: Scenario, node_params=None,
                    gateway_params=None) -> float:
    """Single-message convenience: the solved bandwidth (MB/s) of a
    scenario's one transfer — the solver-side analogue of
    :meth:`PingHarness.measure(...).bandwidth`."""
    result = solve(scenario, node_params=node_params,
                   gateway_params=gateway_params)
    if len(result.flows) != 1:
        raise ValueError(f"expected a single-transfer scenario, got "
                         f"{len(result.flows)} flows")
    return result.flows[0].bandwidth
