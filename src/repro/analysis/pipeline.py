"""Gateway-pipeline timeline analysis (Figures 5 and 8).

The gateway workers emit trace records per forwarded item:

* ``recv`` with ``start`` and end time (the receive step),
* ``swap`` (after the buffer-switch software overhead),
* ``send`` with ``start`` and end time (the retransmit step).

This module reconstructs the two-lane timeline the paper draws, and
quantifies its two pathologies: the per-switch software overhead (§3.3.1)
and the PCI-conflict send slowdown (§3.4.1, Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim.trace import TraceRecorder

__all__ = ["StepTimeline", "PipelineStats", "extract_timeline",
           "pipeline_stats", "render_timeline"]


@dataclass(frozen=True)
class StepTimeline:
    """Per-fragment step intervals at one gateway for one message."""

    seq: int
    nbytes: int
    kind: str                      # "frag" or "desc"
    recv_start: float
    recv_end: float
    swap_end: Optional[float]
    send_start: Optional[float]
    send_end: Optional[float]

    @property
    def recv_duration(self) -> float:
        return self.recv_end - self.recv_start

    @property
    def send_duration(self) -> Optional[float]:
        if self.send_start is None or self.send_end is None:
            return None
        return self.send_end - self.send_start


@dataclass(frozen=True)
class PipelineStats:
    """Aggregates over the payload fragments of one forwarded message."""

    fragments: int
    mean_recv_us: float
    mean_send_us: float
    mean_period_us: float          # spacing between successive send ends
    overlap_fraction: float        # share of send time overlapped by a recv
    send_recv_ratio: float         # > 1 means sends are the bottleneck (Fig 8)


def extract_timeline(trace: TraceRecorder, msg_id: Optional[int] = None,
                     gw: Optional[int] = None) -> list[StepTimeline]:
    """Reconstruct the per-item timeline from gateway trace records."""
    def keep(rec):
        if msg_id is not None and rec.attrs.get("msg") != msg_id:
            return False
        if gw is not None and rec.attrs.get("gw") != gw:
            return False
        return True

    recvs = {r["seq"]: r for r in trace.query("gateway", "recv") if keep(r)}
    swaps = {r["seq"]: r for r in trace.query("gateway", "swap") if keep(r)}
    sends = {r["seq"]: r for r in trace.query("gateway", "send") if keep(r)}
    steps = []
    for seq in sorted(recvs):
        r = recvs[seq]
        s = sends.get(seq)
        w = swaps.get(seq)
        steps.append(StepTimeline(
            seq=seq, nbytes=r["nbytes"], kind=r.attrs.get("kind", "frag"),
            recv_start=r["start"], recv_end=r.t,
            swap_end=w.t if w else None,
            send_start=s["start"] if s else None,
            send_end=s.t if s else None,
        ))
    return steps


def pipeline_stats(steps: list[StepTimeline]) -> PipelineStats:
    """Aggregate the payload-fragment steps (descriptors excluded)."""
    frags = [s for s in steps
             if s.kind == "frag" and s.send_duration is not None]
    if not frags:
        raise ValueError("no completed payload fragments in the timeline")
    recv_d = [s.recv_duration for s in frags]
    send_d = [s.send_duration for s in frags]
    ends = sorted(s.send_end for s in frags)
    periods = [b - a for a, b in zip(ends, ends[1:])] or [ends[0]]
    # overlap: how much of each send interval coincides with any recv
    recv_ivals = [(s.recv_start, s.recv_end) for s in frags]
    overlap_total = 0.0
    send_total = 0.0
    for s in frags:
        send_total += s.send_duration
        for (a, b) in recv_ivals:
            lo = max(a, s.send_start)
            hi = min(b, s.send_end)
            if hi > lo:
                overlap_total += hi - lo
    return PipelineStats(
        fragments=len(frags),
        mean_recv_us=sum(recv_d) / len(frags),
        mean_send_us=sum(send_d) / len(frags),
        mean_period_us=sum(periods) / len(periods),
        overlap_fraction=overlap_total / send_total if send_total else 0.0,
        send_recv_ratio=(sum(send_d) / len(frags)) / (sum(recv_d) / len(frags)),
    )


def render_timeline(steps: list[StepTimeline], width: int = 78) -> str:
    """ASCII rendering of the two pipeline lanes (the Figures 5/8 picture):

    ``R`` marks receive activity, ``S`` send activity, ``.`` idle.
    """
    frags = [s for s in steps if s.send_end is not None]
    if not frags:
        return "(empty timeline)"
    t0 = min(s.recv_start for s in frags)
    t1 = max(s.send_end for s in frags)
    span = max(t1 - t0, 1e-9)
    scale = (width - 8) / span

    def lane(mark, ivals):
        cells = ["."] * (width - 8)
        for a, b in ivals:
            lo = int((a - t0) * scale)
            hi = max(lo + 1, int((b - t0) * scale))
            for i in range(lo, min(hi, len(cells))):
                cells[i] = mark
        return "".join(cells)

    recv_line = lane("R", [(s.recv_start, s.recv_end) for s in frags])
    send_line = lane("S", [(s.send_start, s.send_end) for s in frags])
    return (f"recv  | {recv_line}\n"
            f"send  | {send_line}\n"
            f"        0{'':{width - 18}}+{span:.0f}µs")
