"""Session statistics: one-call summaries of what a run did.

Aggregates the trace and the copy accounting into per-protocol traffic
volumes, per-gateway forwarding counts, and a formatted report — the
numbers a downstream user wants after an experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hw.topology import World

__all__ = ["SessionStats", "collect_stats", "format_stats"]


@dataclass
class SessionStats:
    elapsed_us: float
    fragments: int = 0
    payload_bytes: int = 0
    by_protocol: dict[str, tuple[int, int]] = field(default_factory=dict)
    gateway_items: dict[int, int] = field(default_factory=dict)
    gateway_messages: dict[int, int] = field(default_factory=dict)
    copies: int = 0
    bytes_copied: int = 0
    copy_labels: dict[str, tuple[int, int]] = field(default_factory=dict)

    @property
    def aggregate_bandwidth(self) -> float:
        """Total payload bytes over elapsed simulated time (MB/s)."""
        return self.payload_bytes / self.elapsed_us if self.elapsed_us else 0.0


def collect_stats(world: World) -> SessionStats:
    stats = SessionStats(elapsed_us=world.sim.now)
    for rec in world.trace:
        if rec.category == "xfer" and rec.event == "fragment":
            n = rec.attrs.get("nbytes", 0)
            stats.fragments += 1
            stats.payload_bytes += n
            proto = rec.attrs.get("proto", "?")
            c, b = stats.by_protocol.get(proto, (0, 0))
            stats.by_protocol[proto] = (c + 1, b + n)
        elif rec.category == "gateway":
            gw = rec.attrs.get("gw")
            if rec.event == "send":
                stats.gateway_items[gw] = stats.gateway_items.get(gw, 0) + 1
            elif rec.event == "message_end":
                stats.gateway_messages[gw] = \
                    stats.gateway_messages.get(gw, 0) + 1
    acc = world.accounting
    stats.copies = acc.copies
    stats.bytes_copied = acc.bytes_copied
    stats.copy_labels = acc.by_label()
    return stats


def format_stats(stats: SessionStats) -> str:
    lines = [f"simulated time      : {stats.elapsed_us:,.1f} µs",
             f"wire fragments      : {stats.fragments} "
             f"({stats.payload_bytes:,} payload bytes)"]
    for proto, (count, nbytes) in sorted(stats.by_protocol.items()):
        lines.append(f"  {proto:14s}: {count:6d} fragments, {nbytes:>12,} B")
    if stats.gateway_messages:
        lines.append("gateway forwarding  :")
        for gw in sorted(stats.gateway_messages):
            lines.append(f"  rank {gw}: {stats.gateway_messages[gw]} "
                         f"message(s), {stats.gateway_items.get(gw, 0)} items")
    lines.append(f"host copies         : {stats.copies} "
                 f"({stats.bytes_copied:,} B)")
    for label, (count, nbytes) in sorted(stats.copy_labels.items()):
        lines.append(f"  {label:20s}: {count:6d} x, {nbytes:>12,} B")
    return "\n".join(lines)
