"""Terminal plots for benchmark output (log-x bandwidth curves)."""

from __future__ import annotations

import math
from typing import Sequence

from ..bench.sweep import Series

__all__ = ["plot_series"]

_MARKS = "ox+*#@%&"


def plot_series(curves: Sequence[Series], width: int = 72, height: int = 18,
                title: str = "", ylabel: str = "MB/s") -> str:
    """Multi-curve scatter plot, log-scaled x (message size)."""
    pts = [(s, b) for c in curves for s, b in c.as_rows()]
    if not pts:
        return "(no data)"
    xs = [math.log2(max(p[0], 1)) for p in pts]
    ys = [p[1] for p in pts]
    x0, x1 = min(xs), max(xs)
    y0, y1 = 0.0, max(ys) * 1.05
    xspan = max(x1 - x0, 1e-9)
    yspan = max(y1 - y0, 1e-9)
    grid = [[" "] * width for _ in range(height)]
    for ci, curve in enumerate(curves):
        mark = _MARKS[ci % len(_MARKS)]
        for s, b in curve.as_rows():
            col = int((math.log2(max(s, 1)) - x0) / xspan * (width - 1))
            row = int((b - y0) / yspan * (height - 1))
            grid[height - 1 - row][col] = mark
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        yval = y1 - i * yspan / (height - 1)
        lines.append(f"{yval:7.1f} |" + "".join(row))
    lines.append(" " * 8 + "+" + "-" * (width - 1))
    lines.append(" " * 9 + f"{2**x0:.0f}B{'':{max(width - 20, 1)}}{2**x1 / 2**20:.1f}MB (log)")
    legend = "   ".join(f"{_MARKS[i % len(_MARKS)]} {c.label}"
                        for i, c in enumerate(curves))
    lines.append(" " * 9 + legend)
    return "\n".join(lines)
