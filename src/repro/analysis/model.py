"""Closed-form pipeline model (the §3.3.1 back-of-envelope, as code).

The paper reasons about the gateway pipeline analytically:

* the steady-state period of the double-buffer pipeline is
  ``max(t_recv, t_send) + switch_overhead`` where ``t_x`` are the one-hop
  fragment times of the two networks;
* in the Myrinet→SCI direction the send time must be computed with the PIO
  slowdown applied while the (DMA) receive is on the bus.

These formulas predict the asymptotic forwarding bandwidth from the raw
per-network cost models alone; a test cross-checks them against the full
simulation (they agree within a few percent, exactly the consistency
argument of §3.3.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.fabric import FRAGMENT_HEADER_BYTES
from ..hw.params import (GatewayParams, NodeParams, PipelineConfig,
                         ProtocolParams)
from ..sim.fluid import DMA, PIO

__all__ = ["fragment_time", "route_setup_time", "PipelinePrediction",
           "predict_forwarding", "MultirailPrediction", "predict_multirail"]


def fragment_time(proto: ProtocolParams, nbytes: int,
                  rate: float | None = None) -> float:
    """One-hop wire time of one fragment (sender overhead + latency +
    stream time); ``rate`` overrides the protocol's host peak."""
    rate = proto.host_peak if rate is None else rate
    return (proto.tx_overhead + proto.latency
            + (nbytes + FRAGMENT_HEADER_BYTES) / rate)


def route_setup_time(protos: "list[ProtocolParams] | tuple[ProtocolParams, ...]",
                     period: float,
                     gateway: GatewayParams | None = None,
                     rails: int = 1) -> float:
    """Finite-message setup of a transfer whose route crosses ``protos``
    (one entry per hop, in order), before steady-state streaming.

    The pre-body announce — and, when striping (``rails > 1``), the 16-byte
    stripe record — serializes ahead of the first data fragment on *every*
    hop, each gateway relay adds its buffer-switch overhead, and the data
    pipeline then fills for one steady ``period`` per hop before the first
    fragment reaches the far cloud.  On the single-gateway (2-hop) testbed
    this is the classic announce + stripe + ``2 × period`` term; on the
    multi-gateway hierarchy/torus routes the solver sweeps, the per-hop
    record latencies and switch overheads accumulate along the whole route
    instead of being charged on the in-protocol only.
    """
    from ..madeleine.wire import ANNOUNCE_BYTES, STRIPE_BYTES
    gateway = gateway or GatewayParams()
    setup = sum(fragment_time(p, ANNOUNCE_BYTES) for p in protos)
    if rails > 1:
        setup += sum(fragment_time(p, STRIPE_BYTES) for p in protos)
    setup += (len(protos) - 1) * gateway.switch_overhead
    setup += len(protos) * period
    return setup


@dataclass(frozen=True)
class PipelinePrediction:
    recv_us: float
    send_us: float
    period_us: float
    bandwidth: float          # MB/s, asymptotic (payload bytes per period)


def _rail_period(in_proto: ProtocolParams, out_proto: ProtocolParams,
                 packet: int, gateway: GatewayParams, node: NodeParams,
                 pipe: PipelineConfig,
                 end_share: float = float("inf"),
                 ) -> tuple[float, float, float]:
    """(t_recv, t_send, steady period) of one forwarding rail.

    ``end_share`` caps the rates at the *end hosts*: on a multirail
    topology the origin's and final receiver's PCI buses are shared by all
    K rails (one NIC each per rail), so each rail streams at no more than
    ``capacity / K`` there.
    """
    cap = node.pci.capacity
    wire = packet + FRAGMENT_HEADER_BYTES

    # Fair-share rates while both flows are active on the gateway bus.
    recv_rate = min(in_proto.host_peak, cap / 2) \
        if in_proto.host_peak + out_proto.host_peak > cap else in_proto.host_peak
    recv_rate = min(recv_rate, end_share)          # origin-side bus share
    send_alone = min(out_proto.host_peak, end_share)   # receiver-side share
    if out_proto.tx_kind == PIO and in_proto.rx_kind == DMA:
        send_contended = out_proto.host_peak / node.pci.pio_preempt_slowdown
    else:
        send_contended = min(send_alone, max(cap - recv_rate, cap / 2)) \
            if in_proto.host_peak + out_proto.host_peak > cap else send_alone
    send_contended = min(send_contended, end_share)

    t_recv = fragment_time(in_proto, packet, rate=recv_rate)
    recv_stream = wire / recv_rate   # DMA-active portion of the period

    # Send: contended while the receive streams, then alone.
    contended_bytes = min(wire, send_contended * recv_stream)
    rest = wire - contended_bytes
    t_send = (out_proto.tx_overhead + out_proto.latency
              + contended_bytes / send_contended
              + (rest / send_alone if rest > 0 else 0.0))

    if pipe.depth == 1 or pipe.effective_credits == 1:
        period = t_recv + gateway.switch_overhead + t_send
    elif pipe.is_lockstep:
        period = max(t_recv, t_send) + gateway.switch_overhead
    else:
        period = max(t_recv + gateway.switch_overhead, t_send)
    return t_recv, t_send, period


def predict_forwarding(in_proto: ProtocolParams, out_proto: ProtocolParams,
                       packet: int,
                       gateway: GatewayParams | None = None,
                       node: NodeParams | None = None,
                       pipeline: PipelineConfig | None = None,
                       ) -> PipelinePrediction:
    """Asymptotic forwarding bandwidth through one gateway.

    Models: full-duplex sharing of the gateway PCI bus between the receive
    and send flows (fair split of the duplex capacity, capped at each
    protocol's peak), plus the PIO-under-DMA slowdown while the receive
    flow is active (§3.4.1), plus the per-switch software overhead.

    The steady-state period depends on the pipeline discipline
    (``pipeline`` overrides the gateway's resolved config):

    * lockstep (the paper's depth-2 buffer exchange): both threads meet
      every step, so ``max(recv, send) + switch_overhead``;
    * credit pipeline with >= 2 credits: the switch overhead happens on the
      receive thread while the sender streams, so
      ``max(recv + switch_overhead, send)``;
    * a single buffer/credit (store-and-forward per fragment):
      ``recv + switch_overhead + send``.
    """
    gateway = gateway or GatewayParams()
    node = node or NodeParams()
    pipe = pipeline if pipeline is not None else gateway.resolved_pipeline
    t_recv, t_send, period = _rail_period(in_proto, out_proto, packet,
                                          gateway, node, pipe)
    return PipelinePrediction(recv_us=t_recv, send_us=t_send,
                              period_us=period,
                              bandwidth=packet / period)


@dataclass(frozen=True)
class MultirailPrediction:
    rails: int
    period_us: float          # steady-state per-rail period
    rail_bandwidth: float     # MB/s through one rail of the K-rail set
    aggregate: float          # MB/s, asymptotic sum over the rails
    bandwidth: float          # MB/s for a finite message, setup included
    speedup: float            # aggregate / single-rail asymptotic bandwidth


def predict_multirail(in_proto: ProtocolParams, out_proto: ProtocolParams,
                      packet: int, rails: int = 2, message: int = 2 << 20,
                      gateway: GatewayParams | None = None,
                      node: NodeParams | None = None,
                      pipeline: PipelineConfig | None = None,
                      ) -> MultirailPrediction:
    """Aggregate bandwidth of ``rails`` disjoint forwarding rails.

    Each rail is an independent gateway pipeline (:func:`predict_forwarding`)
    — the rails share only the two *end hosts*, whose PCI buses carry one
    flow per rail.  The stripes are scheduled together and credit-paced
    identically, so their bus bursts overlap: each rail's end-host rates are
    capped at a ``capacity / rails`` fair share, which is what bends the
    aggregate below ``rails ×`` the single-rail figure as K grows.

    The asymptotic aggregate is the sum of the per-rail rates; the finite
    ``message`` figure adds the striping overhead — the per-rail announce
    and 16-byte stripe record, plus two periods of pipeline fill before the
    first fragment reaches the far cloud — which is what positions the knee
    of the bandwidth-vs-paquet-size curve.
    """
    if rails < 1:
        raise ValueError(f"rails must be >= 1, got {rails}")
    gateway = gateway or GatewayParams()
    node = node or NodeParams()
    pipe = pipeline if pipeline is not None else gateway.resolved_pipeline
    share = node.pci.capacity / rails
    _r, _s, period = _rail_period(in_proto, out_proto, packet,
                                  gateway, node, pipe, end_share=share)
    rail_bw = packet / period
    aggregate = rails * rail_bw
    single = predict_forwarding(in_proto, out_proto, packet,
                                gateway, node, pipeline).bandwidth
    setup = route_setup_time((in_proto, out_proto), period,
                             gateway=gateway, rails=rails)
    bandwidth = message / (message / aggregate + setup)
    return MultirailPrediction(rails=rails, period_us=period,
                               rail_bandwidth=rail_bw, aggregate=aggregate,
                               bandwidth=bandwidth,
                               speedup=aggregate / single)
