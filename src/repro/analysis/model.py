"""Closed-form pipeline model (the §3.3.1 back-of-envelope, as code).

The paper reasons about the gateway pipeline analytically:

* the steady-state period of the double-buffer pipeline is
  ``max(t_recv, t_send) + switch_overhead`` where ``t_x`` are the one-hop
  fragment times of the two networks;
* in the Myrinet→SCI direction the send time must be computed with the PIO
  slowdown applied while the (DMA) receive is on the bus.

These formulas predict the asymptotic forwarding bandwidth from the raw
per-network cost models alone; a test cross-checks them against the full
simulation (they agree within a few percent, exactly the consistency
argument of §3.3.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.fabric import FRAGMENT_HEADER_BYTES
from ..hw.params import (GatewayParams, NodeParams, PipelineConfig,
                         ProtocolParams)
from ..sim.fluid import DMA, PIO

__all__ = ["fragment_time", "PipelinePrediction", "predict_forwarding"]


def fragment_time(proto: ProtocolParams, nbytes: int,
                  rate: float | None = None) -> float:
    """One-hop wire time of one fragment (sender overhead + latency +
    stream time); ``rate`` overrides the protocol's host peak."""
    rate = proto.host_peak if rate is None else rate
    return (proto.tx_overhead + proto.latency
            + (nbytes + FRAGMENT_HEADER_BYTES) / rate)


@dataclass(frozen=True)
class PipelinePrediction:
    recv_us: float
    send_us: float
    period_us: float
    bandwidth: float          # MB/s, asymptotic (payload bytes per period)


def predict_forwarding(in_proto: ProtocolParams, out_proto: ProtocolParams,
                       packet: int,
                       gateway: GatewayParams | None = None,
                       node: NodeParams | None = None,
                       pipeline: PipelineConfig | None = None,
                       ) -> PipelinePrediction:
    """Asymptotic forwarding bandwidth through one gateway.

    Models: full-duplex sharing of the gateway PCI bus between the receive
    and send flows (fair split of the duplex capacity, capped at each
    protocol's peak), plus the PIO-under-DMA slowdown while the receive
    flow is active (§3.4.1), plus the per-switch software overhead.

    The steady-state period depends on the pipeline discipline
    (``pipeline`` overrides the gateway's resolved config):

    * lockstep (the paper's depth-2 buffer exchange): both threads meet
      every step, so ``max(recv, send) + switch_overhead``;
    * credit pipeline with >= 2 credits: the switch overhead happens on the
      receive thread while the sender streams, so
      ``max(recv + switch_overhead, send)``;
    * a single buffer/credit (store-and-forward per fragment):
      ``recv + switch_overhead + send``.
    """
    gateway = gateway or GatewayParams()
    node = node or NodeParams()
    pipe = pipeline if pipeline is not None else gateway.resolved_pipeline
    cap = node.pci.capacity
    wire = packet + FRAGMENT_HEADER_BYTES

    # Fair-share rates while both flows are active on the gateway bus.
    recv_rate = min(in_proto.host_peak, cap / 2) \
        if in_proto.host_peak + out_proto.host_peak > cap else in_proto.host_peak
    send_alone = out_proto.host_peak
    if out_proto.tx_kind == PIO and in_proto.rx_kind == DMA:
        send_contended = out_proto.host_peak / node.pci.pio_preempt_slowdown
    else:
        send_contended = min(send_alone, max(cap - recv_rate, cap / 2)) \
            if in_proto.host_peak + out_proto.host_peak > cap else send_alone

    t_recv = fragment_time(in_proto, packet, rate=recv_rate)
    recv_stream = wire / recv_rate   # DMA-active portion of the period

    # Send: contended while the receive streams, then alone.
    contended_bytes = min(wire, send_contended * recv_stream)
    rest = wire - contended_bytes
    t_send = (out_proto.tx_overhead + out_proto.latency
              + contended_bytes / send_contended
              + (rest / send_alone if rest > 0 else 0.0))

    if pipe.depth == 1 or pipe.effective_credits == 1:
        period = t_recv + gateway.switch_overhead + t_send
    elif pipe.is_lockstep:
        period = max(t_recv, t_send) + gateway.switch_overhead
    else:
        period = max(t_recv + gateway.switch_overhead, t_send)
    return PipelinePrediction(recv_us=t_recv, send_us=t_send,
                              period_us=period,
                              bandwidth=packet / period)
