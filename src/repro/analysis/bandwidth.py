"""Bandwidth-curve analysis helpers."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..bench.sweep import Series

__all__ = ["bandwidth", "fit_linear_cost", "half_bandwidth_point",
           "crossover_size"]


def bandwidth(nbytes: float, elapsed_us: float) -> float:
    """MB/s (== bytes/µs)."""
    if elapsed_us <= 0:
        raise ValueError("elapsed time must be positive")
    return nbytes / elapsed_us


def fit_linear_cost(sizes: Sequence[float],
                    times_us: Sequence[float]) -> tuple[float, float]:
    """Least-squares fit of the classic cost model t = L + s/B.

    Returns (L in µs, B in MB/s).  Used to recover a network's fixed cost
    and stream rate from measured points (the §3.2.2 calibration).
    """
    sizes = np.asarray(sizes, dtype=float)
    times = np.asarray(times_us, dtype=float)
    if sizes.shape != times.shape or sizes.size < 2:
        raise ValueError("need >= 2 matching (size, time) points")
    a = np.vstack([np.ones_like(sizes), sizes]).T
    (lat, inv_bw), *_ = np.linalg.lstsq(a, times, rcond=None)
    if inv_bw <= 0:
        raise ValueError("degenerate fit: non-positive per-byte cost")
    return float(lat), float(1.0 / inv_bw)


def half_bandwidth_point(series: Series) -> Optional[int]:
    """Smallest message size reaching half of the curve's asymptote (the
    classic n_1/2 metric); None if the curve never gets there."""
    target = series.asymptote / 2.0
    for size, bw in sorted(series.as_rows()):
        if bw >= target:
            return size
    return None


def crossover_size(a: Series, b: Series) -> Optional[int]:
    """First common size where curve ``b`` overtakes curve ``a``."""
    common = sorted(set(a.sizes) & set(b.sizes))
    for size in common:
        if b.bandwidths[b.sizes.index(size)] >= a.bandwidths[a.sizes.index(size)]:
            return size
    return None
