"""Analysis of benchmark results and gateway pipeline traces."""

from .ascii_plot import plot_series
from .model import (MultirailPrediction, PipelinePrediction,
                    fragment_time, predict_forwarding,
                    predict_multirail, route_setup_time)
from .export import (metrics_to_rows, spans_to_chrome, to_chrome_trace,
                     write_chrome_trace, write_metrics_csv,
                     write_metrics_json, write_spans_chrome)
from .occupancy import BusMonitor
from .stats import SessionStats, collect_stats, format_stats
from .bandwidth import (bandwidth, crossover_size, fit_linear_cost,
                        half_bandwidth_point)
from .pipeline import (PipelineStats, StepTimeline, extract_timeline,
                       pipeline_stats, render_timeline)

__all__ = [
    "plot_series", "BusMonitor",
    "MultirailPrediction", "PipelinePrediction", "fragment_time",
    "predict_forwarding", "predict_multirail", "route_setup_time",
    "to_chrome_trace", "write_chrome_trace",
    "metrics_to_rows", "spans_to_chrome", "write_metrics_csv",
    "write_metrics_json", "write_spans_chrome",
    "SessionStats", "collect_stats", "format_stats",
    "bandwidth", "crossover_size", "fit_linear_cost", "half_bandwidth_point",
    "PipelineStats", "StepTimeline", "extract_timeline", "pipeline_stats",
    "render_timeline",
]
