"""Exporters: traces, spans, and metrics to on-disk formats.

* :func:`to_chrome_trace` / :func:`write_chrome_trace` — legacy trace
  records to the Chrome trace-event format (``chrome://tracing`` /
  Perfetto): gateway pipeline steps and wire transfers appear as duration
  events on per-component tracks, which makes the Figure 5/8 behaviour
  directly explorable;
* :func:`spans_to_chrome` / :func:`write_spans_chrome` — the same format
  built from :class:`~repro.telemetry.SpanTracker` spans, which carry
  explicit begin/end times and nesting instead of heuristics;
* :func:`write_metrics_json` / :func:`write_metrics_csv` — a
  :meth:`~repro.telemetry.MetricsRegistry.snapshot` as JSON, or flattened
  to long-format CSV (one row per series and field) for spreadsheet use.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Union

from ..sim.trace import TraceRecorder
from ..telemetry import MetricsRegistry, SpanTracker

__all__ = ["to_chrome_trace", "write_chrome_trace",
           "spans_to_chrome", "write_spans_chrome",
           "write_metrics_json", "write_metrics_csv"]


def to_chrome_trace(trace: TraceRecorder) -> list[dict]:
    """Convert trace records to Chrome trace events (complete 'X' events).

    Tracks (pid/tid):

    * one track per NIC-to-NIC direction for wire transfers;
    * per gateway, a receive track and a send track.
    """
    events: list[dict] = []
    for rec in trace:
        if rec.category == "xfer" and rec.event == "fragment":
            start = rec.attrs.get("start", rec.t)
            events.append({
                "name": f"{rec.attrs.get('kind') or 'frag'} "
                        f"{rec.attrs.get('nbytes', 0)}B",
                "cat": "wire",
                "ph": "X",
                "ts": start,
                "dur": max(rec.t - start, 0.01),
                "pid": f"wire {rec.attrs.get('proto', '?')}",
                "tid": f"{rec.attrs.get('src')} -> {rec.attrs.get('dst')}",
                "args": dict(rec.attrs),
            })
        elif rec.category == "gateway" and rec.event in ("recv", "send"):
            start = rec.attrs.get("start", rec.t)
            events.append({
                "name": f"{rec.event} #{rec.attrs.get('seq')} "
                        f"({rec.attrs.get('nbytes', 0)}B)",
                "cat": "gateway",
                "ph": "X",
                "ts": start,
                "dur": max(rec.t - start, 0.01),
                "pid": f"gateway {rec.attrs.get('gw')}",
                "tid": f"{rec.event} thread",
                "args": dict(rec.attrs),
            })
        elif rec.category == "gateway" and rec.event == "swap":
            events.append({
                "name": "buffer swap",
                "cat": "gateway",
                "ph": "i",
                "ts": rec.t,
                "pid": f"gateway {rec.attrs.get('gw')}",
                "tid": "recv thread",
                "s": "t",
                "args": dict(rec.attrs),
            })
    return events


def write_chrome_trace(trace: TraceRecorder,
                       path: Union[str, Path]) -> int:
    """Write the trace as Chrome JSON; returns the number of events."""
    events = to_chrome_trace(trace)
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    Path(path).write_text(json.dumps(payload), encoding="utf-8")
    return len(events)


# -- spans -----------------------------------------------------------------
def spans_to_chrome(tracker: SpanTracker) -> list[dict]:
    """Completed spans as Chrome complete ('X') events.

    One pid per span category; the span's name, id, parent, and attributes
    travel in ``args`` so Perfetto's selection panel shows them.
    """
    events: list[dict] = []
    for sp in tracker.completed:
        events.append({
            "name": sp.name,
            "cat": sp.category,
            "ph": "X",
            "ts": sp.start,
            "dur": max(sp.stop - sp.start, 0.01),
            "pid": f"span:{sp.category}",
            "tid": sp.name,
            "args": {"span": sp.id, "parent": sp.parent, **sp.attrs},
        })
    return events


def write_spans_chrome(tracker: SpanTracker,
                       path: Union[str, Path]) -> int:
    """Write completed spans as Chrome JSON; returns the number of events."""
    events = spans_to_chrome(tracker)
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    Path(path).write_text(json.dumps(payload), encoding="utf-8")
    return len(events)


# -- metrics ---------------------------------------------------------------
def _as_snapshot(metrics: Union[MetricsRegistry, dict]) -> dict[str, Any]:
    return metrics.snapshot() if isinstance(metrics, MetricsRegistry) \
        else metrics


def write_metrics_json(metrics: Union[MetricsRegistry, dict],
                       path: Union[str, Path]) -> int:
    """Write a metrics snapshot (or a registry) as JSON; returns the number
    of metric names written."""
    snapshot = _as_snapshot(metrics)
    Path(path).write_text(json.dumps(snapshot, indent=2, sort_keys=True),
                          encoding="utf-8")
    return len(snapshot)


def metrics_to_rows(metrics: Union[MetricsRegistry, dict]) -> list[list]:
    """Flatten a snapshot to long-format rows:
    ``[metric, kind, labels, field, value]``, deterministically ordered.

    Histogram buckets become ``bucket.le_<bound>`` fields; the labels
    column is ``k=v`` pairs joined with ``;``.
    """
    rows: list[list] = []
    for name, entry in sorted(_as_snapshot(metrics).items()):
        for series in entry["series"]:
            labels = ";".join(f"{k}={v}" for k, v in
                              sorted(series["labels"].items()))
            for field, value in series.items():
                if field == "labels":
                    continue
                if isinstance(value, dict):
                    for sub, n in value.items():
                        rows.append([name, entry["kind"], labels,
                                     f"{field}.{sub}", n])
                else:
                    rows.append([name, entry["kind"], labels, field, value])
    return rows


def write_metrics_csv(metrics: Union[MetricsRegistry, dict],
                      path: Union[str, Path]) -> int:
    """Write a metrics snapshot (or a registry) as long-format CSV; returns
    the number of data rows."""
    rows = metrics_to_rows(metrics)
    with Path(path).open("w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(["metric", "kind", "labels", "field", "value"])
        writer.writerows(rows)
    return len(rows)
