"""Trace export to the Chrome trace-event format.

``chrome://tracing`` / Perfetto can open the produced JSON: gateway pipeline
steps and wire transfers appear as duration events on per-component tracks,
which makes the Figure 5/8 behaviour directly explorable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..sim.trace import TraceRecorder

__all__ = ["to_chrome_trace", "write_chrome_trace"]


def to_chrome_trace(trace: TraceRecorder) -> list[dict]:
    """Convert trace records to Chrome trace events (complete 'X' events).

    Tracks (pid/tid):

    * one track per NIC-to-NIC direction for wire transfers;
    * per gateway, a receive track and a send track.
    """
    events: list[dict] = []
    for rec in trace:
        if rec.category == "xfer" and rec.event == "fragment":
            start = rec.attrs.get("start", rec.t)
            events.append({
                "name": f"{rec.attrs.get('kind') or 'frag'} "
                        f"{rec.attrs.get('nbytes', 0)}B",
                "cat": "wire",
                "ph": "X",
                "ts": start,
                "dur": max(rec.t - start, 0.01),
                "pid": f"wire {rec.attrs.get('proto', '?')}",
                "tid": f"{rec.attrs.get('src')} -> {rec.attrs.get('dst')}",
                "args": dict(rec.attrs),
            })
        elif rec.category == "gateway" and rec.event in ("recv", "send"):
            start = rec.attrs.get("start", rec.t)
            events.append({
                "name": f"{rec.event} #{rec.attrs.get('seq')} "
                        f"({rec.attrs.get('nbytes', 0)}B)",
                "cat": "gateway",
                "ph": "X",
                "ts": start,
                "dur": max(rec.t - start, 0.01),
                "pid": f"gateway {rec.attrs.get('gw')}",
                "tid": f"{rec.event} thread",
                "args": dict(rec.attrs),
            })
        elif rec.category == "gateway" and rec.event == "swap":
            events.append({
                "name": "buffer swap",
                "cat": "gateway",
                "ph": "i",
                "ts": rec.t,
                "pid": f"gateway {rec.attrs.get('gw')}",
                "tid": "recv thread",
                "s": "t",
                "args": dict(rec.attrs),
            })
    return events


def write_chrome_trace(trace: TraceRecorder,
                       path: Union[str, Path]) -> int:
    """Write the trace as Chrome JSON; returns the number of events."""
    events = to_chrome_trace(trace)
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    Path(path).write_text(json.dumps(payload), encoding="utf-8")
    return len(events)
