"""Bus/link occupancy monitoring.

Attaches to the fluid network's rate observers and keeps a piecewise-
constant utilization timeline per resource — the PCI-bus view behind the
§3.4.1 analysis (how much of the gateway bus the Myrinet DMA receive holds
while the SCI PIO send starves).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Optional

from ..sim import FluidNetwork, FluidResource

__all__ = ["BusMonitor"]


class BusMonitor:
    """Records per-resource total-rate timelines from a fluid network."""

    def __init__(self, fnet: FluidNetwork) -> None:
        self.fnet = fnet
        #: resource -> list of (time, total_rate) change points
        self.timelines: dict[FluidResource, list[tuple[float, float]]] = \
            defaultdict(list)
        fnet.rate_observers.append(self._on_rate_change)

    def _on_rate_change(self, t: float, flow, _rate: float) -> None:
        for res in flow.resources():
            total = self.fnet.utilization(res)
            tl = self.timelines[res]
            if tl and tl[-1][0] == t:
                tl[-1] = (t, total)
            else:
                tl.append((t, total))

    # -- queries -----------------------------------------------------------
    def timeline(self, resource: FluidResource) -> list[tuple[float, float]]:
        return list(self.timelines.get(resource, []))

    def mean_utilization(self, resource: FluidResource,
                         t0: float = 0.0,
                         t1: Optional[float] = None) -> float:
        """Time-averaged total rate through ``resource`` over [t0, t1]."""
        tl = self.timelines.get(resource)
        if not tl:
            return 0.0
        if t1 is None:
            t1 = self.fnet.sim.now
        if t1 <= t0:
            raise ValueError("empty averaging window")
        area = 0.0
        for (ta, rate), (tb, _r2) in zip(tl, tl[1:] + [(t1, 0.0)]):
            lo, hi = max(ta, t0), min(tb, t1)
            if hi > lo:
                area += rate * (hi - lo)
        return area / (t1 - t0)

    def busy_fraction(self, resource: FluidResource, t0: float = 0.0,
                      t1: Optional[float] = None,
                      threshold: float = 1e-9) -> float:
        """Fraction of [t0, t1] during which the resource carried traffic."""
        tl = self.timelines.get(resource)
        if not tl:
            return 0.0
        if t1 is None:
            t1 = self.fnet.sim.now
        if t1 <= t0:
            raise ValueError("empty averaging window")
        busy = 0.0
        for (ta, rate), (tb, _r2) in zip(tl, tl[1:] + [(t1, 0.0)]):
            lo, hi = max(ta, t0), min(tb, t1)
            if hi > lo and rate > threshold:
                busy += hi - lo
        return busy / (t1 - t0)

    def sparkline(self, resource: FluidResource, width: int = 64,
                  t0: float = 0.0, t1: Optional[float] = None) -> str:
        """A one-line utilization chart (0..capacity mapped to 8 levels)."""
        if t1 is None:
            t1 = self.fnet.sim.now
        if t1 <= t0:
            return ""
        marks = " ▁▂▃▄▅▆▇█"
        step = (t1 - t0) / width
        cells = []
        for i in range(width):
            a = t0 + i * step
            u = self.mean_utilization(resource, a, a + step)
            level = min(len(marks) - 1,
                        int(u / resource.capacity * (len(marks) - 1) + 0.5))
            cells.append(marks[level])
        return "".join(cells)
