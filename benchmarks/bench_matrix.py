"""Heterogeneity matrix — forwarding bandwidth for every ordered protocol
pair at the gateway.

The paper evaluates one pair (Myrinet/SCI); the mechanism is generic
("easily applicable to many network protocols"), so this table shows the
whole grid the library supports, with the copy count per forwarded byte.
Row = incoming network, column = outgoing network.
"""

import numpy as np

from repro.hw import PROTOCOLS, build_world
from repro.madeleine import Session

from common import emit, once

PROTOS = ["myrinet", "sci", "sbp", "gigabit_tcp"]
SIZE = 1 << 20
PACKET = 32 << 10


def run_pair(p_in, p_out):
    w = build_world({"src": [p_in], "gw": [p_in, p_out], "dst": [p_out]})
    s = Session(w)
    vch = s.virtual_channel([
        s.channel(p_in, ["src", "gw"]),
        s.channel(p_out, ["gw", "dst"]),
    ], packet_size=min(PACKET, PROTOCOLS[p_in].max_mtu,
                       PROTOCOLS[p_out].max_mtu))
    out = {}
    data = np.zeros(SIZE, dtype=np.uint8)

    def snd():
        m = vch.endpoint(0).begin_packing(2)
        yield m.pack(data)
        yield m.end_packing()

    def rcv():
        inc = yield vch.endpoint(2).begin_unpacking()
        _ev, _b = inc.unpack(SIZE)
        yield inc.end_unpacking()
        out["t"] = s.now

    s.spawn(snd()); s.spawn(rcv()); s.run()
    gw_copy = w.accounting.by_label().get("gateway.static_copy", (0, 0))[1]
    return SIZE / out["t"], gw_copy / SIZE


def bench_protocol_matrix(benchmark):
    grid = once(benchmark, lambda: {
        (a, b): run_pair(a, b)
        for a in PROTOS for b in PROTOS if a != b})

    lines = [f"Gateway forwarding matrix, {SIZE >> 20} MB messages "
             f"(MB/s, * = one gateway copy per byte)"]
    corner = "in / out"
    header = f"{corner:>14s}" + "".join(f"{p:>14s}" for p in PROTOS)
    lines.append(header)
    lines.append("-" * len(header))
    for a in PROTOS:
        row = [f"{a:>14s}"]
        for b in PROTOS:
            if a == b:
                row.append(f"{'-':>14s}")
            else:
                bw, cpb = grid[(a, b)]
                mark = "*" if cpb > 0.5 else " "
                row.append(f"{bw:12.1f}{mark} ")
        lines.append("".join(row))
    emit("protocol_matrix", "\n".join(lines))
    benchmark.extra_info["pairs"] = len(grid)

    # Shape assertions:
    # 1. the paper's pair ordering
    assert grid[("sci", "myrinet")][0] > grid[("myrinet", "sci")][0]
    # 2. copies appear exactly on static x static pairs
    for (a, b), (_bw, cpb) in grid.items():
        both_static = PROTOCOLS[a].rx_static and PROTOCOLS[b].tx_static
        assert (cpb > 0.5) == both_static, (a, b, cpb)
    # 3. every pair sustains > 5 MB/s end to end (no pathological stalls)
    assert all(bw > 5.0 for bw, _c in grid.values())
