"""Figure 5 — the double-buffer paquet-forwarding pipeline (balanced case).

The paper's Figure 5 sketches the ideal gateway pipeline: while one thread
sends buffer 1, the other receives buffer 2, so steady-state throughput is
one paquet per max(recv, send) + switch overhead.  We reproduce the timeline
from gateway traces on the SCI -> Myrinet direction (the balanced one) and
verify its defining properties.
"""

from repro.analysis import extract_timeline, pipeline_stats, render_timeline
from repro.bench import PingHarness

from common import PAPER, emit, once

PACKET = 64 << 10
MESSAGE = 2 << 20


def run():
    harness = PingHarness(packet_size=PACKET)
    world, session, vch, ack = harness.build()
    import numpy as np
    data = np.zeros(MESSAGE, dtype=np.uint8)
    done = {}

    def snd():
        m = vch.endpoint(session.rank("b0")).begin_packing(session.rank("a0"))
        yield m.pack(data)
        yield m.end_packing()

    def rcv():
        inc = yield vch.endpoint(session.rank("a0")).begin_unpacking()
        _ev, _b = inc.unpack(MESSAGE)
        yield inc.end_unpacking()
        done["t"] = session.now

    session.spawn(snd()); session.spawn(rcv())
    session.run()
    steps = extract_timeline(world.trace)
    return steps, pipeline_stats(steps), done["t"]


def bench_fig5_pipeline(benchmark):
    steps, stats, elapsed = once(benchmark, run)

    timeline = render_timeline(
        [s for s in steps if 3 <= s.seq <= 12])   # a steady-state window
    text = (
        f"Figure 5: the paquet-forwarding pipeline on the gateway "
        f"(SCI -> Myrinet, {PACKET >> 10} KB paquets)\n\n"
        f"{timeline}\n\n"
        f"fragments forwarded : {stats.fragments}\n"
        f"mean recv step      : {stats.mean_recv_us:8.1f} µs\n"
        f"mean send step      : {stats.mean_send_us:8.1f} µs\n"
        f"mean pipeline period: {stats.mean_period_us:8.1f} µs\n"
        f"send/recv ratio     : {stats.send_recv_ratio:8.2f} (balanced ≈ 1)\n"
        f"send-recv overlap   : {stats.overlap_fraction:8.1%}\n"
        f"switch overhead     : {PAPER['switch_overhead_us']:8.1f} µs (configured)\n"
        f"end-to-end bandwidth: {MESSAGE / elapsed:8.1f} MB/s\n"
    )
    emit("fig5_pipeline", text)
    benchmark.extra_info["overlap"] = round(stats.overlap_fraction, 3)

    # Shape assertions:
    # 1. the two steps genuinely overlap (this IS the pipeline)
    assert stats.overlap_fraction > 0.5
    # 2. balanced: neither step dominates in this direction
    assert 0.8 < stats.send_recv_ratio < 1.25
    # 3. the period is max(recv, send) + switch overhead, approximately
    expected = max(stats.mean_recv_us, stats.mean_send_us) \
        + PAPER["switch_overhead_us"]
    assert abs(stats.mean_period_us - expected) < 0.25 * expected
