"""Extension bench — fault-tolerance cost and failover recovery latency.

The paper's forwarding mechanism assumes reliable rails; this bench
measures what the reliability extension costs when they are not.  Two
experiments on the canonical Myrinet -> SCI testbed with two parallel
gateways:

* **loss sweep** — reliable goodput and retransmission count as the
  per-fragment drop rate rises from 0 to 5%;
* **failover** — crash the active gateway mid-transfer and measure the
  recovery latency (time from the crash until the transfer completes on
  the surviving rail) against an undisturbed baseline.
"""

import numpy as np

from repro.faults import ChannelFaults, FaultPlan, NodeEvent
from repro.hw import build_world
from repro.hw.params import GatewayParams
from repro.madeleine import ReliableEndpoint, RetryPolicy, Session

from common import emit, once

SIZE = 240_000
PACKET = 16 << 10
DROP_RATES = (0.0, 0.01, 0.02, 0.05)
CRASH_AT = 2_000.0


def _run(drop_p, crash, nmsgs=2, seed=11):
    w = build_world({
        "m0": ["myrinet"], "gwA": ["myrinet", "sci"],
        "gwB": ["myrinet", "sci"], "s0": ["sci"],
    })
    s = Session(w, telemetry=True)
    myri = s.channel("myrinet", ["m0", "gwA", "gwB"])
    sci = s.channel("sci", ["gwA", "gwB", "s0"])
    faults = ChannelFaults(drop_p=drop_p, corrupt_p=drop_p / 2)
    plan = FaultPlan(
        seed=seed,
        channels={myri.id: faults, sci.id: faults},
        node_events=tuple([NodeEvent(time=CRASH_AT, node="gwA")]
                          if crash else []))
    plan.arm(w)
    vch = s.virtual_channel(
        [myri, sci], packet_size=PACKET,
        gateway_params=GatewayParams(stall_timeout=5_000.0))
    rng = np.random.default_rng(seed)
    payloads = [rng.integers(0, 256, SIZE, dtype=np.uint8).tobytes()
                for _ in range(nmsgs)]
    rel_src = ReliableEndpoint(vch.endpoint(0), RetryPolicy())
    rel_dst = ReliableEndpoint(vch.endpoint(3), RetryPolicy())
    stats = {"attempts": [], "done": 0.0}

    def sender():
        for p in payloads:
            n = yield from rel_src.send(3, p)
            stats["attempts"].append(n)

    def receiver():
        for i, p in enumerate(payloads):
            _src, data, _tid = yield from rel_dst.recv()
            assert data == p, f"payload {i} corrupted"
            stats["done"] = s.now

    s.spawn(sender(), name="bench-send")
    s.spawn(receiver(), name="bench-recv")
    s.run()
    total = nmsgs * SIZE
    return {
        "elapsed_us": stats["done"],
        "goodput_mbs": total / stats["done"],
        "attempts": stats["attempts"],
        # the telemetry registry is the source of truth for recovery work
        "retransmits": s.metrics.value("reliable.retransmits",
                                       vchannel=vch.name, rank=0),
        "failovers": s.metrics.total("vchannel.failovers"),
    }


def bench_failover(benchmark):
    def experiment():
        sweep = {p: _run(p, crash=False) for p in DROP_RATES}
        baseline = _run(0.0, crash=False)
        failover = _run(0.0, crash=True)
        return sweep, baseline, failover

    sweep, baseline, failover = once(benchmark, experiment)

    lines = [f"Reliable goodput, {2 * SIZE // 1000} kB over "
             f"Myrinet->SCI, two gateways",
             f"{'drop rate':>10s}{'goodput MB/s':>14s}"
             f"{'retransmits':>13s}{'attempts':>12s}"]
    lines.append("-" * len(lines[-1]))
    for p, r in sweep.items():
        lines.append(f"{p:10.0%}{r['goodput_mbs']:14.1f}"
                     f"{r['retransmits']:13d}{str(r['attempts']):>12s}")
    recovery = failover["elapsed_us"] - baseline["elapsed_us"]
    lines += [
        "",
        f"failover: gwA crashed at {CRASH_AT:.0f} us mid-transfer",
        f"  undisturbed completion : {baseline['elapsed_us']:10.0f} us",
        f"  with crash + failover  : {failover['elapsed_us']:10.0f} us",
        f"  recovery overhead      : {recovery:10.0f} us "
        f"({recovery / baseline['elapsed_us']:.1f}x baseline)",
        f"  attempts with failover : {failover['attempts']}",
    ]
    emit("failover", "\n".join(lines))
    benchmark.extra_info["recovery_us"] = round(recovery)

    # Shape assertions:
    # a clean run needs exactly one attempt per message and no retransmits
    assert sweep[0.0]["retransmits"] == 0
    assert sweep[0.0]["attempts"] == [1, 1]
    # loss costs goodput monotonically at the sweep's endpoints
    assert sweep[0.05]["goodput_mbs"] < sweep[0.0]["goodput_mbs"]
    assert sweep[0.05]["retransmits"] > 0
    # the crash is survived: both payloads arrive via the other gateway,
    # and recovery costs extra time but terminates well under the sum of
    # every retry budget (i.e. it is failover, not retry exhaustion)
    assert failover["attempts"][0] > 1
    assert failover["failovers"] >= 1
    assert recovery > 0
    rp = RetryPolicy()
    assert failover["elapsed_us"] < baseline["elapsed_us"] + \
        2 * rp.max_attempts * rp.rto_max
