"""Figure 6 — forwarding bandwidth, SCI -> Myrinet.

Reproduces the sweep: messages from an SCI-cluster node to a Myrinet-cluster
node through the gateway, for paquet sizes 8/16/32/64/128 KB, message sizes
up to 16 MB.  Paper shape: bandwidth grows with paquet size, from ≈ 28 MB/s
asymptotic at 8 KB paquets up to close to 60 MB/s at 128 KB — approaching
but never exceeding the ≈ 66 MB/s practical one-way PCI limit.
"""

from repro.analysis import plot_series
from repro.bench import (PAPER_PACKET_SIZES, figure_sweep, format_comparison,
                         format_series_table, PaperPoint)

from common import PAPER, emit, once


def bench_fig6_sci_to_myrinet(benchmark):
    curves = once(benchmark, lambda: figure_sweep("b0->a0"))

    table = format_series_table(
        curves, title="Figure 6: multiprotocol forwarding bandwidth, "
                      "SCI -> Myrinet")
    plot = plot_series(curves, title="Figure 6 (reproduction)")
    comparison = format_comparison(
        [PaperPoint(f"asymptote, paquet {p >> 10} KB",
                    PAPER["fig6_asymptote"][p],
                    c.asymptote, note="reconstructed from Fig. 6")
         for p, c in zip(PAPER_PACKET_SIZES, curves)],
        title="paper vs measured")
    emit("fig6_sci_to_myrinet", f"{table}\n\n{plot}\n\n{comparison}")

    benchmark.extra_info["asymptotes"] = {
        c.label: round(c.asymptote, 1) for c in curves}

    # Shape assertions (the reproduction contract):
    asym = [c.asymptote for c in curves]
    # 1. larger paquets help, monotonically
    assert asym == sorted(asym), "asymptote must grow with paquet size"
    # 2. the 128 KB curve gets close to, but below, the PCI ceiling
    assert 50.0 < asym[-1] < PAPER["pci_oneway_ceiling"]
    # 3. 8 KB paquets lose roughly half the bandwidth
    assert asym[0] < 0.65 * asym[-1]
    # 4. every curve is (weakly) increasing in message size
    for c in curves:
        pairs = sorted(zip(c.sizes, c.bandwidths))
        bws = [b for _s, b in pairs]
        assert all(b2 >= b1 * 0.98 for b1, b2 in zip(bws, bws[1:])), c.label
