"""Figure 7 — forwarding bandwidth, Myrinet -> SCI.

The paper's striking result: the same experiment run in the opposite
direction performs far worse (≈ 25 MB/s at 8 KB paquets, never much above
≈ 35 MB/s), because the gateway's SCI sends are CPU PIO transactions that
the PCI arbiter deprioritizes below the Myrinet card's DMA receive
transactions (§3.4.1) — the sends run ≈ 2× slower while a receive is in
flight.
"""

from repro.analysis import plot_series
from repro.bench import (PAPER_PACKET_SIZES, figure_sweep, format_comparison,
                         format_series_table, PaperPoint)

from common import PAPER, emit, once


def bench_fig7_myrinet_to_sci(benchmark):
    curves = once(benchmark, lambda: figure_sweep("a0->b0"))

    table = format_series_table(
        curves, title="Figure 7: multiprotocol forwarding bandwidth, "
                      "Myrinet -> SCI")
    plot = plot_series(curves, title="Figure 7 (reproduction)")
    comparison = format_comparison(
        [PaperPoint(f"asymptote, paquet {p >> 10} KB",
                    PAPER["fig7_asymptote"][p],
                    c.asymptote, note="reconstructed from Fig. 7")
         for p, c in zip(PAPER_PACKET_SIZES, curves)],
        title="paper vs measured")
    emit("fig7_myrinet_to_sci", f"{table}\n\n{plot}\n\n{comparison}")

    benchmark.extra_info["asymptotes"] = {
        c.label: round(c.asymptote, 1) for c in curves}

    # Shape assertions:
    asym = [c.asymptote for c in curves]
    sci_to_myri = figure_sweep("b0->a0", packet_sizes=(128 << 10,),
                               message_sizes=(4 << 20, 8 << 20, 16 << 20))
    # 1. dramatically below the opposite direction at large paquets
    assert asym[-1] < sci_to_myri[0].asymptote * 0.8
    # 2. flat-ish: going 8 KB -> 128 KB helps far less than in Figure 6
    assert asym[-1] < asym[0] * 1.8
    # 3. nowhere near the PCI ceiling
    assert asym[-1] < 50.0
