"""§1/§2.2.2 design arguments — the integrated GTM forwarding vs the
alternatives the paper rejects:

* application-level store-and-forward on the gateway (Nexus-style): extra
  copies + no pipelining;
* PACX-style coupling: all inter-cluster traffic over a TCP relay pair.

Reported as bandwidth over message size for the SCI->Myrinet testbed path.
"""

import numpy as np

from repro.baselines import AppLevelForwarder, app_recv, app_send, \
    build_pacx_coupling
from repro.bench import Series, format_series_table
from repro.hw import build_world
from repro.madeleine import Session
from repro.routing import RouteTable

from common import emit, once

SIZES = [(1 << k) << 10 for k in range(4, 13)]   # 16 KB .. 4 MB
PACKET = 64 << 10


def gtm_time(size):
    w = build_world({"m0": ["myrinet"], "gw": ["myrinet", "sci"],
                     "s0": ["sci"]})
    s = Session(w)
    vch = s.virtual_channel([
        s.channel("myrinet", ["m0", "gw"]),
        s.channel("sci", ["gw", "s0"]),
    ], packet_size=PACKET)
    out = {}
    data = np.zeros(size, dtype=np.uint8)

    def snd():
        m = vch.endpoint(2).begin_packing(0)
        yield m.pack(data)
        yield m.end_packing()

    def rcv():
        inc = yield vch.endpoint(0).begin_unpacking()
        _ev, _b = inc.unpack(size)
        yield inc.end_unpacking()
        out["t"] = s.now

    s.spawn(snd()); s.spawn(rcv()); s.run()
    return out["t"]


def app_forward_time(size):
    w = build_world({"m0": ["myrinet"], "gw": ["myrinet", "sci"],
                     "s0": ["sci"]})
    s = Session(w)
    myri = s.channel("myrinet", ["m0", "gw"])
    sci = s.channel("sci", ["gw", "s0"])
    AppLevelForwarder([myri, sci], gw_rank=1)
    rt = RouteTable([myri, sci])
    out = {}
    data = np.zeros(size, dtype=np.uint8)

    def snd():
        yield app_send(rt, 2, 0, data)

    def rcv():
        yield from app_recv(myri, 0)
        out["t"] = s.now

    s.spawn(snd()); s.spawn(rcv()); s.run(until=1e9)
    return out["t"]


def pacx_time(size):
    w = build_world({
        "m0": ["myrinet"], "md": ["myrinet", "gigabit_tcp"],
        "sd": ["sci", "gigabit_tcp"], "s0": ["sci"],
    })
    s = Session(w)
    pacx = build_pacx_coupling(s, ["m0", "md"], "myrinet",
                               ["s0", "sd"], "sci")
    out = {}
    data = np.zeros(size, dtype=np.uint8)

    def snd():
        yield app_send(pacx.routes, s.rank("s0"), s.rank("m0"), data)

    def rcv():
        yield from app_recv(pacx.intra_a, s.rank("m0"))
        out["t"] = s.now

    s.spawn(snd()); s.spawn(rcv()); s.run(until=1e9)
    return out["t"]


def sweep():
    mechanisms = [("Madeleine GTM", gtm_time),
                  ("app-level forward", app_forward_time),
                  ("PACX-style TCP", pacx_time)]
    curves = []
    for label, fn in mechanisms:
        series = Series(label=label)
        for size in SIZES:
            series.add(size, size / fn(size))
        curves.append(series)
    return curves


def bench_baselines(benchmark):
    curves = once(benchmark, sweep)
    gtm, app, pacx = curves
    text = format_series_table(
        curves, title="Forwarding mechanisms compared (SCI -> Myrinet path)")
    text += (f"\n\nasymptotes: GTM {gtm.asymptote:.1f} MB/s, "
             f"app-level {app.asymptote:.1f} MB/s, "
             f"PACX/TCP {pacx.asymptote:.1f} MB/s")
    emit("baselines", text)
    benchmark.extra_info["asymptotes"] = {
        c.label: round(c.asymptote, 1) for c in curves}

    # Shape assertions (who wins, by roughly what factor):
    # 1. integrated forwarding beats app-level store-and-forward clearly
    assert gtm.asymptote > app.asymptote * 1.3
    # 2. and crushes the TCP glue
    assert gtm.asymptote > pacx.asymptote * 1.8
    # 3. app-level still beats TCP (it at least uses the fast links)
    assert app.asymptote > pacx.asymptote
