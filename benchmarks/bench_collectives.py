"""Extension bench — collectives on a cluster of clusters.

The Madeleine line fed into MPICH/Madeleine-III; this bench measures what
the forwarding layer means for MPI collectives: allreduce (binomial tree vs
bandwidth-optimal ring) over six ranks, once inside a single Myrinet
cluster and once split 3+3 across the gateway.  The interesting output is
the *gateway penalty* of each algorithm: the ring pushes 2(n-1)/n of the
payload across every link including the inter-cluster one, while the tree
crosses the gateway fewer times with bigger messages.
"""

import numpy as np

from repro.hw import ClusterSpec, GatewayLink, build_cluster_of_clusters, \
    build_world
from repro.madeleine import Session
from repro.minimpi import Communicator, allreduce, ring_allreduce

from common import emit, once

VECTOR = 1 << 18        # 256 K doubles = 2 MB
N_RANKS = 6


def split_world():
    world, members, gws = build_cluster_of_clusters(
        clusters=[ClusterSpec("m", "myrinet", 4), ClusterSpec("s", "sci", 3)],
        gateways=[GatewayLink("m", "s")],
    )
    s = Session(world)
    vch = s.virtual_channel([
        s.channel("myrinet", members["m"]),
        s.channel("sci", members["s"] + gws),
    ], packet_size=64 << 10)
    workers = [s.rank(n) for n in members["m"][:3] + members["s"]]
    return s, vch, workers


def flat_world():
    names = {f"n{i}": ["myrinet"] for i in range(N_RANKS)}
    world = build_world(names)
    s = Session(world)
    vch = s.virtual_channel([s.channel("myrinet", list(names))],
                            packet_size=64 << 10)
    return s, vch, list(range(N_RANKS))


def run_allreduce(make_world, algo):
    s, vch, workers = make_world()

    class WorkerComm(Communicator):
        @property
        def ranks(self):
            return workers

        @property
        def size(self):
            return len(workers)

    finish = {}

    def worker(i):
        comm = WorkerComm(vch, workers[i])
        arr = np.full(VECTOR // N_RANKS, float(i), dtype=np.float64)

        def proc():
            if algo == "tree":
                out = yield from allreduce(comm, arr, op=np.add)
            else:
                out = yield from ring_allreduce(comm, arr, op=np.add)
            assert np.allclose(out, sum(range(len(workers))))
            finish[i] = s.now
        return proc

    for i in range(len(workers)):
        s.spawn(worker(i)(), name=f"r{i}")
    s.run()
    return max(finish.values())


def bench_collectives(benchmark):
    results = once(benchmark, lambda: {
        (topo, algo): run_allreduce(make, algo)
        for topo, make in (("single cluster", flat_world),
                           ("cluster of clusters", split_world))
        for algo in ("tree", "ring")})

    nbytes = (VECTOR // N_RANKS) * 8
    lines = [f"Allreduce of {nbytes >> 10} KB/rank over {N_RANKS} ranks "
             f"(completion time, µs)",
             f"{'topology':>22s}{'tree':>12s}{'ring':>12s}{'ring/tree':>11s}"]
    lines.append("-" * len(lines[-1]))
    for topo in ("single cluster", "cluster of clusters"):
        t_tree = results[(topo, "tree")]
        t_ring = results[(topo, "ring")]
        lines.append(f"{topo:>22s}{t_tree:12.0f}{t_ring:12.0f}"
                     f"{t_ring / t_tree:11.2f}")
    gw_pen_tree = (results[("cluster of clusters", "tree")]
                   / results[("single cluster", "tree")])
    gw_pen_ring = (results[("cluster of clusters", "ring")]
                   / results[("single cluster", "ring")])
    lines.append(f"\ngateway penalty: tree {gw_pen_tree:.2f}x, "
                 f"ring {gw_pen_ring:.2f}x")
    emit("collectives", "\n".join(lines))
    benchmark.extra_info["gateway_penalty"] = {
        "tree": round(gw_pen_tree, 2), "ring": round(gw_pen_ring, 2)}

    # Shape assertions:
    for topo in ("single cluster", "cluster of clusters"):
        assert results[(topo, "tree")] > 0 and results[(topo, "ring")] > 0
    # crossing the gateway costs something for both algorithms
    assert gw_pen_tree > 1.0 and gw_pen_ring > 1.0
