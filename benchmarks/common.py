"""Shared helpers for the figure/table reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper's evaluation:
it runs the same experiment on the simulated testbed, prints the same
rows/series the paper reports, writes them under ``benchmarks/results/``,
and asserts the qualitative *shape* (who wins, by roughly what factor,
where crossovers fall).  Absolute numbers are calibrated, not measured on
the authors' hardware — see EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Reference values reconstructed from the paper (the OCR garbles digits;
#: these are the self-consistent readings documented in EXPERIMENTS.md).
PAPER = {
    # Figure 6 — SCI -> Myrinet asymptotic bandwidth per paquet size (MB/s)
    "fig6_asymptote": {8 << 10: 28.0, 16 << 10: 40.0, 32 << 10: 48.0,
                       64 << 10: 54.0, 128 << 10: 57.0},
    # Figure 7 — Myrinet -> SCI asymptotic bandwidth per paquet size (MB/s)
    "fig7_asymptote": {8 << 10: 25.0, 16 << 10: 30.0, 32 << 10: 33.0,
                       64 << 10: 34.0, 128 << 10: 35.0},
    # §3.2/3.3 raw Madeleine one-way numbers (MB/s)
    "raw_myrinet_8k": 30.0,
    "raw_sci_8k": 35.0,
    "raw_myrinet_asymptote": 64.0,
    "raw_sci_asymptote": 52.0,
    # §3.3.1 per-buffer-switch software overhead (µs)
    "switch_overhead_us": 40.0,
    # practical one-way PCI ceiling (MB/s)
    "pci_oneway_ceiling": 66.0,
}


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    banner = f"\n{'=' * 74}\n{name}\n{'=' * 74}\n"
    print(banner + text)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The benchmark clock measures how fast the *simulator* reproduces the
    experiment (wall time); the scientific output is the returned data.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
