"""§3.2.1 "Bandwidth vs latency" — small-message latency table.

The paper explicitly declines to optimize latency: a forwarded message pays
the native latency of *both* networks plus significant software overhead
(self-description records, pipeline startup, the gateway switch cost).
This benchmark quantifies that: one-way times for small messages, direct on
each network vs forwarded through the gateway vs the app-level baseline.
"""

import numpy as np

from repro.baselines import AppLevelForwarder, app_recv, app_send
from repro.hw import build_world
from repro.madeleine import Session
from repro.routing import RouteTable

from common import emit, once

SIZES = [4, 64, 1024, 8192]


def direct_time(proto, size):
    w = build_world({"a": [proto], "b": [proto]})
    s = Session(w)
    ch = s.channel(proto, ["a", "b"])
    out = {}
    data = np.zeros(size, dtype=np.uint8)

    def snd():
        m = ch.endpoint(0).begin_packing(1)
        yield m.pack(data)
        yield m.end_packing()

    def rcv():
        inc = yield ch.endpoint(1).begin_unpacking()
        _ev, _b = inc.unpack(size)
        yield inc.end_unpacking()
        out["t"] = s.now

    s.spawn(snd()); s.spawn(rcv()); s.run()
    return out["t"]


def forwarded_time(size):
    w = build_world({"m0": ["myrinet"], "gw": ["myrinet", "sci"],
                     "s0": ["sci"]})
    s = Session(w)
    vch = s.virtual_channel([
        s.channel("myrinet", ["m0", "gw"]),
        s.channel("sci", ["gw", "s0"]),
    ], packet_size=16 << 10)
    out = {}
    data = np.zeros(size, dtype=np.uint8)

    def snd():
        m = vch.endpoint(2).begin_packing(0)
        yield m.pack(data)
        yield m.end_packing()

    def rcv():
        inc = yield vch.endpoint(0).begin_unpacking()
        _ev, _b = inc.unpack(size)
        yield inc.end_unpacking()
        out["t"] = s.now

    s.spawn(snd()); s.spawn(rcv()); s.run()
    return out["t"]


def app_forward_time(size):
    w = build_world({"m0": ["myrinet"], "gw": ["myrinet", "sci"],
                     "s0": ["sci"]})
    s = Session(w)
    myri = s.channel("myrinet", ["m0", "gw"])
    sci = s.channel("sci", ["gw", "s0"])
    AppLevelForwarder([myri, sci], gw_rank=1)
    rt = RouteTable([myri, sci])
    out = {}
    data = np.zeros(size, dtype=np.uint8)

    def snd():
        yield app_send(rt, 2, 0, data)

    def rcv():
        yield from app_recv(myri, 0)
        out["t"] = s.now

    s.spawn(snd()); s.spawn(rcv()); s.run(until=1e9)
    return out["t"]


def collect():
    rows = []
    for size in SIZES:
        rows.append({
            "size": size,
            "myrinet": direct_time("myrinet", size),
            "sci": direct_time("sci", size),
            "forwarded": forwarded_time(size),
            "app_forward": app_forward_time(size),
        })
    return rows


def bench_latency_table(benchmark):
    rows = once(benchmark, collect)
    lines = ["Small-message one-way latency (µs) — §3.2.1",
             f"{'size':>8s}{'myrinet':>10s}{'sci':>10s}"
             f"{'forwarded':>11s}{'app-level':>11s}"]
    lines.append("-" * len(lines[-1]))
    for r in rows:
        lines.append(f"{r['size']:8d}{r['myrinet']:10.1f}{r['sci']:10.1f}"
                     f"{r['forwarded']:11.1f}{r['app_forward']:11.1f}")
    lines.append(
        "\nAs §3.2.1 expects: forwarding adds both native latencies plus a "
        "significant\nsoftware overhead, and is not latency-competitive. "
        "Note that for tiny messages\nthe app-level relay is actually "
        "*faster* than the GTM (fewer self-description\nrecords, and "
        "store-and-forward costs nothing below one paquet) — the GTM's\n"
        "advantage is a bandwidth phenomenon (see bench_baselines).")
    emit("latency_table", "\n".join(lines))
    r0 = rows[0]
    benchmark.extra_info["latency_4B"] = {k: round(v, 1)
                                          for k, v in r0.items() if k != "size"}

    # Shape assertions:
    for r in rows:
        # forwarding costs more than the sum of the native latencies
        assert r["forwarded"] > r["myrinet"] + r["sci"]
    # SCI has the lower native small-message latency
    assert rows[0]["sci"] < rows[0]["myrinet"]
    # the latency penalty of the GTM vs app-level shrinks with size (the
    # pipeline amortizes; bench_baselines shows the crossover in full)
    gap = [r["forwarded"] - r["app_forward"] for r in rows]
    assert gap[-1] < gap[0] * 0.6
