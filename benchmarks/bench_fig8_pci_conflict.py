"""Figure 8 — PCI bus conflicts stretch the gateway's SCI sends.

The paper instrumented the gateway with rdtsc and found that during a
Myrinet (DMA) receive, the concurrent SCI (PIO) send runs about 2× slower,
while the receive proceeds at nominal speed — so the send steps last far
longer than the receive steps and dominate the pipeline period.  We
reproduce the instrumented timeline from simulation traces and quantify the
slowdown.
"""

import numpy as np

from repro.analysis import extract_timeline, pipeline_stats, render_timeline
from repro.bench import PingHarness
from repro.hw import MYRINET, SCI

from common import PAPER, emit, once

PACKET = 64 << 10
MESSAGE = 2 << 20


def run(direction):
    from repro.analysis import BusMonitor
    harness = PingHarness(packet_size=PACKET)
    world, session, vch, ack = harness.build()
    monitor = BusMonitor(world.fnet)
    data = np.zeros(MESSAGE, dtype=np.uint8)
    src, dst = (("a0", "b0") if direction == "myri->sci" else ("b0", "a0"))

    def snd():
        m = vch.endpoint(session.rank(src)).begin_packing(session.rank(dst))
        yield m.pack(data)
        yield m.end_packing()

    def rcv():
        inc = yield vch.endpoint(session.rank(dst)).begin_unpacking()
        _ev, _b = inc.unpack(MESSAGE)
        yield inc.end_unpacking()

    session.spawn(snd()); session.spawn(rcv())
    session.run()
    steps = extract_timeline(world.trace)
    gw_pci = world.node("gw").pci
    bus = {
        "mean": monitor.mean_utilization(gw_pci),
        "spark": monitor.sparkline(gw_pci),
        "capacity": gw_pci.capacity,
    }
    return steps, pipeline_stats(steps), bus


def bench_fig8_pci_conflict(benchmark):
    (steps_ms, stats_ms, bus_ms), (steps_sm, stats_sm, bus_sm) = once(
        benchmark, lambda: (run("myri->sci"), run("sci->myri")))

    # Nominal (unconflicted) SCI send time for one paquet:
    nominal_send = (SCI.tx_overhead + SCI.latency
                    + (PACKET + 16) / SCI.host_peak)
    slowdown = stats_ms.mean_send_us / nominal_send

    window = [s for s in steps_ms if 3 <= s.seq <= 12]
    text = (
        f"Figure 8: PCI conflicts in the Myrinet -> SCI direction "
        f"({PACKET >> 10} KB paquets)\n\n"
        f"{render_timeline(window)}\n\n"
        f"{'':28s}{'Myrinet->SCI':>14s}{'SCI->Myrinet':>14s}\n"
        f"{'mean recv step (µs)':28s}{stats_ms.mean_recv_us:14.1f}"
        f"{stats_sm.mean_recv_us:14.1f}\n"
        f"{'mean send step (µs)':28s}{stats_ms.mean_send_us:14.1f}"
        f"{stats_sm.mean_send_us:14.1f}\n"
        f"{'send/recv ratio':28s}{stats_ms.send_recv_ratio:14.2f}"
        f"{stats_sm.send_recv_ratio:14.2f}\n\n"
        f"nominal SCI send for one paquet: {nominal_send:7.1f} µs\n"
        f"observed mean SCI send         : {stats_ms.mean_send_us:7.1f} µs\n"
        f"effective send slowdown        : {slowdown:7.2f}x "
        f"(paper: ~2x while the DMA receive is active)\n\n"
        f"gateway PCI occupancy (capacity {bus_ms['capacity']:.0f} MB/s):\n"
        f"  Myrinet->SCI  mean {bus_ms['mean']:5.1f} MB/s "
        f"|{bus_ms['spark']}|\n"
        f"  SCI->Myrinet  mean {bus_sm['mean']:5.1f} MB/s "
        f"|{bus_sm['spark']}|\n"
    )
    emit("fig8_pci_conflict", text)
    benchmark.extra_info["send_slowdown"] = round(slowdown, 2)

    # Shape assertions:
    # 1. in Myrinet->SCI, sends dominate (Figure 8); opposite is balanced
    assert stats_ms.send_recv_ratio > 1.3
    assert stats_sm.send_recv_ratio < 1.25
    # 2. the observed send is substantially slower than nominal, but the
    #    receive is not (DMA keeps nominal speed)
    assert slowdown > 1.2
    nominal_recv = (MYRINET.tx_overhead + MYRINET.latency
                    + (PACKET + 16) / MYRINET.host_peak)
    assert stats_ms.mean_recv_us < nominal_recv * 1.15
