"""Make the shared helpers importable when running `pytest benchmarks/`."""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
