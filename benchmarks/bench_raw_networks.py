"""§3.2 calibration table — raw Madeleine one-way performance per network.

The paper's discussion (§3.2.2, §3.3.1) leans on the raw single-network
numbers: Myrinet and SCI perform about equally around 16 KB messages
(≈ 40 MB/s), SCI wins below, Myrinet wins above and exceeds 60 MB/s for
large messages (the practical one-way PCI limit).  This benchmark
regenerates that table for Myrinet, SCI, and the Fast-Ethernet ack network.
"""

import numpy as np

from repro.analysis import crossover_size, fit_linear_cost
from repro.bench import (PaperPoint, Series, format_comparison,
                         format_series_table, human_size)
from repro.hw import build_world
from repro.madeleine import Session

from common import PAPER, emit, once

SIZES = [(1 << k) << 10 for k in range(0, 13)]   # 1 KB .. 4 MB


def raw_one_way(proto: str, size: int) -> float:
    w = build_world({"a": [proto], "b": [proto]})
    s = Session(w)
    ch = s.channel(proto, ["a", "b"])
    out = {}
    data = np.zeros(size, dtype=np.uint8)

    def snd():
        m = ch.endpoint(0).begin_packing(1)
        yield m.pack(data)
        yield m.end_packing()

    def rcv():
        inc = yield ch.endpoint(1).begin_unpacking()
        _ev, _b = inc.unpack(size)
        yield inc.end_unpacking()
        out["t"] = s.now

    s.spawn(snd()); s.spawn(rcv()); s.run()
    return out["t"]


def sweep() -> dict[str, Series]:
    curves = {}
    for proto in ("myrinet", "sci", "fast_ethernet"):
        series = Series(label=proto)
        for size in SIZES:
            t = raw_one_way(proto, size)
            series.add(size, size / t)
            series.meta.setdefault("times", []).append(t)
        curves[proto] = series
    return curves


def bench_raw_networks(benchmark):
    curves = once(benchmark, sweep)
    myri, sci = curves["myrinet"], curves["sci"]

    table = format_series_table(
        list(curves.values()),
        title="Raw Madeleine one-way bandwidth per network (§3.2)")
    lat_m, bw_m = fit_linear_cost(myri.sizes[4:], myri.meta["times"][4:])
    lat_s, bw_s = fit_linear_cost(sci.sizes[4:], sci.meta["times"][4:])
    cross = crossover_size(sci, myri)
    notes = (f"\nfitted cost models (t = L + s/B):\n"
             f"  myrinet: L = {lat_m:6.1f} µs   B = {bw_m:5.1f} MB/s\n"
             f"  sci:     L = {lat_s:6.1f} µs   B = {bw_s:5.1f} MB/s\n"
             f"Myrinet overtakes SCI at {human_size(cross)} "
             f"(paper: crossover near 16 KB)")
    comparison = format_comparison([
        PaperPoint("myrinet @ 8 KB", PAPER["raw_myrinet_8k"],
                   myri.bandwidths[myri.sizes.index(8 << 10)], note="§3.3.1"),
        PaperPoint("sci @ 8 KB", PAPER["raw_sci_8k"],
                   sci.bandwidths[sci.sizes.index(8 << 10)], note="§3.3.1"),
        PaperPoint("myrinet asymptote", PAPER["raw_myrinet_asymptote"],
                   myri.asymptote, note="> 60 MB/s for large messages"),
        PaperPoint("sci asymptote", PAPER["raw_sci_asymptote"],
                   sci.asymptote, note="PIO/write-combining limited"),
    ], title="paper vs measured")
    emit("raw_networks", f"{table}\n{notes}\n\n{comparison}")

    benchmark.extra_info["crossover"] = cross

    # Shape assertions:
    # 1. SCI wins small messages, Myrinet wins large ones (§3.2.2)
    assert sci.bandwidths[0] > myri.bandwidths[0]
    assert myri.asymptote > sci.asymptote
    # 2. crossover in the KB range, near the paper's 16 KB
    assert 4 << 10 <= cross <= 128 << 10
    # 3. Myrinet exceeds 60 MB/s but respects the PCI practical ceiling
    assert 60.0 < myri.asymptote <= PAPER["pci_oneway_ceiling"]
    # 4. Fast-Ethernet is an order of magnitude below
    assert curves["fast_ethernet"].asymptote < 12.0
