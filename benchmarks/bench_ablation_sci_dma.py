"""§4 future work — sending over SCI with the DMA engine instead of PIO.

The paper ends: "we are currently investigating several work-around
solutions, such as using the SCI DMA engine instead of PIO operations to
send buffers over SCI."  This ablation implements it: an `sci_dma` protocol
identical to SCI except that sends are bus-master DMA (no PIO preemption
penalty, but DMA engines on 2001 SCI cards had a setup cost — modelled as
extra per-fragment latency).  It removes the Figure 7 collapse.
"""

import numpy as np

from repro.bench import PAPER_PACKET_SIZES, Series, format_series_table
from repro.hw import PROTOCOLS, SCI, build_world, register_protocol, scaled
from repro.madeleine import Session
from repro.sim.fluid import DMA

from common import emit, once

MESSAGE_SIZES = [(1 << k) << 10 for k in range(6, 14)]   # 64 KB .. 8 MB

if "sci_dma" not in PROTOCOLS:
    register_protocol(scaled(SCI, name="sci_dma", tx_kind=DMA,
                             latency=SCI.latency + 25.0))


def myri_to_sci_time(sci_proto, size, packet):
    w = build_world({"m0": ["myrinet"], "gw": ["myrinet", sci_proto],
                     "s0": [sci_proto]})
    s = Session(w)
    vch = s.virtual_channel([
        s.channel("myrinet", ["m0", "gw"]),
        s.channel(sci_proto, ["gw", "s0"]),
    ], packet_size=packet)
    out = {}
    data = np.zeros(size, dtype=np.uint8)

    def snd():
        m = vch.endpoint(0).begin_packing(2)
        yield m.pack(data)
        yield m.end_packing()

    def rcv():
        inc = yield vch.endpoint(2).begin_unpacking()
        _ev, _b = inc.unpack(size)
        yield inc.end_unpacking()
        out["t"] = s.now

    s.spawn(snd()); s.spawn(rcv()); s.run()
    return out["t"]


def sweep():
    packet = 64 << 10
    curves = []
    for proto, label in (("sci", "PIO sends (paper)"),
                         ("sci_dma", "DMA-engine sends (future work)")):
        series = Series(label=label)
        for size in MESSAGE_SIZES:
            series.add(size, size / myri_to_sci_time(proto, size, packet))
        curves.append(series)
    return curves


def bench_ablation_sci_dma(benchmark):
    pio, dma = once(benchmark, sweep)
    text = format_series_table(
        [pio, dma],
        title="Myrinet -> SCI forwarding: PIO vs DMA-engine SCI sends "
              "(64 KB paquets)")
    text += (f"\n\nasymptotes: PIO {pio.asymptote:.1f} MB/s, "
             f"DMA {dma.asymptote:.1f} MB/s "
             f"({dma.asymptote / pio.asymptote:.2f}x)")
    emit("ablation_sci_dma", text)
    benchmark.extra_info["gain"] = round(dma.asymptote / pio.asymptote, 2)

    # The work-around must recover a large part of the lost bandwidth.
    assert dma.asymptote > pio.asymptote * 1.15
    # And approach the SCI->Myrinet level (no PCI-priority pathology left).
    assert dma.asymptote > 45.0
