"""Ablations of the design choices DESIGN.md calls out:

* paquet size (pipeline startup vs steady state, §3.2.2);
* buffer-switch software overhead (measured ≈ 40 µs, §3.3.1);
* pipeline depth (1 = store-and-forward per fragment, 2 = the paper, 4);
* PIO-under-DMA slowdown factor (measured ≈ 2×, §3.4.1).

Each sweeps one knob on the SCI->Myrinet (or, for the PIO knob, the
Myrinet->SCI) forwarding path while everything else stays at paper values.
"""

import numpy as np

from repro.bench import PingHarness
from repro.hw import GatewayParams, NodeParams, PCIParams

from common import emit, once

MESSAGE = 4 << 20


def forward_bw(direction="b0->a0", packet=64 << 10, gateway_params=None,
               node_params=None):
    harness = PingHarness(packet_size=packet, gateway_params=gateway_params,
                          node_params=node_params)
    return harness.measure(MESSAGE, direction=direction).bandwidth


def run_all():
    out = {}
    out["packet"] = [(p >> 10, forward_bw(packet=p))
                     for p in [8 << 10, 16 << 10, 32 << 10, 64 << 10,
                               128 << 10]]
    out["overhead"] = [
        (ov, forward_bw(gateway_params=GatewayParams(switch_overhead=ov)))
        for ov in (0.0, 20.0, 40.0, 80.0, 160.0)]
    out["depth"] = [
        (d, forward_bw(gateway_params=GatewayParams(pipeline_depth=d,
                                                    lockstep=False)))
        for d in (1, 2, 4)]
    out["discipline"] = [
        ("lockstep (paper)", forward_bw(
            gateway_params=GatewayParams(lockstep=True))),
        ("decoupled queue", forward_bw(
            gateway_params=GatewayParams(lockstep=False))),
    ]
    out["ingress"] = [
        (lim, forward_bw(direction="a0->b0",
                         gateway_params=GatewayParams(ingress_limit=lim)))
        for lim in (None, 60.0, 45.0, 30.0)]
    out["pio_slowdown"] = [
        (f, forward_bw(direction="a0->b0",
                       node_params=NodeParams(
                           pci=PCIParams(pio_preempt_slowdown=f))))
        for f in (1.0, 1.5, 2.0, 3.0, 4.0)]
    return out


def bench_ablations(benchmark):
    res = once(benchmark, run_all)
    lines = [f"Design-choice ablations ({MESSAGE >> 20} MB messages)"]
    lines.append("\npaquet size (SCI->Myrinet, KB -> MB/s):")
    lines += [f"  {p:5d} KB  {bw:6.1f}" for p, bw in res["packet"]]
    lines.append("\nbuffer-switch overhead (µs -> MB/s):")
    lines += [f"  {ov:5.0f} µs  {bw:6.1f}" for ov, bw in res["overhead"]]
    lines.append("\npipeline depth (buffers -> MB/s):")
    lines += [f"  {d:5d}     {bw:6.1f}" for d, bw in res["depth"]]
    lines.append("\nswap discipline at depth 2 (-> MB/s):")
    lines += [f"  {name:18s}{bw:6.1f}" for name, bw in res["discipline"]]
    lines.append("\ningress regulation, Myrinet->SCI (§4 future work; limit -> MB/s):")
    lines += [f"  {('none' if lim is None else f'{lim:.0f} MB/s'):>9s} {bw:6.1f}"
              for lim, bw in res["ingress"]]
    lines.append("\nPIO-under-DMA slowdown (factor -> Myrinet->SCI MB/s):")
    lines += [f"  {f:5.1f}x    {bw:6.1f}" for f, bw in res["pio_slowdown"]]
    emit("ablations", "\n".join(lines))
    benchmark.extra_info["depth2_vs_1"] = round(
        res["depth"][1][1] / res["depth"][0][1], 2)

    # Shape assertions:
    pkt_bw = [bw for _p, bw in res["packet"]]
    assert pkt_bw == sorted(pkt_bw)              # bigger paquets help
    ov_bw = [bw for _o, bw in res["overhead"]]
    assert ov_bw == sorted(ov_bw, reverse=True)  # overhead hurts, monotone
    d_bw = dict(res["depth"])
    assert d_bw[2] > d_bw[1] * 1.2               # double buffering pays
    assert d_bw[4] >= d_bw[2] * 0.99             # deeper: no regression
    ing = [bw for _l, bw in res["ingress"]]
    # with rendezvous flow control already built in, extra regulation can
    # only throttle — measured and reported as a (negative) finding
    assert ing == sorted(ing, reverse=True)
    disc = dict(res["discipline"])
    # the decoupled queue can only help (it may hide the swap overhead)
    assert disc["decoupled queue"] >= disc["lockstep (paper)"] * 0.999
    pio_bw = [bw for _f, bw in res["pio_slowdown"]]
    assert pio_bw == sorted(pio_bw, reverse=True)  # harsher arbiter, worse
    # slowdown 1.0 recovers the symmetric level
    assert res["pio_slowdown"][0][1] > 45.0
