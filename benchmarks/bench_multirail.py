"""Extension bench — multi-rail forwarding over parallel gateways.

The paper's mechanism supports configurations with several gateways between
the same clusters; the high-level routing built on top (§1: "high-level
traditional routing mechanisms can easily and efficiently be implemented")
can then spread traffic over the parallel rails.  This bench measures the
aggregate throughput of two concurrent transfers, Myrinet cluster -> SCI
cluster, with one vs two gateways.
"""

import numpy as np

from repro.hw import build_world
from repro.madeleine import Session

from common import emit, once

SIZE = 2 << 20
PACKET = 64 << 10


def run(n_gateways, multirail):
    adapters = {"m0": ["myrinet"]}
    gws = [f"gw{i}" for i in range(n_gateways)]
    for g in gws:
        adapters[g] = ["myrinet", "sci"]
    adapters["s0"] = ["sci"]
    adapters["s1"] = ["sci"]
    w = build_world(adapters)
    s = Session(w)
    vch = s.virtual_channel([
        s.channel("myrinet", ["m0", *gws]),
        s.channel("sci", [*gws, "s0", "s1"]),
    ], packet_size=PACKET, multirail=multirail)
    done = {}
    data = np.zeros(SIZE, dtype=np.uint8)

    def snd(dst):
        def proc():
            m = vch.endpoint(0).begin_packing(dst)
            m.pack(data)
            yield m.end_packing()
        return proc

    def rcv(dst):
        def proc():
            inc = yield vch.endpoint(dst).begin_unpacking()
            _ev, _b = inc.unpack(SIZE)
            yield inc.end_unpacking()
            done[dst] = s.now
        return proc

    for name in ("s0", "s1"):
        s.spawn(snd(s.rank(name))())
        s.spawn(rcv(s.rank(name))())
    s.run()
    elapsed = max(done.values())
    used = sum(1 for wk in vch.workers if wk.messages_forwarded)
    return 2 * SIZE / elapsed, used


def bench_multirail(benchmark):
    results = once(benchmark, lambda: {
        "1 gateway": run(1, multirail=False),
        "2 gateways, single rail": run(2, multirail=False),
        "2 gateways, multirail": run(2, multirail=True),
    })
    lines = [f"Aggregate Myrinet->SCI throughput, two {SIZE >> 20} MB "
             f"transfers to two receivers",
             f"{'configuration':>26s}{'MB/s':>9s}{'rails used':>12s}"]
    lines.append("-" * len(lines[-1]))
    for label, (bw, used) in results.items():
        lines.append(f"{label:>26s}{bw:9.1f}{used:12d}")
    gain = (results["2 gateways, multirail"][0]
            / results["2 gateways, single rail"][0])
    lines.append(f"\nmultirail gain over single rail: {gain:.2f}x")
    emit("multirail", "\n".join(lines))
    benchmark.extra_info["gain"] = round(gain, 2)

    # Shape assertions:
    assert results["2 gateways, multirail"][1] == 2
    assert results["2 gateways, single rail"][1] == 1
    assert gain > 1.3     # the second rail must pay off substantially
