"""§2.3 — the zero-copy matrix.

For each (incoming discipline × outgoing discipline) pair at the gateway,
count the copies performed per forwarded byte and measure the bandwidth.
The paper's rules:

* dynamic × dynamic — zero copies (buffers referenced directly);
* static in × dynamic out — zero: send straight from the landing block;
* dynamic in × static out — zero: receive straight into a block *borrowed
  from the outgoing TM*;
* static × static — exactly one unavoidable copy.
"""

import numpy as np

from repro.hw import build_world
from repro.madeleine import Session

from common import emit, once

SIZE = 1 << 20
PACKET = 32 << 10

PAIRS = [
    ("myrinet", "gigabit_tcp", "dynamic x dynamic"),
    ("sci", "myrinet", "static-rx x dynamic (land in SCI block)"),
    ("myrinet", "sci", "dynamic x static-tx (borrow SCI block)"),
    ("sbp", "sci", "static x static (one copy)"),
]


def run_pair(p_in, p_out):
    w = build_world({"src": [p_in], "gw": [p_in, p_out], "dst": [p_out]})
    s = Session(w)
    vch = s.virtual_channel([
        s.channel(p_in, ["src", "gw"]),
        s.channel(p_out, ["gw", "dst"]),
    ], packet_size=PACKET)
    out = {}
    data = np.zeros(SIZE, dtype=np.uint8)

    def snd():
        m = vch.endpoint(0).begin_packing(2)
        yield m.pack(data)
        yield m.end_packing()

    def rcv():
        inc = yield vch.endpoint(2).begin_unpacking()
        _ev, _b = inc.unpack(SIZE)
        yield inc.end_unpacking()
        out["t"] = s.now

    s.spawn(snd()); s.spawn(rcv()); s.run()
    by = w.accounting.by_label()
    gw_bytes = by.get("gateway.static_copy", (0, 0))[1]
    return {
        "bandwidth": SIZE / out["t"],
        "gateway_copy_bytes": gw_bytes,
        "gateway_copies_per_byte": gw_bytes / SIZE,
        "all_labels": by,
    }


def bench_zero_copy_matrix(benchmark):
    results = once(benchmark, lambda: {
        label: run_pair(a, b) for a, b, label in PAIRS})

    lines = [f"The zero-copy matrix (§2.3), {SIZE >> 20} MB messages, "
             f"{PACKET >> 10} KB paquets",
             f"{'path':48s}{'gateway copies/byte':>20s}{'MB/s':>10s}"]
    lines.append("-" * len(lines[-1]))
    for _a, _b, label in PAIRS:
        r = results[label]
        lines.append(f"{label:48s}{r['gateway_copies_per_byte']:20.3f}"
                     f"{r['bandwidth']:10.1f}")
    emit("zero_copy_matrix", "\n".join(lines))
    benchmark.extra_info["copies_per_byte"] = {
        label: round(r["gateway_copies_per_byte"], 3)
        for label, r in results.items()}

    # The contract:
    for _a, _b, label in PAIRS[:3]:
        assert results[label]["gateway_copy_bytes"] == 0, label
    ss = results[PAIRS[3][2]]
    assert 0.999 < ss["gateway_copies_per_byte"] < 1.01
    # The copy costs real bandwidth: static x static through the same SCI
    # outgoing link is slower than the borrowed-buffer path.
    assert ss["bandwidth"] < results[PAIRS[2][2]]["bandwidth"]
