"""Point-to-point minimpi semantics over the paper's testbed."""

import numpy as np
import pytest

from repro.hw import build_world
from repro.madeleine import Session
from repro.minimpi import ANY_SOURCE, ANY_TAG, Communicator


def mpi_world():
    w = build_world({"m0": ["myrinet"], "gw": ["myrinet", "sci"],
                     "s0": ["sci"]})
    s = Session(w)
    vch = s.virtual_channel([
        s.channel("myrinet", ["m0", "gw"]),
        s.channel("sci", ["gw", "s0"]),
    ], packet_size=32 << 10)
    comms = {r: Communicator(vch, r) for r in vch.members}
    return w, s, comms


def test_send_recv_basic():
    w, s, comms = mpi_world()
    data = np.arange(1000, dtype=np.uint8)
    got = {}

    def snd():
        yield from comms[0].send(data, dest=2, tag=5)

    def rcv():
        msg = yield from comms[2].recv(source=0, tag=5)
        got["data"] = msg.array().tobytes()
        got["source"] = msg.source
        got["tag"] = msg.tag

    s.spawn(snd()); s.spawn(rcv()); s.run()
    assert got == {"data": data.tobytes(), "source": 0, "tag": 5}


def test_cross_cluster_transparent():
    """ranks 0 (myrinet) and 2 (sci) talk through the gateway without
    knowing it."""
    w, s, comms = mpi_world()
    got = {}

    def snd():
        yield from comms[2].send(np.full(50_000, 7, np.uint8), dest=0)

    def rcv():
        msg = yield from comms[0].recv()
        got["n"] = msg.nbytes
        got["src"] = msg.source

    s.spawn(snd()); s.spawn(rcv()); s.run()
    assert got == {"n": 50_000, "src": 2}


def test_tag_matching_with_unexpected_queue():
    """A message with the wrong tag is parked; the right one is delivered
    first, then the parked one is matched later."""
    w, s, comms = mpi_world()
    order = []

    def snd():
        yield from comms[0].send(np.full(10, 1, np.uint8), dest=1, tag=1)
        yield from comms[0].send(np.full(10, 2, np.uint8), dest=1, tag=2)

    def rcv():
        msg2 = yield from comms[1].recv(tag=2)   # arrives second!
        order.append(msg2.tag)
        msg1 = yield from comms[1].recv(tag=1)   # from the parked queue
        order.append(msg1.tag)

    s.spawn(snd()); s.spawn(rcv()); s.run()
    assert order == [2, 1]


def test_any_source_any_tag():
    w, s, comms = mpi_world()
    seen = []

    def snd(rank, tag):
        def proc():
            yield from comms[rank].send(np.full(4, rank, np.uint8),
                                        dest=1, tag=tag)
        return proc

    def rcv():
        for _ in range(2):
            msg = yield from comms[1].recv(source=ANY_SOURCE, tag=ANY_TAG)
            seen.append((msg.source, msg.tag))

    s.spawn(snd(0, 10)()); s.spawn(snd(2, 20)()); s.spawn(rcv()); s.run()
    assert sorted(seen) == [(0, 10), (2, 20)]


def test_source_filter():
    w, s, comms = mpi_world()
    got = []

    def snd(rank):
        def proc():
            yield from comms[rank].send(np.full(4, rank, np.uint8), dest=1)
        return proc

    def rcv():
        msg = yield from comms[1].recv(source=2)
        got.append(msg.source)
        msg = yield from comms[1].recv(source=0)
        got.append(msg.source)

    s.spawn(snd(0)()); s.spawn(snd(2)()); s.spawn(rcv()); s.run()
    assert got == [2, 0]


def test_sendrecv_head_to_head():
    w, s, comms = mpi_world()
    got = {}

    def peer(me, other):
        def proc():
            msg = yield from comms[me].sendrecv(
                np.full(30_000, me, np.uint8), dest=other, source=other)
            got[me] = int(msg.array()[0])
        return proc

    s.spawn(peer(0, 2)()); s.spawn(peer(2, 0)()); s.run()
    assert got == {0: 2, 2: 0}


def test_empty_message():
    w, s, comms = mpi_world()
    got = {}

    def snd():
        yield from comms[0].send(np.zeros(0, np.uint8), dest=1, tag=3)

    def rcv():
        msg = yield from comms[1].recv(tag=3)
        got["n"] = msg.nbytes

    s.spawn(snd()); s.spawn(rcv()); s.run()
    assert got["n"] == 0


def test_negative_tag_rejected():
    _w, _s, comms = mpi_world()
    with pytest.raises(ValueError):
        comms[0].isend(np.zeros(1, np.uint8), dest=1, tag=-3)


def test_non_member_rank_rejected():
    w, s, comms = mpi_world()
    vch = comms[0].vchannel
    with pytest.raises(ValueError):
        Communicator(vch, 99)


def test_typed_arrays_roundtrip():
    w, s, comms = mpi_world()
    data = np.linspace(0, 1, 500, dtype=np.float64)
    got = {}

    def snd():
        yield from comms[0].send(data, dest=2, tag=9)

    def rcv():
        msg = yield from comms[2].recv(tag=9)
        got["arr"] = msg.array(np.float64)

    s.spawn(snd()); s.spawn(rcv()); s.run()
    assert np.array_equal(got["arr"], data)
