"""Collectives over the cluster-of-clusters topology."""

import numpy as np

from repro.hw import ClusterSpec, GatewayLink, build_cluster_of_clusters
from repro.madeleine import Session
from repro.minimpi import (Communicator, allreduce, barrier, bcast, gather,
                           reduce, ring_allreduce, scatter)


def six_rank_world():
    """3 Myrinet workers + gateway + 2 SCI workers; the gateway is not part
    of the communicator (dedicated forwarder)."""
    world, members, gws = build_cluster_of_clusters(
        clusters=[ClusterSpec("m", "myrinet", 4), ClusterSpec("s", "sci", 2)],
        gateways=[GatewayLink("m", "s")],
    )
    s = Session(world)
    vch = s.virtual_channel([
        s.channel("myrinet", members["m"]),
        s.channel("sci", members["s"] + gws),
    ], packet_size=32 << 10)
    workers = [s.rank(n) for n in members["m"][:3] + members["s"]]
    comms = {r: Communicator(vch, r) for r in vch.members}
    return world, s, comms, workers


def run_spmd(session, comms, workers, body, results):
    """Run `body(comm, index)` on every worker rank."""
    # restrict every communicator's world to the workers
    class SubComm(Communicator):
        @property
        def ranks(self):
            return workers

        @property
        def size(self):
            return len(workers)

    subs = {r: SubComm(comms[r].vchannel, r) for r in workers}

    def make(i):
        def proc():
            yield from body(subs[workers[i]], i, results)
        return proc

    for i in range(len(workers)):
        session.spawn(make(i)(), name=f"spmd-{i}")
    session.run()


def test_bcast_reaches_all():
    world, s, comms, workers = six_rank_world()
    results = {}
    payload = np.arange(5000, dtype=np.uint8)

    def body(comm, i, out):
        data = payload if i == 0 else None
        got = yield from bcast(comm, data, root_index=0)
        out[i] = got.tobytes()

    run_spmd(s, comms, workers, body, results)
    assert all(results[i] == payload.tobytes() for i in range(len(workers)))


def test_reduce_sums_at_root():
    world, s, comms, workers = six_rank_world()
    results = {}

    def body(comm, i, out):
        arr = np.full(100, i + 1, dtype=np.int64)
        got = yield from reduce(comm, arr, op=np.add, root_index=0)
        out[i] = got

    run_spmd(s, comms, workers, body, results)
    expected = sum(range(1, len(workers) + 1))
    assert np.array_equal(results[0], np.full(100, expected, dtype=np.int64))
    assert all(results[i] is None for i in range(1, len(workers)))


def test_allreduce_everyone_agrees():
    world, s, comms, workers = six_rank_world()
    results = {}

    def body(comm, i, out):
        arr = np.full(64, i, dtype=np.float64)
        got = yield from allreduce(comm, arr, op=np.add)
        out[i] = got

    run_spmd(s, comms, workers, body, results)
    expected = float(sum(range(len(workers))))
    for i in range(len(workers)):
        assert np.allclose(results[i], expected)


def test_ring_allreduce_matches_tree():
    world, s, comms, workers = six_rank_world()
    results = {}

    def body(comm, i, out):
        arr = (np.arange(120, dtype=np.float64) * (i + 1))
        got = yield from ring_allreduce(comm, arr, op=np.add)
        out[i] = got

    run_spmd(s, comms, workers, body, results)
    n = len(workers)
    expected = np.arange(120, dtype=np.float64) * sum(range(1, n + 1))
    for i in range(n):
        assert np.allclose(results[i], expected), i


def test_gather_collects_in_order():
    world, s, comms, workers = six_rank_world()
    results = {}

    def body(comm, i, out):
        arr = np.full(10, i, dtype=np.uint8)
        got = yield from gather(comm, arr, root_index=0)
        out[i] = got

    run_spmd(s, comms, workers, body, results)
    assert [int(a[0]) for a in results[0]] == list(range(len(workers)))


def test_scatter_distributes():
    world, s, comms, workers = six_rank_world()
    results = {}
    n = len(workers)

    def body(comm, i, out):
        arrays = ([np.full(8, k, dtype=np.uint8) for k in range(n)]
                  if i == 0 else None)
        got = yield from scatter(comm, arrays, root_index=0)
        out[i] = int(got[0])

    run_spmd(s, comms, workers, body, results)
    assert results == {i: i for i in range(n)}


def test_scatter_wrong_count_rejected():
    world, s, comms, workers = six_rank_world()
    errors = []

    def body(comm, i, out):
        if i == 0:
            try:
                yield from scatter(comm, [np.zeros(1, np.uint8)],
                                   root_index=0)
            except ValueError:
                errors.append("caught")
        else:
            yield comm.sim.timeout(0)

    run_spmd(s, comms, workers, body, {})
    assert errors == ["caught"]


def test_barrier_synchronizes():
    world, s, comms, workers = six_rank_world()
    times = {}

    def body(comm, i, out):
        # stagger arrivals
        yield comm.sim.timeout(100.0 * i)
        yield from barrier(comm)
        out[i] = comm.sim.now

    run_spmd(s, comms, workers, body, times)
    # nobody leaves the barrier before the last arrival
    assert min(times.values()) >= 100.0 * (len(workers) - 1)
