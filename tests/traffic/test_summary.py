"""Traffic summary honesty: zero-completion runs report NaN, not zeros."""

import json
import math

from repro.madeleine import Session, reset_global_ids
from repro.scenario import Scenario, Topology, TrafficSpec
from repro.traffic import TrafficEngine


def _engine():
    reset_global_ids()
    sc = Scenario(
        seed=5,
        topology=Topology(kind="torus", protocols=("myrinet",), dims=(3, 3)),
        traffic=TrafficSpec(pattern="uniform", flows=6,
                            mean_interarrival=100.0, size=16 << 10),
        gw_stall_timeout=None)
    session = Session.from_scenario(sc, telemetry=True)
    return session, TrafficEngine(session, sc)


def test_zero_completion_summary_reports_nan_fct_stats():
    # The engine never runs: zero completions.  The old code substituted a
    # [0.0] placeholder — p99 of nothing looked like a perfect network.
    _session, engine = _engine()
    summary = engine.summary()
    assert summary["completed"] == 0
    for key in ("p50_fct_us", "p99_fct_us", "mean_fct_us", "max_fct_us",
                "events_per_mb"):
        assert math.isnan(summary[key]), key
    assert summary["bytes"] == 0
    assert summary["goodput_mbs"] == 0.0


def test_zero_completion_summary_is_json_safe():
    from repro.bench.jsonio import json_safe
    _session, engine = _engine()
    text = json.dumps(json_safe(engine.summary()), allow_nan=False)
    parsed = json.loads(text)     # strict: would raise on bare NaN/Infinity
    assert parsed["p99_fct_us"] is None
    assert parsed["events_per_mb"] is None


def test_completed_run_summary_stays_finite():
    session, engine = _engine()
    engine.start()
    session.run()
    summary = engine.summary()
    assert summary["completed"] == summary["flows"] == 6
    for key in ("p50_fct_us", "p99_fct_us", "mean_fct_us", "max_fct_us",
                "events_per_mb"):
        assert math.isfinite(summary[key]), key


def test_scaling_scenario_refuses_partial_completion(monkeypatch):
    from repro.bench import scale

    def partial(_scenario):
        return {"completed": 7, "events_per_mb": 100.0,
                "p99_fct_us": 1.0}

    monkeypatch.setattr(scale, "run_traffic_scenario", partial)
    try:
        scale.scaling_scenario()
    except RuntimeError as err:
        assert "7/8" in str(err)
    else:
        raise AssertionError("scaling_scenario accepted a partial run")
