"""Flow generation properties: determinism, pattern shapes, arrivals."""

import numpy as np
import pytest

from repro.scenario import TrafficSpec
from repro.traffic import generate_flows

ENDPOINTS = [f"n{i}" for i in range(8)]


def test_generation_is_deterministic():
    spec = TrafficSpec(pattern="uniform", flows=64, size_jitter=0.25)
    for seed in range(10):
        a = generate_flows(spec, seed, ENDPOINTS)
        b = generate_flows(spec, seed, ENDPOINTS)
        assert a == b


def test_different_seeds_differ():
    spec = TrafficSpec(pattern="uniform", flows=64)
    a = generate_flows(spec, 1, ENDPOINTS)
    b = generate_flows(spec, 2, ENDPOINTS)
    assert a != b


def test_arrivals_are_open_loop_poisson():
    spec = TrafficSpec(pattern="uniform", flows=2000,
                       mean_interarrival=100.0)
    flows = generate_flows(spec, 3, ENDPOINTS)
    arrivals = np.array([f.arrival for f in flows])
    gaps = np.diff(np.concatenate([[0.0], arrivals]))
    assert (gaps >= 0).all()                       # monotone arrivals
    assert gaps.mean() == pytest.approx(100.0, rel=0.1)


def test_no_flow_is_loopback():
    for pattern in ("uniform", "permutation", "hotspot", "incast"):
        spec = TrafficSpec(pattern=pattern, flows=200)
        for f in generate_flows(spec, 7, ENDPOINTS):
            assert f.src != f.dst, pattern


def test_permutation_is_a_fixed_mapping():
    spec = TrafficSpec(pattern="permutation", flows=64)
    flows = generate_flows(spec, 5, ENDPOINTS)
    mapping = {}
    for f in flows:
        assert mapping.setdefault(f.src, f.dst) == f.dst
    # a permutation: no two sources share a destination
    assert len(set(mapping.values())) == len(mapping)


def test_incast_converges_on_one_sink():
    spec = TrafficSpec(pattern="incast", flows=100)
    flows = generate_flows(spec, 11, ENDPOINTS)
    assert len({f.dst for f in flows}) == 1


def test_hotspot_skews_toward_hot_endpoint():
    spec = TrafficSpec(pattern="hotspot", flows=400, hotspot_fraction=0.7)
    flows = generate_flows(spec, 13, ENDPOINTS)
    by_dst = {}
    for f in flows:
        by_dst[f.dst] = by_dst.get(f.dst, 0) + 1
    hot = max(by_dst.values())
    assert hot >= 0.55 * len(flows)     # ~0.7 plus uniform spillover


def test_size_jitter_bounds():
    spec = TrafficSpec(pattern="uniform", flows=200, size=10_000,
                       size_jitter=0.5)
    for f in generate_flows(spec, 17, ENDPOINTS):
        assert 5_000 <= f.nbytes <= 15_000


def test_too_few_endpoints_rejected():
    spec = TrafficSpec(flows=4)
    with pytest.raises(ValueError, match="endpoints"):
        generate_flows(spec, 0, ["only"])
