"""Traffic engine end-to-end: delivery, determinism, scheduler identity."""

import pytest

from repro.madeleine import reset_global_ids
from repro.scenario import Scenario, Topology, TrafficSpec
from repro.traffic import run_traffic


def _scenario(**kw):
    base = dict(
        seed=5,
        topology=Topology(kind="torus", protocols=("myrinet",), dims=(3, 3)),
        traffic=TrafficSpec(pattern="uniform", flows=12,
                            mean_interarrival=120.0, size=16 << 10),
        gw_stall_timeout=None)
    base.update(kw)
    return Scenario(**base)


def _run(**kw):
    reset_global_ids()
    session, engine = run_traffic(_scenario(**kw))
    return session, engine


def test_all_flows_complete():
    session, engine = _run()
    assert len(engine.records) == len(engine.flows) == 12
    summary = engine.summary()
    assert summary["completed"] == 12
    assert summary["p99_fct_us"] >= summary["p50_fct_us"] > 0
    assert summary["bytes"] == 12 * (16 << 10)


def test_telemetry_counters_match_records():
    session, engine = _run()
    m = session.metrics
    assert m.total("traffic.flows_started") == 12
    assert m.total("traffic.flows_completed") == 12
    assert m.total("traffic.active_flows") == 0
    assert m.total("traffic.bytes_delivered") == 12 * (16 << 10)


def test_runs_are_deterministic():
    _s1, e1 = _run()
    _s2, e2 = _run()
    assert [r.completed_at for r in e1.records] \
        == [r.completed_at for r in e2.records]


def test_calendar_scheduler_is_schedule_identical():
    _sh, eh = _run(scheduler="heap")
    _sc, ec = _run(scheduler="calendar")
    assert eh.summary() == ec.summary()
    assert [(r.flow.index, r.completed_at) for r in eh.records] \
        == [(r.flow.index, r.completed_at) for r in ec.records]


def test_reliable_traffic_completes():
    session, engine = _run(
        traffic=TrafficSpec(pattern="permutation", flows=6,
                            mean_interarrival=300.0, size=8 << 10,
                            kind="reliable"))
    assert len(engine.records) == 6
    assert session.metrics.total("reliable.deliveries") == 6


def test_traffic_requires_spec():
    from repro.madeleine import Session
    from repro.scenario import MessageSpec
    from repro.traffic import TrafficEngine

    sc = _scenario(traffic=None,
                   messages=(MessageSpec("t0_0", "t1_1", 1024),))
    reset_global_ids()
    session = Session.from_scenario(sc)
    with pytest.raises(ValueError, match="no traffic spec"):
        TrafficEngine(session, sc)
