"""Unit tests for static buffer pools."""

import pytest

from repro.memory import Buffer, PoolExhausted, StaticBufferPool, STATIC


def test_pool_basic_acquire_release(sim):
    pool = StaticBufferPool(sim, count=2, block_size=64, name="p")
    got = []

    def proc():
        b = yield pool.acquire()
        got.append(b)
        pool.release(b)

    sim.process(proc())
    sim.run()
    assert len(got) == 1
    assert got[0].kind == STATIC
    assert len(got[0]) == 64
    assert pool.available == 2


def test_pool_blocks_when_exhausted(sim):
    pool = StaticBufferPool(sim, count=1, block_size=8)
    times = []

    def holder():
        b = yield pool.acquire()
        yield sim.timeout(10)
        pool.release(b)

    def waiter():
        b = yield pool.acquire()
        times.append(sim.now)
        pool.release(b)

    sim.process(holder())
    sim.process(waiter())
    sim.run()
    assert times == [10.0]


def test_pool_try_acquire(sim):
    pool = StaticBufferPool(sim, count=1, block_size=8)
    b = pool.try_acquire()
    with pytest.raises(PoolExhausted):
        pool.try_acquire()
    pool.release(b)
    assert pool.available == 1


def test_pool_foreign_release_rejected(sim):
    pool = StaticBufferPool(sim, count=1, block_size=8)
    other = Buffer.alloc(8)
    with pytest.raises(ValueError):
        pool.release(other)


def test_pool_double_release_rejected(sim):
    pool = StaticBufferPool(sim, count=1, block_size=8)
    b = pool.try_acquire()
    pool.release(b)
    with pytest.raises(ValueError):
        pool.release(b)


def test_pool_release_hands_to_waiter_directly(sim):
    pool = StaticBufferPool(sim, count=1, block_size=8)
    order = []

    def holder():
        b = yield pool.acquire()
        yield sim.timeout(5)
        pool.release(b)
        order.append(("released", sim.now))

    def waiter():
        yield sim.timeout(1)
        b = yield pool.acquire()
        order.append(("acquired", sim.now))
        pool.release(b)

    sim.process(holder())
    sim.process(waiter())
    sim.run()
    assert order == [("released", 5.0), ("acquired", 5.0)]


def test_pool_validation(sim):
    with pytest.raises(ValueError):
        StaticBufferPool(sim, count=0, block_size=8)
    with pytest.raises(ValueError):
        StaticBufferPool(sim, count=1, block_size=0)


def test_pool_fifo_fairness(sim):
    pool = StaticBufferPool(sim, count=1, block_size=8)
    order = []

    def holder():
        b = yield pool.acquire()
        yield sim.timeout(2)
        pool.release(b)

    def waiter(tag, delay):
        yield sim.timeout(delay)
        b = yield pool.acquire()
        order.append(tag)
        pool.release(b)

    sim.process(holder())
    sim.process(waiter("first", 0.5))
    sim.process(waiter("second", 1.0))
    sim.run()
    assert order == ["first", "second"]


# -- waiter bookkeeping under cancellation and crash recovery -----------------

def test_cancel_acquire_withdraws_pending_waiter(sim):
    pool = StaticBufferPool(sim, count=1, block_size=8)
    held = pool.try_acquire()
    acq = pool.acquire()
    assert pool.cancel_acquire(acq)
    pool.release(held)
    sim.run()
    assert not acq.triggered          # a cancelled acquire never fires
    assert pool.available == 1        # the block went back to the free list
    assert not pool._waiters


def test_cancel_acquire_after_grant_returns_false(sim):
    pool = StaticBufferPool(sim, count=1, block_size=8)
    acq = pool.acquire()              # immediate grant, never queued
    assert not pool.cancel_acquire(acq)
    pool.release(acq.value)


def test_cancel_acquire_races_fail_waiters(sim):
    """A crash (fail_waiters) drains the queue first: the late cancel must
    report 'no longer queued' instead of corrupting the waiter deque."""
    pool = StaticBufferPool(sim, count=1, block_size=8)
    held = pool.try_acquire()
    acq = pool.acquire()
    assert pool.fail_waiters(RuntimeError("crash")) == 1
    assert not pool.cancel_acquire(acq)   # already failed, not queued
    assert not pool._waiters
    pool.release(held)
    assert pool.available == 1


def test_cancel_acquire_races_reset(sim):
    """reset() grants queued waiters; cancelling one of those afterwards
    must come back False — the caller owns the delivered block."""
    pool = StaticBufferPool(sim, count=1, block_size=8)
    held = pool.try_acquire()
    acq = pool.acquire()
    pool.reset()
    assert acq.triggered              # granted from the replenished pool
    assert not pool.cancel_acquire(acq)
    pool.release(acq.value)
    pool.release(held)                # stale: block was retired, no error
    assert pool.available == 1


def test_reset_grants_pending_waiters_fifo(sim):
    pool = StaticBufferPool(sim, count=2, block_size=8)
    held = [pool.try_acquire(), pool.try_acquire()]
    first, second, third = pool.acquire(), pool.acquire(), pool.acquire()
    replaced = pool.reset()
    assert replaced == 2
    assert first.triggered and second.triggered   # FIFO grant
    assert not third.triggered                    # pool exhausted again
    assert list(pool._waiters) == [third]
    pool.release(first.value)
    assert third.triggered                        # normal hand-over resumes
    for b in (second.value, third.value):
        pool.release(b)
    for b in held:
        pool.release(b)                           # retired: swallowed
    assert pool.available == pool.count == 2


def test_reset_skips_failed_waiters(sim):
    """Waiters failed by a crash sit triggered in the deque only until the
    drain; a reset racing in must not hand them a block."""
    pool = StaticBufferPool(sim, count=1, block_size=8)
    held = pool.try_acquire()
    doomed = pool.acquire()
    live = pool.acquire()
    doomed.fail(RuntimeError("crash"))   # failed in place, still queued
    doomed.defuse()
    pool.reset()
    assert live.triggered                # the live waiter got the block
    assert not pool._waiters
    pool.release(live.value)
    pool.release(held)
    assert pool.available == 1
