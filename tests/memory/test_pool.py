"""Unit tests for static buffer pools."""

import pytest

from repro.memory import Buffer, PoolExhausted, StaticBufferPool, STATIC


def test_pool_basic_acquire_release(sim):
    pool = StaticBufferPool(sim, count=2, block_size=64, name="p")
    got = []

    def proc():
        b = yield pool.acquire()
        got.append(b)
        pool.release(b)

    sim.process(proc())
    sim.run()
    assert len(got) == 1
    assert got[0].kind == STATIC
    assert len(got[0]) == 64
    assert pool.available == 2


def test_pool_blocks_when_exhausted(sim):
    pool = StaticBufferPool(sim, count=1, block_size=8)
    times = []

    def holder():
        b = yield pool.acquire()
        yield sim.timeout(10)
        pool.release(b)

    def waiter():
        b = yield pool.acquire()
        times.append(sim.now)
        pool.release(b)

    sim.process(holder())
    sim.process(waiter())
    sim.run()
    assert times == [10.0]


def test_pool_try_acquire(sim):
    pool = StaticBufferPool(sim, count=1, block_size=8)
    b = pool.try_acquire()
    with pytest.raises(PoolExhausted):
        pool.try_acquire()
    pool.release(b)
    assert pool.available == 1


def test_pool_foreign_release_rejected(sim):
    pool = StaticBufferPool(sim, count=1, block_size=8)
    other = Buffer.alloc(8)
    with pytest.raises(ValueError):
        pool.release(other)


def test_pool_double_release_rejected(sim):
    pool = StaticBufferPool(sim, count=1, block_size=8)
    b = pool.try_acquire()
    pool.release(b)
    with pytest.raises(ValueError):
        pool.release(b)


def test_pool_release_hands_to_waiter_directly(sim):
    pool = StaticBufferPool(sim, count=1, block_size=8)
    order = []

    def holder():
        b = yield pool.acquire()
        yield sim.timeout(5)
        pool.release(b)
        order.append(("released", sim.now))

    def waiter():
        yield sim.timeout(1)
        b = yield pool.acquire()
        order.append(("acquired", sim.now))
        pool.release(b)

    sim.process(holder())
    sim.process(waiter())
    sim.run()
    assert order == [("released", 5.0), ("acquired", 5.0)]


def test_pool_validation(sim):
    with pytest.raises(ValueError):
        StaticBufferPool(sim, count=0, block_size=8)
    with pytest.raises(ValueError):
        StaticBufferPool(sim, count=1, block_size=0)


def test_pool_fifo_fairness(sim):
    pool = StaticBufferPool(sim, count=1, block_size=8)
    order = []

    def holder():
        b = yield pool.acquire()
        yield sim.timeout(2)
        pool.release(b)

    def waiter(tag, delay):
        yield sim.timeout(delay)
        b = yield pool.acquire()
        order.append(tag)
        pool.release(b)

    sim.process(holder())
    sim.process(waiter("first", 0.5))
    sim.process(waiter("second", 1.0))
    sim.run()
    assert order == ["first", "second"]
