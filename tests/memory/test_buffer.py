"""Unit tests for Buffer and copy accounting."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.memory import (Buffer, CopyAccounting, DYNAMIC, STATIC, as_payload)


def test_alloc_zeroed():
    b = Buffer.alloc(16)
    assert len(b) == 16
    assert b.tobytes() == b"\x00" * 16
    assert b.kind == DYNAMIC


def test_alloc_negative_rejected():
    with pytest.raises(ValueError):
        Buffer.alloc(-1)


def test_bad_kind_rejected():
    with pytest.raises(ValueError):
        Buffer(np.zeros(4, dtype=np.uint8), kind="magic")


def test_wrap_bytes_no_copy_semantics():
    arr = np.arange(10, dtype=np.uint8)
    b = Buffer.wrap(arr)
    arr[0] = 99
    assert b.data[0] == 99   # shares memory


def test_as_payload_views_other_dtypes():
    arr = np.arange(4, dtype=np.uint32)
    p = as_payload(arr)
    assert p.dtype == np.uint8
    assert len(p) == 16


def test_view_is_zero_copy():
    b = Buffer.alloc(100)
    v = b.view(10, 20)
    assert len(v) == 10
    assert v.shares_memory_with(b)
    v.data[:] = 7
    assert b.data[10] == 7
    assert b.data[9] == 0


def test_view_bounds_checked():
    b = Buffer.alloc(10)
    with pytest.raises(IndexError):
        b.view(5, 20)
    with pytest.raises(IndexError):
        b.view(-1, 5)
    with pytest.raises(IndexError):
        b.view(7, 3)


def test_view_inherits_kind():
    b = Buffer(np.zeros(8, dtype=np.uint8), kind=STATIC)
    assert b.view(0, 4).kind == STATIC


def test_copy_from_counts():
    acc = CopyAccounting()
    src = Buffer.wrap(np.arange(50, dtype=np.uint8))
    dst = Buffer.alloc(50)
    dst.copy_from(src, acc, t=3.0, label="test")
    assert (dst.data == src.data).all()
    assert acc.copies == 1
    assert acc.bytes_copied == 50
    assert acc.samples[0].t == 3.0
    assert acc.samples[0].label == "test"


def test_copy_from_size_mismatch():
    acc = CopyAccounting()
    with pytest.raises(ValueError):
        Buffer.alloc(10).copy_from(Buffer.alloc(11), acc, 0.0, "x")


def test_fill_from_bytes():
    acc = CopyAccounting()
    b = Buffer.alloc(8)
    b.fill_from_bytes(b"abc", acc, 0.0, "hdr")
    assert b.tobytes()[:3] == b"abc"
    assert acc.bytes_copied == 3
    with pytest.raises(ValueError):
        Buffer.alloc(2).fill_from_bytes(b"toolong", acc, 0.0, "hdr")


def test_accounting_by_label_and_reset():
    acc = CopyAccounting()
    b = Buffer.alloc(4)
    s = Buffer.alloc(4)
    b.copy_from(s, acc, 0.0, "a")
    b.copy_from(s, acc, 1.0, "a")
    b.copy_from(s, acc, 2.0, "b")
    assert acc.by_label() == {"a": (2, 8), "b": (1, 4)}
    acc.reset()
    assert acc.copies == 0 and acc.bytes_copied == 0 and not acc.samples


def test_accounting_without_samples():
    acc = CopyAccounting(keep_samples=False)
    Buffer.alloc(4).copy_from(Buffer.alloc(4), acc, 0.0, "x")
    assert acc.copies == 1
    assert acc.samples == []


@given(st.integers(0, 200), st.integers(0, 200))
def test_view_roundtrip_property(start, stop):
    b = Buffer.wrap(np.arange(200, dtype=np.uint8))
    if 0 <= start <= stop <= 200:
        v = b.view(start, stop)
        assert v.tobytes() == b.tobytes()[start:stop]
    else:
        with pytest.raises(IndexError):
            b.view(start, stop)
