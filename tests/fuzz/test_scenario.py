"""Scenario schema: determinism, serialization, and validation."""

import json

import pytest

from repro.fuzz import (MessageSpec, Scenario, Topology, mutate_scenario,
                        random_scenario)
from repro.faults import FaultPlan, LinkEvent, NodeEvent


def test_random_scenario_is_deterministic():
    for seed in range(30):
        a, b = random_scenario(seed), random_scenario(seed)
        assert a == b, f"seed {seed} not reproducible"
        assert a.to_dict() == b.to_dict()


def test_mutation_is_deterministic_and_valid():
    base = random_scenario(1)
    for seed in range(30):
        a = mutate_scenario(base, seed)
        b = mutate_scenario(base, seed)
        assert a == b
        a.validate()


def test_dict_roundtrip_through_json():
    for seed in range(30):
        s = random_scenario(seed)
        doc = json.loads(json.dumps(s.to_dict()))
        assert Scenario.from_dict(doc) == s


def test_chain_names_are_derived():
    topo = Topology(kind="chain", protocols=("myrinet", "sci", "gigabit_tcp"),
                    sizes=(2, 1, 1), gateways=(2, 1))
    assert topo.endpoint_names() == ["a0", "a1", "b0", "c0"]
    assert topo.gateway_names() == ["gw00", "gw01", "gw10"]
    assert topo.channel_names() == ["c0", "c1", "c2"]
    assert topo.n_nodes == 7


def test_multirail_names_are_derived():
    topo = Topology(kind="multirail", protocols=("myrinet", "sci"),
                    gateways=(3,))
    assert topo.endpoint_names() == ["a0", "b0"]
    assert topo.gateway_names() == ["gw0", "gw1", "gw2"]
    assert topo.rails == 3
    assert topo.n_nodes == 5


@pytest.mark.parametrize("kw, match", [
    (dict(kind="chain", protocols=("myrinet", "myrinet"), sizes=(1, 1),
          gateways=(1,)), "differ in protocol"),
    (dict(kind="multirail", protocols=("myrinet", "myrinet")), "distinct"),
    (dict(kind="multirail", protocols=("myrinet", "sci"), gateways=(1,)),
     "2..3 rails"),
    (dict(kind="ring", protocols=("myrinet",)), "unknown topology"),
])
def test_bad_topologies_rejected(kw, match):
    kw.setdefault("gateways", (2,))
    with pytest.raises(ValueError, match=match):
        Topology(**kw)


def _chain(**kw):
    topo = Topology(kind="chain", protocols=("myrinet", "sci"),
                    sizes=(1, 1), gateways=(1,))
    base = dict(seed=0, topology=topo,
                messages=(MessageSpec("a0", "b0", 1000),),
                faults=FaultPlan())
    base.update(kw)
    return Scenario(**base)


@pytest.mark.parametrize("kw, match", [
    (dict(messages=(MessageSpec("a0", "z9", 100),)), "not an endpoint"),
    (dict(messages=(MessageSpec("a0", "a0", 100),)), "loopback"),
    (dict(messages=()), "no traffic"),
    (dict(faults=FaultPlan(node_events=(NodeEvent(time=1.0, node="a0"),))),
     "not a gateway"),
    (dict(faults=FaultPlan(link_events=(LinkEvent(time=1.0, channel="cx"),))),
     "unknown channel"),
    (dict(pipeline=(3, 3, True)), "lockstep"),
    (dict(pipeline=(2, 5, False)), "credits"),
    (dict(stripe=(2, 4096)), "parallel routes"),
    (dict(multirail=True), "parallel routes"),
])
def test_bad_scenarios_rejected(kw, match):
    with pytest.raises(ValueError, match=match):
        _chain(**kw).validate()


def test_multirail_dispatch_allowed_on_parallel_chain():
    topo = Topology(kind="chain", protocols=("myrinet", "sci"),
                    sizes=(1, 1), gateways=(2,))
    Scenario(seed=0, topology=topo, multirail=True,
             messages=(MessageSpec("a0", "b0", 1000),),
             faults=FaultPlan()).validate()


def test_plain_traffic_requires_quiet_plan():
    from repro.faults import ChannelFaults
    noisy = FaultPlan(channels={"c0": ChannelFaults(drop_p=0.1)})
    with pytest.raises(ValueError, match="plain"):
        _chain(messages=(MessageSpec("a0", "b0", 100, kind="plain"),),
               faults=noisy).validate()


def test_quiet_property():
    assert _chain().quiet
    from repro.faults import ChannelFaults
    assert not _chain(faults=FaultPlan(
        channels={"c0": ChannelFaults(drop_p=0.1)})).quiet
    # delay-only probabilities still count as noisy (they reorder timing)
    assert not _chain(faults=FaultPlan(
        channels={"c0": ChannelFaults(delay_p=0.5, delay_us=10.0)})).quiet
