"""Repro files and the committed regression corpus.

Every file under ``tests/fuzz/corpus/`` is a scenario the fuzzer once
minimized from a real failure; replaying it must pass on the fixed stack.
"""

import pathlib

import pytest

from repro.fuzz import load_repro, random_scenario, run_scenario, save_repro
from repro.fuzz.corpus import repro_name

CORPUS = sorted(
    (pathlib.Path(__file__).parent / "corpus").glob("*.json"))


def test_corpus_is_not_empty():
    assert CORPUS, "the regression corpus should hold every fixed bug"


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_replay_passes(path):
    scenario = load_repro(path)
    result = run_scenario(scenario)
    assert result.ok, (
        f"regression: {path.name} fails again: "
        + "; ".join(str(f) for f in result.failures))


def test_save_load_roundtrip(tmp_path):
    scenario = random_scenario(7)
    result = run_scenario(scenario)
    path = tmp_path / repro_name(result)
    save_repro(path, result)
    assert load_repro(path) == scenario


def test_unknown_version_rejected(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"version": 99, "scenario": {}}')
    with pytest.raises(ValueError, match="version 99"):
        load_repro(path)
