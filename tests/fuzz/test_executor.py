"""Executor oracle: clean passes, deterministic results, and detection of a
deliberately broken stack (the acceptance gate of the fuzzer itself)."""

import pytest

from repro.faults import ChannelFaults, FaultPlan
from repro.fuzz import (MessageSpec, Scenario, Topology, minimize_scenario,
                        random_scenario, run_scenario)
from repro.madeleine.gateway import TEST_HOOKS


@pytest.mark.parametrize("seed", range(8))
def test_random_seeds_pass_the_catalog(seed):
    result = run_scenario(random_scenario(seed))
    assert result.ok, [str(f) for f in result.failures]
    assert result.stats["delivered"] >= 1
    assert result.features


def test_results_are_deterministic():
    s = random_scenario(3)
    a, b = run_scenario(s), run_scenario(s)
    assert a.stats == b.stats
    assert a.features == b.features


def test_signature_distinguishes_topologies():
    quiet_chain = next(s for s in map(random_scenario, range(50))
                       if s.topology.kind == "chain")
    rail = next(s for s in map(random_scenario, range(50))
                if s.topology.kind == "multirail")
    fa = run_scenario(quiet_chain).features
    fb = run_scenario(rail).features
    assert "topo:chain" in fa and "topo:multirail" in fb
    assert fa != fb


def _leak_scenario():
    """Quiet pipelined chain, wide enough that minimization has work to do.

    Small messages keep every forward within the credit window, so the
    leaked credits show as a nonzero gauge instead of a stall-and-abandon.
    """
    topo = Topology(kind="chain", protocols=("myrinet", "sci"),
                    sizes=(2, 2), gateways=(2,))
    return Scenario(
        seed=99,
        topology=topo,
        pipeline=(4, 4, False),
        messages=(MessageSpec("a0", "b0", 2_000),
                  MessageSpec("a1", "b1", 2_000),
                  MessageSpec("a0", "b1", 1_000)),
        faults=FaultPlan(seed=99),
    )


@pytest.fixture
def leaky_gateway():
    TEST_HOOKS.leak_credits = True
    try:
        yield
    finally:
        TEST_HOOKS.leak_credits = False


def test_injected_credit_leak_is_caught(leaky_gateway):
    result = run_scenario(_leak_scenario())
    assert not result.ok
    assert any(f.invariant == "credit-leak" for f in result.failures), \
        [str(f) for f in result.failures]


def test_injected_credit_leak_minimizes_small(leaky_gateway):
    """The ISSUE acceptance gate: the planted fault shrinks to a scenario
    of at most 4 nodes and 3 fault events that still exhibits it."""
    scenario = _leak_scenario()
    assert scenario.topology.n_nodes == 6
    small = minimize_scenario(scenario, "credit-leak", max_runs=80)
    assert small.topology.n_nodes <= 4
    assert small.n_fault_events <= 3
    assert len(small.messages) == 1
    result = run_scenario(small)
    assert any(f.invariant == "credit-leak" for f in result.failures)


def test_clean_stack_holds_credit_invariant():
    result = run_scenario(_leak_scenario())
    assert result.ok, [str(f) for f in result.failures]


def test_faulty_channel_scenario_still_delivers():
    """Reliable traffic under fragment drops: typed errors allowed, crashes
    and conservation violations are not."""
    topo = Topology(kind="chain", protocols=("myrinet", "sci"),
                    sizes=(1, 1), gateways=(1,))
    s = Scenario(
        seed=5,
        topology=topo,
        messages=(MessageSpec("a0", "b0", 30_000),),
        faults=FaultPlan(seed=5,
                         channels={"c0": ChannelFaults(drop_p=0.05)}),
    )
    result = run_scenario(s)
    assert result.ok, [str(f) for f in result.failures]
    assert result.stats["dropped"] >= 0
