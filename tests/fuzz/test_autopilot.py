"""Campaign loop: coverage accounting, failure reporting, repro emission."""

import json

from repro.fuzz import run_campaign
from repro.madeleine.gateway import TEST_HOOKS


def test_small_campaign_passes_and_accumulates_coverage():
    report = run_campaign(runs=6, seed_base=0, minimize=False)
    assert report.ok
    assert report.runs == 6
    assert report.interesting >= 1
    assert len(report.features) > 5
    assert "0 failure(s)" in report.summary()


def test_campaign_reports_and_saves_failures(tmp_path):
    TEST_HOOKS.leak_credits = True
    try:
        report = run_campaign(runs=4, seed_base=0, minimize=False,
                              out_dir=tmp_path)
    finally:
        TEST_HOOKS.leak_credits = False
    assert not report.ok
    assert report.failures
    saved = list(tmp_path.glob("*.json"))
    assert saved, "failing scenarios should be written as repro files"
    doc = json.loads(saved[0].read_text())
    assert doc["version"] == 1
    assert doc["failures"]
    assert "FAILED" in report.summary()


def test_time_budget_stops_early():
    report = run_campaign(runs=10_000, seed_base=0, time_budget=0.0)
    assert report.runs <= 1
