"""The PM2-style RPC layer."""

import numpy as np
import pytest

from repro.hw import build_world
from repro.madeleine import Session
from repro.rpc import RemoteError, RpcError, RpcNode


def rpc_world():
    w = build_world({"m0": ["myrinet"], "gw": ["myrinet", "sci"],
                     "s0": ["sci"]})
    s = Session(w)
    vch = s.virtual_channel([
        s.channel("myrinet", ["m0", "gw"]),
        s.channel("sci", ["gw", "s0"]),
    ], packet_size=32 << 10)
    nodes = {r: RpcNode(vch, r) for r in vch.members}
    for n in nodes.values():
        n.start()
    return w, s, nodes


def test_call_across_gateway():
    w, s, nodes = rpc_world()
    nodes[2].register("double",
                      lambda call: call.payload_array(np.float64) * 2.0)
    got = {}

    def client():
        reply = yield from nodes[0].call(2, "double",
                                         np.arange(1000, dtype=np.float64))
        got["result"] = reply.array(np.float64)

    s.spawn(client())
    s.run()
    assert np.array_equal(got["result"],
                          np.arange(1000, dtype=np.float64) * 2)
    assert nodes[2].calls_served == 1


def test_unknown_service_raises_remote_error():
    w, s, nodes = rpc_world()
    errors = []

    def client():
        try:
            yield from nodes[0].call(2, "nope", b"x")
        except RemoteError as exc:
            errors.append(exc.status)

    s.spawn(client())
    s.run()
    assert errors == [1]


def test_handler_exception_forwarded():
    w, s, nodes = rpc_world()

    def bad_handler(call):
        raise ValueError("broken handler")

    nodes[2].register("bad", bad_handler)
    errors = []

    def client():
        try:
            yield from nodes[0].call(2, "bad")
        except RemoteError as exc:
            errors.append(str(exc))

    s.spawn(client())
    s.run()
    assert errors and "broken handler" in errors[0]


def test_generator_handler_can_yield_events():
    w, s, nodes = rpc_world()

    def slow_handler(call):
        yield s.sim.timeout(500.0)
        return np.frombuffer(b"done", dtype=np.uint8)

    nodes[2].register("slow", slow_handler)
    got = {}

    def client():
        t0 = s.now
        reply = yield from nodes[0].call(2, "slow")
        got["elapsed"] = s.now - t0
        got["body"] = reply.payload.tobytes()

    s.spawn(client())
    s.run()
    assert got["body"] == b"done"
    assert got["elapsed"] > 500.0


def test_symmetric_calls_no_deadlock():
    """Two nodes calling each other's services simultaneously."""
    w, s, nodes = rpc_world()
    nodes[0].register("ping", lambda c: b"pong-from-0")
    nodes[2].register("ping", lambda c: b"pong-from-2")
    got = {}

    def client(me, other):
        def proc():
            reply = yield from nodes[me].call(other, "ping")
            got[me] = reply.payload.tobytes()
        return proc

    s.spawn(client(0, 2)())
    s.spawn(client(2, 0)())
    s.run()
    assert got == {0: b"pong-from-2", 2: b"pong-from-0"}


def test_cast_one_way():
    w, s, nodes = rpc_world()
    seen = []
    nodes[2].register("log", lambda c: seen.append(c.payload.tobytes()))

    def client():
        yield from nodes[0].cast(2, "log", b"fire-and-forget")
        # give the dispatcher time to process
        yield s.sim.timeout(10_000)

    s.spawn(client())
    s.run()
    assert seen == [b"fire-and-forget"]


def test_call_timeout():
    w, s, nodes = rpc_world()

    def never_handler(call):
        yield s.sim.timeout(1e9)
        return b""

    nodes[2].register("never", never_handler)
    errors = []

    def client():
        try:
            yield from nodes[0].call(2, "never", timeout=10_000.0)
        except RpcError as exc:
            errors.append(str(exc))

    s.spawn(client())
    s.run(until=2e9)
    assert errors and "timed out" in errors[0]


def test_concurrent_calls_different_ids():
    w, s, nodes = rpc_world()
    nodes[2].register("echo", lambda c: c.payload)
    got = []

    def client():
        for i in range(4):
            reply = yield from nodes[0].call(
                2, "echo", np.full(100 + i, i, dtype=np.uint8))
            got.append((len(reply), int(reply.array()[0])))

    s.spawn(client())
    s.run()
    assert got == [(100, 0), (101, 1), (102, 2), (103, 3)]


def test_register_validation():
    w, s, nodes = rpc_world()
    nodes[0].register("svc", lambda c: None)
    with pytest.raises(RpcError):
        nodes[0].register("svc", lambda c: None)
    with pytest.raises(RpcError):
        nodes[0].register("", lambda c: None)


def test_call_requires_started_node():
    w = build_world({"a": ["myrinet"], "b": ["myrinet"]})
    s = Session(w)
    vch = s.virtual_channel([s.channel("myrinet", ["a", "b"])])
    node = RpcNode(vch, 0)
    with pytest.raises(RpcError, match="start"):
        list(node.call(1, "x"))


def test_non_member_rejected():
    w, s, nodes = rpc_world()
    with pytest.raises(RpcError):
        RpcNode(nodes[0].vchannel, 42)
