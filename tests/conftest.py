"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hw import build_world
from repro.madeleine import Session
from repro.sim import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def paper_testbed():
    """The paper's three-node configuration: a Myrinet endpoint, a gateway
    with Myrinet+SCI adapters, and an SCI endpoint (plus the Fast-Ethernet
    control network on every node)."""
    world = build_world({
        "m0": ["myrinet", "fast_ethernet"],
        "gw": ["myrinet", "sci", "fast_ethernet"],
        "s0": ["sci", "fast_ethernet"],
    })
    return world


@pytest.fixture
def paper_session(paper_testbed):
    session = Session(paper_testbed)
    myri = session.channel("myrinet", ["m0", "gw"])
    sci = session.channel("sci", ["gw", "s0"])
    vch = session.virtual_channel([myri, sci], packet_size=16 << 10)
    return session, myri, sci, vch


def payload(n: int, seed: int = 1) -> np.ndarray:
    """Deterministic pseudo-random byte payload."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=n, dtype=np.uint8)


def transfer_once(session, vch, src, dst, data, packet_checks=None):
    """Send one single-buffer message src -> dst over vch; return
    (elapsed µs, received Buffer)."""
    out = {}

    def sender():
        msg = vch.endpoint(src).begin_packing(dst)
        yield msg.pack(data)
        yield msg.end_packing()

    def receiver():
        inc = yield vch.endpoint(dst).begin_unpacking()
        _ev, buf = inc.unpack(len(data))
        yield inc.end_unpacking()
        out["t"] = session.now
        out["buf"] = buf
        out["origin"] = inc.origin

    session.spawn(sender(), "sender")
    session.spawn(receiver(), "receiver")
    session.run()
    return out
