"""Shared pieces for the fault-injection and recovery tests.

All scenarios run on the canonical two-gateway testbed: a Myrinet-only
sender ``m0`` (rank 0), two Myrinet+SCI gateways ``gwA``/``gwB`` (ranks
1 and 2), and an SCI-only receiver ``s0`` (rank 3).  Routing prefers
``gwA`` while it is healthy (deterministic tie-break on rank), which
makes failover onto ``gwB`` observable.
"""

import numpy as np

from repro.hw import build_world
from repro.hw.params import GatewayParams
from repro.madeleine import ReliableEndpoint, Session

GW_STALL = 5_000.0   # keep abandoned gateway pipelines short-lived


def two_gateway_world():
    w = build_world({"m0": ["myrinet"], "gwA": ["myrinet", "sci"],
                     "gwB": ["myrinet", "sci"], "s0": ["sci"]})
    s = Session(w)
    myri = s.channel("myrinet", ["m0", "gwA", "gwB"])
    sci = s.channel("sci", ["gwA", "gwB", "s0"])
    return w, s, myri, sci


def reliable_pair(s, myri, sci, policy, packet_size=16 << 10):
    vch = s.virtual_channel(
        [myri, sci], packet_size=packet_size,
        gateway_params=GatewayParams(stall_timeout=GW_STALL))
    return (vch, ReliableEndpoint(vch.endpoint(0), policy),
            ReliableEndpoint(vch.endpoint(3), policy))


def payloads(seed, n, nbytes):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 256, nbytes, dtype=np.uint8).tobytes()
            for _ in range(n)]


def run_transfer(s, rel_src, rel_dst, msgs, dst=3):
    """Push ``msgs`` through and return (attempts, received, errors).

    Typed failures are caught *inside* the processes — a reliable
    transfer must end in an exception the application can handle, never
    in a crashed simulation.
    """
    attempts, got, errors = [], [], []

    def sender():
        for p in msgs:
            try:
                n = yield from rel_src.send(dst, p)
            except Exception as exc:        # noqa: BLE001 — recorded, asserted on
                errors.append(exc)
                return
            attempts.append(n)

    def receiver():
        for _ in msgs:
            _src, data, _tid = yield from rel_dst.recv()
            got.append(data)

    s.spawn(sender(), name="t-send")
    s.spawn(receiver(), name="t-recv")
    s.run()
    return attempts, got, errors
