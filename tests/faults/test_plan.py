"""Unit tests for the declarative fault-plan layer: validation, arming,
health bookkeeping, and the reproducibility guarantee (same seed, same
workload -> byte-identical fault schedule)."""

import pytest

from repro.faults import ChannelFaults, FaultPlan, LinkEvent, NodeEvent
from repro.faults.injector import base_channel_id
from repro.madeleine import RetryPolicy
from tests.faults.conftest import (payloads, reliable_pair, run_transfer,
                                   two_gateway_world)


# -- validation ----------------------------------------------------------------

@pytest.mark.parametrize("kw", [
    {"drop_p": -0.1}, {"drop_p": 1.5},
    {"corrupt_p": 2.0}, {"delay_p": -1e-9},
    {"delay_us": -1.0},
])
def test_channel_faults_rejects_bad_values(kw):
    with pytest.raises(ValueError):
        ChannelFaults(**kw)


def test_channel_faults_quiet():
    assert ChannelFaults().quiet
    assert ChannelFaults(delay_us=50.0).quiet      # probability still zero
    assert not ChannelFaults(drop_p=0.01).quiet


@pytest.mark.parametrize("kw", [
    {"frag_size": 0},
    {"max_attempts": 0},
    {"rto": 0.0},
    {"rto_max": -1.0},
    {"stall_timeout": 0.0},
    {"backoff": 0.5},
    {"ack_copies": 0},
    {"reack_interval": 0.0},
    {"reack_ttl": 0.0},
    # the receiver must keep re-ACKing for at least the sender's
    # worst-case silence, else a blind sender can never be repaired
    {"rto_max": 100_000.0, "reack_ttl": 50_000.0},
])
def test_retry_policy_rejects_bad_values(kw):
    with pytest.raises(ValueError):
        RetryPolicy(**kw)


def test_retry_policy_defaults_are_valid():
    p = RetryPolicy()
    assert p.reack_ttl > p.rto_max


# -- arming --------------------------------------------------------------------

def test_plan_arms_once():
    w, _s, _myri, _sci = two_gateway_world()
    plan = FaultPlan(seed=3)
    injector = plan.arm(w)
    assert w.fabric.injector is injector
    with pytest.raises(RuntimeError):
        FaultPlan(seed=4).arm(w)


def test_base_channel_id_strips_forwarding_twin():
    assert base_channel_id("myrinet!fwd") == "myrinet"
    assert base_channel_id("myrinet") == "myrinet"


# -- health transitions --------------------------------------------------------

def test_injector_health_transitions_notify_and_trace():
    w, _s, myri, _sci = two_gateway_world()
    injector = FaultPlan(seed=0).arm(w)
    seen = []
    injector.subscribe(lambda kind, subject: seen.append((kind, subject)))

    injector.link_down(myri.id + "!fwd")   # twin normalizes to the rail
    injector.link_down(myri.id)            # duplicate: no second event
    assert injector.is_link_down(myri.id)
    injector.link_up(myri.id)
    injector.crash_node("gwA")
    assert injector.is_node_down(1)
    injector.restart_node("gwA")
    injector.restart_node("gwA")           # duplicate: no second event

    assert seen == [("link_down", myri.id), ("link_up", myri.id),
                    ("node_down", 1), ("node_up", 1)]
    events = [r.event for r in w.fabric.trace.query("fault")]
    assert events == ["link_down", "link_up", "node_down", "node_up"]


# -- determinism ---------------------------------------------------------------

def _faulty_run(seed):
    w, s, myri, sci = two_gateway_world()
    faults = ChannelFaults(drop_p=0.05, corrupt_p=0.02)
    FaultPlan(seed=seed, channels={myri.id: faults, sci.id: faults},
              link_events=(LinkEvent(time=8_000.0, channel=myri.id),
                           LinkEvent(time=20_000.0, channel=myri.id,
                                     up=True)),
              node_events=(NodeEvent(time=4_000.0, node="gwA"),)).arm(w)
    vch, rel_src, rel_dst = reliable_pair(s, myri, sci, RetryPolicy())
    attempts, got, errors = run_transfer(
        s, rel_src, rel_dst, payloads(seed, 2, 60_000))
    assert not errors and len(got) == 2
    # channel ids and message ids embed process-global counters, so the
    # comparable schedule is (time, event) — *when* each fault fired.
    fault_log = [(r.t, r.event) for r in w.fabric.trace.query("fault")]
    return attempts, rel_src.retransmits, fault_log


def test_same_seed_same_schedule():
    """The whole point of seeding: a chaos run is a reproducible bug
    report.  Two worlds, same plan + workload -> identical fault trace
    (times, victims) and identical recovery statistics."""
    a = _faulty_run(seed=5)
    b = _faulty_run(seed=5)
    assert a == b


def test_different_seed_different_schedule():
    a = _faulty_run(seed=5)
    b = _faulty_run(seed=6)
    assert a[2] != b[2]
