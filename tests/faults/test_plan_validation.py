"""Fault-plan validation and corpus serialization.

``FaultPlan.validate`` turns a typo'd schedule into a descriptive
``ValueError`` at arm time instead of a ``KeyError`` deep inside a driver
process mid-run; ``to_dict``/``from_dict`` give the fuzz corpus an exact
JSON round-trip.
"""

import json

import pytest

from repro.faults import ChannelFaults, FaultPlan, LinkEvent, NodeEvent
from tests.faults.conftest import two_gateway_world


# -- standalone validation (no world) ------------------------------------------

@pytest.mark.parametrize("plan", [
    FaultPlan(link_events=(LinkEvent(time=-1.0, channel="myrinet:0"),)),
    FaultPlan(node_events=(NodeEvent(time=-0.5, node="gwA"),)),
])
def test_negative_event_times_rejected_without_world(plan):
    with pytest.raises(ValueError, match="time must be >= 0"):
        plan.validate()


def test_clean_plan_validates_without_world():
    FaultPlan(seed=7, channels={"anything": ChannelFaults(drop_p=0.1)},
              link_events=(LinkEvent(time=10.0, channel="later:0"),)
              ).validate()


# -- world-aware validation ----------------------------------------------------

def test_unknown_node_event_target_rejected():
    w, _s, _myri, _sci = two_gateway_world()
    plan = FaultPlan(node_events=(NodeEvent(time=5.0, node="gwZ"),))
    with pytest.raises(ValueError, match="unknown node 'gwZ'"):
        plan.validate(w)
    with pytest.raises(ValueError, match="unknown node 'gwZ'"):
        plan.arm(w)


def test_unknown_link_event_channel_rejected():
    w, _s, _myri, _sci = two_gateway_world()
    plan = FaultPlan(link_events=(LinkEvent(time=5.0, channel="ethernet:9"),))
    with pytest.raises(ValueError, match="unknown channel 'ethernet:9'"):
        plan.validate(w)


def test_link_event_accepts_forwarding_twin_id():
    w, _s, myri, _sci = two_gateway_world()
    FaultPlan(link_events=(LinkEvent(time=5.0, channel=myri.id),
                           LinkEvent(time=9.0, channel=f"{myri.id}!fwd"),)
              ).validate(w)


def test_link_events_need_channels_to_exist():
    from repro.hw import build_world
    w = build_world({"a": ["myrinet"], "b": ["myrinet"]})
    plan = FaultPlan(link_events=(LinkEvent(time=5.0, channel="myrinet:0"),))
    with pytest.raises(ValueError, match="build the channels first"):
        plan.validate(w)


def test_channel_probability_map_is_not_checked():
    """Plans armed via ``Session(fault_plan=...)`` name channels created
    later; an unmatched probability entry is inert, not an error."""
    w, _s, _myri, _sci = two_gateway_world()
    FaultPlan(channels={"not-built-yet:42": ChannelFaults(drop_p=0.5)}
              ).validate(w)


def test_node_event_by_rank_validates():
    w, _s, _myri, _sci = two_gateway_world()
    FaultPlan(node_events=(NodeEvent(time=5.0, node=1),)).validate(w)
    with pytest.raises(ValueError, match="unknown node 99"):
        FaultPlan(node_events=(NodeEvent(time=5.0, node=99),)).validate(w)


# -- serialization -------------------------------------------------------------

def test_plan_dict_roundtrip_exact():
    plan = FaultPlan(
        seed=42,
        channels={"myrinet:0": ChannelFaults(drop_p=0.01, corrupt_p=0.002,
                                             delay_p=0.1, delay_us=150.0)},
        default=ChannelFaults(delay_p=0.05, delay_us=20.0),
        link_events=(LinkEvent(time=1_000.0, channel="myrinet:0"),
                     LinkEvent(time=2_000.0, channel="myrinet:0", up=True)),
        node_events=(NodeEvent(time=3_000.0, node="gwA"),
                     NodeEvent(time=9_000.0, node="gwA", up=True)),
    )
    doc = json.loads(json.dumps(plan.to_dict()))   # via real JSON
    back = FaultPlan.from_dict(doc)
    assert back == plan
    assert back.to_dict() == plan.to_dict()


def test_plan_dict_roundtrip_defaults():
    plan = FaultPlan()
    assert FaultPlan.from_dict(plan.to_dict()) == plan
    assert FaultPlan.from_dict({}) == plan
