"""Failover routing: a reliable transfer survives the loss of its active
gateway by retrying onto the surviving minimum-hop rail, resuming from
the last acknowledged fragment; a true partition ends in NoRouteError."""


from repro.faults import ChannelFaults, FaultPlan, LinkEvent, NodeEvent
from repro.madeleine import RetryPolicy
from repro.routing import NoRouteError
from tests.faults.conftest import (payloads, reliable_pair, run_transfer,
                                   two_gateway_world)

#: short-fuse policy for partition tests (see test_recovery.SHORT).
SHORT = RetryPolicy(max_attempts=2, rto=5_000.0, rto_max=10_000.0,
                    stall_timeout=2_000.0, reack_interval=4_000.0,
                    reack_ttl=20_000.0)


def test_gateway_crash_fails_over_to_survivor():
    w, s, myri, sci = two_gateway_world()
    FaultPlan(seed=2, node_events=(
        NodeEvent(time=3_000.0, node="gwA"),)).arm(w)
    vch, rel_src, rel_dst = reliable_pair(s, myri, sci, RetryPolicy())
    msgs = payloads(2, 2, 120_000)
    attempts, got, errors = run_transfer(s, rel_src, rel_dst, msgs)

    assert not errors
    assert got == msgs
    # the first message was cut mid-flight and needed a retry ...
    assert attempts[0] > 1
    # ... and the retries went through the surviving gateway gwB (rank 2)
    forwarded = sum(wk.messages_forwarded for wk in vch.workers
                    if wk.gw_rank == 2)
    assert forwarded >= len(msgs)
    # route health reflects the crash
    assert 1 in vch.routes.down_nodes


def test_gateway_crash_and_restart_restores_route():
    w, s, myri, sci = two_gateway_world()
    FaultPlan(seed=3, node_events=(
        NodeEvent(time=2_000.0, node="gwA"),
        NodeEvent(time=40_000.0, node="gwA", up=True))).arm(w)
    vch, rel_src, rel_dst = reliable_pair(s, myri, sci, RetryPolicy())
    msgs = payloads(3, 3, 80_000)
    attempts, got, errors = run_transfer(s, rel_src, rel_dst, msgs)

    assert not errors
    assert got == msgs
    assert 1 not in vch.routes.down_nodes   # marked back up
    events = [r.event for r in w.fabric.trace.query("fault")]
    assert events.count("node_down") == 1 and events.count("node_up") == 1


def test_both_gateways_down_raises_no_route():
    """With every gateway gone the pair is partitioned: the sender burns
    its (short) budget waiting for a route and then gets NoRouteError —
    not a hang, not RetryExhausted."""
    w, s, myri, sci = two_gateway_world()
    FaultPlan(seed=4, node_events=(
        NodeEvent(time=500.0, node="gwA"),
        NodeEvent(time=500.0, node="gwB"))).arm(w)
    _vch, rel_src, rel_dst = reliable_pair(s, myri, sci, SHORT)

    state = {}

    def sender():
        yield s.sim.timeout(1_000.0)        # send strictly after the crash
        try:
            yield from rel_src.send(3, b"y" * 20_000)
        except NoRouteError as exc:
            state["exc"] = exc

    s.spawn(sender(), name="part-send")
    s.run()
    assert "partitioned" in str(state["exc"])


def test_link_down_partition_raises_no_route():
    w, s, myri, sci = two_gateway_world()
    FaultPlan(seed=5, link_events=(
        LinkEvent(time=500.0, channel=myri.id),)).arm(w)
    vch, rel_src, _rel_dst = reliable_pair(s, myri, sci, SHORT)

    state = {}

    def sender():
        yield s.sim.timeout(1_000.0)
        try:
            yield from rel_src.send(3, b"z" * 20_000)
        except NoRouteError as exc:
            state["exc"] = exc

    s.spawn(sender(), name="link-send")
    s.run()
    assert isinstance(state["exc"], NoRouteError)
    assert myri.id in vch.routes.down_channels


def test_link_flap_recovers_after_up():
    """A transient outage of the only rail out of the sender: attempts
    during the window fail (dropped fragments, then no route), and the
    transfer completes once the link returns."""
    w, s, myri, sci = two_gateway_world()
    FaultPlan(seed=6,
              channels={myri.id: ChannelFaults(), sci.id: ChannelFaults()},
              link_events=(
                  LinkEvent(time=2_000.0, channel=myri.id),
                  LinkEvent(time=60_000.0, channel=myri.id,
                            up=True))).arm(w)
    vch, rel_src, rel_dst = reliable_pair(s, myri, sci, RetryPolicy())
    msgs = payloads(6, 1, 120_000)
    attempts, got, errors = run_transfer(s, rel_src, rel_dst, msgs)

    assert not errors
    assert got == msgs
    assert attempts[0] > 1                    # the outage was felt
    assert myri.id not in vch.routes.down_channels
