"""Recovery behaviour of the reliable layer under injected faults, plus
the typed error paths: every failure mode must surface as a specific
exception the application can catch — never a hang, never silent
corruption."""

import struct

import pytest

from repro.faults import ChannelFaults, FaultPlan
from repro.madeleine import RetryPolicy, Session
from repro.madeleine.wire import MODE_GTM, Announce
from repro.memory import Buffer
from repro.hw import build_world
from repro.sim import ProcessCrashed, RetryExhausted
from tests.faults.conftest import (payloads, reliable_pair, run_transfer,
                                   two_gateway_world)

#: a short-fuse policy for tests that must *exhaust* the budget quickly.
SHORT = RetryPolicy(max_attempts=3, rto=5_000.0, rto_max=10_000.0,
                    stall_timeout=2_000.0, reack_interval=4_000.0,
                    reack_ttl=20_000.0)


def _faulty_transfer(faults, seed=9, n=2, nbytes=60_000,
                     policy=None):
    w, s, myri, sci = two_gateway_world()
    FaultPlan(seed=seed,
              channels={myri.id: faults, sci.id: faults}).arm(w)
    vch, rel_src, rel_dst = reliable_pair(s, myri, sci,
                                          policy or RetryPolicy())
    msgs = payloads(seed, n, nbytes)
    attempts, got, errors = run_transfer(s, rel_src, rel_dst, msgs)
    return w, msgs, attempts, got, errors, rel_src


# -- recovery ------------------------------------------------------------------

def test_drop_recovery_delivers_intact():
    w, msgs, attempts, got, errors, rel_src = _faulty_transfer(
        ChannelFaults(drop_p=0.05))
    assert not errors
    assert got == msgs                      # byte-identical, in order
    assert rel_src.retransmits > 0          # the loss was real
    assert len(w.fabric.trace.query("fault", "fragment_dropped")) > 0


def test_corrupt_recovery_delivers_intact():
    w, msgs, attempts, got, errors, _rel = _faulty_transfer(
        ChannelFaults(corrupt_p=0.08))
    assert not errors
    assert got == msgs
    assert len(w.fabric.trace.query("fault", "fragment_corrupted")) > 0


def test_delay_faults_do_not_break_ordering():
    _w, msgs, attempts, got, errors, rel_src = _faulty_transfer(
        ChannelFaults(delay_p=0.3, delay_us=400.0))
    assert not errors
    assert got == msgs
    # delays alone cost time, not integrity; a retry only happens if a
    # delay pushed an attempt past a stall bound
    assert all(a >= 1 for a in attempts)


def test_clean_channel_single_attempt():
    _w, msgs, attempts, got, errors, rel_src = _faulty_transfer(
        ChannelFaults())
    assert not errors
    assert got == msgs
    assert attempts == [1] * len(msgs)
    assert rel_src.retransmits == 0


# -- typed failure paths -------------------------------------------------------

def test_total_loss_raises_retry_exhausted():
    """A fabric that eats every fragment must end in RetryExhausted with
    diagnostic context — and the simulation must still terminate."""
    _w, _msgs, attempts, got, errors, _rel = _faulty_transfer(
        ChannelFaults(drop_p=1.0), n=1, nbytes=30_000, policy=SHORT)
    assert not got and not attempts
    assert len(errors) == 1
    exc = errors[0]
    assert isinstance(exc, RetryExhausted)
    assert exc.attempts == SHORT.max_attempts
    assert exc.acked_fragments == 0
    assert exc.total_fragments > 0


def test_retry_exhausted_is_catchable_timeout():
    # applications can handle it with the stdlib's own hierarchy
    assert issubclass(RetryExhausted, TimeoutError)


def test_gateway_rejects_malformed_descriptor():
    """Error path without an armed fault plan: a descriptor that fails to
    decode is a protocol violation and must crash the worker loudly (with
    a plan armed it would instead be forwarded as-is for the end-to-end
    CRC to catch)."""
    w = build_world({"m0": ["myrinet"], "gw": ["myrinet", "sci"],
                     "s0": ["sci"]})
    s = Session(w)
    vch = s.virtual_channel([
        s.channel("myrinet", ["m0", "gw"]),
        s.channel("sci", ["gw", "s0"]),
    ])
    tm0 = vch.special_twin(vch.channels[0]).endpoint(0).tm

    def bad_sender():
        ann = Announce(mode=MODE_GTM, origin=0, final_dst=2,
                       mtu=16 << 10, msg_id=77, hops_left=1)
        yield tm0.send_announce(1, ann)
        garbage = struct.pack("<IBBBx8x", 16, 250, 250, 9)  # bad modes
        yield tm0.send_item(1, Buffer.wrap(garbage),
                            meta={"type": "desc"}, msg_id=77)

    s.spawn(bad_sender())
    with pytest.raises(ProcessCrashed) as excinfo:
        s.run()
    assert "malformed descriptor" in str(excinfo.value.__cause__)


def test_unhandled_injected_crash_surfaces_as_process_crash():
    """A process that does not catch a typed failure crashes the
    simulation with the original exception chained — failures are loud by
    default."""
    w, s, myri, sci = two_gateway_world()
    FaultPlan(seed=1, channels={myri.id: ChannelFaults(drop_p=1.0),
                                sci.id: ChannelFaults(drop_p=1.0)}).arm(w)
    vch, rel_src, _rel_dst = reliable_pair(s, myri, sci, SHORT)

    def naive_sender():                     # no try/except
        yield from rel_src.send(3, b"x" * 10_000)

    s.spawn(naive_sender(), name="naive")
    with pytest.raises(ProcessCrashed) as excinfo:
        s.run()
    assert isinstance(excinfo.value.__cause__, RetryExhausted)
