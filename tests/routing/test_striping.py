"""Rail selection and stripe scheduling for multirail striping."""

import pytest

from repro.hw import build_world
from repro.madeleine import Session
from repro.routing import (RouteTable, StripePolicy, StripeScheduler,
                           disjoint_routes, route_rate)


def dual_gateway_table():
    w = build_world({
        "m0": ["myrinet"],
        "gwA": ["myrinet", "sci"],
        "gwB": ["myrinet", "sci"],
        "s0": ["sci"],
    })
    s = Session(w)
    myri = s.channel("myrinet", ["m0", "gwA", "gwB"])
    sci = s.channel("sci", ["gwA", "gwB", "s0"])
    return RouteTable([myri, sci])


def dual_nic_table():
    w = build_world({"a0": ["myrinet", "myrinet"],
                     "b0": ["myrinet", "myrinet"]})
    s = Session(w)
    rail0 = s.channel("myrinet", ["a0", "b0"])
    rail1 = s.channel("myrinet", ["a0", "b0"],
                      adapter_index={"a0": 1, "b0": 1})
    return RouteTable([rail0, rail1])


# ------------------------------------------------------------- policy


def test_policy_validation():
    StripePolicy()   # defaults are valid
    with pytest.raises(ValueError, match="max_rails"):
        StripePolicy(max_rails=0)
    with pytest.raises(ValueError, match="align"):
        StripePolicy(align=0)
    with pytest.raises(ValueError, match="min_stripe"):
        StripePolicy(min_stripe=512, align=1024)       # below align
    with pytest.raises(ValueError, match="min_stripe"):
        StripePolicy(min_stripe=1536, align=1024)      # not a multiple


# ---------------------------------------------------------- all_routes


def test_all_routes_order_is_deterministic():
    # Satellite: the rail order must be a pure function of the topology,
    # not of graph insertion order — stripe seq assignment depends on it.
    rt = dual_gateway_table()
    first = rt.all_routes(0, 3)
    keys = [tuple(h.channel.id for h in r) + tuple(h.dst for h in r)
            for r in first]
    assert keys == sorted(keys)
    for _ in range(3):
        rt.invalidate()
        again = rt.all_routes(0, 3)
        assert [tuple((h.src, h.dst, h.channel.id) for h in r)
                for r in again] == \
            [tuple((h.src, h.dst, h.channel.id) for h in r) for r in first]


def test_all_routes_expands_parallel_edges():
    # A node pair joined by two live channels (dual NICs) contributes one
    # route per channel, in sorted channel-id order.
    rt = dual_nic_table()
    routes = rt.all_routes(0, 1)
    assert len(routes) == 2
    ids = [r[0].channel.id for r in routes]
    assert ids == sorted(ids) and ids[0] != ids[1]


# ------------------------------------------------------ disjoint_routes


def test_disjoint_routes_picks_both_gateways():
    rt = dual_gateway_table()
    rails = disjoint_routes(rt.all_routes(0, 3), max_rails=4)
    assert len(rails) == 2
    assert sorted(r[0].dst for r in rails) == [1, 2]   # gwA and gwB


def test_disjoint_routes_respects_max_rails():
    rt = dual_gateway_table()
    rails = disjoint_routes(rt.all_routes(0, 3), max_rails=1)
    assert len(rails) == 1
    # deterministic: always the first candidate
    assert rails[0][0].dst == rt.all_routes(0, 3)[0][0].dst


def test_disjoint_routes_rejects_shared_gateway():
    # Two routes through the same interior node are not disjoint rails.
    rt = dual_gateway_table()
    candidates = rt.all_routes(0, 3)
    doubled = [candidates[0], candidates[0], candidates[1]]
    rails = disjoint_routes(doubled, max_rails=3)
    assert len(rails) == 2
    assert rails[0][0].dst != rails[1][0].dst


def test_disjoint_routes_direct_rails_need_distinct_channels():
    rt = dual_nic_table()
    candidates = rt.all_routes(0, 1)
    rails = disjoint_routes(candidates + candidates, max_rails=4)
    assert len(rails) == 2
    assert rails[0][0].channel.id != rails[1][0].channel.id


# ----------------------------------------------------------- route_rate


def test_route_rate_is_bottleneck_with_overrides():
    rt = dual_gateway_table()
    route = rt.all_routes(0, 3)[0]
    protos = {h.channel.protocol for h in route}
    assert route_rate(route) == min(p.host_peak for p in protos)
    slow = {p.name: 1.0 for p in protos}
    assert route_rate(route, slow) == 1.0


# ------------------------------------------------------------ scheduler


def two_rail_scheduler(policy=None, rates=None):
    rt = dual_gateway_table()
    rails = disjoint_routes(rt.all_routes(0, 3), max_rails=2)
    return StripeScheduler(rails, policy or StripePolicy(),
                           rate_overrides=rates)


def test_scheduler_requires_a_rail():
    with pytest.raises(ValueError):
        StripeScheduler([], StripePolicy())


def test_plan_sums_and_aligns():
    sched = two_rail_scheduler()
    length = 64 << 10
    plan = sched.plan(length)
    assert sum(plan) == length
    assert len(plan) == 2
    # every non-primary chunk is alignment-quantized
    align = sched.policy.align
    assert any(c % align == 0 for c in plan)


def test_plan_is_deterministic():
    plans = []
    for _ in range(3):
        sched = two_rail_scheduler()
        plans.append([tuple(sched.plan(n))
                      for n in (8 << 10, 16 << 10, 64 << 10, 100_001)])
    assert plans[0] == plans[1] == plans[2]


def test_small_paquet_goes_whole_to_one_rail():
    sched = two_rail_scheduler()
    length = sched.policy.min_stripe * 2 - 1
    plan = sched.plan(length)
    assert sorted(plan) == [0, length]


def test_small_paquets_alternate_with_backlog():
    # With equal rates, the whole-paquet path picks the least-loaded rail,
    # so consecutive small paquets alternate once backlog is tracked.
    sched = two_rail_scheduler()
    n = 4 << 10
    first = sched.plan(n).index(n)
    sched.note_sent(first, n)
    second = sched.plan(n).index(n)
    assert second != first


def test_backlogged_rail_gets_less():
    sched = two_rail_scheduler()
    sched.note_sent(0, 48 << 10)
    plan = sched.plan(64 << 10)
    assert plan[1] > plan[0]
    sched.note_done(0, 48 << 10)
    balanced = sched.plan(64 << 10)
    assert abs(balanced[0] - balanced[1]) <= max(plan) - min(plan)


def test_hopelessly_backlogged_rail_sits_out():
    # Water-filling drops a rail whose backlog already exceeds the common
    # finish horizon: the whole paquet goes to the idle rail.
    sched = two_rail_scheduler()
    sched.note_sent(0, 10 << 20)
    plan = sched.plan(16 << 10)
    assert plan[0] == 0 and plan[1] == 16 << 10


def test_runt_stripes_fold_into_primary():
    # A split that would leave a sliver below min_stripe on the secondary
    # rail folds it into the primary instead.
    sched = two_rail_scheduler(rates={"myrinet": 100.0, "sci": 1.0})
    plan = sched.plan(9 << 10)
    assert sum(plan) == 9 << 10
    assert all(c == 0 or c >= sched.policy.min_stripe or c == 9 << 10
               for c in plan)


# ----------------------------------- health transitions and generations


def test_generation_bumps_only_on_real_transitions():
    rt = dual_gateway_table()
    g0 = rt.generation
    rt.mark_down("ch0:myrinet")
    assert rt.generation == g0 + 1
    rt.mark_down("ch0:myrinet")          # idempotent re-mark: no bump
    assert rt.generation == g0 + 1
    rt.mark_up("ch0:myrinet")
    assert rt.generation == g0 + 2
    rt.mark_up("ch0:myrinet")            # already live: no bump
    assert rt.generation == g0 + 2
    rt.mark_node_down(1)
    rt.mark_node_up(1)
    assert rt.generation == g0 + 4


def test_revived_gateway_rail_is_reused_without_manual_invalidate():
    # Satellite: after mark_node_up, all_routes must serve both rails again
    # purely off the health transition — nobody calls invalidate() by hand.
    rt = dual_gateway_table()
    assert len(disjoint_routes(rt.all_routes(0, 3), 2)) == 2
    rt.mark_node_down(1)                 # gwA crashes
    survivors = disjoint_routes(rt.all_routes(0, 3), 2)
    assert [r[0].dst for r in survivors] == [2]
    rt.mark_node_up(1)                   # gwA restarts
    revived = disjoint_routes(rt.all_routes(0, 3), 2)
    assert sorted(r[0].dst for r in revived) == [1, 2]


def test_revived_channel_rail_is_reused_without_manual_invalidate():
    rt = dual_nic_table()
    down = rt.all_routes(0, 1)[0][0].channel
    rt.mark_down(down)
    assert len(rt.all_routes(0, 1)) == 1
    rt.mark_up(down)
    assert len(rt.all_routes(0, 1)) == 2
