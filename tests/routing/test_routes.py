"""Unit and property tests for route computation and MTU negotiation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw import build_world
from repro.madeleine import Session
from repro.routing import (NoRouteError, RouteTable, build_graph,
                           gateway_ranks, negotiate_mtu)


def paper_channels():
    w = build_world({"m0": ["myrinet"], "gw": ["myrinet", "sci"],
                     "s0": ["sci"]})
    s = Session(w)
    myri = s.channel("myrinet", ["m0", "gw"])
    sci = s.channel("sci", ["gw", "s0"])
    return w, myri, sci


def test_direct_route_single_hop():
    _w, myri, sci = paper_channels()
    rt = RouteTable([myri, sci])
    route = rt.route(0, 1)
    assert len(route) == 1
    assert route[0].channel is myri


def test_forwarded_route_two_hops():
    _w, myri, sci = paper_channels()
    rt = RouteTable([myri, sci])
    route = rt.route(0, 2)
    assert [h.src for h in route] == [0, 1]
    assert [h.dst for h in route] == [1, 2]
    assert route[0].channel is myri
    assert route[1].channel is sci


def test_route_to_self_rejected():
    _w, myri, sci = paper_channels()
    rt = RouteTable([myri, sci])
    with pytest.raises(ValueError):
        rt.route(1, 1)


def test_no_route_detected():
    w = build_world({"a": ["myrinet"], "b": ["myrinet"],
                     "c": ["sci"], "d": ["sci"]})
    s = Session(w)
    myri = s.channel("myrinet", ["a", "b"])
    sci = s.channel("sci", ["c", "d"])
    rt = RouteTable([myri, sci])   # disconnected: no shared node
    with pytest.raises(NoRouteError):
        rt.route(0, 2)


def test_unknown_rank_detected():
    _w, myri, sci = paper_channels()
    rt = RouteTable([myri])
    with pytest.raises(NoRouteError):
        rt.route(0, 2)


def test_gateway_ranks_paper_testbed():
    _w, myri, sci = paper_channels()
    assert gateway_ranks([myri, sci]) == [1]


def test_next_hop_consistent_with_route():
    _w, myri, sci = paper_channels()
    rt = RouteTable([myri, sci])
    full = rt.route(0, 2)
    assert rt.next_hop(1, 2) == full[1]


def test_three_cluster_chain_route():
    w = build_world({
        "a0": ["myrinet"], "gw1": ["myrinet", "sci"],
        "gw2": ["sci", "sbp"], "c0": ["sbp"],
    })
    s = Session(w)
    chans = [s.channel("myrinet", ["a0", "gw1"]),
             s.channel("sci", ["gw1", "gw2"]),
             s.channel("sbp", ["gw2", "c0"])]
    rt = RouteTable(chans)
    route = rt.route(0, 3)
    assert [(h.src, h.dst) for h in route] == [(0, 1), (1, 2), (2, 3)]
    assert gateway_ranks(chans) == [1, 2]


def test_parallel_channels_deterministic_choice():
    w = build_world({"a": ["myrinet"], "b": ["myrinet"]})
    s = Session(w)
    ch1 = s.channel("myrinet", ["a", "b"], name="alpha")
    ch2 = s.channel("myrinet", ["a", "b"], name="beta")
    rt = RouteTable([ch2, ch1])
    assert rt.route(0, 1)[0].channel.id == "alpha"   # lexicographic tie-break


def test_graph_shape():
    _w, myri, sci = paper_channels()
    g = build_graph([myri, sci])
    assert set(g.nodes) == {0, 1, 2}
    assert g.number_of_edges() == 2


def test_negotiate_mtu_respects_protocol_limits():
    _w, myri, sci = paper_channels()
    rt = RouteTable([myri, sci])
    route = rt.route(0, 2)
    # SCI caps fragments at 128 KB.
    assert negotiate_mtu(route, 1 << 20) == 128 << 10
    assert negotiate_mtu(route, 16 << 10) == 16 << 10


def test_negotiate_mtu_alignment():
    _w, myri, sci = paper_channels()
    rt = RouteTable([myri, sci])
    route = rt.route(0, 2)
    assert negotiate_mtu(route, 10000) == 9216   # rounded down to KB


def test_negotiate_mtu_too_small_rejected():
    with pytest.raises(ValueError):
        negotiate_mtu([], 100)


# -- health / failover ---------------------------------------------------------

def two_gateway_channels():
    w = build_world({"m0": ["myrinet"], "gwA": ["myrinet", "sci"],
                     "gwB": ["myrinet", "sci"], "s0": ["sci"]})
    s = Session(w)
    myri = s.channel("myrinet", ["m0", "gwA", "gwB"])
    sci = s.channel("sci", ["gwA", "gwB", "s0"])
    return w, myri, sci


def test_mark_node_down_reroutes_around_gateway():
    _w, myri, sci = two_gateway_channels()
    rt = RouteTable([myri, sci])
    assert [h.dst for h in rt.route(0, 3)] == [1, 3]   # prefers gwA
    rt.mark_node_down(1)
    assert [h.dst for h in rt.route(0, 3)] == [2, 3]   # survives via gwB
    rt.mark_node_up(1)
    assert [h.dst for h in rt.route(0, 3)] == [1, 3]   # restored


def test_mark_down_invalidates_cached_routes():
    """A route computed before a failure must never be served after it —
    the health transition drops the cache."""
    _w, myri, sci = two_gateway_channels()
    rt = RouteTable([myri, sci])
    before = rt.route(0, 3)                  # populates the cache
    assert before[0].dst == 1
    rt.mark_node_down(1)
    assert rt.route(0, 3)[0].dst == 2        # not the stale cached hops
    assert not rt.is_healthy()
    assert rt.down_nodes == frozenset({1})


def test_all_gateways_down_is_partition():
    _w, myri, sci = two_gateway_channels()
    rt = RouteTable([myri, sci])
    rt.mark_node_down(1)
    rt.mark_node_down(2)
    with pytest.raises(NoRouteError, match="partitioned"):
        rt.route(0, 3)


def test_mark_channel_down_partitions_endpoint():
    _w, myri, sci = two_gateway_channels()
    rt = RouteTable([myri, sci])
    rt.mark_down(myri)
    with pytest.raises(NoRouteError):
        rt.route(0, 3)
    assert rt.route(1, 3)                    # SCI side still routable
    rt.mark_up(myri)
    assert [h.dst for h in rt.route(0, 3)] == [1, 3]
    assert rt.is_healthy()


def test_mark_down_accepts_forwarding_twin_id():
    _w, myri, sci = two_gateway_channels()
    rt = RouteTable([myri, sci])
    rt.mark_down(myri.id + "!fwd")           # twin maps to the rail
    assert myri.id in rt.down_channels
    with pytest.raises(NoRouteError):
        rt.route(0, 3)


def test_down_unrelated_channel_keeps_routes():
    _w, myri, sci = two_gateway_channels()
    rt = RouteTable([myri, sci])
    rt.mark_down("sbp")                      # not part of this vchannel
    assert [h.dst for h in rt.route(0, 3)] == [1, 3]


@given(n_nodes=st.integers(3, 8), seed=st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_random_chain_routes_are_loop_free(n_nodes, seed):
    """On a random chain of clusters, every route visits each rank at most
    once and consecutive hops share the intermediate rank."""
    import random
    rng = random.Random(seed)
    protos = ["myrinet", "sci", "sbp"]
    adapters = {}
    chans_spec = []
    for i in range(n_nodes - 1):
        p = protos[rng.randrange(3)]
        chans_spec.append((p, [i, i + 1]))
        adapters.setdefault(f"n{i}", []).append(p)
        adapters.setdefault(f"n{i+1}", []).append(p)
    w = build_world(adapters)
    s = Session(w)
    chans = [s.channel(p, m) for p, m in chans_spec]
    rt = RouteTable(chans)
    for src in range(n_nodes):
        for dst in range(n_nodes):
            if src == dst:
                continue
            route = rt.route(src, dst)
            ranks = [route[0].src] + [h.dst for h in route]
            assert ranks[0] == src and ranks[-1] == dst
            assert len(set(ranks)) == len(ranks)
            for h1, h2 in zip(route, route[1:]):
                assert h1.dst == h2.src
