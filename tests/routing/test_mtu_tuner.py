"""The adaptive fragment tuner (effective MTU) over the analytic model."""

import pytest

from repro.hw import GatewayParams, PipelineConfig, build_world
from repro.madeleine import Session
from repro.routing import (RouteTable, fragment_knee, negotiate_mtu,
                           tune_fragment_size)
from repro.routing.mtu import MIN_MTU, MTU_GRANULARITY


def paper_route():
    w = build_world({"m0": ["myrinet"], "gw": ["myrinet", "sci"],
                     "s0": ["sci"]})
    s = Session(w)
    myri = s.channel("myrinet", ["m0", "gw"])
    sci = s.channel("sci", ["gw", "s0"])
    rt = RouteTable([myri, sci])
    return rt.route(0, 2), rt


def test_tuned_size_is_aligned_and_bounded():
    route, _rt = paper_route()
    f = tune_fragment_size(route)
    assert f % MTU_GRANULARITY == 0
    assert MIN_MTU <= f <= 128 << 10   # SCI's wire limit caps the route


def test_single_hop_gets_full_wire_limit():
    route, rt = paper_route()
    direct = rt.route(0, 1)   # myrinet only
    assert tune_fragment_size(direct) == 1 << 20


def test_knee_curve_is_well_formed():
    route, _rt = paper_route()
    curve = fragment_knee(route)
    sizes = [f for f, _bw in curve]
    assert sizes == sorted(sizes)
    assert sizes[0] == MIN_MTU and sizes[-1] == 128 << 10
    assert all(bw > 0 for _f, bw in curve)


def test_tuned_size_sits_at_the_knee():
    """The tuner returns the smallest candidate within slack of the best —
    larger fragments buy (essentially) nothing beyond it."""
    route, _rt = paper_route()
    slack = 0.02
    f = tune_fragment_size(route, slack=slack)
    curve = dict(fragment_knee(route))
    best = max(curve.values())
    assert curve[f] >= (1 - slack) * best
    smaller = [s for s in curve if s < f]
    assert all(curve[s] < (1 - slack) * best for s in smaller)


def test_more_slack_never_grows_the_fragment():
    route, _rt = paper_route()
    tight = tune_fragment_size(route, slack=0.01)
    loose = tune_fragment_size(route, slack=0.20)
    assert loose <= tight


def test_deeper_pipeline_shifts_the_knee_down():
    """With the swap overhead off the critical path, small fragments stop
    being punished, so the tuned size cannot grow."""
    route, _rt = paper_route()
    lockstep = tune_fragment_size(route, pipeline=PipelineConfig(depth=2))
    deep = tune_fragment_size(route, pipeline=PipelineConfig(depth=4))
    assert deep <= lockstep


def test_heavier_swap_overhead_grows_the_fragment():
    route, _rt = paper_route()
    cheap = tune_fragment_size(route, gateway=GatewayParams(switch_overhead=1.0))
    dear = tune_fragment_size(route, gateway=GatewayParams(switch_overhead=400.0))
    assert dear > cheap


def test_rate_overrides_reshape_the_curve():
    route, _rt = paper_route()
    base = dict(fragment_knee(route))
    slowed = dict(fragment_knee(route, rate_overrides={"myrinet": 5.0}))
    assert set(slowed) == set(base)
    assert all(slowed[f] <= base[f] + 1e-9 for f in base)
    assert any(slowed[f] < base[f] for f in base)


def test_wire_limit_still_binds_in_adaptive_mode():
    route, _rt = paper_route()
    f = tune_fragment_size(route, gateway=GatewayParams(switch_overhead=1e6))
    assert f <= 128 << 10


def test_static_negotiation_untouched():
    """The default path stays the §2.3 rule: min(packet_size, hop MTUs)."""
    route, _rt = paper_route()
    assert negotiate_mtu(route, 16 << 10) == 16 << 10
    assert negotiate_mtu(route, 1 << 20) == 128 << 10
    with pytest.raises(ValueError):
        negotiate_mtu(route, 512)


def test_vchannel_adaptive_mtu_cached_and_recalibrated():
    w = build_world({"m0": ["myrinet"], "gw": ["myrinet", "sci"],
                     "s0": ["sci"]})
    s = Session(w)
    vch = s.virtual_channel([
        s.channel("myrinet", ["m0", "gw"]),
        s.channel("sci", ["gw", "s0"]),
    ], packet_size=8 << 10,
        pipeline=PipelineConfig(depth=4, adaptive_mtu=True))
    tuned = vch.mtu_for(0, 2)
    assert tuned > 8 << 10          # grew past the static packet size
    assert vch._mtu_cache            # cached per path
    assert vch.mtu_for(0, 2) == tuned
    vch.calibrate_rates({"myrinet": 5.0, "sci": 5.0})
    assert not vch._mtu_cache        # calibration invalidates the cache
    recal = vch.mtu_for(0, 2)
    assert recal % MTU_GRANULARITY == 0
    # direct routes keep the plain negotiation even in adaptive mode
    assert vch.mtu_for(0, 1) == 8 << 10
