"""CLI tests."""

import pytest

from repro.cli import _parse_size, _parse_sizes, main


def test_parse_size():
    assert _parse_size("4") == 4
    assert _parse_size("8K") == 8192
    assert _parse_size("2M") == 2 << 20
    assert _parse_size("1.5K") == 1536
    with pytest.raises(Exception):
        _parse_size("oops")


def test_parse_sizes():
    assert _parse_sizes("1K,2K") == [1024, 2048]


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "myrinet" in out and "pio" in out


def test_ping(capsys):
    assert main(["ping", "--size", "256K", "--packet", "32K"]) == 0
    out = capsys.readouterr().out
    assert "bandwidth" in out and "MB/s" in out


def test_raw(capsys):
    assert main(["raw", "--protocol", "sci", "--sizes", "8K,64K"]) == 0
    out = capsys.readouterr().out
    assert "raw one-way bandwidth, sci" in out


def test_raw_unknown_protocol(capsys):
    assert main(["raw", "--protocol", "warp"]) == 2


def test_fig6_small(capsys):
    assert main(["fig6", "--packets", "16K", "--sizes", "64K,256K"]) == 0
    out = capsys.readouterr().out
    assert "Figure 6" in out
    assert "paquet 16 KB" in out


def test_fig7_small(capsys):
    assert main(["fig7", "--packets", "16K", "--sizes", "64K"]) == 0
    assert "Figure 7" in capsys.readouterr().out


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])
