"""CLI tests."""

import pytest

from repro.cli import _parse_size, _parse_sizes, main


def test_parse_size():
    assert _parse_size("4") == 4
    assert _parse_size("8K") == 8192
    assert _parse_size("2M") == 2 << 20
    assert _parse_size("1.5K") == 1536
    with pytest.raises(Exception):
        _parse_size("oops")


def test_parse_size_gig_suffix_and_unit():
    assert _parse_size("1G") == 1 << 30
    assert _parse_size("2g") == 2 << 30
    assert _parse_size("1GB") == 1 << 30
    assert _parse_size("64KB") == 64 << 10
    assert _parse_size(" 4M ") == 4 << 20


def test_parse_size_rejects_trailing_garbage():
    import argparse
    for bad in ("4Q", "1Mx", "10KBs", "inf", "nan", "1e6", "-4K", "4 K", ""):
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_size(bad)


def test_parse_sizes():
    assert _parse_sizes("1K,2K") == [1024, 2048]


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "myrinet" in out and "pio" in out


def test_ping(capsys):
    assert main(["ping", "--size", "256K", "--packet", "32K"]) == 0
    out = capsys.readouterr().out
    assert "bandwidth" in out and "MB/s" in out


def test_raw(capsys):
    assert main(["raw", "--protocol", "sci", "--sizes", "8K,64K"]) == 0
    out = capsys.readouterr().out
    assert "raw one-way bandwidth, sci" in out


def test_raw_unknown_protocol(capsys):
    assert main(["raw", "--protocol", "warp"]) == 2


def test_fig6_small(capsys):
    assert main(["fig6", "--packets", "16K", "--sizes", "64K,256K"]) == 0
    out = capsys.readouterr().out
    assert "Figure 6" in out
    assert "paquet 16 KB" in out


def test_fig7_small(capsys):
    assert main(["fig7", "--packets", "16K", "--sizes", "64K"]) == 0
    assert "Figure 7" in capsys.readouterr().out


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_stats_prints_metrics_snapshot(capsys):
    assert main(["stats", "--direction", "sci-to-myri",
                 "--size", "256K"]) == 0
    out = capsys.readouterr().out
    assert "delivered in" in out and "MB/s" in out
    assert "reliable.retransmits" in out
    assert "gateway.occupancy" in out
    assert "wire.bytes" in out


def test_stats_writes_json_and_csv(tmp_path, capsys):
    jpath, cpath = tmp_path / "m.json", tmp_path / "m.csv"
    assert main(["stats", "--size", "128K",
                 "--json", str(jpath), "--csv", str(cpath)]) == 0
    import json
    snapshot = json.loads(jpath.read_text())
    assert "reliable.attempts" in snapshot
    assert cpath.read_text().startswith("metric,kind,labels,field,value")


def test_stats_survives_fragment_drops(capsys):
    assert main(["stats", "--size", "128K", "--drop", "0.01",
                 "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "faults.fragments_dropped" in out


def test_trace_writes_chrome_json(tmp_path, capsys):
    tpath, spath = tmp_path / "t.json", tmp_path / "s.json"
    assert main(["trace", "--size", "128K",
                 "--out", str(tpath), "--spans-out", str(spath)]) == 0
    import json
    trace = json.loads(tpath.read_text())
    assert trace["traceEvents"]
    spans = json.loads(spath.read_text())
    assert any(e["name"] == "forward" for e in spans["traceEvents"])


def test_solve_scenario_prints_flows_and_writes_json(tmp_path, capsys):
    out_path = tmp_path / "solve.json"
    assert main(["solve", "--scenario", "benchmarks/scenarios/torus_uniform.yaml",
                 "--out", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "FCT" in out and "busiest links" in out
    import json
    payload = json.loads(out_path.read_text())   # strict JSON by construction
    assert payload["summary"]["mode"] == "solver"
    assert payload["flows"]


def test_bench_sweep_rails_solver_mode(capsys):
    assert main(["bench", "--sweep-rails", "--mode", "solver"]) == 0
    out = capsys.readouterr().out
    assert "solved | model" in out
